//! Group membership on top of the updateable broadcast: the paper's
//! Figure-4 stack with GM, showing that a protocol which *depends on*
//! the replaced service keeps working — views stay consistent across a
//! dynamic protocol update.
//!
//! ```text
//! cargo run --example membership_demo
//! ```

use dpu::repl::builder::{group_sim, request_change, specs, GroupStackOpts, SwitchLayer};
use dpu::sim::{Sim, SimConfig};
use dpu_core::time::{Dur, Time};
use dpu_core::{ServiceId, StackId};
use dpu_protocols::gm::{ops as gm_ops, GmModule, GmOp, View};

fn request(sim: &mut Sim, node: u32, gm: dpu_core::ModuleId, op: GmOp) {
    sim.with_stack(StackId(node), |s| {
        s.call_as(
            gm,
            &ServiceId::new(dpu_protocols::GM_SVC),
            gm_ops::REQUEST,
            dpu_core::wire::to_bytes(&op),
        )
    });
}

fn views(sim: &mut Sim, gm: dpu_core::ModuleId, n: u32) -> Vec<View> {
    (0..n)
        .map(|i| {
            sim.with_stack(StackId(i), |s| {
                s.with_module::<GmModule, _>(gm, |m| m.view().clone()).unwrap()
            })
        })
        .collect()
}

fn main() {
    let opts = GroupStackOpts {
        abcast: specs::ct(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(0),
        with_gm: true,
        extra_defaults: Vec::new(),
    };
    let (mut sim, h) = group_sim(SimConfig::lan(4, 99), &opts);
    let gm = h.gm.expect("gm installed");

    sim.run_until(Time::ZERO + Dur::millis(300));
    println!("initial views: {:?}", views(&mut sim, gm, 4)[0]);

    println!("stack 3 leaves the group ...");
    request(&mut sim, 3, gm, GmOp::Leave(StackId(3)));
    sim.run_until(Time::ZERO + Dur::secs(3));

    println!("replacing atomic broadcast underneath GM (ct → ring) ...");
    request_change(&mut sim, StackId(0), &h, &specs::ring(1));
    // A membership change racing the protocol switch:
    request(&mut sim, 1, gm, GmOp::Join(StackId(9)));
    sim.run_until(Time::ZERO + Dur::secs(8));

    println!("stack 9 leaves again, ordered by the NEW protocol ...");
    request(&mut sim, 2, gm, GmOp::Leave(StackId(9)));
    sim.run_until(Time::ZERO + Dur::secs(14));

    let vs = views(&mut sim, gm, 4);
    for (i, v) in vs.iter().enumerate() {
        println!("stack {i}: view #{} members {:?}", v.id, v.members);
    }
    for v in &vs[1..] {
        assert_eq!(v, &vs[0], "views diverged");
    }
    assert_eq!(vs[0].id, 3, "three membership changes were installed");
    assert_eq!(vs[0].members, vec![StackId(0), StackId(1), StackId(2)]);
    println!("\nconsistent views on every stack, across the protocol update. ✓");
}
