//! Quickstart: build the paper's group communication stack on three
//! simulated machines, broadcast a few messages, replace the atomic
//! broadcast protocol on the fly (Algorithm 1), and verify the four
//! atomic broadcast properties across the switch.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dpu::repl::builder::{
    check_run, group_sim, request_change, send_probe, specs, GroupStackOpts, SwitchLayer,
};
use dpu::sim::SimConfig;
use dpu_core::time::{Dur, Time};
use dpu_core::StackId;
use dpu_repl::abcast_repl::ReplAbcastModule;

fn main() {
    // 1. Three stacks, each: probe → r-abcast (Repl) → abcast (CT) →
    //    consensus → fd/rp2p → udp → net, in a deterministic simulation.
    let opts = GroupStackOpts {
        abcast: specs::ct(0),     // consensus-based ABcast, incarnation 0
        layer: SwitchLayer::Repl, // the paper's replacement module
        probe_pad: Some(16),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    let (mut sim, handles) = group_sim(SimConfig::lan(3, 42), &opts);
    println!("application talks to service: {}", handles.top_service);

    // 2. Let the failure detector settle, then broadcast from everyone.
    sim.run_until(Time::ZERO + Dur::millis(300));
    for node in 0..3 {
        send_probe(&mut sim, StackId(node), &handles);
    }
    sim.run_until(Time::ZERO + Dur::secs(2));

    // 3. Replace CT-ABcast by the fixed-sequencer ABcast — on the fly.
    //    The request is atomically broadcast through the OLD protocol;
    //    its position in the total order is the switch point.
    println!("switching abcast.ct -> abcast.seq ...");
    request_change(&mut sim, StackId(0), &handles, &specs::seq(1));
    for node in 0..3 {
        send_probe(&mut sim, StackId(node), &handles); // racing the switch
    }
    sim.run_until(Time::ZERO + Dur::secs(5));
    for node in 0..3 {
        send_probe(&mut sim, StackId(node), &handles); // after the switch
    }
    sim.run_until(Time::ZERO + Dur::secs(10));

    // 4. Inspect the replacement layer and check every property the
    //    paper proves in §5.2.2.
    let layer = handles.layer.expect("repl layer");
    for node in sim.stack_ids() {
        let (sn, switches, undelivered) = sim.with_stack(node, |s| {
            s.with_module::<ReplAbcastModule, _>(layer, |m| {
                (m.seq_number(), m.switches_applied(), m.undelivered_len())
            })
            .unwrap()
        });
        println!("{node}: seqNumber={sn} switches={switches} undelivered={undelivered}");
        assert_eq!(sn, 1);
        assert_eq!(undelivered, 0);
    }
    let report = check_run(&mut sim, &handles);
    report.assert_ok();
    println!(
        "all {} messages delivered on all stacks, in the same total order,",
        report.checker.broadcast_count()
    );
    println!("across the protocol replacement — validity, uniform agreement,");
    println!("uniform integrity and uniform total order all hold. ✓");
}
