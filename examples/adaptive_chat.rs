//! Adaptive chat room: every participant sees the same transcript, in
//! the same order, even while the group switches its ordering protocol
//! to match the environment.
//!
//! The scenario the paper's adaptive-middleware motivation describes: a
//! group starts on the crash-tolerant consensus-based broadcast, then —
//! once the environment looks stable — an operator hot-swaps in the
//! cheap fixed-sequencer protocol; later, suspicion rises and the group
//! swaps back. The chat never stops, nobody's messages are lost or
//! reordered inconsistently.
//!
//! ```text
//! cargo run --example adaptive_chat
//! ```

use bytes::Bytes;
use dpu::repl::builder::{build, request_change, specs, GroupStackOpts, SwitchLayer};
use dpu::sim::{Sim, SimConfig};
use dpu_core::stack::ModuleCtx;
use dpu_core::time::{Dur, Time};
use dpu_core::wire::Encode;
use dpu_core::{Call, Module, ModuleId, Response, ServiceId, StackId};
use dpu_protocols::abcast::ops as ab_ops;

const CHAT_MAGIC: u32 = 0x4348_4154; // "CHAT"

struct ChatClient {
    top: ServiceId,
    transcript: Vec<String>,
}

impl Module for ChatClient {
    fn kind(&self) -> &str {
        "chat-client"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![self.top.clone()]
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != ab_ops::ADELIVER {
            return;
        }
        let Ok((magic, who, text)) = resp.decode::<(u32, String, String)>() else {
            return;
        };
        if magic == CHAT_MAGIC {
            self.transcript.push(format!("<{who}> {text}"));
        }
    }
}

fn say(sim: &mut Sim, node: u32, chat: ModuleId, top: &ServiceId, who: &str, text: &str) {
    let line: Bytes = (CHAT_MAGIC, who.to_string(), text.to_string()).to_bytes();
    let top = top.clone();
    sim.with_stack(StackId(node), |s| s.call_as(chat, &top, ab_ops::ABCAST, line));
}

fn main() {
    let users = ["olivier", "pawel", "andre"];
    let opts = GroupStackOpts {
        abcast: specs::ct(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(0),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    let mut chat_id = None;
    let mut handles = None;
    let mut sim = Sim::new(SimConfig::lan(3, 2006), |sc| {
        let mut built = build(sc, &opts);
        let top = built.handles.top_service.clone();
        let id = built.stack.add_module(Box::new(ChatClient { top, transcript: vec![] }));
        chat_id.get_or_insert(id);
        handles.get_or_insert(built.handles.clone());
        built.stack
    });
    let chat = chat_id.unwrap();
    let h = handles.unwrap();
    let top = h.top_service.clone();

    sim.run_until(Time::ZERO + Dur::millis(300));
    say(&mut sim, 0, chat, &top, users[0], "shall we switch to the sequencer?");
    say(&mut sim, 1, chat, &top, users[1], "network looks stable, go ahead");
    sim.run_until(Time::ZERO + Dur::secs(2));

    println!("-- operator switches abcast.ct → abcast.seq (nobody stops chatting) --");
    request_change(&mut sim, StackId(2), &h, &specs::seq(1));
    say(&mut sim, 2, chat, &top, users[2], "switching now");
    say(&mut sim, 0, chat, &top, users[0], "did anything get lost?");
    sim.run_until(Time::ZERO + Dur::secs(5));
    say(&mut sim, 1, chat, &top, users[1], "nothing lost — total order preserved");
    sim.run_until(Time::ZERO + Dur::secs(7));

    println!("-- suspicion rises: switching back to the fault-tolerant protocol --");
    request_change(&mut sim, StackId(0), &h, &specs::ct(2));
    say(&mut sim, 0, chat, &top, users[0], "back on consensus, sleep well");
    sim.run_until(Time::ZERO + Dur::secs(12));

    let reference = sim.with_stack(StackId(0), |s| {
        s.with_module::<ChatClient, _>(chat, |c| c.transcript.clone()).unwrap()
    });
    println!("\ntranscript as seen by every participant:");
    for line in &reference {
        println!("  {line}");
    }
    for node in 1..3 {
        let t = sim.with_stack(StackId(node), |s| {
            s.with_module::<ChatClient, _>(chat, |c| c.transcript.clone()).unwrap()
        });
        assert_eq!(t, reference, "participant {node} saw a different transcript");
    }
    assert_eq!(reference.len(), 6);
    println!("\nidentical transcripts across two live protocol switches. ✓");
}
