//! Replicated key-value store: state-machine replication over the
//! adaptive group communication stack.
//!
//! Every `put` is atomically broadcast; every replica applies the
//! commands in delivery order, so the replicas' states stay identical —
//! including across a dynamic protocol update and a replica crash. This
//! is the "replicated non-stop service" the paper's introduction
//! motivates: the store keeps serving while its ordering protocol is
//! replaced underneath it.
//!
//! ```text
//! cargo run --example replicated_kv
//! ```

use bytes::Bytes;
use dpu::repl::builder::{build, request_change, specs, GroupStackOpts, SwitchLayer};
use dpu::sim::{Sim, SimConfig};
use dpu_core::stack::ModuleCtx;
use dpu_core::time::{Dur, Time};
use dpu_core::wire::{self, Encode};
use dpu_core::{Call, Module, ModuleId, Response, ServiceId, StackId};
use dpu_protocols::abcast::ops as ab_ops;
use std::collections::BTreeMap;

/// Magic prefix separating KV commands from other broadcast users.
const KV_MAGIC: u32 = 0x4B56_3031; // "KV01"

/// The replica: applies totally ordered `put` commands.
struct KvStore {
    top: ServiceId,
    map: BTreeMap<String, String>,
    applied: Vec<(String, String)>,
}

impl KvStore {
    fn new(top: ServiceId) -> KvStore {
        KvStore { top, map: BTreeMap::new(), applied: Vec::new() }
    }
}

impl Module for KvStore {
    fn kind(&self) -> &str {
        "kv-store"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![self.top.clone()]
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != ab_ops::ADELIVER {
            return;
        }
        let Ok((magic, key, value)) = resp.decode::<(u32, String, String)>() else {
            return;
        };
        if magic != KV_MAGIC {
            return;
        }
        self.map.insert(key.clone(), value.clone());
        self.applied.push((key, value));
    }
}

fn put(sim: &mut Sim, node: u32, kv: ModuleId, top: &ServiceId, key: &str, value: &str) {
    let cmd: Bytes = (KV_MAGIC, key.to_string(), value.to_string()).to_bytes();
    let top = top.clone();
    sim.with_stack(StackId(node), |s| s.call_as(kv, &top, ab_ops::ABCAST, cmd));
}

fn main() {
    // Cap rp2p retries so frames addressed to the crashed replica are
    // eventually given up on (and *counted*) instead of retried forever
    // — the exhaustion metric the telemetry report surfaces below.
    let rp2p = dpu_core::ModuleSpec::with_params(
        dpu::net::RP2P_SVC,
        &dpu::net::rp2p::Rp2pConfig { max_retransmits: 8, ..dpu::net::rp2p::Rp2pConfig::default() },
    );
    let opts = GroupStackOpts {
        abcast: specs::ct(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(0), // probe kept for request_change routing
        with_gm: false,
        extra_defaults: vec![(dpu::net::RP2P_SVC.to_string(), rp2p)],
    };
    // Build stacks and attach a KvStore replica to each.
    let mut kv_id = None;
    let mut handles = None;
    // 2% packet loss on the LAN: enough that rp2p's retransmission and
    // resequencing machinery actually does work worth observing.
    let mut cfg = SimConfig::lan(5, 7);
    cfg.net.loss = 0.02;
    let mut sim = Sim::new(cfg, |sc| {
        let mut built = build(sc, &opts);
        let top = built.handles.top_service.clone();
        let id = built.stack.add_module(Box::new(KvStore::new(top)));
        kv_id.get_or_insert(id);
        handles.get_or_insert(built.handles.clone());
        built.stack
    });
    let kv = kv_id.expect("kv module added");
    let h = handles.expect("handles");
    let top = h.top_service.clone();

    sim.run_until(Time::ZERO + Dur::millis(300));
    println!("5 replicas up; writing through CT-ABcast ...");
    put(&mut sim, 0, kv, &top, "currency", "CHF");
    put(&mut sim, 1, kv, &top, "city", "Lausanne");
    put(&mut sim, 2, kv, &top, "year", "2006");
    sim.run_until(Time::ZERO + Dur::secs(2));

    println!("replacing the ordering protocol (CT → token ring) under writes ...");
    request_change(&mut sim, StackId(3), &h, &specs::ring(1));
    put(&mut sim, 3, kv, &top, "venue", "IPDPS");
    put(&mut sim, 4, kv, &top, "city", "Rhodes"); // overwrites Lausanne
    sim.run_until(Time::ZERO + Dur::secs(6));

    // The ring protocol is not crash-tolerant (a dead member stalls the
    // token) — so before a replica can safely fail, the operator swaps
    // the fault-tolerant consensus-based protocol back in. This is the
    // adaptive-middleware story in miniature.
    println!("switching back to CT before a crash can hurt ...");
    request_change(&mut sim, StackId(1), &h, &specs::ct(2));
    sim.run_until(Time::ZERO + Dur::secs(9));

    println!("crashing replica 4; the rest keep serving on CT ...");
    sim.crash_at(sim.now(), StackId(4));
    put(&mut sim, 0, kv, &top, "status", "non-stop");
    sim.run_until(Time::ZERO + Dur::secs(16));

    // All surviving replicas must hold the same state, built in the same
    // order.
    let reference = sim.with_stack(StackId(0), |s| {
        s.with_module::<KvStore, _>(kv, |m| (m.map.clone(), m.applied.clone())).unwrap()
    });
    println!("\nreplica 0 state:");
    for (k, v) in &reference.0 {
        println!("  {k} = {v}");
    }
    for node in 1..4 {
        let state = sim.with_stack(StackId(node), |s| {
            s.with_module::<KvStore, _>(kv, |m| (m.map.clone(), m.applied.clone())).unwrap()
        });
        assert_eq!(state.0, reference.0, "replica {node} state diverged");
        assert_eq!(state.1, reference.1, "replica {node} apply order diverged");
    }
    assert_eq!(reference.0.get("city").map(String::as_str), Some("Rhodes"));
    assert_eq!(reference.0.len(), 5);
    assert_eq!(
        wire::from_bytes::<(u32, String, String)>(
            &(KV_MAGIC, "x".to_string(), "y".to_string()).to_bytes()
        )
        .unwrap()
        .0,
        KV_MAGIC
    );
    println!("\nall surviving replicas identical across switch + crash. ✓");

    // Reading telemetry: every host exposes the same unified report.
    // Under 2% loss the interesting rows are the transport's recovery
    // work and the resequencing-buffer depth histogram — how far out of
    // order the lossy LAN actually delivered.
    let report = sim.telemetry_report();
    println!("\n{report}");
    println!(
        "rp2p recovery under 2% loss: {} retransmissions; {} frames gave up after the crash \
         (max_retransmits = 8); reseq buffer depth p50/p99/max {}/{}/{} over {} held frames",
        report.transport.retransmissions,
        report.transport.exhausted,
        report.reseq_depth.p50,
        report.reseq_depth.p99,
        report.reseq_depth.max,
        report.reseq_depth.count,
    );
    assert!(report.transport.retransmissions > 0, "2% loss must force retransmissions");
    assert!(report.reseq_depth.count > 0, "loss reorders; the reseq histogram must see it");
}
