//! Live (real-time, multi-threaded) dynamic protocol update: the same
//! stacks that run under the deterministic simulator run here on OS
//! threads with the wall clock, and the protocol is replaced while
//! messages flow — a miniature of the paper's cluster experiment.
//!
//! ```text
//! cargo run --example live_runtime
//! ```

use dpu::repl::builder::{
    group_runtime, request_change_live, send_probe_live, specs, GroupStackOpts, SwitchLayer,
};
use dpu::runtime::{Runtime, RuntimeConfig};
use dpu_core::probe::Probe;
use dpu_core::{ModuleId, StackId};
use dpu_repl::abcast_repl::ReplAbcastModule;
use std::time::Duration;

fn delivered(rt: &Runtime, node: u32, probe: ModuleId) -> usize {
    rt.with_stack(StackId(node), move |s| {
        s.with_module::<Probe, _>(probe, |p| p.delivered().len()).expect("probe")
    })
}

fn main() {
    let opts = GroupStackOpts {
        abcast: specs::ct(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(16),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    let (rt, h) = group_runtime(RuntimeConfig::new(3).with_shards(2), &opts);
    let probe = h.probe.expect("probe");
    let layer = h.layer.expect("repl layer");

    println!("3 live stacks multiplexed on {} shard threads; warming up ...", rt.shards());
    std::thread::sleep(Duration::from_millis(300));
    for node in 0..3 {
        send_probe_live(&rt, StackId(node), &h);
    }
    wait_for(&rt, probe, 3);
    println!("3 messages totally ordered in real time");

    println!("hot-swapping abcast.ct → abcast.seq while sending ...");
    request_change_live(&rt, StackId(0), &h, &specs::seq(1));
    for node in 0..3 {
        send_probe_live(&rt, StackId(node), &h);
    }
    wait_for(&rt, probe, 6);

    for node in 0..3 {
        let sn = rt.with_stack(StackId(node), move |s| {
            s.with_module::<ReplAbcastModule, _>(layer, |m| m.seq_number()).expect("repl")
        });
        assert_eq!(sn, 1, "stack {node} switched");
    }
    // Transcript equality across the live switch.
    let logs: Vec<Vec<_>> = (0..3)
        .map(|node| {
            rt.with_stack(StackId(node), move |s| {
                s.with_module::<Probe, _>(probe, |p| {
                    p.delivered().iter().map(|r| r.msg).collect::<Vec<_>>()
                })
                .expect("probe")
            })
        })
        .collect();
    assert_eq!(logs[1], logs[0]);
    assert_eq!(logs[2], logs[0]);
    let stats = rt.stats();
    println!(
        "live switch complete: 6 messages, identical order on all stacks, \
         {} packets on the wire. ✓",
        stats.packets_sent
    );
    rt.shutdown();
}

fn wait_for(rt: &Runtime, probe: ModuleId, count: usize) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if (0..3).all(|node| delivered(rt, node, probe) >= count) {
            return;
        }
        assert!(std::time::Instant::now() < deadline, "timed out waiting for {count} deliveries");
        std::thread::sleep(Duration::from_millis(20));
    }
}
