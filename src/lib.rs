//! # dpu — Dynamic Protocol Update
//!
//! Umbrella crate re-exporting the whole workspace: a Rust reproduction of
//! *"Structural and Algorithmic Issues of Dynamic Protocol Update"*
//! (Rütti, Wojciechowski, Schiper; IPDPS 2006).
//!
//! * [`core`] — the composition model (services, modules, stacks, dynamic
//!   bindings) and the DPU correctness checkers;
//! * [`sim`] — the deterministic discrete-event host;
//! * [`net`] — UDP-like datagrams and reliable point-to-point;
//! * [`protocols`] — failure detector, consensus, atomic broadcast
//!   variants, group membership;
//! * [`repl`] — the replacement module (Algorithm 1) and the baseline
//!   switchers;
//! * [`runtime`] — a sharded event-loop real-time host;
//! * [`reactor`] — an epoll-backed real-socket host (stacks over
//!   loopback UDP, groups spanning OS processes).
//!
//! ## Quickstart
//!
//! `examples/quickstart.rs` is the end-to-end tour: it builds the
//! paper's Figure-4 group communication stack on three simulated
//! machines, broadcasts through it, replaces the atomic broadcast
//! protocol *while messages are in flight* (the paper's Algorithm 1),
//! and then mechanically checks the four atomic broadcast properties
//! across the switch:
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The other examples (`adaptive_chat`, `replicated_kv`,
//! `membership_demo`, `live_runtime`) exercise the same stack under
//! different workloads and hosts; `cargo test -q` and `cargo bench`
//! run the test suite and the criterion microbenchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dpu_core as core;
pub use dpu_net as net;
pub use dpu_protocols as protocols;
pub use dpu_reactor as reactor;
pub use dpu_repl as repl;
pub use dpu_runtime as runtime;
pub use dpu_sim as sim;
