//! # dpu — Dynamic Protocol Update
//!
//! Umbrella crate re-exporting the whole workspace: a Rust reproduction of
//! *"Structural and Algorithmic Issues of Dynamic Protocol Update"*
//! (Rütti, Wojciechowski, Schiper; IPDPS 2006).
//!
//! * [`core`] — the composition model (services, modules, stacks, dynamic
//!   bindings) and the DPU correctness checkers;
//! * [`sim`] — the deterministic discrete-event host;
//! * [`net`] — UDP-like datagrams and reliable point-to-point;
//! * [`protocols`] — failure detector, consensus, atomic broadcast
//!   variants, group membership;
//! * [`repl`] — the replacement module (Algorithm 1) and the baseline
//!   switchers;
//! * [`runtime`] — a threaded real-time host.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use dpu_core as core;
pub use dpu_net as net;
pub use dpu_protocols as protocols;
pub use dpu_repl as repl;
pub use dpu_runtime as runtime;
pub use dpu_sim as sim;
