//! The thousand-node soak: ≥1024 full Figure-4 stacks on a clustered
//! datacenter topology, under open-loop Poisson load, through a live
//! atomic-broadcast switch — the ROADMAP's "paper stops at 7 machines,
//! go to thousands" experiment, runnable in CI thanks to the sharded
//! calendar-queue scheduler and the conservative parallel engine
//! (`dpu_sim::par`).
//!
//! Asserts the uniform total order (and the other three atomic broadcast
//! properties of §5.1) on *every* stack across the mid-load switch.
//!
//! Under `--release` (the CI configuration) this runs the full 1024
//! stacks on a worker pool sized to the machine; debug builds run a
//! 256-stack single-worker variant of the same scenario so plain
//! `cargo test` stays fast. The worker count never changes the computed
//! run (`crates/sim/tests/par_equiv.rs` property-tests that); it only
//! changes the wall clock. A 4096-stack variant is `#[ignore]`d for the
//! dedicated CI step (`cargo test --release -- --ignored`).

use dpu::repl::builder::{
    drive_poisson, group_sim, request_change, specs, GroupStackOpts, SwitchLayer,
};
use dpu::sim::{NetConfig, SimConfig};
use dpu_core::abcast_check::AbcastChecker;
use dpu_core::probe::Probe;
use dpu_core::time::{Dur, Time};
use dpu_core::{ServiceId, StackId};

/// Worker pool for the release soaks: up to 4, bounded by the machine
/// (a single-core host runs the identical schedule on one thread).
fn workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from).min(4)
}

fn live_switch_soak(n: u32, rate: f64, workers: usize) {
    // 16 racks (n/16 nodes each) on a 10 Gb/s fabric, joined by a
    // switched-LAN backbone — whose 60 µs latency is also the parallel
    // engine's lookahead window.
    let mut cfg =
        SimConfig::clustered(n, 20_241_024, n / 16, NetConfig::datacenter(), NetConfig::lan());
    cfg.trace = false; // probe records carry the assertions; traces would be GBs
                       // Modern cores, not the paper's Pentium III: with the default
                       // calibration the sequencer's 1024-way fan-out would cost ~82 ms of
                       // modeled CPU per broadcast and saturate at ~12 msg/s.
    cfg.cpu = dpu::sim::CpuConfig::fast();
    cfg.workers = workers;
    // The sequencer's n-way fan-out costs single-digit milliseconds of
    // modeled CPU per broadcast; rp2p's default 20 ms retransmit
    // timeout sits on that queueing delay and would self-amplify into a
    // retransmit storm. 100 ms is the 1024-stack setting; the backlog
    // grows with the fan-out, so it scales with n (and the post-load
    // drain below scales with it).
    let scale = u64::from((n / 1024).max(1));
    let rp2p = dpu_core::ModuleSpec::with_params(
        "rp2p",
        &dpu::net::rp2p::Rp2pConfig {
            retransmit: Dur::millis(100 * scale),
            lower: dpu::net::UDP_SVC.to_string(),
            max_retransmits: 0,
        },
    );
    let opts = GroupStackOpts {
        abcast: specs::seq(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(0),
        with_gm: false,
        extra_defaults: vec![(dpu::net::RP2P_SVC.to_string(), rp2p)],
    };
    let (mut sim, h) = group_sim(cfg, &opts);

    // Start-up, then open-loop Poisson load across all stacks.
    sim.run_until(Time::ZERO + Dur::millis(200));
    let load_end = Time::ZERO + Dur::millis(1500);
    drive_poisson(&mut sim, &h, rate, load_end);
    // Live switch in the middle of the load: sequencer incarnation 0 →
    // incarnation 1, requested by a non-sequencer stack.
    sim.schedule(Time::ZERO + Dur::millis(800), {
        let h = h.clone();
        move |sim| request_change(sim, StackId(7), &h, &specs::seq(1))
    });
    sim.run_until(load_end + Dur::secs(3 * scale));

    // Collect probe records and check the four §5.1 properties —
    // uniform total order on every one of the n stacks included.
    let probe = h.probe.expect("probe installed");
    let mut checker = AbcastChecker::new(sim.stack_ids());
    for id in sim.stack_ids() {
        let (sent, delivered) = sim.with_stack(id, |s| {
            s.with_module::<Probe, _>(probe, |p| (p.sent().to_vec(), p.delivered().to_vec()))
                .expect("probe present")
        });
        for (msg, t) in sent {
            checker.record_broadcast(msg, id, t);
        }
        for rec in delivered {
            checker.record_delivery(rec.msg, id, rec.delivered_at);
        }
    }
    checker.assert_ok();

    let sent = checker.broadcast_count();
    assert!(sent > 100, "Poisson load too thin: {sent} broadcasts");
    for id in sim.stack_ids() {
        assert_eq!(checker.delivery_count(id), sent, "stack {id} missed deliveries");
    }

    // The switch actually happened everywhere: the bound abcast module
    // is the new incarnation on every stack.
    let abcast_svc = ServiceId::new("abcast");
    for id in sim.stack_ids() {
        let bound = sim.stack(id).bound(&abcast_svc).expect("abcast bound");
        assert_eq!(sim.stack(id).module_kind(bound), Some("abcast.seq"), "{id}");
        assert_ne!(bound, h.abcast, "{id} still runs the pre-switch module");
    }

    // Workload counters made it into the unified report.
    let report = sim.report();
    assert_eq!(report.stats.workloads.len(), 1);
    assert_eq!(report.stats.workloads[0].injected, sent as u64);
    println!("{report}");
}

#[test]
fn thousand_stack_live_switch_under_poisson_load() {
    if cfg!(debug_assertions) {
        live_switch_soak(256, 80.0, 1);
    } else {
        live_switch_soak(1024, 100.0, workers());
    }
}

/// The 4096-stack variant: the parallel engine exercised at 4× the
/// usual scale. Its value is correctness under a real worker pool —
/// this scenario's sequencer cluster bounds the speedup at ~2× (see
/// `BENCH_par.json`) — and at minutes of CPU it only runs in the
/// dedicated CI step (`--release -- --ignored`).
#[test]
#[ignore = "release-mode CI soak: run with --release -- --ignored"]
fn four_thousand_stack_live_switch_under_poisson_load() {
    live_switch_soak(4096, 100.0, workers());
}
