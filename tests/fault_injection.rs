//! Fault-injection integration tests: the replacement algorithm must
//! preserve the atomic broadcast properties under message loss,
//! duplication, crashes and partitions — the asynchronous-system
//! conditions the paper's proofs (§5.2.2) assume.

use dpu::repl::builder::{
    check_run, drive_load, group_sim, request_change, send_probe, specs, GroupStackOpts,
    SwitchLayer,
};
use dpu::sim::SimConfig;
use dpu_core::time::{Dur, Time};
use dpu_core::StackId;

fn opts() -> GroupStackOpts {
    GroupStackOpts {
        abcast: specs::ct(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(16),
        with_gm: false,
        extra_defaults: Vec::new(),
    }
}

#[test]
fn switch_survives_heavy_message_loss() {
    let mut cfg = SimConfig::lan(3, 5);
    cfg.net.loss = 0.20;
    let (mut sim, h) = group_sim(cfg, &opts());
    sim.run_until(Time::ZERO + Dur::millis(500));
    let until = sim.now() + Dur::secs(3);
    drive_load(&mut sim, &h, 30.0, until);
    let h2 = h.clone();
    sim.schedule_in(Dur::millis(1500), move |sim| {
        request_change(sim, StackId(0), &h2, &specs::ct(1));
    });
    sim.run_until(until + Dur::secs(25));
    let report = check_run(&mut sim, &h);
    report.assert_ok();
    let sent = report.checker.broadcast_count();
    assert!(sent > 50);
    for id in sim.stack_ids() {
        assert_eq!(report.checker.delivery_count(id), sent, "stack {id}");
    }
    assert!(sim.stats().packets_dropped() > 0, "loss model must have fired");
}

#[test]
fn switch_survives_duplicated_packets() {
    let mut cfg = SimConfig::lan(3, 9);
    cfg.net.duplicate = 0.3;
    let (mut sim, h) = group_sim(cfg, &opts());
    sim.run_until(Time::ZERO + Dur::millis(300));
    let until = sim.now() + Dur::secs(2);
    drive_load(&mut sim, &h, 40.0, until);
    let h2 = h.clone();
    sim.schedule_in(Dur::secs(1), move |sim| {
        request_change(sim, StackId(2), &h2, &specs::ct(1));
    });
    sim.run_until(until + Dur::secs(10));
    check_run(&mut sim, &h).assert_ok();
}

#[test]
fn crash_during_switch_preserves_properties_for_survivors() {
    // Crash a non-initiator right around the switch point; the CT-based
    // protocols tolerate one crash out of five (majority = 3).
    let (mut sim, h) = group_sim(SimConfig::lan(5, 21), &opts());
    sim.run_until(Time::ZERO + Dur::millis(500));
    let until = sim.now() + Dur::secs(3);
    drive_load(&mut sim, &h, 40.0, until);
    let h2 = h.clone();
    sim.schedule_in(Dur::millis(1400), move |sim| {
        request_change(sim, StackId(0), &h2, &specs::ct(1));
    });
    sim.schedule_in(Dur::millis(1450), |sim| {
        sim.crash_at(sim.now(), StackId(4));
    });
    sim.run_until(until + Dur::secs(20));
    // The checker exempts the crashed stack from liveness obligations
    // but still checks uniform properties on what it delivered.
    let report = check_run(&mut sim, &h);
    report.assert_ok();
    for id in [0u32, 1, 2, 3].map(StackId) {
        assert_eq!(
            report.checker.delivery_count(id),
            report.checker.broadcast_count(),
            "survivor {id}"
        );
    }
}

#[test]
fn crash_of_the_initiator_right_after_requesting_a_switch() {
    // The switch request is atomically broadcast, so either it is
    // ordered (everyone switches) or it is not (nobody does) — even if
    // the initiator dies immediately after calling changeABcast.
    let (mut sim, h) = group_sim(SimConfig::lan(5, 33), &opts());
    sim.run_until(Time::ZERO + Dur::millis(500));
    for i in 0..5 {
        send_probe(&mut sim, StackId(i), &h);
    }
    sim.run_until(Time::ZERO + Dur::secs(2));
    request_change(&mut sim, StackId(4), &h, &specs::ct(1));
    sim.crash_at(sim.now() + Dur::micros(200), StackId(4));
    sim.run_until(Time::ZERO + Dur::secs(8));
    for i in 0..4 {
        send_probe(&mut sim, StackId(i), &h);
    }
    sim.run_until(Time::ZERO + Dur::secs(20));
    let report = check_run(&mut sim, &h);
    report.assert_ok();
    // Survivors agree on whether the switch happened.
    let layer = h.layer.unwrap();
    let sns: Vec<u64> = [0u32, 1, 2, 3]
        .iter()
        .map(|&i| {
            sim.with_stack(StackId(i), |s| {
                s.with_module::<dpu_repl::abcast_repl::ReplAbcastModule, _>(layer, |m| {
                    m.seq_number()
                })
                .unwrap()
            })
        })
        .collect();
    assert!(sns.iter().all(|&s| s == sns[0]), "survivors disagree on the switch: {sns:?}");
}

#[test]
fn partition_delays_but_does_not_break_the_switch() {
    let (mut sim, h) = group_sim(SimConfig::lan(3, 27), &opts());
    sim.run_until(Time::ZERO + Dur::millis(500));
    for i in 0..3 {
        send_probe(&mut sim, StackId(i), &h);
    }
    // Cut stack 2 off, request the switch in the majority partition.
    sim.partition(&[StackId(0), StackId(1)], &[StackId(2)]);
    sim.run_until(sim.now() + Dur::millis(200));
    request_change(&mut sim, StackId(0), &h, &specs::ct(1));
    sim.run_until(sim.now() + Dur::secs(3));
    // The majority switches; stack 2 cannot yet.
    let layer = h.layer.unwrap();
    let sn2 = sim.with_stack(StackId(2), |s| {
        s.with_module::<dpu_repl::abcast_repl::ReplAbcastModule, _>(layer, |m| m.seq_number())
            .unwrap()
    });
    assert_eq!(sn2, 0, "partitioned stack cannot have switched yet");
    // Heal: stack 2 catches up (weak protocol-operationability).
    sim.heal_partitions();
    sim.run_until(sim.now() + Dur::secs(25));
    for i in 0..3 {
        let sn = sim.with_stack(StackId(i), |s| {
            s.with_module::<dpu_repl::abcast_repl::ReplAbcastModule, _>(layer, |m| m.seq_number())
                .unwrap()
        });
        assert_eq!(sn, 1, "stack {i} must catch up after heal");
    }
    check_run(&mut sim, &h).assert_ok();
}

/// Hierarchical abcast with a fast failover timeout, so the rotation
/// machinery acts within the test horizon.
fn hier_spec(ns: u64) -> dpu_core::ModuleSpec {
    use dpu::protocols::abcast::hier::{HierAbcastParams, KIND};
    dpu_core::ModuleSpec::with_params(
        KIND,
        &HierAbcastParams {
            namespace: ns,
            resend: Dur::millis(300),
            ..HierAbcastParams::default()
        },
    )
}

fn clustered_cfg(n: u32, seed: u64, sz: u32) -> SimConfig {
    use dpu::sim::NetConfig;
    SimConfig::clustered(n, seed, sz, NetConfig::datacenter(), NetConfig::lan())
}

#[test]
fn hier_local_sequencer_crash_mid_stream_recovers_one_total_order() {
    // Unlike the flat sequencer (negative control below), the
    // hierarchical variant survives a *local* sequencer crash: cluster
    // 1's members rotate to the next candidate, which claims the relay
    // role and receives the leader's log replay — the survivors
    // converge on a single gap-free total order.
    let o = GroupStackOpts { abcast: hier_spec(0), ..opts() };
    let (mut sim, h) = group_sim(clustered_cfg(9, 41, 3), &o);
    sim.run_until(Time::ZERO + Dur::millis(500));
    let until = sim.now() + Dur::secs(4);
    drive_load(&mut sim, &h, 40.0, until);
    // Crash cluster 1's primary sequencer (node 3) mid-stream.
    sim.schedule_in(Dur::millis(1500), |sim| {
        sim.crash_at(sim.now(), StackId(3));
    });
    sim.run_until(until + Dur::secs(25));
    let report = check_run(&mut sim, &h);
    report.assert_ok();
    let survivors = [0u32, 1, 2, 4, 5, 6, 7, 8].map(StackId);
    let counts: Vec<usize> =
        survivors.iter().map(|&id| report.checker.delivery_count(id)).collect();
    assert!(counts[0] > 0, "survivors must keep delivering after the crash");
    assert!(
        counts.iter().all(|&c| c == counts[0]),
        "survivors disagree on the delivered set: {counts:?}"
    );
}

#[test]
fn hier_intercluster_partition_heals_into_one_total_order() {
    // Partition the two clusters: cluster 1's forwards, claims and the
    // leader's commits sit in RP2P retransmit queues until the heal,
    // after which both sides converge on one complete total order.
    let o = GroupStackOpts { abcast: hier_spec(0), ..opts() };
    let (mut sim, h) = group_sim(clustered_cfg(6, 43, 3), &o);
    sim.run_until(Time::ZERO + Dur::millis(500));
    for i in 0..6 {
        send_probe(&mut sim, StackId(i), &h);
    }
    sim.run_until(sim.now() + Dur::secs(2));
    sim.partition(&[StackId(0), StackId(1), StackId(2)], &[StackId(3), StackId(4), StackId(5)]);
    // Traffic on both sides of the cut.
    for i in 0..6 {
        send_probe(&mut sim, StackId(i), &h);
    }
    sim.run_until(sim.now() + Dur::secs(3));
    sim.heal_partitions();
    sim.run_until(sim.now() + Dur::secs(30));
    let report = check_run(&mut sim, &h);
    report.assert_ok();
    let sent = report.checker.broadcast_count();
    assert_eq!(sent, 12);
    for id in sim.stack_ids() {
        assert_eq!(report.checker.delivery_count(id), sent, "stack {id} has a gap");
    }
}

#[test]
fn non_fault_tolerant_protocol_stalls_on_crash_and_checker_sees_it() {
    // Negative control: the sequencer protocol is *not* crash-tolerant.
    // Crash the sequencer and verify messages stop being delivered —
    // i.e. our checker and harness can actually detect broken runs.
    let o = GroupStackOpts { abcast: specs::seq(0), ..opts() };
    let (mut sim, h) = group_sim(SimConfig::lan(3, 3), &o);
    sim.run_until(Time::ZERO + Dur::millis(300));
    sim.crash_at(sim.now(), StackId(0)); // stack 0 is the sequencer
    sim.run_until(sim.now() + Dur::millis(500));
    send_probe(&mut sim, StackId(1), &h);
    sim.run_until(sim.now() + Dur::secs(5));
    let probe = h.probe.unwrap();
    let delivered = sim.with_stack(StackId(1), |s| {
        s.with_module::<dpu_core::probe::Probe, _>(probe, |p| p.delivered().len()).unwrap()
    });
    assert_eq!(delivered, 0, "sequencer down ⇒ nothing can be ordered");
    // Validity is indeed violated for the correct sender:
    let report = check_run(&mut sim, &h);
    let violations = report.checker.check();
    assert!(!violations.is_empty(), "checker must flag the stalled run");
}
