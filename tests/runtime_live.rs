//! Live-runtime integration tests: the same stacks the simulator proves
//! correct run on OS threads with the wall clock, and the dynamic
//! protocol update works there too (the paper's cluster experiment in
//! miniature). Wall-clock tests are kept short and generous with
//! deadlines to stay robust on loaded CI machines.

use dpu::repl::builder::{
    group_runtime, request_change_live, send_probe_live, specs, GroupStackOpts, SwitchLayer,
};
use dpu::runtime::{Runtime, RuntimeConfig};
use dpu_core::abcast_check::AbcastChecker;
use dpu_core::probe::Probe;
use dpu_core::{ModuleId, StackId};
use dpu_repl::abcast_repl::ReplAbcastModule;
use std::time::{Duration, Instant};

fn opts() -> GroupStackOpts {
    GroupStackOpts {
        abcast: specs::ct(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(8),
        with_gm: false,
        extra_defaults: Vec::new(),
    }
}

fn wait_for_deliveries(rt: &Runtime, probe: ModuleId, n: u32, count: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let done = (0..n).all(|node| {
            rt.with_stack(StackId(node), move |s| {
                s.with_module::<Probe, _>(probe, |p| p.delivered().len()).expect("probe")
            }) >= count
        });
        if done {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {count} deliveries");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn live_switch_preserves_total_order_across_shards() {
    // 3 full Figure-4 stacks multiplexed on 2 shard threads.
    let (rt, h) = group_runtime(RuntimeConfig::new(3).with_shards(2), &opts());
    let probe = h.probe.unwrap();
    let layer = h.layer.unwrap();

    std::thread::sleep(Duration::from_millis(200));
    for node in 0..3 {
        send_probe_live(&rt, StackId(node), &h);
    }
    wait_for_deliveries(&rt, probe, 3, 3);

    // Live switch, with messages racing it.
    request_change_live(&rt, StackId(1), &h, &specs::seq(1));
    for node in 0..3 {
        send_probe_live(&rt, StackId(node), &h);
    }
    wait_for_deliveries(&rt, probe, 3, 6);

    // Every stack switched exactly once and the four ABcast properties
    // hold on the recorded probe logs.
    let mut checker = AbcastChecker::new((0..3).map(StackId));
    for node in 0..3 {
        let sn = rt.with_stack(StackId(node), move |s| {
            s.with_module::<ReplAbcastModule, _>(layer, |m| m.seq_number()).expect("repl")
        });
        assert_eq!(sn, 1, "stack {node}");
        let (sent, delivered) = rt.with_stack(StackId(node), move |s| {
            s.with_module::<Probe, _>(probe, |p| (p.sent().to_vec(), p.delivered().to_vec()))
                .expect("probe")
        });
        for (msg, t) in sent {
            checker.record_broadcast(msg, StackId(node), t);
        }
        for rec in delivered {
            checker.record_delivery(rec.msg, StackId(node), rec.delivered_at);
        }
    }
    checker.assert_ok();
    rt.shutdown();
}

#[test]
fn live_stack_survives_lossy_network() {
    let mut cfg = RuntimeConfig::new(3);
    cfg.loss = 0.10;
    let (rt, h) = group_runtime(cfg, &opts());
    let probe = h.probe.unwrap();

    std::thread::sleep(Duration::from_millis(200));
    for round in 0..4 {
        for node in 0..3 {
            send_probe_live(&rt, StackId(node), &h);
        }
        wait_for_deliveries(&rt, probe, 3, (round + 1) * 3);
    }
    let stats = rt.stats();
    assert!(stats.packets_dropped > 0, "loss model must have fired");
    rt.shutdown();
}
