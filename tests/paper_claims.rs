//! Integration tests for the paper's headline claims, end-to-end across
//! the whole workspace:
//!
//! * §6.2 — replacing CT-ABcast by itself at n = 7 under constant load is
//!   transparent: every atomic broadcast property holds across the
//!   switch, nothing is lost, the application is never blocked;
//! * §3   — the generic DPU properties (stack-well-formedness,
//!   protocol-operationability) hold on the recorded traces;
//! * §6.2 — the replacement layer's steady-state overhead is small;
//! * §5.3 — Algorithm 1 needs no dedicated coordination messages while
//!   the baselines do.

use dpu::repl::builder::{
    check_run, drive_load, group_sim, request_change, specs, GroupStackOpts, SwitchLayer,
};
use dpu::sim::SimConfig;
use dpu_core::props;
use dpu_core::time::{Dur, Time};
use dpu_core::trace::TraceEvent;
use dpu_core::StackId;
use dpu_repl::abcast_repl::ReplAbcastModule;

fn opts(layer: SwitchLayer) -> GroupStackOpts {
    GroupStackOpts {
        abcast: specs::ct(0),
        layer,
        probe_pad: Some(32),
        with_gm: false,
        extra_defaults: Vec::new(),
    }
}

#[test]
fn the_paper_experiment_n7_ct_to_ct_under_constant_load() {
    // The exact §6.2 setup: seven stacks, constant load, replace the
    // Chandra-Toueg ABcast by the same protocol mid-run.
    let (mut sim, h) = group_sim(SimConfig::lan(7, 42), &opts(SwitchLayer::Repl));
    sim.run_until(Time::ZERO + Dur::millis(500));
    let until = sim.now() + Dur::secs(4);
    drive_load(&mut sim, &h, 70.0, until);
    let h2 = h.clone();
    sim.schedule_in(Dur::secs(2), move |sim| {
        request_change(sim, StackId(3), &h2, &specs::ct(1));
    });
    sim.run_until(until + Dur::secs(10));

    // All four atomic broadcast properties + weak well-formedness.
    let report = check_run(&mut sim, &h);
    report.assert_ok();

    // Complete delivery: every sent message reached every stack.
    let sent = report.checker.broadcast_count();
    assert!(sent > 200, "load generator too slow: {sent}");
    for id in sim.stack_ids() {
        assert_eq!(report.checker.delivery_count(id), sent, "stack {id}");
    }

    // Every stack applied exactly one switch and drained its undelivered
    // set (lines 15-16 of Algorithm 1 re-issued anything in flight).
    let layer = h.layer.unwrap();
    for id in sim.stack_ids() {
        let (sn, undelivered) = sim.with_stack(id, |s| {
            s.with_module::<ReplAbcastModule, _>(layer, |m| (m.seq_number(), m.undelivered_len()))
                .unwrap()
        });
        assert_eq!(sn, 1, "stack {id}");
        assert_eq!(undelivered, 0, "stack {id}");
    }
}

#[test]
fn application_is_never_blocked_by_algorithm_1() {
    // §5.3: "the application on top of the stack is never blocked". In
    // trace terms: no call on the application-facing service is ever
    // queued on an unbound binding.
    let (mut sim, h) = group_sim(SimConfig::lan(3, 7), &opts(SwitchLayer::Repl));
    sim.run_until(Time::ZERO + Dur::millis(300));
    let until = sim.now() + Dur::secs(3);
    drive_load(&mut sim, &h, 60.0, until);
    let h2 = h.clone();
    sim.schedule_in(Dur::secs(1), move |sim| {
        request_change(sim, StackId(0), &h2, &specs::seq(1));
    });
    sim.run_until(until + Dur::secs(5));
    let trace = sim.merged_trace();
    let blocked_app_calls = trace
        .events()
        .iter()
        .filter(|(_, e)| {
            matches!(e, TraceEvent::BlockedCall { service, .. } if *service == h.top_service)
        })
        .count();
    assert_eq!(blocked_app_calls, 0, "application calls must never block");
}

#[test]
fn generic_dpu_properties_hold_on_traces() {
    let (mut sim, h) = group_sim(SimConfig::lan(3, 11), &opts(SwitchLayer::Repl));
    sim.run_until(Time::ZERO + Dur::millis(300));
    let until = sim.now() + Dur::secs(2);
    drive_load(&mut sim, &h, 40.0, until);
    let h2 = h.clone();
    sim.schedule_in(Dur::secs(1), move |sim| {
        request_change(sim, StackId(1), &h2, &specs::ct(1));
    });
    sim.run_until(until + Dur::secs(6));
    let trace = sim.merged_trace();

    let wf = props::check_stack_well_formedness(&trace);
    assert!(wf.weak, "weak stack-well-formedness: {:?}", wf.violations);

    // Protocol-operationability for the replaced protocol's modules: the
    // new incarnation (kind abcast.ct) appears on every stack.
    let stacks = sim.stack_ids();
    let op = props::check_protocol_operationability(&trace, "abcast.ct", &stacks);
    assert!(op.weak, "weak protocol-operationability: {:?}", op.violations);
    // And for the replacement module itself.
    let op = props::check_protocol_operationability(&trace, "repl.abcast", &stacks);
    assert!(op.weak, "repl layer operationability: {:?}", op.violations);
}

#[test]
fn replacement_layer_overhead_is_modest() {
    // §6.2 reports ≈5% for the Java implementation; we assert the same
    // order of magnitude: nonzero but well under 25% at moderate load.
    let run = |layer| {
        let (mut sim, h) = group_sim(SimConfig::lan(3, 13), &opts(layer));
        sim.run_until(Time::ZERO + Dur::millis(300));
        let until = sim.now() + Dur::secs(3);
        drive_load(&mut sim, &h, 60.0, until);
        sim.run_until(until + Dur::secs(5));
        let report = check_run(&mut sim, &h);
        report.assert_ok();
        // Mean latency over all fully delivered messages.
        let mut sum = 0.0;
        let mut count = 0usize;
        for id in sim.stack_ids() {
            let probe = h.probe.unwrap();
            let recs = sim.with_stack(id, |s| {
                s.with_module::<dpu_core::probe::Probe, _>(probe, |p| p.delivered().to_vec())
                    .unwrap()
            });
            for r in recs {
                sum += r.latency().as_millis_f64();
                count += 1;
            }
        }
        sum / count as f64
    };
    let without = run(SwitchLayer::None);
    let with = run(SwitchLayer::Repl);
    let overhead = with / without - 1.0;
    assert!(overhead > 0.0, "indirection cannot be free");
    assert!(overhead < 0.25, "overhead {:.1}% too large", overhead * 100.0);
}

#[test]
fn double_indirection_also_works() {
    // Nothing in the model limits the indirection depth: wrap r-abcast
    // itself. (A structural sanity check of the composition model.)
    use dpu_core::{ModuleSpec, ServiceId};
    use dpu_repl::abcast_repl::ReplParams;
    let base = opts(SwitchLayer::Repl);
    let mut handles = None;
    let mut sim = dpu::sim::Sim::new(SimConfig::lan(3, 17), |sc| {
        let mut built = dpu::repl::builder::build(sc, &base);
        // Second replacement layer on top of the first.
        let params = ReplParams { service: "r-abcast".into() };
        let spec = ModuleSpec::with_params(dpu_repl::abcast_repl::KIND, &params);
        let outer = built.stack.install(&spec).expect("outer repl layer installs");
        built.stack.bind(&ServiceId::new("r-r-abcast"), outer);
        // Move the probe to the outer service.
        let probe = built.stack.add_module(Box::new(dpu_core::probe::Probe::new(
            ServiceId::new("r-r-abcast"),
            dpu_protocols::abcast::ops::ABCAST,
            dpu_protocols::abcast::ops::ADELIVER,
            0,
        )));
        handles.get_or_insert((probe, built.handles.clone()));
        built.stack
    });
    let (probe, h) = handles.unwrap();
    sim.run_until(Time::ZERO + Dur::millis(300));
    let top = ServiceId::new("r-r-abcast");
    for node in 0..3u32 {
        let now = sim.now();
        sim.with_stack(StackId(node), |s| {
            let payload = s
                .with_module::<dpu_core::probe::Probe, _>(probe, |p| {
                    p.next_payload(StackId(node), now)
                })
                .unwrap();
            s.call_as(probe, &top, dpu_protocols::abcast::ops::ABCAST, payload);
        });
    }
    sim.run_until(Time::ZERO + Dur::secs(4));
    for node in 0..3u32 {
        let n = sim.with_stack(StackId(node), |s| {
            s.with_module::<dpu_core::probe::Probe, _>(probe, |p| p.delivered().len()).unwrap()
        });
        assert_eq!(n, 3, "stack {node} through double indirection");
    }
    let _ = h;
}
