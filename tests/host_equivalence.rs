//! Host-equivalence tests: the `StackDriver` refactor must not change
//! what the deterministic simulator computes, and the sharded runtime
//! must stay shutdown-safe under load.
//!
//! The golden fingerprint below was recorded from the pre-`StackDriver`
//! simulator (thread-per-stack era) for the exact `(config, seed)` used
//! here. `Sim` now drives every stack through `dpu_core::host::StackDriver`;
//! producing the same fingerprint means the canonical drive loop is
//! byte-for-byte equivalent to the hand-rolled one it replaced.

use dpu::repl::builder::{
    group_runtime, group_sim, request_change, send_probe, send_probe_live, specs, GroupStackOpts,
    SwitchLayer,
};
use dpu::runtime::RuntimeConfig;
use dpu::sim::SimConfig;
use dpu_core::time::{Dur, Time};
use dpu_core::StackId;

/// The shared equivalence-suite fingerprint (see
/// `dpu_core::TraceLog::fingerprint`).
fn trace_fingerprint(trace: &dpu_core::TraceLog) -> u64 {
    trace.fingerprint()
}

/// One fixed, fully deterministic scenario: 3 Figure-4 stacks under the
/// Repl layer, traffic before/during/after a live ct -> seq switch.
fn golden_run() -> (dpu::sim::SimStats, u64) {
    let opts = GroupStackOpts {
        abcast: specs::ct(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(8),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    let (mut sim, h) = group_sim(SimConfig::lan(3, 20_060_425), &opts);
    sim.run_until(Time::ZERO + Dur::millis(200));
    for i in 0..3 {
        send_probe(&mut sim, StackId(i), &h);
    }
    sim.run_until(Time::ZERO + Dur::secs(2));
    request_change(&mut sim, StackId(1), &h, &specs::seq(1));
    for i in 0..3 {
        send_probe(&mut sim, StackId(i), &h);
    }
    sim.run_until(Time::ZERO + Dur::secs(8));
    let stats = sim.stats().clone();
    let fp = trace_fingerprint(&sim.merged_trace());
    (stats, fp)
}

#[test]
fn sim_through_stack_driver_matches_pre_refactor_recording() {
    let (stats, fp) = golden_run();
    // Values recorded from the pre-refactor simulator; see module docs.
    println!("stats: {stats:?}");
    println!("fingerprint: {fp:#x}");
    assert_eq!(fp, GOLDEN_FP, "merged trace diverged from the pre-refactor recording");
    assert_eq!(stats.packets_sent, GOLDEN_SENT);
    assert_eq!(stats.packets_delivered, GOLDEN_DELIVERED);
}

/// Recorded 2026-07-29 from commit 181cd88 (hand-rolled drive loops in
/// both hosts), scenario and seed as in [`golden_run`].
const GOLDEN_FP: u64 = 0x4026a4be2f99a940;
const GOLDEN_SENT: u64 = 2620;
const GOLDEN_DELIVERED: u64 = 2620;

#[test]
fn shutdown_under_in_flight_load_returns_all_stacks() {
    // Fire broadcasts into every stack and shut down immediately, while
    // packets, retransmit timers and the sequencer's ordering traffic
    // are all still in flight. Every shard must stop cleanly and hand
    // back every stack — no deadlock, no lost stack.
    let opts = GroupStackOpts {
        abcast: specs::seq(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(0),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    let n = 24u32;
    let (rt, h) = group_runtime(RuntimeConfig::new(n).with_shards(3), &opts);
    for i in 0..n {
        send_probe_live(&rt, StackId(i), &h);
    }
    // No quiescing: shut down with everything in flight.
    let stacks = rt.shutdown();
    assert_eq!(stacks.len(), n as usize);
    for (i, s) in stacks.iter().enumerate() {
        assert_eq!(s.id(), StackId(i as u32));
    }
}
