//! Steady-state allocation test for the zero-copy message path.
//!
//! Every message a stack emits goes through its `WireScratch` pool
//! (`ModuleCtx::encode` / `Stack::packet_in`). The pool counts every
//! backing-buffer allocation; once traffic reaches a steady state, each
//! new message must reclaim the buffer of an earlier one whose consumers
//! have dropped it — so the `allocations` counter plateaus (up to rare
//! never-seen-before burst depths) while `emitted` keeps climbing. The
//! simulator is deterministic, so the bound is exact, not statistical.

use dpu::repl::builder::{drive_load, group_sim, specs, GroupStackOpts, SwitchLayer};
use dpu::sim::SimConfig;
use dpu_core::time::{Dur, Time};

#[test]
fn abcast_load_reaches_zero_allocation_steady_state() {
    let mut cfg = SimConfig::lan(3, 7);
    cfg.trace = false;
    let opts = GroupStackOpts {
        abcast: specs::seq(0),
        layer: SwitchLayer::None,
        probe_pad: Some(32),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    let (mut sim, h) = group_sim(cfg, &opts);
    sim.run_until(Time::ZERO + Dur::millis(300));

    // Warm-up: first messages populate every stack's scratch pool.
    let warm_until = sim.now() + Dur::secs(2);
    drive_load(&mut sim, &h, 50.0, warm_until);
    sim.run_until(warm_until + Dur::millis(500));
    let warm = sim.wire_stats();
    assert!(warm.emitted > 0, "load must flow through the scratch pools");

    // Steady state: the same traffic pattern again must not allocate.
    let steady_until = sim.now() + Dur::secs(2);
    drive_load(&mut sim, &h, 50.0, steady_until);
    sim.run_until(steady_until + Dur::millis(500));
    let steady = sim.wire_stats();

    assert!(
        steady.emitted > warm.emitted + 100,
        "second phase must emit real traffic (emitted {} -> {})",
        warm.emitted,
        steady.emitted,
    );
    // Steady state means allocation-free per message: the only allowed
    // residue is the occasional burst deeper than anything seen before
    // (pool momentarily empty) — bounded here at 1 per 200 messages,
    // two orders of magnitude under the old one-allocation-per-message
    // path. Any regression of the reclaim machinery trips this at 100%.
    let new_allocs = steady.allocations - warm.allocations;
    let new_msgs = steady.emitted - warm.emitted;
    assert!(
        new_allocs <= new_msgs / 200,
        "steady-state traffic allocated {new_allocs} new encode buffers over {new_msgs} \
         messages (reclaimed {} -> {})",
        warm.reclaimed,
        steady.reclaimed,
    );
}
