//! Live protocol switch across *two reactors* — the in-process version
//! of the two-OS-process demo (`cross_switch_net`). Eight full
//! group-communication stacks are split 4/4 between two epoll-backed
//! reactors; every inter-stack message crosses a real loopback UDP
//! socket (even stack-to-stack traffic inside one reactor is sent
//! through its socket). Mid-traffic, a non-sequencer stack requests
//! `changeABcast(seq(1))`; afterwards every stack must have switched
//! exactly once, drained, and delivered the same messages in the same
//! order — the paper's Figure-4 scenario over a real transport.

use dpu::reactor::ReactorConfig;
use dpu::repl::builder::{
    group_reactor, request_change_reactor, send_probe_reactor, specs, GroupStackOpts, Handles,
    SwitchLayer,
};
use dpu_core::probe::Probe;
use dpu_core::StackId;
use dpu_repl::abcast_repl::ReplAbcastModule;
use std::time::{Duration, Instant};

const N: u32 = 8;

fn wait_until(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let limit = Instant::now() + deadline;
    loop {
        if done() {
            return;
        }
        assert!(Instant::now() < limit, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn live_switch_across_two_reactors_over_loopback_udp() {
    let opts = GroupStackOpts {
        abcast: specs::seq(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(0),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    // Reactor A hosts stacks 0..4, reactor B hosts 4..8. A injects 2%
    // send-side loss so the switch also rides rp2p recovery.
    let mut cfg_a = ReactorConfig::new(N, (0..N / 2).map(StackId).collect());
    cfg_a.loss = 0.02;
    cfg_a.seed = 11;
    let (ra, h) = group_reactor(cfg_a, &opts).expect("spawn reactor a");
    let cfg_b = ReactorConfig::new(N, (N / 2..N).map(StackId).collect());
    let (rb, hb) = group_reactor(cfg_b, &opts).expect("spawn reactor b");
    // Construction is deterministic: both halves get identical handles.
    assert_eq!(h.probe, hb.probe);
    assert_eq!(h.layer, hb.layer);

    // The rendezvous two OS processes would do over a file: exchange
    // bound addresses and install them in each other's peer tables.
    for &na in ra.local_addrs() {
        rb.set_peer(na);
    }
    for &na in rb.local_addrs() {
        ra.set_peer(na);
    }

    let probe = h.probe.expect("probe");
    let layer = h.layer.expect("repl layer");
    let host = |node: u32| if node < N / 2 { &ra } else { &rb };
    let delivered = |node: u32| {
        host(node).with_stack(StackId(node), move |s| {
            s.with_module::<Probe, _>(probe, |p| p.delivered().len()).expect("probe")
        })
    };
    let all_delivered = |count: usize| (0..N).all(|node| delivered(node) >= count);

    // Phase 1: probes from both reactors, totally ordered everywhere.
    for node in [1, 6] {
        send_probe_reactor(host(node), StackId(node), &h);
    }
    wait_until("phase-1 deliveries on all 8 stacks", Duration::from_secs(60), || all_delivered(2));

    // The live switch, requested from a non-sequencer stack on reactor
    // B — the request itself crosses the loopback socket to reach the
    // sequencer on reactor A.
    request_change_reactor(&rb, StackId(5), &h, &specs::seq(1));
    for node in [2, 7] {
        send_probe_reactor(host(node), StackId(node), &h);
    }
    wait_until("post-switch deliveries on all 8 stacks", Duration::from_secs(60), || {
        all_delivered(4)
    });

    // Every stack applied exactly one switch and drained.
    for node in 0..N {
        let (sn, undelivered) = host(node).with_stack(StackId(node), move |s| {
            s.with_module::<ReplAbcastModule, _>(layer, |m| (m.seq_number(), m.undelivered_len()))
                .expect("repl layer")
        });
        let side = if node < N / 2 { "a" } else { "b" };
        assert_eq!(sn, 1, "stack {node} (reactor {side}) must have switched exactly once");
        assert_eq!(undelivered, 0, "stack {node} (reactor {side}) must have no stuck messages");
    }

    // Uniform total order across both reactors.
    let log = |node: u32, h: &Handles| {
        let probe = h.probe.expect("probe");
        host(node).with_stack(StackId(node), move |s| {
            s.with_module::<Probe, _>(probe, |p| {
                p.delivered().iter().map(|r| r.msg).collect::<Vec<dpu_core::abcast_check::MsgId>>()
            })
            .expect("probe")
        })
    };
    let reference = log(0, &h);
    assert_eq!(reference.len(), 4);
    for node in 1..N {
        assert_eq!(log(node, &h), reference, "stack {node} diverged from the total order");
    }

    // The loss model fired and rp2p recovered through the real socket.
    assert!(ra.stats().packets_sent > 0 && rb.stats().packets_sent > 0);
    let a_stacks = ra.shutdown();
    let b_stacks = rb.shutdown();
    assert_eq!(a_stacks.len() + b_stacks.len(), N as usize);
}
