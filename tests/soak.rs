//! The everything-at-once soak: seven stacks running the full Figure-4
//! architecture (probe + group membership with FD-driven auto-exclusion
//! on top of the replacement layer), under load, on a lossy network,
//! through two protocol switches and a crash. Every correctness property
//! the paper states must survive the combination.

use dpu::repl::builder::{
    check_run, drive_load, request_change, specs, GroupStackOpts, SwitchLayer,
};
use dpu::sim::SimConfig;
use dpu_core::time::{Dur, Time};
use dpu_core::StackId;
use dpu_protocols::gm::{GmModule, GmParams, View};
use dpu_repl::abcast_repl::ReplAbcastModule;

#[test]
fn full_architecture_soak() {
    let mut sim_cfg = SimConfig::lan(7, 2006);
    sim_cfg.net.loss = 0.05;
    let opts = GroupStackOpts {
        abcast: specs::ct(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(24),
        with_gm: false, // we attach GM manually to enable auto_exclude
        extra_defaults: Vec::new(),
    };
    // Build stacks with an auto-excluding GM on the indirection service.
    let mut handles = None;
    let mut gm_id = None;
    let mut sim = dpu::sim::Sim::new(sim_cfg, |sc| {
        let mut built = dpu::repl::builder::build(sc, &opts);
        let gm = built.stack.add_module(Box::new(GmModule::new(GmParams {
            service: dpu_protocols::GM_SVC.to_string(),
            abcast: built.handles.top_service.name().to_string(),
            auto_exclude: true,
        })));
        built.stack.bind(&dpu_core::ServiceId::new(dpu_protocols::GM_SVC), gm);
        gm_id.get_or_insert(gm);
        handles.get_or_insert(built.handles.clone());
        built.stack
    });
    let h = handles.unwrap();
    let gm = gm_id.unwrap();

    // Timeline.
    sim.run_until(Time::ZERO + Dur::millis(500));
    let until = sim.now() + Dur::secs(6);
    drive_load(&mut sim, &h, 40.0, until);
    let h2 = h.clone();
    sim.schedule(Time::ZERO + Dur::secs(2), move |sim| {
        request_change(sim, StackId(1), &h2, &specs::seq(1));
    });
    let h3 = h.clone();
    sim.schedule(Time::ZERO + Dur::millis(3500), move |sim| {
        request_change(sim, StackId(4), &h3, &specs::ct(2));
    });
    sim.schedule(Time::ZERO + Dur::secs(5), |sim| {
        sim.crash_at(sim.now(), StackId(6));
    });
    sim.run_until(until + Dur::secs(25));

    // 1. The four atomic broadcast properties + weak well-formedness,
    //    across two switches, loss, and a crash.
    let report = check_run(&mut sim, &h);
    report.assert_ok();
    let sent = report.checker.broadcast_count();
    assert!(sent > 150, "load too low: {sent}");

    // 2. Every survivor applied both switches and drained.
    let layer = h.layer.unwrap();
    for id in (0..6).map(StackId) {
        let (sn, undelivered) = sim.with_stack(id, |s| {
            s.with_module::<ReplAbcastModule, _>(layer, |m| (m.seq_number(), m.undelivered_len()))
                .unwrap()
        });
        assert_eq!(sn, 2, "{id} must have applied both switches");
        assert_eq!(undelivered, 0, "{id} must have no stuck messages");
    }

    // 3. GM auto-excluded the crashed stack, identically everywhere.
    let views: Vec<View> = (0..6)
        .map(|i| {
            sim.with_stack(StackId(i), |s| {
                s.with_module::<GmModule, _>(gm, |m| m.view().clone()).unwrap()
            })
        })
        .collect();
    for (i, v) in views.iter().enumerate() {
        assert_eq!(v, &views[0], "stack {i} view diverged");
    }
    assert!(
        !views[0].members.contains(&StackId(6)),
        "crashed stack must be auto-excluded: {:?}",
        views[0]
    );
    assert_eq!(views[0].members.len(), 6);

    // 4. Network faults actually happened (the run was adversarial).
    assert!(sim.stats().packets_dropped() > 100, "loss model must have fired heavily");

    // 5. The final protocol is the second switch target everywhere.
    for id in (0..6).map(StackId) {
        let bound = sim
            .stack(id)
            .bound(&dpu_core::ServiceId::new(dpu_protocols::ABCAST_SVC))
            .expect("abcast bound");
        assert_eq!(sim.stack(id).module_kind(bound), Some("abcast.ct"), "{id}");
    }
}
