//! Total-order conformance harness: every atomic broadcast variant ×
//! every topology shape × every workload shape, asserted against the
//! §5.1 specification (uniform total order, no loss, no duplication,
//! delivery-prefix agreement).
//!
//! The reusable half — the [`Variant`] enumeration, the standard stack
//! and the log assertions — lives in `dpu_protocols::testing`; this
//! file is only the driving matrix. A fifth abcast variant joins the
//! whole matrix by adding one `Variant` arm and its entry in
//! `ALL_VARIANTS`.
//!
//! Crash-free cells (steady Poisson, bursty IPPP) assert *full*
//! conformance: identical logs everywhere containing exactly the
//! broadcast set. Churn cells assert the *safety* half only — prefix
//! agreement, no duplication, no creation — because the
//! non-fault-tolerant variants may legitimately stall when their
//! sequencer, token holder or merge leader crashes, and a restarted
//! incarnation may deliver nothing or join mid-stream.

use bytes::Bytes;
use dpu_core::time::{Dur, Time};
use dpu_core::StackId;
use dpu_protocols::testing::{self, Variant, ALL_VARIANTS};
use dpu_sim::workload::{install, Generator, InjectFn, StackFactory};
use dpu_sim::{NetConfig, Sim, SimConfig};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

const N: u32 = 6;

/// Topology shapes of the matrix.
#[derive(Clone, Copy, Debug)]
enum Topo {
    /// Flat LAN — the single-cluster degeneration.
    Flat,
    /// Two 3-node clusters on a datacenter fabric over a LAN backbone.
    Clustered,
    /// Two 3-node clusters over a WAN backbone — high inter-cluster
    /// latency stresses the ordering layers' cross-cluster paths.
    Wan,
}

const TOPOS: [Topo; 3] = [Topo::Flat, Topo::Clustered, Topo::Wan];

impl Topo {
    fn config(self, seed: u64) -> SimConfig {
        match self {
            Topo::Flat => SimConfig::lan(N, seed),
            Topo::Clustered => {
                SimConfig::clustered(N, seed, 3, NetConfig::datacenter(), NetConfig::lan())
            }
            Topo::Wan => SimConfig::clustered(N, seed, 3, NetConfig::lan(), NetConfig::wan()),
        }
    }
}

/// The broadcast record shared between the inject closure and the final
/// assertions: payloads are unique (origin id + global counter).
type Sent = Arc<Mutex<BTreeSet<Bytes>>>;

fn injector(sent: Sent) -> InjectFn {
    let mut counter = 0u64;
    Box::new(move |sim: &mut Sim, node: StackId| {
        counter += 1;
        let mut payload = Vec::with_capacity(12);
        payload.extend_from_slice(&node.0.to_be_bytes());
        payload.extend_from_slice(&counter.to_be_bytes());
        let b = Bytes::from(payload);
        sent.lock().unwrap().insert(b.clone());
        sim.with_stack(node, |s| testing::send(s, b));
    })
}

fn mk_sim(variant: Variant, topo: Topo, seed: u64) -> Sim {
    Sim::new(topo.config(seed), move |sc| testing::conformance_stack(sc, variant, 0))
}

fn all_nodes() -> Vec<StackId> {
    (0..N).map(StackId).collect()
}

fn logs_of(sim: &mut Sim, nodes: &[u32]) -> Vec<(String, Vec<Bytes>)> {
    nodes.iter().map(|&i| (format!("node{i}"), sim.with_stack(StackId(i), testing::log))).collect()
}

fn run_crash_free(variant: Variant, topo: Topo, seed: u64, load: impl FnOnce(Sent) -> Generator) {
    let mut sim = mk_sim(variant, topo, seed);
    sim.run_until(Time::ZERO + Dur::millis(200));
    let sent: Sent = Sent::default();
    install(
        &mut sim,
        &format!("{}-{topo:?}", variant.name()),
        all_nodes(),
        Time::ZERO + Dur::secs(3),
        load(Arc::clone(&sent)),
    );
    sim.run_until(Time::ZERO + Dur::secs(20));
    let logs = logs_of(&mut sim, &[0, 1, 2, 3, 4, 5]);
    let sent = sent.lock().unwrap();
    assert!(!sent.is_empty(), "{} {topo:?}: workload injected nothing", variant.name());
    testing::assert_complete(&logs, &sent);
}

#[test]
fn steady_poisson_full_conformance_across_all_variants_and_topologies() {
    for (i, &variant) in ALL_VARIANTS.iter().enumerate() {
        for (j, &topo) in TOPOS.iter().enumerate() {
            run_crash_free(variant, topo, 100 + (i * TOPOS.len() + j) as u64, |sent| {
                Generator::Poisson { rate: 30.0, inject: injector(sent) }
            });
        }
    }
}

#[test]
fn bursty_ippp_full_conformance_across_all_variants_and_topologies() {
    for (i, &variant) in ALL_VARIANTS.iter().enumerate() {
        for (j, &topo) in TOPOS.iter().enumerate() {
            run_crash_free(variant, topo, 200 + (i * TOPOS.len() + j) as u64, |sent| {
                Generator::Bursty {
                    base: 8.0,
                    burst: 60.0,
                    period: Dur::millis(500),
                    duty: 0.3,
                    inject: injector(sent),
                }
            });
        }
    }
}

#[test]
fn churn_preserves_safety_across_all_variants_and_topologies() {
    // Nodes 2 and 4 crash at random instants and restart 300 ms later
    // with a fresh incarnation of the same stack.
    const VICTIMS: [u32; 2] = [2, 4];
    for (i, &variant) in ALL_VARIANTS.iter().enumerate() {
        for (j, &topo) in TOPOS.iter().enumerate() {
            let seed = 300 + (i * TOPOS.len() + j) as u64;
            let mut sim = mk_sim(variant, topo, seed);
            sim.run_until(Time::ZERO + Dur::millis(200));
            let sent: Sent = Sent::default();
            install(
                &mut sim,
                &format!("traffic-{}-{topo:?}", variant.name()),
                all_nodes(),
                Time::ZERO + Dur::secs(3),
                Generator::Poisson { rate: 30.0, inject: injector(Arc::clone(&sent)) },
            );
            let factory: StackFactory =
                Arc::new(move |sc| testing::conformance_stack(sc, variant, 0));
            install(
                &mut sim,
                &format!("churn-{}-{topo:?}", variant.name()),
                VICTIMS.iter().copied().map(StackId).collect(),
                Time::ZERO + Dur::millis(2500),
                Generator::Churn { crashes: 2, downtime: Dur::millis(300), factory },
            );
            sim.run_until(Time::ZERO + Dur::secs(20));

            let sent = sent.lock().unwrap();
            assert!(!sent.is_empty());
            // Never-crashed nodes: the full safety contract.
            let steady = logs_of(&mut sim, &[0, 1, 3, 5]);
            testing::assert_safe(&steady, &sent);
            // Restarted incarnations: they may have joined mid-stream,
            // so their logs must embed order-preservingly in the
            // longest steady log rather than share a prefix with it.
            let reference = steady.iter().map(|(_, l)| l).max_by_key(|l| l.len()).unwrap().clone();
            for (who, log) in logs_of(&mut sim, &VICTIMS) {
                testing::assert_no_duplicates(&who, &log);
                testing::assert_no_creation(&who, &log, &sent);
                testing::assert_subsequence(&who, &log, &reference);
            }
        }
    }
}
