//! The scale soak for the sharded runtime: 256 full group-communication
//! stacks multiplexed on 4 shard threads, performing a live protocol
//! switch (the paper's `changeABcast`) while messages flow. This is the
//! "thousands of stacks per process" architecture exercised end to end:
//! every stack is driven through `dpu_core::host::StackDriver`, timers
//! ride the per-shard wheels, packets are delivery-timestamped.
//!
//! The group uses the fixed-sequencer broadcast (seq -> rp2p -> udp): a
//! 256-member Chandra–Toueg stack would put an all-to-all heartbeat
//! failure detector on the wire (n² packets per period), which is a
//! network-model workload, not a host-scheduling one. The sequencer
//! variant keeps the message complexity linear so the test exercises
//! what it is about: many drivers per shard racing timers, packets,
//! control traffic and a switch.
//!
//! CI runs this with `--release` so shard scheduling races are exercised
//! at real speed.

use dpu::repl::builder::{
    group_runtime, request_change_live, send_probe_live, specs, GroupStackOpts, SwitchLayer,
};
use dpu::runtime::RuntimeConfig;
use dpu_core::probe::Probe;
use dpu_core::StackId;
use dpu_repl::abcast_repl::ReplAbcastModule;
use std::time::{Duration, Instant};

const N: u32 = 256;
const SHARDS: u32 = 4;

fn wait_until(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let limit = Instant::now() + deadline;
    loop {
        if done() {
            return;
        }
        assert!(Instant::now() < limit, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn soak_256_stacks_on_4_shards_switch_live() {
    let opts = GroupStackOpts {
        abcast: specs::seq(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(0),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    let (rt, h) = group_runtime(RuntimeConfig::new(N).with_shards(SHARDS), &opts);
    assert_eq!(rt.n(), N);
    assert_eq!(rt.shards(), SHARDS);
    let probe = h.probe.expect("probe");
    let layer = h.layer.expect("repl layer");

    let delivered = |node: u32| {
        rt.with_stack(StackId(node), move |s| {
            s.with_module::<Probe, _>(probe, |p| p.delivered().len()).expect("probe")
        })
    };
    let all_delivered = |count: usize| (0..N).all(|node| delivered(node) >= count);

    std::thread::sleep(Duration::from_millis(300));

    // Phase 1: broadcasts from four corners of the group, totally
    // ordered on all 256 stacks.
    for node in [0, 63, 128, 255] {
        send_probe_live(&rt, StackId(node), &h);
    }
    wait_until("phase-1 deliveries on all 256 stacks", Duration::from_secs(120), || {
        all_delivered(4)
    });

    // The live switch, requested mid-traffic from a non-sequencer stack.
    request_change_live(&rt, StackId(17), &h, &specs::seq(1));
    for node in [1, 64, 129, 254] {
        send_probe_live(&rt, StackId(node), &h);
    }
    wait_until("post-switch deliveries on all 256 stacks", Duration::from_secs(120), || {
        all_delivered(8)
    });

    // Every stack applied exactly one switch and drained.
    for node in 0..N {
        let (sn, undelivered) = rt.with_stack(StackId(node), move |s| {
            s.with_module::<ReplAbcastModule, _>(layer, |m| (m.seq_number(), m.undelivered_len()))
                .expect("repl layer")
        });
        assert_eq!(sn, 1, "stack {node} must have switched exactly once");
        assert_eq!(undelivered, 0, "stack {node} must have no stuck messages");
    }

    // All 256 stacks delivered the same 8 messages in the same order.
    let reference: Vec<dpu_core::abcast_check::MsgId> = rt.with_stack(StackId(0), move |s| {
        s.with_module::<Probe, _>(probe, |p| p.delivered().iter().map(|r| r.msg).collect())
            .expect("probe")
    });
    assert_eq!(reference.len(), 8);
    for node in 1..N {
        let log: Vec<dpu_core::abcast_check::MsgId> = rt.with_stack(StackId(node), move |s| {
            s.with_module::<Probe, _>(probe, |p| p.delivered().iter().map(|r| r.msg).collect())
                .expect("probe")
        });
        assert_eq!(log, reference, "stack {node} diverged from the total order");
    }

    let stacks = rt.shutdown();
    assert_eq!(stacks.len(), N as usize);
}
