//! Property-based integration tests: randomized schedules of loads,
//! switch times and target protocols must always preserve the atomic
//! broadcast properties and the generic DPU properties. Each case is a
//! full multi-stack simulation, so the case count is kept moderate; the
//! schedules cover the space broadly (seeded shrinking works as usual).

use bytes::Bytes;
use dpu::net::dgram::Dgram;
use dpu::protocols::gm::{GmOp, GmParams, View};
use dpu::repl::builder::{
    check_run, drive_load, group_sim, request_change, specs, GroupStackOpts, SwitchLayer,
};
use dpu::sim::SimConfig;
use dpu_core::probe::ProbeMsg;
use dpu_core::time::{Dur, Time};
use dpu_core::wire::testing::assert_wire_contract;
use dpu_core::{ModuleSpec, StackId};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Target {
    Ct,
    Seq,
    Ring,
    Hier,
}

/// All switchable atomic broadcast variants.
const TARGETS: [Target; 4] = [Target::Ct, Target::Seq, Target::Ring, Target::Hier];

impl Target {
    fn spec(self, ns: u64) -> ModuleSpec {
        match self {
            Target::Ct => specs::ct(ns),
            Target::Seq => specs::seq(ns),
            Target::Ring => specs::ring(ns),
            Target::Hier => specs::hier(ns),
        }
    }
}

fn target_strategy() -> impl Strategy<Value = Target> {
    prop_oneof![Just(Target::Ct), Just(Target::Seq), Just(Target::Ring), Just(Target::Hier)]
}

proptest! {
    /// Workspace-wide wire-codec contract: for every public message type,
    /// `encoded_len() == encode(..).len()`, the scratch-pool encoding is
    /// byte-identical to `to_bytes`, decoding any truncation fails with
    /// an error, and decoding any single-byte corruption never panics.
    /// (Private frame types — RP2P/consensus/abcast frames, replacement
    /// envelopes — run the same `assert_wire_contract` from their own
    /// crates' unit tests.)
    #[test]
    fn wire_contract_for_public_message_types(
        origin: u32,
        seq: u64,
        t: u64,
        channel: u16,
        pad in proptest::collection::vec(any::<u8>(), 0..256),
        kind in "[a-z.]{1,24}",
        members in proptest::collection::vec(any::<u32>(), 0..8),
    ) {
        let data = Bytes::from(pad);
        assert_wire_contract(&ProbeMsg {
            origin: StackId(origin),
            seq,
            sent_at: Time(t),
            pad: data.clone(),
        });
        assert_wire_contract(&Dgram { peer: StackId(origin), channel, data: data.clone() });
        assert_wire_contract(&ModuleSpec { kind, params: data.clone() });
        assert_wire_contract(&GmOp::Join(StackId(origin)));
        assert_wire_contract(&View {
            id: seq,
            members: members.into_iter().map(StackId).collect(),
        });
        assert_wire_contract(&GmParams::default());
        // Composites, as carried by service payloads.
        assert_wire_contract(&(StackId(origin), data.clone()));
        assert_wire_contract(&(seq, t, data));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 32,
        ..ProptestConfig::default()
    })]

    /// Any sequence of 1–3 protocol switches at random times, under a
    /// random load, on 3 or 5 stacks, with a random seed, preserves all
    /// four atomic broadcast properties and weak well-formedness.
    #[test]
    fn random_switch_schedules_preserve_all_properties(
        seed in 0u64..1_000,
        n in prop_oneof![Just(3u32), Just(5u32)],
        load in 20.0f64..80.0,
        offsets_ms in proptest::collection::vec(300u64..2700, 1..=3),
        targets in proptest::collection::vec(target_strategy(), 3),
    ) {
        let opts = GroupStackOpts {
            abcast: specs::ct(0),
            layer: SwitchLayer::Repl,
            probe_pad: Some(8),
            with_gm: false,
            extra_defaults: Vec::new(),
        };
        let (mut sim, h) = group_sim(SimConfig::lan(n, seed), &opts);
        sim.run_until(Time::ZERO + Dur::millis(300));
        let until = sim.now() + Dur::secs(3);
        drive_load(&mut sim, &h, load, until);
        let mut sorted = offsets_ms.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for (k, off) in sorted.iter().enumerate() {
            let spec = targets[k % targets.len()].spec(k as u64 + 1);
            let h2 = h.clone();
            let initiator = StackId((k as u32) % n);
            sim.schedule(Time::ZERO + Dur::millis(300 + off), move |sim| {
                request_change(sim, initiator, &h2, &spec);
            });
        }
        sim.run_until(until + Dur::secs(12));
        let report = check_run(&mut sim, &h);
        report.assert_ok();
        // Completeness: everything sent is delivered everywhere.
        let sent = report.checker.broadcast_count();
        for id in sim.stack_ids() {
            prop_assert_eq!(report.checker.delivery_count(id), sent, "stack {}", id);
        }
    }

    /// Every ordered pair of atomic broadcast variants (including the
    /// paper's identity switches, §6.2) switches cleanly at a random
    /// instant under random load on a clustered topology — the shape
    /// that exercises the hierarchical variant's per-cluster sequencers
    /// rather than its flat degeneration.
    #[test]
    fn every_ordered_variant_pair_switches_cleanly_under_load(
        seed in 0u64..1_000,
        load in 20.0f64..60.0,
        switch_ms in 300u64..2000,
    ) {
        for from in TARGETS {
            for to in TARGETS {
                let opts = GroupStackOpts {
                    abcast: from.spec(0),
                    layer: SwitchLayer::Repl,
                    probe_pad: Some(8),
                    with_gm: false,
                    extra_defaults: Vec::new(),
                };
                let cfg = SimConfig::clustered(
                    6,
                    seed,
                    3,
                    dpu::sim::NetConfig::datacenter(),
                    dpu::sim::NetConfig::lan(),
                );
                let (mut sim, h) = group_sim(cfg, &opts);
                sim.run_until(Time::ZERO + Dur::millis(300));
                let until = sim.now() + Dur::secs(2);
                drive_load(&mut sim, &h, load, until);
                let h2 = h.clone();
                let spec = to.spec(1);
                sim.schedule(Time::ZERO + Dur::millis(300 + switch_ms), move |sim| {
                    request_change(sim, StackId(1), &h2, &spec);
                });
                sim.run_until(until + Dur::secs(12));
                let report = check_run(&mut sim, &h);
                report.assert_ok();
                let sent = report.checker.broadcast_count();
                for id in sim.stack_ids() {
                    prop_assert_eq!(
                        report.checker.delivery_count(id),
                        sent,
                        "{:?}->{:?} stack {}",
                        from,
                        to,
                        id
                    );
                }
            }
        }
    }

    /// Random loss rates (up to 15%) with one switch still satisfy the
    /// properties — the reliability machinery underneath recovers
    /// everything.
    #[test]
    fn random_loss_with_switch_preserves_properties(
        seed in 0u64..1_000,
        loss in 0.0f64..0.15,
        switch_ms in 500u64..1500,
    ) {
        let mut cfg = SimConfig::lan(3, seed);
        cfg.net.loss = loss;
        let opts = GroupStackOpts {
            abcast: specs::ct(0),
            layer: SwitchLayer::Repl,
            probe_pad: Some(8),
            with_gm: false,
            extra_defaults: Vec::new(),
        };
        let (mut sim, h) = group_sim(cfg, &opts);
        sim.run_until(Time::ZERO + Dur::millis(300));
        let until = sim.now() + Dur::secs(2);
        drive_load(&mut sim, &h, 30.0, until);
        let h2 = h.clone();
        sim.schedule(Time::ZERO + Dur::millis(300 + switch_ms), move |sim| {
            request_change(sim, StackId(1), &h2, &specs::ct(1));
        });
        sim.run_until(until + Dur::secs(25));
        check_run(&mut sim, &h).assert_ok();
    }
}
