//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Implements the subset the workspace uses: [`channel`] — MPMC
//! [`channel::bounded`] / [`channel::unbounded`] channels built on
//! `Mutex` + `Condvar`, plus a [`select!`] macro limited to the shape
//! the runtime needs (`recv(..) -> ..` arms followed by one
//! `default(timeout)` arm). The former `thread::scope` surface is gone:
//! the simulator's parallel engine now runs a persistent worker pool
//! (`dpu-sim::par`) and the remaining scoped-thread users call
//! `std::thread::scope` directly.
//!
//! The `select!` implementation parks the calling thread on a
//! [`channel::SelectWaker`] registered with every polled channel, so a
//! blocked select burns no CPU: senders (and sender disconnection)
//! signal the waker, which re-polls the arms. Registration happens
//! before the first poll, so a send racing with select cannot be lost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! MPMC channels with an API matching `crossbeam-channel`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    pub use crate::select;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        // Signalled on push, pop, and endpoint drop.
        cond: Condvar,
        cap: Option<usize>,
        // Wakers of `select!` calls currently parked on this channel,
        // held weakly: a select that returned simply stops upgrading
        // and is pruned on the next notify or registration. Lock order
        // is always `state` before `select_wakers` (never the reverse),
        // so notifying while holding the state lock cannot deadlock.
        select_wakers: Mutex<Vec<std::sync::Weak<SelectWaker>>>,
    }

    impl<T> Shared<T> {
        /// Wake every parked `select!`; prune the dead entries.
        fn notify_select(&self) {
            let mut ws = self.select_wakers.lock().unwrap_or_else(|e| e.into_inner());
            ws.retain(|w| match w.upgrade() {
                Some(s) => {
                    s.signal();
                    true
                }
                None => false,
            });
        }
    }

    /// The parking primitive behind [`crate::select!`]: a one-shot
    /// (re-armable) flag + condvar. Each `select!` invocation creates
    /// one, registers it with every polled channel, and parks on it
    /// between polls; [`Sender::send`] and sender disconnection signal
    /// it. Public only because the macro expands in caller crates.
    pub struct SelectWaker {
        signaled: Mutex<bool>,
        cond: Condvar,
    }

    impl SelectWaker {
        /// A fresh, unsignalled waker.
        #[allow(clippy::new_ret_no_self)]
        pub fn new() -> Arc<SelectWaker> {
            Arc::new(SelectWaker { signaled: Mutex::new(false), cond: Condvar::new() })
        }

        /// Re-arm before polling the arms: a signal that arrives after
        /// this point (and hence may correspond to a message the polls
        /// will miss) is kept for the next [`SelectWaker::wait_until`].
        pub fn prepare(&self) {
            *self.signaled.lock().unwrap_or_else(|e| e.into_inner()) = false;
        }

        /// Mark ready and wake the parked thread.
        pub fn signal(&self) {
            *self.signaled.lock().unwrap_or_else(|e| e.into_inner()) = true;
            self.cond.notify_all();
        }

        /// Park until signalled (consuming the signal, returns `true`)
        /// or until `deadline` (returns `false`).
        pub fn wait_until(&self, deadline: Instant) -> bool {
            let mut sig = self.signaled.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if *sig {
                    *sig = false;
                    return true;
                }
                let now = Instant::now();
                if now >= deadline {
                    return false;
                }
                let (guard, _) =
                    self.cond.wait_timeout(sig, deadline - now).unwrap_or_else(|e| e.into_inner());
                sig = guard;
            }
        }
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    fn mk<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cond: Condvar::new(),
            cap,
            select_wakers: Mutex::new(Vec::new()),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        mk(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    /// `bounded(0)` is a rendezvous channel: `send` blocks until a
    /// receiver takes the value, as in the real crate.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        mk(Some(cap))
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full (or,
        /// for a zero-capacity channel, until a receiver takes it).
        /// Fails only if every [`Receiver`] has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    // Rendezvous: wait for the queue slot, push, then
                    // wait until the receiver has popped our value
                    // (ours is the only element while it is queued).
                    Some(0) if !st.queue.is_empty() => {
                        st = self.shared.cond.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    Some(0) => {
                        st.queue.push_back(value);
                        self.shared.cond.notify_all();
                        self.shared.notify_select();
                        while !st.queue.is_empty() {
                            if st.receivers == 0 {
                                // Receivers vanished before the handoff:
                                // reclaim the (sole) queued value.
                                let v = st.queue.pop_front().expect("sole queued value");
                                return Err(SendError(v));
                            }
                            st = self.shared.cond.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                        return Ok(());
                    }
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.cond.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            self.shared.cond.notify_all();
            self.shared.notify_select();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders += 1;
            drop(st);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.cond.notify_all();
                // Disconnection counts as select-ready (an arm yields
                // `Err(RecvError)`), so parked selects must wake too.
                self.shared.notify_select();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every
        /// [`Sender`] has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.cond.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.cond.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            match st.queue.pop_front() {
                Some(v) => {
                    self.shared.cond.notify_all();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Implementation detail of [`crate::select!`]: park this
        /// select invocation's waker on the channel. Held weakly; no
        /// deregistration needed — dead entries are pruned here and on
        /// notify, so repeated selects on an otherwise idle channel
        /// cannot accumulate garbage.
        #[doc(hidden)]
        pub fn __register_select_waker(&self, waker: &Arc<SelectWaker>) {
            let mut ws = self.shared.select_wakers.lock().unwrap_or_else(|e| e.into_inner());
            ws.retain(|w| w.strong_count() > 0);
            ws.push(Arc::downgrade(waker));
        }

        /// Registered (live or dead) select wakers, for the pruning test.
        #[cfg(test)]
        pub(crate) fn select_waker_count(&self) -> usize {
            self.shared.select_wakers.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Receives a message, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.cond.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .cond
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers += 1;
            drop(st);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.cond.notify_all();
            }
        }
    }

    /// Implementation detail of [`select!`]: pins the `Ok` type of a
    /// select arm's binding to the receiver's element type.
    #[doc(hidden)]
    pub fn __typed_recv_result<T>(
        _rx: &Receiver<T>,
        r: Result<T, RecvError>,
    ) -> Result<T, RecvError> {
        r
    }
}

/// Waits on several channel operations at once.
///
/// Shim limitation: supports only the shape used in this workspace —
/// one or more `recv($receiver) -> $binding => $block` arms followed by
/// a mandatory `default($timeout) => $block` arm. Arms are polled in
/// order; if none is ready the thread *parks* on a
/// [`channel::SelectWaker`] registered with every arm's channel until a
/// send (or sender disconnection) signals it or the timeout elapses —
/// a blocked select consumes no CPU. A disconnected channel counts as
/// ready and yields `Err(RecvError)`, matching `crossbeam-channel`.
#[macro_export]
macro_rules! select {
    (
        $(recv($rx:expr) -> $pat:pat => $body:block)+
        default($timeout:expr) => $dbody:block $(,)?
    ) => {{
        let __deadline = ::std::time::Instant::now() + $timeout;
        let __waker = $crate::channel::SelectWaker::new();
        // Register before the first poll: a message sent after the poll
        // misses it necessarily signals the already-registered waker.
        $(
            ($rx).__register_select_waker(&__waker);
        )+
        loop {
            __waker.prepare();
            $(
                {
                    let __rx = &($rx);
                    match __rx.try_recv() {
                        ::std::result::Result::Ok(__v) => {
                            let $pat = $crate::channel::__typed_recv_result(
                                __rx,
                                ::std::result::Result::Ok(__v),
                            );
                            break $body;
                        }
                        ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                            let $pat = $crate::channel::__typed_recv_result(
                                __rx,
                                ::std::result::Result::Err($crate::channel::RecvError),
                            );
                            break $body;
                        }
                        ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                    }
                }
            )+
            if !__waker.wait_until(__deadline) {
                break $dbody;
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_blocks_then_delivers() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn zero_capacity_channel_is_rendezvous() {
        let (tx, rx) = bounded::<u32>(0);
        let taken = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let taken2 = std::sync::Arc::clone(&taken);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            taken2.store(true, std::sync::atomic::Ordering::SeqCst);
            rx.recv()
        });
        // send must block until the receiver is actually taking.
        tx.send(9).unwrap();
        assert!(taken.load(std::sync::atomic::Ordering::SeqCst), "send returned before handoff");
        assert_eq!(h.join().unwrap(), Ok(9));
    }

    #[test]
    fn zero_capacity_send_fails_when_receiver_drops() {
        let (tx, rx) = bounded::<u32>(0);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            drop(rx);
        });
        assert_eq!(tx.send(5), Err(crate::channel::SendError(5)));
        h.join().unwrap();
    }

    #[test]
    fn select_picks_ready_arm_or_default() {
        let (tx, rx) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        tx.send(7).unwrap();
        let mut hit;
        select! {
            recv(rx) -> msg => { assert_eq!(msg, Ok(7)); hit = 1; }
            recv(rx2) -> _msg => { hit = 2; }
            default(Duration::from_millis(5)) => { hit = 3; }
        }
        assert_eq!(hit, 1);
        select! {
            recv(rx) -> _msg => { hit = 4; }
            default(Duration::from_millis(5)) => { hit = 5; }
        }
        assert_eq!(hit, 5);
    }

    #[test]
    fn select_parks_until_cross_thread_send() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            tx.send(11).unwrap();
        });
        let t0 = std::time::Instant::now();
        let mut got = None;
        select! {
            recv(rx) -> msg => { got = Some(msg.unwrap()); }
            default(Duration::from_secs(30)) => {}
        }
        // Woken by the send, long before the 30 s default arm.
        assert_eq!(got, Some(11));
        assert!(t0.elapsed() < Duration::from_secs(10), "select missed the waker signal");
        h.join().unwrap();
    }

    #[test]
    fn select_wakes_on_sender_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            drop(tx);
        });
        let mut got = None;
        select! {
            recv(rx) -> msg => { got = Some(msg); }
            default(Duration::from_secs(30)) => {}
        }
        assert_eq!(got, Some(Err(RecvError)));
        h.join().unwrap();
    }

    #[test]
    fn repeated_idle_selects_do_not_accumulate_wakers() {
        let (_tx, rx) = unbounded::<u32>();
        let mut fired = false;
        for _ in 0..64 {
            select! {
                recv(rx) -> _msg => { fired = true }
                default(Duration::from_millis(1)) => {}
            }
        }
        assert!(!fired, "nothing was sent");
        // Dead wakers are pruned at registration time, so an idle
        // channel polled in a loop stays at one live entry.
        let n = rx.select_waker_count();
        assert!(n <= 1, "waker list grew to {n}");
    }
}
