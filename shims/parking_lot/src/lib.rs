//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API shape the
//! workspace uses: non-poisoning `lock()` that returns the guard
//! directly. Poison errors from `std` are swallowed by taking the inner
//! guard, which matches `parking_lot`'s behaviour of not propagating
//! panics through locks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual exclusion primitive (non-poisoning `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard { inner: e.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (non-poisoning `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
