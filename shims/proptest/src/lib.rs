//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] test macro, the [`strategy::Strategy`] trait
//! with `prop_map` / `prop_flat_map`, [`strategy::Just`], ranges and
//! tuples as strategies, [`prop_oneof!`] unions, [`collection`] /
//! [`option`] / [`sample`] strategies, `any::<T>()` over an
//! [`strategy::Arbitrary`] trait, and the `prop_assert*` /
//! [`prop_assume!`] macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the failing values'
//!   case number and message, but is not minimized
//!   (`max_shrink_iters` in [`test_runner::ProptestConfig`] is
//!   accepted and ignored);
//! * **deterministic seeding** — each test's RNG is seeded from the
//!   hash of its function name, so runs are reproducible and CI-stable
//!   rather than freshly random per run;
//! * the default number of cases is 64 (the real default is 256).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test-case plumbing: RNG, config, and the error type the
    //! `prop_assert*` macros return.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — generate another.
        Reject(String),
        /// An assertion failed — the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-test configuration, usable with struct-update syntax:
    /// `ProptestConfig { cases: 24, ..ProptestConfig::default() }`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Accepted for API compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
        /// Upper bound on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64, max_shrink_iters: 0, max_global_rejects: 4096 }
        }
    }

    /// The deterministic RNG driving value generation (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name),
        /// so each test gets a distinct but reproducible stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng::from_seed(h)
        }

        /// Seeds the generator from a 64-bit value via SplitMix64.
        pub fn from_seed(seed: u64) -> TestRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and basic combinators.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest there is no value *tree* (no
    /// shrinking): a strategy just samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates a value, then uses it to pick a second strategy to
        /// draw the final value from.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Generates values satisfying `pred`, panicking after too many
        /// consecutive rejections.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { base: self, whence, pred }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
    pub trait DynStrategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V> {
        inner: Box<dyn DynStrategy<Value = V>>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.inner.sample_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        base: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.base.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up after 1000 rejections: {}", self.whence)
        }
    }

    /// Weighted choice between boxed strategies; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Creates a union from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one arm with weight > 0");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights are exhaustive")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    // In u128 so a full-width 64-bit range (span 2^64)
                    // does not wrap to 0.
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    let raw = if span > u64::MAX as u128 {
                        rng.next_u64()
                    } else {
                        rng.below(span as u64)
                    };
                    (lo as i128).wrapping_add(raw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Values with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias 1-in-8 draws toward boundary values, which is
                    // where codec/overflow bugs live.
                    if rng.below(8) == 0 {
                        match rng.below(3) {
                            0 => 0 as $t,
                            1 => 1 as $t,
                            _ => <$t>::MAX,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    /// String strategies from a regex-like pattern, as in the real
    /// proptest. The shim supports the subset this workspace's tests
    /// use: a single atom — `.` (any char) or a `[...]` class of
    /// literals and `a-z` ranges — followed by a `{n}` / `{lo,hi}`
    /// repetition. Anything else panics with a clear message.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_simple_regex(self);
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n)
                .map(|_| match &chars {
                    CharSet::Any => {
                        // Mostly printable ASCII, sometimes an arbitrary
                        // scalar, so UTF-8 handling gets exercised.
                        if rng.below(8) == 0 {
                            loop {
                                if let Some(c) = char::from_u32(rng.below(0x110000) as u32) {
                                    break c;
                                }
                            }
                        } else {
                            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
                        }
                    }
                    CharSet::Of(set) => set[rng.below(set.len() as u64) as usize],
                })
                .collect()
        }
    }

    enum CharSet {
        Any,
        Of(Vec<char>),
    }

    /// Parses `.{lo,hi}`, `[class]{lo,hi}`, `.{n}`, `[class]{n}`.
    fn parse_simple_regex(pat: &str) -> (CharSet, usize, usize) {
        let mut it = pat.chars().peekable();
        let set = match it.next() {
            Some('.') => CharSet::Any,
            Some('[') => {
                let mut set = Vec::new();
                loop {
                    match it.next() {
                        Some(']') => break,
                        Some(a) => {
                            if it.peek() == Some(&'-') {
                                it.next();
                                let b = it.next().unwrap_or_else(|| {
                                    panic!("proptest shim: unterminated range in {pat:?}")
                                });
                                if b == ']' {
                                    set.push(a);
                                    set.push('-');
                                    break;
                                }
                                assert!(a <= b, "proptest shim: decreasing range in {pat:?}");
                                set.extend(a..=b);
                            } else {
                                set.push(a);
                            }
                        }
                        None => panic!("proptest shim: unterminated [class] in {pat:?}"),
                    }
                }
                assert!(!set.is_empty(), "proptest shim: empty [class] in {pat:?}");
                CharSet::Of(set)
            }
            _ => panic!(
                "proptest shim: unsupported string pattern {pat:?} \
                 (supported: '.' or '[class]' followed by {{n}} or {{lo,hi}})"
            ),
        };
        let rest: String = it.collect();
        let inner = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')).unwrap_or_else(|| {
            panic!(
                "proptest shim: unsupported repetition {rest:?} in {pat:?} \
                     (supported: {{n}} or {{lo,hi}})"
            )
        });
        let (lo, hi) = match inner.split_once(',') {
            Some((a, b)) => (
                a.trim().parse().expect("bad repetition lower bound"),
                b.trim().parse().expect("bad repetition upper bound"),
            ),
            None => {
                let n = inner.trim().parse().expect("bad repetition count");
                (n, n)
            }
        };
        assert!(lo <= hi, "proptest shim: empty repetition range in {pat:?}");
        (set, lo, hi)
    }

    /// Strategy for any value of `T`; created by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T` (`any::<u64>()`, ...).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections of generated values.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of collection sizes. Converted from `usize`
    /// (exact), `Range<usize>`, or `RangeInclusive<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec`s of values from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of values from `elem`. Sizes are
    /// best-effort: duplicates are redrawn a bounded number of times.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut set = BTreeSet::new();
            for _ in 0..(n * 4 + 8) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.elem.sample(rng));
            }
            set
        }
    }

    /// Strategy for `BTreeMap`s with keys from `key` and values from
    /// `value`. Sizes are best-effort, as for [`btree_set`].
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            for _ in 0..(n * 4 + 8) {
                if map.len() >= n {
                    break;
                }
                map.insert(self.key.sample(rng), self.value.sample(rng));
            }
            map
        }
    }
}

pub mod option {
    //! Strategies for `Option`s of generated values.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding `None` half the time and `Some(inner)` the rest.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling from runtime-sized collections.

    use super::strategy::Arbitrary;
    use super::test_runner::TestRng;

    /// An abstract index into a collection whose size is only known
    /// when the test body runs; obtained via `any::<Index>()`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Projects this abstract index onto a collection of `size`
        /// elements (proportionally, so it is uniform for any size).
        ///
        /// # Panics
        /// Panics if `size == 0`.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            ((self.raw as u128 * size as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index { raw: rng.next_u64() }
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring
    //! `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Rejects the current case (without failing the test) unless `cond`
/// holds; another case is generated in its place.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Chooses between several strategies producing the same value type,
/// optionally weighted: `prop_oneof![2 => a, 1 => b]` or
/// `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written inside the macro, as
/// with the real proptest) that runs the body over `config.cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($args:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __cases: u32 = 0;
            let mut __rejects: u32 = 0;
            while __cases < __config.cases {
                $crate::__proptest_sample_args!((&mut __rng) $($args)*);
                // An immediately-called closure is the point here: it
                // gives `prop_assert*` a `Result` scope to return into.
                #[allow(clippy::redundant_closure_call)]
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => {
                        __cases += 1;
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(__why),
                    ) => {
                        __rejects += 1;
                        if __rejects > __config.max_global_rejects {
                            panic!(
                                "proptest '{}': too many prop_assume rejections ({}): {}",
                                stringify!($name), __rejects, __why
                            );
                        }
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name), __cases + 1, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands the argument list of
/// a property-test fn into one sampling `let` per argument. Supports
/// both proptest argument forms — `pat in strategy` and `ident: Type`
/// (shorthand for `ident in any::<Type>()`) — in any order.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_sample_args {
    ( ($rng:expr) ) => {};
    ( ($rng:expr) $name:ident : $ty:ty ) => {
        let $name = <$ty as $crate::strategy::Arbitrary>::arbitrary($rng);
    };
    ( ($rng:expr) $name:ident : $ty:ty, $($rest:tt)* ) => {
        let $name = <$ty as $crate::strategy::Arbitrary>::arbitrary($rng);
        $crate::__proptest_sample_args!(($rng) $($rest)*);
    };
    ( ($rng:expr) $pat:pat in $strat:expr ) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), $rng);
    };
    ( ($rng:expr) $pat:pat in $strat:expr, $($rest:tt)* ) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__proptest_sample_args!(($rng) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20) {
            prop_assert!((10..20).contains(&x));
        }

        #[test]
        fn maps_apply(x in evens()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(0u8..10, 3..=5)) {
            prop_assert!((3..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_honours_arms(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn flat_map_links_values((n, v) in (1usize..8).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u8..=255, n))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn index_projects_uniformly(ix in any::<crate::sample::Index>()) {
            prop_assert!(ix.index(10) < 10);
        }

        #[test]
        fn full_width_inclusive_ranges_sample(x in 0u64..=u64::MAX, y in i64::MIN..=i64::MAX) {
            // Must not panic; any value of the type is admissible.
            let _ = (x, y);
        }

        #[test]
        fn signed_inclusive_ranges_stay_in_bounds(x in -5i32..=5) {
            prop_assert!((-5..=5).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn config_is_honoured(_x in 0u8..=255) {
            // Runs only 5 cases; nothing to assert beyond completion.
        }
    }

    proptest! {
        // No #[test] attribute: generated as a plain fn so the harness
        // does not run it directly; driven by the should_panic test.
        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        always_fails();
    }
}
