//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors a minimal, API-compatible subset of `bytes`: the
//! [`Bytes`] / [`BytesMut`] buffer types and the [`Buf`] / [`BufMut`]
//! read/write traits, exactly as used by the `dpu` wire codec and
//! protocol modules. Semantics match the real crate for this subset
//! (cheap clones and zero-copy `slice`/`split_to` via a shared
//! reference-counted backing buffer); swap in the real dependency by
//! pointing `[workspace.dependencies] bytes` back at crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Internally an `Arc<Vec<u8>>` plus a `[start, end)` window, so `clone`,
/// [`Bytes::slice`] and [`Bytes::split_to`] are O(1) and share storage,
/// and [`BytesMut::freeze`] moves the buffer instead of copying it.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Creates a `Bytes` from a static slice (copied once here; the real
    /// crate borrows it, which callers cannot observe through this API).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from_vec(bytes.to_vec())
    }

    /// Creates a `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    #[inline]
    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }

    /// Number of bytes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a new `Bytes` sharing storage, restricted to `range`
    /// (interpreted relative to this view).
    ///
    /// # Panics
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds (len {})",
            self.len()
        );
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off and returns the first `at` bytes, leaving `self` with
    /// the rest. Both halves share storage.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    #[inline]
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to({at}) out of bounds (len {})", self.len());
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// Splits off and returns the bytes from `at` on, leaving `self`
    /// with the first `at` bytes.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off({at}) out of bounds (len {})", self.len());
        let tail = Bytes { data: Arc::clone(&self.data), start: self.start + at, end: self.end };
        self.end = self.start + at;
        tail
    }

    /// True if this handle is the only one referencing the backing
    /// buffer (mirrors the real crate's `is_unique`, bytes ≥ 1.8). A
    /// unique `Bytes` can be recovered into a `BytesMut` without copying
    /// via `TryFrom`.
    #[inline]
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from_vec(b.into_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Bytes {
        m.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    // The copy is unavoidable: an owned iterator cannot borrow `self`.
    #[allow(clippy::unnecessary_to_owned)]
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A unique, growable byte buffer, convertible into [`Bytes`] with
/// [`BytesMut::freeze`].
///
/// Backed by an exclusively owned `Vec<u8>`, so writes are plain vector
/// appends with no uniqueness checks. `freeze` moves the vector behind
/// the [`Bytes`] `Arc` — the payload is never copied, only the small
/// reference-count header is allocated — and `TryFrom<Bytes>` moves it
/// back out when the `Bytes` is uniquely owned, which is what the
/// workspace's `WireScratch` steady-state buffer reuse relies on.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates a new empty buffer.
    #[inline]
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// Creates a new empty buffer with at least `cap` bytes of capacity.
    #[inline]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Number of bytes the buffer can hold without reallocating.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// True if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    #[inline]
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional)
    }

    /// Clears the buffer, keeping its capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.vec.clear()
    }

    /// Shortens the buffer to `len` bytes; no-op if already shorter.
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        self.vec.truncate(len)
    }

    /// Appends a slice.
    #[inline]
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend)
    }

    /// Converts the buffer into an immutable [`Bytes`]. The payload is
    /// moved, not copied; only the shared-ownership header is allocated.
    #[inline]
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.vec)
    }

    /// Splits off and returns the first `at` bytes as a new buffer.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to({at}) out of bounds (len {})", self.len());
        let tail = self.vec.split_off(at);
        BytesMut { vec: std::mem::replace(&mut self.vec, tail) }
    }

    /// Splits off and returns all written bytes, leaving `self` empty
    /// (the real crate leaves `self` with the spare capacity; this shim's
    /// buffers are exclusive, so the capacity travels with the data).
    pub fn split(&mut self) -> BytesMut {
        BytesMut { vec: std::mem::take(&mut self.vec) }
    }
}

/// Recovers a `Bytes` into a mutable buffer **without copying the
/// payload**, when the `Bytes` is the sole owner of its backing storage.
/// Mirrors the real crate's `TryFrom<Bytes> for BytesMut` (bytes ≥ 1.4):
/// fails — returning the input unchanged — if other `Bytes` handles
/// still share the buffer.
impl TryFrom<Bytes> for BytesMut {
    type Error = Bytes;

    fn try_from(bytes: Bytes) -> Result<BytesMut, Bytes> {
        let Bytes { data, start, end } = bytes;
        match Arc::try_unwrap(data) {
            Ok(mut vec) => {
                vec.truncate(end);
                if start > 0 {
                    vec.drain(..start);
                }
                Ok(BytesMut { vec })
            }
            Err(data) => Err(Bytes { data, start, end }),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.vec), f)
    }
}

impl From<Vec<u8>> for BytesMut {
    #[inline]
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { vec: v }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.vec.extend(iter)
    }
}

/// Read access to a buffer of bytes, consumed front to back.
///
/// Multi-byte integer reads are big-endian, matching the real crate.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The current unconsumed bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Copies `dst.len()` bytes into `dst` and consumes them.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance({cnt}) out of bounds (len {})", self.len());
        self.start += cnt;
    }
    #[inline]
    fn get_u8(&mut self) -> u8 {
        let b = self.data[self.start];
        self.advance(1);
        b
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer of bytes.
///
/// Multi-byte integer writes are big-endian, matching the real crate.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends all remaining bytes of `src`.
    fn put<B: Buf>(&mut self, mut src: B)
    where
        Self: Sized,
    {
        while src.has_remaining() {
            let n = src.chunk().len();
            self.put_slice(src.chunk());
            src.advance(n);
        }
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src)
    }
    #[inline]
    fn put_u8(&mut self, n: u8) {
        self.vec.push(n);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_u64(0x0708090a0b0c0d0e);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0x03040506);
        assert_eq!(b.get_u64(), 0x0708090a0b0c0d0e);
        assert!(b.is_empty());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[0, 1]);
        assert_eq!(b.as_ref(), &[2, 3, 4, 5]);
        let mid = b.slice(1..3);
        assert_eq!(mid.as_ref(), &[3, 4]);
        b.advance(1);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
    }

    #[test]
    fn equality_across_forms() {
        let b = Bytes::from_static(b"ping");
        assert_eq!(b, Bytes::copy_from_slice(b"ping"));
        assert!(b.as_ref() == b"ping");
    }

    #[test]
    fn split_takes_written_bytes_and_leaves_empty() {
        let mut m = BytesMut::with_capacity(16);
        m.put_slice(b"abc");
        let head = m.split();
        assert_eq!(head.as_ref(), b"abc");
        assert!(m.is_empty());
    }

    #[test]
    fn try_from_reclaims_unique_buffers_only() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let shared = b.clone();
        // Shared: reclaim fails and hands the Bytes back intact.
        let b = BytesMut::try_from(b).unwrap_err();
        assert_eq!(b.as_ref(), &[1, 2, 3, 4]);
        drop(shared);
        // Unique: reclaim succeeds without copying.
        let m = BytesMut::try_from(b).unwrap();
        assert_eq!(m.as_ref(), &[1, 2, 3, 4]);
    }

    #[test]
    fn try_from_respects_the_window() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        drop(head); // b is now the unique owner, viewing 2..6
        let m = BytesMut::try_from(b).unwrap();
        assert_eq!(m.as_ref(), &[2, 3, 4, 5]);
    }

    #[test]
    fn capacity_is_observable() {
        let m = BytesMut::with_capacity(64);
        assert!(m.capacity() >= 64);
    }
}
