//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the structural API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`], [`criterion_main!`], [`BenchmarkId`],
//! [`Throughput`] — with a simple adaptive timing loop instead of
//! criterion's statistical machinery. Each benchmark is warmed up
//! briefly, then timed for a fixed wall-clock budget, and the mean
//! ns/iteration (plus derived throughput, when declared) is printed.
//! Good enough to compare runs by eye and to keep `cargo bench`
//! targets compiling and runnable; swap in the real crate for proper
//! statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value. Re-exported from
/// `std::hint`, which is what recent criterion versions do internally.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of one benchmark iteration, used to derive a
/// rate from the measured time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `"{name}/{param}"`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), param) }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: param.to_string() }
    }
}

/// Types accepted wherever a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing helper handed to the benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing it, until the measurement
    /// budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few iterations untimed.
        for _ in 0..3 {
            black_box(routine());
        }
        // Measure in growing batches until the budget is spent.
        let mut batch = 1u64;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += t0.elapsed();
            self.iters_done += batch;
            batch = (batch * 2).min(1 << 20);
        }
    }

    /// `iter` variant that hands the routine a fresh input per batch.
    /// The setup closure's cost is excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters_done += 1;
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters_done == 0 {
            println!("{id:<40} (no iterations)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters_done as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(b)) => {
                let gib = b as f64 / ns; // bytes per ns == GiB-ish per s
                format!("  {:>10.3} GB/s", gib)
            }
            Some(Throughput::Elements(e)) => {
                format!("  {:>10.3} Melem/s", e as f64 / ns * 1e3)
            }
            None => String::new(),
        };
        println!("{id:<40} {:>12.1} ns/iter ({} iters){rate}", ns, self.iters_done);
    }
}

/// How `iter_batched` inputs are sized. Accepted and ignored by the shim.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small input per iteration.
    SmallInput,
    /// Large input per iteration.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver. One instance is created by [`criterion_main!`]
/// and threaded through every registered group function.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep default runs short: the shim reports a mean, not a
        // distribution, so long sampling buys nothing.
        Criterion { budget: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Parses criterion-style CLI args. The shim accepts and ignores
    /// them (including the `--bench` flag cargo passes).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.budget = d;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.budget;
        run_one(id.into_id(), budget, None, f);
        self
    }

    /// Opens a named group of related benchmarks. The group inherits
    /// the driver's measurement budget until overridden per group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup { _parent: self, name: name.into(), budget, throughput: None }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: String,
    budget: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO, budget };
    f(&mut b);
    b.report(&id, throughput);
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Criterion uses this for statistical sample counts; the shim maps
    /// it onto the time budget (more samples → longer budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.budget = Duration::from_millis(30).saturating_mul(n.max(10) as u32 / 10);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Accepted and ignored (the shim has no separate warm-up phase).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the throughput of subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(format!("{}/{}", self.name, id.into_id()), self.budget, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(format!("{}/{}", self.name, id.into_id()), self.budget, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { budget: Duration::from_millis(5) };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_inherits_parent_measurement_time() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(7));
        let g = c.benchmark_group("g");
        assert_eq!(g.budget, Duration::from_millis(7));
    }

    #[test]
    fn group_with_throughput_and_input() {
        let mut c = Criterion { budget: Duration::from_millis(5) };
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("sz", 64), &64usize, |b, &n| {
            b.iter(|| black_box(vec![0u8; n]));
        });
        g.finish();
    }
}
