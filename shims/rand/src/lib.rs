//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate
//! (0.8 API surface used by this workspace).
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, the
//! same generator family the real `SmallRng` uses on 64-bit targets),
//! the [`SeedableRng`] / [`RngCore`] traits, and the [`Rng`] extension
//! trait with `gen`, `gen_range` and `gen_bool`. Deterministic for a
//! given seed, which is all the simulator requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit values.
pub trait RngCore {
    /// Next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds the generator from OS entropy. This offline shim derives
    /// the seed from the system clock instead of the OS RNG.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Types that can be sampled uniformly from the generator's full output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is negligible for the spans this workspace
                // draws (all far below 2^64).
                let raw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(raw)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Wrapping ops so signed lower bounds and full-width
                // ranges stay correct: span lands in [1, 2^64], and
                // `% 2^64` over a u64 draw is the identity.
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let raw = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(raw)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension trait providing the ergonomic sampling methods.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (e.g. `rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (e.g. `rng.gen_range(0..10)`).
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            // SplitMix64 seed expansion, as the real crate does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&x));
        }
    }

    #[test]
    fn gen_range_handles_signed_and_full_width_ranges() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let w = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&w));
            let _ = rng.gen_range(0u64..=u64::MAX);
            let _ = rng.gen_range(i64::MIN..=i64::MAX);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
