//! Serial-vs-parallel equivalence property test: the conservative
//! clustered engine must produce *bit-identical* runs — same stats,
//! same trace fingerprint — whatever the worker count, across random
//! topologies, seeds, fault settings and scheduler kinds. This is the
//! parallel-engine counterpart of `sched_equiv.rs`: event order decides
//! every RNG draw downstream, so one out-of-order dispatch, one
//! misordered cross-cluster exchange or one shard-RNG share diverges
//! the fingerprint immediately.

use bytes::Bytes;
use dpu_core::stack::{net_ops, FactoryRegistry, ModuleCtx};
use dpu_core::time::{Dur, Time};
use dpu_core::wire::Encode;
use dpu_core::{Call, Module, Response, ServiceId, Stack, StackConfig, StackId, TimerId};
use dpu_sim::{NetConfig, SchedConfig, SchedKind, Sim, SimConfig, SimStats};
use proptest::prelude::*;

/// The shared equivalence-suite fingerprint (see
/// `dpu_core::TraceLog::fingerprint`).
fn trace_fingerprint(trace: &dpu_core::TraceLog) -> u64 {
    trace.fingerprint()
}

/// A busy module: periodic timers, rotating sends (half of them across
/// cluster boundaries, by construction of the rotation), echoes — the
/// event diversity that exercises intra-epoch processing, the
/// cross-cluster exchange and stale-wake handling alike.
struct Chatter {
    period: Dur,
    next_peer: u32,
    received: u64,
}

impl Module for Chatter {
    fn kind(&self) -> &str {
        "chatter"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![ServiceId::new(dpu_core::svc::NET)]
    }
    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        ctx.set_timer(self.period, 1);
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != net_ops::RECV {
            return;
        }
        self.received += 1;
        if self.received.is_multiple_of(2) {
            let (src, _): (StackId, Bytes) = resp.decode().unwrap();
            let reply = (src, Bytes::from_static(b"echo")).to_bytes();
            ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, reply);
        }
    }
    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _: TimerId, _: u64) {
        let n = ctx.peers().len() as u32;
        let me = ctx.stack_id().0;
        let peer = StackId((me + 1 + self.next_peer) % n);
        self.next_peer = (self.next_peer + 1) % n.max(1);
        if peer != ctx.stack_id() {
            let data = (peer, Bytes::from_static(b"tick")).to_bytes();
            ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data);
        }
        ctx.set_timer(self.period, 1);
    }
}

fn mk_stack(sc: StackConfig) -> Stack {
    let mut s = Stack::new(sc, FactoryRegistry::new());
    s.add_module(Box::new(Chatter { period: Dur::millis(7), next_peer: 0, received: 0 }));
    s
}

struct Scenario {
    n: u32,
    cluster_size: u32,
    seed: u64,
    loss: f64,
    duplicate: f64,
    backbone_us: u64,
    millis: u64,
    crash: bool,
}

fn run(sc: &Scenario, kind: SchedKind, workers: usize) -> (SimStats, u64) {
    let intra = NetConfig::lan();
    let backbone = NetConfig {
        latency: Dur::micros(sc.backbone_us),
        jitter: Dur::micros(sc.backbone_us / 4),
        ..NetConfig::lan()
    };
    let mut cfg = SimConfig::clustered(sc.n, sc.seed, sc.cluster_size, intra, backbone);
    cfg.net.loss = sc.loss;
    cfg.net.duplicate = sc.duplicate;
    cfg.sched = SchedConfig { kind, ..SchedConfig::default() };
    cfg.workers = workers;
    let mut sim = Sim::new(cfg, mk_stack);
    if sc.crash {
        sim.crash_at(Time::ZERO + Dur::millis(sc.millis / 2), StackId(sc.n - 1));
    }
    sim.run_until(Time::ZERO + Dur::millis(sc.millis));
    let stats = sim.stats();
    let fp = trace_fingerprint(&sim.merged_trace());
    (stats, fp)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// One-worker and multi-worker runs of random clustered
    /// configurations are identical, with either scheduler kind on the
    /// parallel side — worker counts and scheduler implementations are
    /// pure wall-clock knobs.
    #[test]
    fn parallel_engine_reproduces_serial_fingerprint(
        n in 4u32..=12,
        cluster_size in prop_oneof![Just(1u32), Just(2), Just(3), Just(5)],
        seed in any::<u64>(),
        loss in 0.0f64..0.2,
        duplicate in 0.0f64..0.15,
        backbone_us in prop_oneof![Just(150u64), Just(400), Just(2_000)],
        millis in 30u64..100,
        crash in any::<bool>(),
        workers in 2usize..=4,
        par_kind in prop_oneof![Just(SchedKind::Calendar), Just(SchedKind::SingleHeap)],
    ) {
        let sc = Scenario { n, cluster_size, seed, loss, duplicate, backbone_us, millis, crash };
        let serial = run(&sc, SchedKind::Calendar, 1);
        let parallel = run(&sc, par_kind, workers);
        prop_assert_eq!(&serial.0, &parallel.0, "stats diverged");
        prop_assert_eq!(serial.1, parallel.1, "trace fingerprint diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The full hierarchical atomic broadcast stack — per-cluster local
    /// sequencers, leader-cluster stream merge, relay fan-out — is
    /// bit-identical across worker counts: same stats, same trace
    /// fingerprint, same delivery log. This is the protocol whose
    /// traffic pattern the cluster sharding exists for, so it doubles
    /// as the engine's most adversarial in-tree workload (cross-cluster
    /// forwards and commits on every broadcast).
    #[test]
    fn hier_abcast_stack_is_worker_count_invariant(
        n in prop_oneof![Just(6u32), Just(8), Just(12)],
        cluster_size in prop_oneof![Just(2u32), Just(3), Just(4)],
        seed in any::<u64>(),
        workers in 2usize..=4,
    ) {
        use dpu_protocols::testing::{self, Variant};
        let run = |workers: usize| {
            let cfg =
                SimConfig::clustered(n, seed, cluster_size, NetConfig::datacenter(), NetConfig::lan())
                    .with_workers(workers);
            let mut sim =
                Sim::new(cfg, |sc| testing::conformance_stack(sc, Variant::Hier, 0));
            let nodes = sim.stack_ids();
            let until = Time::ZERO + Dur::millis(2500);
            let mut counter = 0u64;
            dpu_sim::workload::install(
                &mut sim,
                "abcast",
                nodes,
                until,
                dpu_sim::workload::Generator::Poisson {
                    rate: 40.0,
                    inject: Box::new(move |sim, node| {
                        counter += 1;
                        let payload = (node.0, counter).to_bytes();
                        sim.with_stack(node, |s| testing::send(s, payload));
                    }),
                },
            );
            sim.run_until(until + Dur::secs(2));
            let stats = sim.stats();
            let fp = trace_fingerprint(&sim.merged_trace());
            let log = sim.with_stack(StackId(0), testing::log);
            (stats, fp, log)
        };
        let serial = run(1);
        let parallel = run(workers);
        prop_assert!(!serial.2.is_empty(), "the run must actually deliver broadcasts");
        prop_assert_eq!(&serial.0, &parallel.0, "stats diverged");
        prop_assert_eq!(serial.1, parallel.1, "trace fingerprint diverged");
        prop_assert_eq!(&serial.2, &parallel.2, "delivery log diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Steal-pressure invariance for the persistent work-stealing pool:
    /// with more workers than ready shards (and again with fewer), the
    /// claim cursor's races decide only *which thread* executes a
    /// shard, never the shard-internal event order or the exchange
    /// order — so every worker count reproduces the serial run
    /// bit-for-bit. Oversubscribed counts (workers > shards) maximise
    /// contention on the cursor; tiny counts maximise multi-shard
    /// batches per worker.
    #[test]
    fn work_stealing_pool_is_steal_pressure_invariant(
        n in 6u32..=16,
        cluster_size in prop_oneof![Just(2u32), Just(3)],
        seed in any::<u64>(),
        loss in 0.0f64..0.15,
        millis in 30u64..80,
        workers_a in 2usize..=8,
        workers_b in 2usize..=8,
    ) {
        let sc = Scenario {
            n,
            cluster_size,
            seed,
            loss,
            duplicate: 0.0,
            backbone_us: 400,
            millis,
            crash: false,
        };
        let serial = run(&sc, SchedKind::Calendar, 1);
        let a = run(&sc, SchedKind::Calendar, workers_a);
        let b = run(&sc, SchedKind::Calendar, workers_b);
        prop_assert_eq!(&serial.0, &a.0, "stats diverged (workers_a)");
        prop_assert_eq!(serial.1, a.1, "fingerprint diverged (workers_a)");
        prop_assert_eq!(&serial.0, &b.0, "stats diverged (workers_b)");
        prop_assert_eq!(serial.1, b.1, "fingerprint diverged (workers_b)");
    }
}

/// The SimStats merge satellite: on a partitioned clustered run, the
/// per-worker (per-shard) counter folding must equal the one-worker
/// counters exactly, field by field, and the per-shard rows must sum
/// back to the folded totals.
#[test]
fn per_worker_stats_fold_to_serial_counters_on_partitioned_run() {
    let run = |workers: usize| {
        let cfg = SimConfig::clustered(9, 4242, 3, NetConfig::lan(), NetConfig::wan())
            .with_workers(workers);
        let mut sim = Sim::new(cfg, mk_stack);
        // Cut two clusters apart mid-run, heal later: partition drops
        // and loss-free delivery both accumulate.
        sim.schedule(Time::ZERO + Dur::millis(30), |sim| sim.partition_clusters(0, 1));
        sim.schedule(Time::ZERO + Dur::millis(90), |sim| sim.heal_partitions());
        sim.run_until(Time::ZERO + Dur::millis(150));
        sim.stats()
    };
    let serial = run(1);
    let parallel = run(4);
    assert!(serial.dropped_partition > 0, "the partition must have dropped packets");
    assert_eq!(serial.events, parallel.events);
    assert_eq!(serial.packets_sent, parallel.packets_sent);
    assert_eq!(serial.packets_delivered, parallel.packets_delivered);
    assert_eq!(serial.steps, parallel.steps);
    assert_eq!(serial.dropped_loss, parallel.dropped_loss);
    assert_eq!(serial.dropped_partition, parallel.dropped_partition);
    assert_eq!(serial.bytes_sent, parallel.bytes_sent);
    assert_eq!(serial, parallel, "full stats including per-shard rows");
    // The per-shard rows sum back to the totals (events excepted:
    // barrier actions belong to no shard).
    assert_eq!(parallel.per_shard.len(), 3);
    let delivered: u64 = parallel.per_shard.iter().map(|s| s.packets_delivered).sum();
    let steps: u64 = parallel.per_shard.iter().map(|s| s.steps).sum();
    let shard_events: u64 = parallel.per_shard.iter().map(|s| s.events).sum();
    assert_eq!(delivered, parallel.packets_delivered);
    assert_eq!(steps, parallel.steps);
    assert!(shard_events <= parallel.events);
}

/// A panic inside module code running on a pool worker must propagate
/// out of `Sim::run_until` (via barrier poisoning + the control
/// thread's poisoned-wait check) — not deadlock the cohort at the
/// epoch barrier, and not hang the persistent pool's condvar loop.
#[test]
#[should_panic(expected = "parallel simulation worker panicked")]
fn worker_panic_propagates_instead_of_deadlocking() {
    // The worker's own payload ("module blew up") is printed on its
    // thread, but the control thread rethrows with the pool's message;
    // a regression of the barrier poisoning shows up as a hang, not a
    // different string.
    struct Bomb {
        ticks: u32,
    }
    impl Module for Bomb {
        fn kind(&self) -> &str {
            "bomb"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
            ctx.set_timer(Dur::millis(1), 1);
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
        fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _: TimerId, _: u64) {
            self.ticks += 1;
            assert!(self.ticks < 5 || ctx.stack_id() != StackId(5), "module blew up");
            ctx.set_timer(Dur::millis(1), 1);
        }
    }
    let cfg = SimConfig::clustered(8, 1, 2, NetConfig::lan(), NetConfig::wan()).with_workers(3);
    let mut sim = Sim::new(cfg, |sc| {
        let mut s = Stack::new(sc, FactoryRegistry::new());
        s.add_module(Box::new(Bomb { ticks: 0 }));
        s
    });
    sim.run_until(Time::ZERO + Dur::secs(1));
}

/// Workload generators are pinned per cluster: their arrival streams,
/// and therefore the whole run, are identical across worker counts.
#[test]
fn cluster_pinned_workloads_are_worker_count_invariant() {
    let run = |workers: usize| {
        let cfg = SimConfig::clustered(8, 99, 2, NetConfig::lan(), NetConfig::wan())
            .with_workers(workers);
        let mut sim = Sim::new(cfg, mk_stack);
        let nodes = sim.stack_ids();
        let until = Time::ZERO + Dur::millis(400);
        dpu_sim::workload::install(
            &mut sim,
            "poisson",
            nodes,
            until,
            dpu_sim::workload::Generator::Poisson {
                rate: 2_000.0,
                inject: Box::new(|sim, node| {
                    let data =
                        (StackId((node.0 + 1) % sim.n()), Bytes::from_static(b"w")).to_bytes();
                    sim.with_stack(node, |s| {
                        s.call_as(
                            dpu_core::ModuleId(2),
                            &ServiceId::new(dpu_core::svc::NET),
                            net_ops::SEND,
                            data,
                        )
                    });
                }),
            },
        );
        sim.run_until(until + Dur::millis(50));
        let stats = sim.stats();
        let fp = trace_fingerprint(&sim.merged_trace());
        (stats, fp)
    };
    let serial = run(1);
    let parallel = run(3);
    assert!(serial.0.workloads[0].injected > 100, "{:?}", serial.0.workloads);
    assert_eq!(serial, parallel);
}
