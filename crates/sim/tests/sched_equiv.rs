//! Scheduler-equivalence property test: the sharded calendar-queue
//! scheduler must reproduce the single-heap scheduler's run *exactly* —
//! same stats, same trace fingerprint — for random small configurations.
//! This is the per-seed generalization of the fixed golden-trace check
//! in `tests/host_equivalence.rs`: event pop order decides every RNG
//! draw downstream, so a single out-of-order pop diverges the
//! fingerprint immediately.

use bytes::Bytes;
use dpu_core::stack::{net_ops, FactoryRegistry, ModuleCtx};
use dpu_core::time::{Dur, Time};
use dpu_core::wire::Encode;
use dpu_core::{Call, Module, Response, ServiceId, Stack, StackConfig, StackId, TimerId};
use dpu_sim::{SchedConfig, SchedKind, Sim, SimConfig, SimStats};
use proptest::prelude::*;

/// The shared equivalence-suite fingerprint (see
/// `dpu_core::TraceLog::fingerprint`).
fn trace_fingerprint(trace: &dpu_core::TraceLog) -> u64 {
    trace.fingerprint()
}

/// A busy module: periodic timers, rotating sends, echoes — enough event
/// diversity (packets, wakes, steps) to exercise every scheduler path.
struct Chatter {
    period: Dur,
    next_peer: u32,
    received: u64,
}

impl Module for Chatter {
    fn kind(&self) -> &str {
        "chatter"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![ServiceId::new(dpu_core::svc::NET)]
    }
    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        ctx.set_timer(self.period, 1);
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != net_ops::RECV {
            return;
        }
        self.received += 1;
        if self.received.is_multiple_of(2) {
            let (src, _): (StackId, Bytes) = resp.decode().unwrap();
            let reply = (src, Bytes::from_static(b"echo")).to_bytes();
            ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, reply);
        }
    }
    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _: TimerId, _: u64) {
        let n = ctx.peers().len() as u32;
        let me = ctx.stack_id().0;
        let peer = StackId((me + 1 + self.next_peer) % n);
        self.next_peer = (self.next_peer + 1) % n.max(1);
        if peer != ctx.stack_id() {
            let data = (peer, Bytes::from_static(b"tick")).to_bytes();
            ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data);
        }
        ctx.set_timer(self.period, 1);
    }
}

fn mk_stack(sc: StackConfig) -> Stack {
    let mut s = Stack::new(sc, FactoryRegistry::new());
    s.add_module(Box::new(Chatter { period: Dur::millis(7), next_peer: 0, received: 0 }));
    s
}

#[allow(clippy::too_many_arguments)]
fn run(
    kind: SchedKind,
    bucket_us: u64,
    n: u32,
    seed: u64,
    loss: f64,
    duplicate: f64,
    millis: u64,
    crash: bool,
) -> (SimStats, u64) {
    let mut cfg = SimConfig::lan(n, seed);
    cfg.net.loss = loss;
    cfg.net.duplicate = duplicate;
    cfg.sched = SchedConfig { kind, bucket: Dur::micros(bucket_us), buckets: 256, adaptive: true };
    let mut sim = Sim::new(cfg, mk_stack);
    if crash {
        sim.crash_at(Time::ZERO + Dur::millis(millis / 2), StackId(n - 1));
    }
    sim.run_until(Time::ZERO + Dur::millis(millis));
    let stats = sim.stats().clone();
    let fp = trace_fingerprint(&sim.merged_trace());
    (stats, fp)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The calendar-queue scheduler reproduces the single-heap trace
    /// fingerprint for random small configs — including random bucket
    /// widths, so bucket-boundary ties get exercised, and fault settings
    /// that make the RNG stream order-sensitive.
    #[test]
    fn sharded_scheduler_reproduces_single_heap_fingerprint(
        n in 2u32..=8,
        seed in any::<u64>(),
        loss in 0.0f64..0.3,
        duplicate in 0.0f64..0.2,
        millis in 40u64..200,
        bucket_us in prop_oneof![Just(1u64), Just(13), Just(64), Just(500), Just(5_000)],
        crash in any::<bool>(),
    ) {
        let reference = run(SchedKind::SingleHeap, 64, n, seed, loss, duplicate, millis, crash);
        let sharded = run(SchedKind::Calendar, bucket_us, n, seed, loss, duplicate, millis, crash);
        prop_assert_eq!(&reference.0, &sharded.0, "stats diverged");
        prop_assert_eq!(reference.1, sharded.1, "trace fingerprint diverged");
    }
}
