//! Shard-pool observational-equivalence property test: the scratch
//! loan discipline ([`dpu_sim::SimConfig::scratch_pooling`]) is a pure
//! representation change — *where* encode buffers live (one pool per
//! shard vs one retained set per stack) must never show in anything a
//! run computes. Across random clustered topologies, fault settings and
//! worker counts, a pooled run and a per-stack run must produce the
//! same stats, the same trace fingerprint and the same number of
//! emitted wire messages; and in both modes the scratch accounting
//! identity `emitted == reclaimed + allocations` must hold exactly.
//!
//! Reclaim/allocation *counts* are intentionally not compared across
//! modes: a deep shared pool reclaims buffers a 32-entry per-stack set
//! would have dropped, so those counters are the win being bought, not
//! an invariant.

use bytes::Bytes;
use dpu_core::stack::{net_ops, FactoryRegistry, ModuleCtx};
use dpu_core::time::{Dur, Time};
use dpu_core::wire::Encode;
use dpu_core::{Call, Module, Response, ServiceId, Stack, StackConfig, StackId, TimerId};
use dpu_sim::{NetConfig, Sim, SimConfig, SimStats};
use proptest::prelude::*;

/// A busy module: periodic timers, rotating sends (half across cluster
/// boundaries), echoes — enough encode traffic through every dispatch
/// path (deliver, step, settle) to catch a loan imbalance anywhere.
struct Chatter {
    period: Dur,
    next_peer: u32,
    received: u64,
}

impl Module for Chatter {
    fn kind(&self) -> &str {
        "chatter"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![ServiceId::new(dpu_core::svc::NET)]
    }
    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        ctx.set_timer(self.period, 1);
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != net_ops::RECV {
            return;
        }
        self.received += 1;
        if self.received.is_multiple_of(2) {
            let (src, _): (StackId, Bytes) = resp.decode().unwrap();
            let reply = (src, Bytes::from_static(b"echo")).to_bytes();
            ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, reply);
        }
    }
    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _: TimerId, _: u64) {
        let n = ctx.peers().len() as u32;
        let me = ctx.stack_id().0;
        let peer = StackId((me + 1 + self.next_peer) % n);
        self.next_peer = (self.next_peer + 1) % n.max(1);
        if peer != ctx.stack_id() {
            let data = (peer, Bytes::from_static(b"tick")).to_bytes();
            ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data);
        }
        ctx.set_timer(self.period, 1);
    }
}

fn mk_stack(sc: StackConfig) -> Stack {
    let mut s = Stack::new(sc, FactoryRegistry::new());
    s.add_module(Box::new(Chatter { period: Dur::millis(7), next_peer: 0, received: 0 }));
    s
}

struct Scenario {
    n: u32,
    cluster_size: u32,
    seed: u64,
    loss: f64,
    backbone_us: u64,
    millis: u64,
    crash: bool,
    restart: bool,
}

/// One full run: returns `(stats, fingerprint, wire stats)`.
fn run(
    sc: &Scenario,
    pooling: bool,
    workers: usize,
) -> (SimStats, u64, dpu_core::wire::ScratchStats) {
    let intra = NetConfig::lan();
    let backbone = NetConfig {
        latency: Dur::micros(sc.backbone_us),
        jitter: Dur::micros(sc.backbone_us / 4),
        ..NetConfig::lan()
    };
    let mut cfg = SimConfig::clustered(sc.n, sc.seed, sc.cluster_size, intra, backbone);
    cfg.net.loss = sc.loss;
    cfg.workers = workers;
    let cfg = cfg.with_scratch_pooling(pooling);
    let mut sim = Sim::new(cfg, mk_stack);
    if sc.crash {
        sim.crash_at(Time::ZERO + Dur::millis(sc.millis / 2), StackId(sc.n - 1));
    }
    if sc.restart {
        // Churn exercises the retired-stats absorption path: the wire
        // counters of a retiring stack must survive into the totals.
        sim.schedule(Time::ZERO + Dur::millis(sc.millis / 3), |sim| {
            sim.restart_node_with(StackId(0), mk_stack);
        });
    }
    sim.run_until(Time::ZERO + Dur::millis(sc.millis));
    let stats = sim.stats();
    let fp = sim.merged_trace().fingerprint();
    let wire = sim.wire_stats();
    (stats, fp, wire)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Pooled and per-stack scratch runs are observationally identical
    /// — stats, fingerprint, emitted count — and both modes satisfy the
    /// scratch accounting identity exactly.
    #[test]
    fn shard_pool_is_observationally_identical_to_per_stack_scratch(
        n in 4u32..=12,
        cluster_size in prop_oneof![Just(1u32), Just(2), Just(3), Just(5)],
        seed in any::<u64>(),
        loss in 0.0f64..0.2,
        backbone_us in prop_oneof![Just(150u64), Just(400), Just(2_000)],
        millis in 30u64..100,
        crash in any::<bool>(),
        restart in any::<bool>(),
        workers in 1usize..=4,
    ) {
        let sc = Scenario { n, cluster_size, seed, loss, backbone_us, millis, crash, restart };
        let pooled = run(&sc, true, workers);
        let per_stack = run(&sc, false, workers);
        prop_assert_eq!(&pooled.0, &per_stack.0, "stats diverged");
        prop_assert_eq!(pooled.1, per_stack.1, "trace fingerprint diverged");
        prop_assert_eq!(pooled.2.emitted, per_stack.2.emitted, "emitted wire messages diverged");
        for (mode, wire) in [("pooled", pooled.2), ("per-stack", per_stack.2)] {
            prop_assert_eq!(
                wire.emitted,
                wire.reclaimed + wire.allocations,
                "{} scratch accounting identity broken",
                mode
            );
        }
    }
}

/// The pooled representation's defining property, deterministic
/// edition: a pooled run's wire totals are exactly the shard pools plus
/// retired partials (per-stack residuals are zero), and they match the
/// per-stack run's totals on the same scenario even across churn.
#[test]
fn pooled_wire_totals_survive_churn() {
    let sc = Scenario {
        n: 9,
        cluster_size: 3,
        seed: 0xC0FFEE,
        loss: 0.05,
        backbone_us: 400,
        millis: 120,
        crash: true,
        restart: true,
    };
    let pooled = run(&sc, true, 3);
    let per_stack = run(&sc, false, 3);
    assert_eq!(pooled.0, per_stack.0, "stats diverged");
    assert_eq!(pooled.1, per_stack.1, "fingerprint diverged");
    assert_eq!(pooled.2.emitted, per_stack.2.emitted, "emitted diverged");
    assert!(pooled.2.emitted > 0, "the run must actually emit messages");
}
