//! Property tests for the simulator's core contract: a run is a pure
//! function of (configuration, seed). Two sims with the same inputs must
//! produce bit-identical statistics and traces, regardless of network
//! fault settings.

use bytes::Bytes;
use dpu_core::stack::{net_ops, FactoryRegistry, ModuleCtx};
use dpu_core::time::{Dur, Time};
use dpu_core::wire::Encode;
use dpu_core::{Call, Module, Response, ServiceId, Stack, StackConfig, StackId, TimerId};
use dpu_sim::{Sim, SimConfig, SimStats};
use proptest::prelude::*;

/// A busy little module: periodically sends to a rotating peer, counts
/// receipts, echoes half of them back.
struct Chatter {
    period: Dur,
    next_peer: u32,
    received: u64,
}

impl Module for Chatter {
    fn kind(&self) -> &str {
        "chatter"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![ServiceId::new(dpu_core::svc::NET)]
    }
    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        ctx.set_timer(self.period, 1);
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != net_ops::RECV {
            return;
        }
        self.received += 1;
        if self.received.is_multiple_of(2) {
            let (src, _): (StackId, Bytes) = resp.decode().unwrap();
            let reply = (src, Bytes::from_static(b"echo")).to_bytes();
            ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, reply);
        }
    }
    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _: TimerId, _: u64) {
        let n = ctx.peers().len() as u32;
        let me = ctx.stack_id().0;
        let peer = StackId((me + 1 + self.next_peer) % n);
        self.next_peer = (self.next_peer + 1) % n.max(1);
        if peer != ctx.stack_id() {
            let data = (peer, Bytes::from_static(b"tick")).to_bytes();
            ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data);
        }
        ctx.set_timer(self.period, 1);
    }
}

fn mk_stack(sc: StackConfig) -> Stack {
    let mut s = Stack::new(sc, FactoryRegistry::new());
    s.add_module(Box::new(Chatter { period: Dur::millis(7), next_peer: 0, received: 0 }));
    s
}

fn run(n: u32, seed: u64, loss: f64, duplicate: f64, millis: u64) -> (SimStats, usize) {
    let mut cfg = SimConfig::lan(n, seed);
    cfg.net.loss = loss;
    cfg.net.duplicate = duplicate;
    let mut sim = Sim::new(cfg, mk_stack);
    sim.run_until(Time::ZERO + Dur::millis(millis));
    let stats = sim.stats().clone();
    let trace_len = sim.merged_trace().len();
    (stats, trace_len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn same_inputs_same_run(
        n in 2u32..6,
        seed in any::<u64>(),
        loss in 0.0f64..0.5,
        duplicate in 0.0f64..0.5,
        millis in 50u64..300,
    ) {
        let a = run(n, seed, loss, duplicate, millis);
        let b = run(n, seed, loss, duplicate, millis);
        prop_assert_eq!(a.0, b.0, "stats must be identical");
        prop_assert_eq!(a.1, b.1, "trace length must be identical");
    }

    #[test]
    fn different_seeds_usually_differ(seed in any::<u64>()) {
        // With loss enabled, different seeds make different drop
        // decisions; statistically this shows in the stats. (We only
        // require that the simulator *can* differ — a strict inequality
        // on every pair would be flaky by design.)
        let a = run(3, seed, 0.3, 0.0, 200);
        let b = run(3, seed ^ 0xDEADBEEF, 0.3, 0.0, 200);
        // Drop counts differing is the common case; when they coincide,
        // the run is still valid — just don't assert anything stronger.
        prop_assume!(a.0.packets_sent > 0);
        prop_assert!(b.0.packets_sent > 0);
    }

    #[test]
    fn conservation_of_packets(
        n in 2u32..5,
        seed in any::<u64>(),
        loss in 0.0f64..0.5,
        millis in 50u64..200,
    ) {
        let (stats, _) = run(n, seed, loss, 0.0, millis);
        // Without duplication: delivered + dropped ≤ sent (some may be
        // in flight at the horizon).
        prop_assert!(stats.packets_delivered + stats.packets_dropped() <= stats.packets_sent);
        if loss == 0.0 {
            prop_assert_eq!(stats.packets_dropped(), 0);
        }
    }
}
