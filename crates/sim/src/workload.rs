//! Workload generation: pluggable traffic generators and fault
//! schedules, all seeded from the master RNG so a run stays a pure
//! function of `(configuration, seed)`.
//!
//! The paper's evaluation drives the stack with a closed-loop,
//! constant-rate probe (§6); meaningful latency-vs-load curves at
//! n ≫ 7 need richer arrivals. This module provides:
//!
//! * **open-loop Poisson** ([`Generator::Poisson`]) — memoryless
//!   arrivals at a fixed aggregate rate, independent per-node streams;
//! * **inhomogeneous / bursty Poisson** ([`Generator::Bursty`]) — a
//!   periodically modulated intensity `rate(t)`, sampled by *thinning*
//!   (draw candidates at the peak rate, accept with probability
//!   `rate(t)/peak`), the standard method for inhomogeneous Poisson
//!   process simulation (Hohmann, "IPPP", 2019);
//! * **closed-loop** ([`Generator::ClosedLoop`]) — each node keeps at
//!   most `window` requests outstanding and injects the next one when
//!   an earlier one completes, the ping-pong shape of the paper's own
//!   probes;
//! * **node churn** ([`Generator::Churn`]) — crash a random subset of
//!   nodes at random times and restart them with freshly built stacks,
//!   for live-switch-under-failure experiments.
//!
//! Generators are decoupled from *what* a message is: traffic variants
//! carry an [`InjectFn`] that performs one application-level send (e.g.
//! `dpu-repl`'s probe broadcast), and the closed-loop variant a
//! [`CompletedFn`] that reports how many of a node's sends have
//! completed. Each installed generator gets a
//! [`crate::stats::WorkloadStats`] slot in [`crate::SimStats`],
//! reported by [`crate::Sim::report`].
//!
//! # Cluster pinning
//!
//! On a clustered [`crate::Topology`] each traffic generator is split
//! at [`install`] time into one *sub-generator per cluster*, each with
//! its own RNG stream derived from the master seed and the cluster id,
//! driving only that cluster's nodes (rates are split proportionally,
//! so the aggregate is preserved — for Poisson arrivals the
//! superposition of the per-cluster streams *is* the requested
//! process). A cluster's arrival times therefore never depend on
//! another cluster's draws, matching how the parallel engine
//! ([`crate::par`]) isolates cluster state; all sub-generators share
//! the installed [`InjectFn`]/[`CompletedFn`] and the single
//! [`crate::stats::WorkloadStats`] slot. Churn is the exception: it
//! crashes a random
//! subset of the *whole* node set, so it stays a single global
//! schedule. Generator injections run as barrier actions
//! ([`crate::Sim::schedule`]), between epochs of the parallel engine.

use crate::Sim;
use dpu_core::time::{Dur, Time};
use dpu_core::{Stack, StackConfig, StackId};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Performs one application-level send from `node` (e.g. broadcast one
/// probe message). Called on the simulation thread at injection time.
pub type InjectFn = Box<dyn FnMut(&mut Sim, StackId) + Send>;

/// Reports how many of `node`'s injected operations have completed
/// (e.g. own probe messages delivered back). Drives the closed loop.
pub type CompletedFn = Box<dyn FnMut(&mut Sim, StackId) -> u64 + Send>;

/// Builds a replacement [`Stack`] for a restarted node; see
/// [`Generator::Churn`] and [`Sim::restart_node`].
pub type StackFactory = Arc<dyn Fn(StackConfig) -> Stack + Send + Sync>;

/// A traffic or fault generator. Install with [`install`].
pub enum Generator {
    /// Open-loop Poisson arrivals: `rate` messages/second *aggregate*
    /// across the workload's nodes, split into independent per-node
    /// streams (their superposition is Poisson at the aggregate rate).
    Poisson {
        /// Aggregate arrival rate, messages/second.
        rate: f64,
        /// One application send.
        inject: InjectFn,
    },
    /// Bursty (inhomogeneous) Poisson: intensity alternates each
    /// `period` between `burst` (for the first `duty` fraction) and
    /// `base`, sampled by thinning at the `burst` rate. Rates are
    /// aggregate, like [`Generator::Poisson`].
    Bursty {
        /// Off-burst aggregate rate, messages/second.
        base: f64,
        /// In-burst aggregate rate, messages/second; must be ≥ `base`.
        burst: f64,
        /// Length of one base+burst cycle.
        period: Dur,
        /// Fraction of each period spent at the `burst` rate, in (0, 1).
        duty: f64,
        /// One application send.
        inject: InjectFn,
    },
    /// Closed loop: every `poll`, each node with fewer than `window`
    /// outstanding operations injects one more. `completed` reports a
    /// node's finished operations.
    ClosedLoop {
        /// Max outstanding operations per node.
        window: u64,
        /// Poll interval.
        poll: Dur,
        /// One application send.
        inject: InjectFn,
        /// Completed-operation count for a node.
        completed: CompletedFn,
    },
    /// Crash `crashes` distinct random nodes of the workload at uniform
    /// random times in `[install time, until]`, restarting each
    /// `downtime` later with a stack built by `factory`.
    Churn {
        /// Number of distinct nodes to crash.
        crashes: u32,
        /// How long a crashed node stays down before restarting.
        downtime: Dur,
        /// Builds the replacement stack.
        factory: StackFactory,
    },
}

/// An [`InjectFn`]/[`CompletedFn`] shared by the per-cluster
/// sub-generators of one installation. Sub-generators fire as barrier
/// actions on the simulation thread, one at a time, so the lock is
/// never contended.
type SharedFn<F> = Arc<Mutex<F>>;

/// The node set of one installation, split by topology cluster (one
/// entry per cluster that owns at least one of the nodes, in cluster
/// order).
fn split_by_cluster(sim: &Sim, nodes: &[StackId]) -> BTreeMap<u32, Vec<StackId>> {
    let mut by_cluster: BTreeMap<u32, Vec<StackId>> = BTreeMap::new();
    for &node in nodes {
        by_cluster.entry(sim.topology().cluster_of(node)).or_default().push(node);
    }
    by_cluster
}

/// The RNG stream of installation `id`'s sub-generator for `cluster`.
/// Cluster 0's salt matches the pre-pinning single-stream salt, so flat
/// (single-cluster) simulations reproduce their historical arrivals.
fn sub_rng(sim: &Sim, id: usize, cluster: u32) -> SmallRng {
    sim.derive_rng(0x9D39_247E_3377_6D41 ^ (id as u64) << 7 ^ u64::from(cluster) << 32)
}

/// Install a generator: `nodes` is the set it drives, `until` when it
/// stops. Returns the generator's index into
/// [`crate::SimStats::workloads`]. On clustered topologies traffic
/// generators are pinned per cluster (see the module docs).
pub fn install(
    sim: &mut Sim,
    name: &str,
    nodes: Vec<StackId>,
    until: Time,
    gen: Generator,
) -> usize {
    let id = sim.register_workload(name.to_string());
    match gen {
        Generator::Poisson { rate, inject } => {
            spawn_thinned(sim, id, nodes, until, inject, Intensity::constant(rate));
        }
        Generator::Bursty { base, burst, period, duty, inject } => {
            assert!(burst >= base, "burst rate must be >= base rate");
            let shape = Intensity { base, peak: burst, period: period.as_nanos().max(1), duty };
            spawn_thinned(sim, id, nodes, until, inject, shape);
        }
        Generator::ClosedLoop { window, poll, inject, completed } => {
            let inject = Arc::new(Mutex::new(inject));
            let completed = Arc::new(Mutex::new(completed));
            for (_, members) in split_by_cluster(sim, &nodes) {
                let st = ClosedLoopState {
                    id,
                    sent: vec![0; members.len()],
                    prev_done: vec![0; members.len()],
                    nodes: members,
                    window,
                    poll,
                    until,
                    inject: Arc::clone(&inject),
                    completed: Arc::clone(&completed),
                };
                closed_loop_tick(sim, Box::new(st));
            }
        }
        Generator::Churn { crashes, downtime, factory } => {
            let rng = sub_rng(sim, id, 0);
            spawn_churn(sim, id, nodes, until, rng, crashes, downtime, factory);
        }
    }
    id
}

/// The (periodic, two-level) intensity function of a thinned generator.
#[derive(Clone)]
struct Intensity {
    base: f64,
    peak: f64,
    period: u64,
    duty: f64,
}

impl Intensity {
    fn constant(rate: f64) -> Intensity {
        Intensity { base: rate, peak: rate, period: 1, duty: 1.0 }
    }

    /// Intensity at time `t` (aggregate msgs/sec).
    fn at(&self, t: Time) -> f64 {
        let phase = (t.as_nanos() % self.period) as f64 / self.period as f64;
        if phase < self.duty {
            self.peak
        } else {
            self.base
        }
    }

    /// Whether `t` lies in the burst window of its period.
    fn in_burst(&self, t: Time) -> bool {
        self.peak > self.base
            && ((t.as_nanos() % self.period) as f64) < self.duty * self.period as f64
    }

    /// Index of the period containing `t` (for counting burst windows).
    fn window_of(&self, t: Time) -> u64 {
        t.as_nanos() / self.period
    }
}

/// Per-node candidate streams at the peak rate, thinned to `shape` —
/// one instance per topology cluster, over that cluster's nodes only.
struct ThinnedState {
    id: usize,
    nodes: Vec<StackId>,
    /// Per-node next candidate arrival, keyed for deterministic pops.
    next: BinaryHeap<Reverse<(Time, u32)>>,
    rng: SmallRng,
    inject: SharedFn<InjectFn>,
    shape: Intensity,
    until: Time,
    /// Peak rate per node (candidate stream intensity).
    peak_per_node: f64,
    last_burst_window: Option<u64>,
}

fn exp_sample(rng: &mut SmallRng, rate_per_sec: f64) -> Dur {
    // Inverse-transform: dt = -ln(1-U)/λ. U ∈ [0,1) keeps ln finite.
    let u: f64 = rng.gen();
    let secs = -(1.0 - u).ln() / rate_per_sec;
    Dur::secs_f64(secs.max(1e-9))
}

fn spawn_thinned(
    sim: &mut Sim,
    id: usize,
    nodes: Vec<StackId>,
    until: Time,
    inject: InjectFn,
    shape: Intensity,
) {
    if nodes.is_empty() || shape.peak <= 0.0 {
        return;
    }
    // The per-node candidate rate is derived from the *whole* node set,
    // so splitting by cluster preserves the aggregate intensity.
    let peak_per_node = shape.peak / nodes.len() as f64;
    let inject = Arc::new(Mutex::new(inject));
    let now = sim.now();
    for (cluster, members) in split_by_cluster(sim, &nodes) {
        let mut rng = sub_rng(sim, id, cluster);
        let mut next = BinaryHeap::new();
        for (i, _) in members.iter().enumerate() {
            let t = now + exp_sample(&mut rng, peak_per_node);
            next.push(Reverse((t, i as u32)));
        }
        let st = Box::new(ThinnedState {
            id,
            nodes: members,
            next,
            rng,
            inject: Arc::clone(&inject),
            shape: shape.clone(),
            until,
            peak_per_node,
            last_burst_window: None,
        });
        schedule_thinned(sim, st);
    }
}

fn schedule_thinned(sim: &mut Sim, st: Box<ThinnedState>) {
    let Some(&Reverse((t, _))) = st.next.peek() else { return };
    if t > st.until {
        return;
    }
    sim.schedule(t, move |sim| thinned_fire(sim, st));
}

fn thinned_fire(sim: &mut Sim, mut st: Box<ThinnedState>) {
    let Some(Reverse((t, i))) = st.next.pop() else { return };
    let node = st.nodes[i as usize];
    // Thinning: accept this candidate with probability rate(t)/peak.
    let accept = st.rng.gen::<f64>() < st.shape.at(t) / st.shape.peak;
    if accept && !sim.stack(node).is_crashed() {
        (st.inject.lock())(sim, node);
        sim.workload_mut(st.id).injected += 1;
        if st.shape.in_burst(t) {
            let w = st.shape.window_of(t);
            if st.last_burst_window != Some(w) {
                st.last_burst_window = Some(w);
                sim.workload_mut(st.id).bursts += 1;
            }
        }
    }
    let dt = exp_sample(&mut st.rng, st.peak_per_node);
    st.next.push(Reverse((t + dt, i)));
    schedule_thinned(sim, st);
}

/// Closed-loop window state — one instance per topology cluster, over
/// that cluster's nodes only.
struct ClosedLoopState {
    id: usize,
    nodes: Vec<StackId>,
    sent: Vec<u64>,
    /// Last `completed` reading per node, to detect restarts.
    prev_done: Vec<u64>,
    window: u64,
    poll: Dur,
    until: Time,
    inject: SharedFn<InjectFn>,
    completed: SharedFn<CompletedFn>,
}

fn closed_loop_tick(sim: &mut Sim, mut st: Box<ClosedLoopState>) {
    if sim.now() > st.until {
        return;
    }
    for i in 0..st.nodes.len() {
        let node = st.nodes[i];
        if sim.stack(node).is_crashed() {
            continue;
        }
        let done = (st.completed.lock())(sim, node);
        if done < st.prev_done[i] {
            // The completed counter went backwards: the node was
            // restarted with a fresh stack (churn), which dropped its
            // outstanding operations. Reconcile, or the stale `sent`
            // count would starve the node for the rest of the run.
            st.sent[i] = done;
        }
        st.prev_done[i] = done;
        if st.sent[i].saturating_sub(done) < st.window {
            (st.inject.lock())(sim, node);
            st.sent[i] += 1;
            sim.workload_mut(st.id).injected += 1;
        }
    }
    let poll = st.poll;
    sim.schedule_in(poll, move |sim| closed_loop_tick(sim, st));
}

#[allow(clippy::too_many_arguments)]
fn spawn_churn(
    sim: &mut Sim,
    id: usize,
    nodes: Vec<StackId>,
    until: Time,
    mut rng: SmallRng,
    crashes: u32,
    downtime: Dur,
    factory: StackFactory,
) {
    let now = sim.now();
    let span = until.since(now).as_nanos();
    if span == 0 || nodes.is_empty() {
        return;
    }
    // Sample `crashes` distinct victims.
    let mut pool = nodes;
    let mut victims = Vec::new();
    for _ in 0..crashes.min(pool.len() as u32) {
        let i = rng.gen_range(0..pool.len() as u64) as usize;
        victims.push(pool.swap_remove(i));
    }
    for victim in victims {
        let crash_at = now + Dur::nanos(rng.gen_range(0..span));
        let factory = Arc::clone(&factory);
        sim.schedule(crash_at, move |sim| {
            sim.crash_at(sim.now(), victim);
            sim.workload_mut(id).crashes += 1;
            sim.schedule_in(downtime, move |sim| {
                // Eager-drop restart: the crashed incarnation is freed
                // before the factory builds its replacement, so churn
                // never holds two copies of a node's state alive.
                sim.restart_node_with(victim, |sc| factory(sc));
                sim.workload_mut(id).restarts += 1;
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimConfig};
    use dpu_core::FactoryRegistry;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn empty_sim(n: u32, seed: u64) -> Sim {
        Sim::new(SimConfig::lan(n, seed), |sc| Stack::new(sc, FactoryRegistry::new()))
    }

    fn counting_inject(counter: Arc<AtomicU64>) -> InjectFn {
        Box::new(move |_sim, _node| {
            counter.fetch_add(1, Ordering::Relaxed);
        })
    }

    #[test]
    fn poisson_injects_at_roughly_the_requested_rate() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = empty_sim(4, 11);
        let nodes = sim.stack_ids();
        let until = Time::ZERO + Dur::secs(10);
        install(
            &mut sim,
            "poisson",
            nodes,
            until,
            Generator::Poisson { rate: 100.0, inject: counting_inject(Arc::clone(&hits)) },
        );
        sim.run_until(until);
        let n = hits.load(Ordering::Relaxed);
        // 100 msg/s × 10 s = 1000 expected; Poisson σ ≈ 32.
        assert!((800..1200).contains(&n), "got {n} injections");
        assert_eq!(sim.stats().workloads[0].injected, n);
        assert_eq!(sim.stats().workloads[0].name, "poisson");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = empty_sim(3, seed);
            let nodes = sim.stack_ids();
            let until = Time::ZERO + Dur::secs(3);
            let hits = Arc::new(AtomicU64::new(0));
            install(
                &mut sim,
                "p",
                nodes,
                until,
                Generator::Poisson { rate: 50.0, inject: counting_inject(Arc::clone(&hits)) },
            );
            sim.run_until(until);
            hits.load(Ordering::Relaxed)
        };
        assert_eq!(run(5), run(5));
        // Different seeds draw different arrival processes (statistically
        // certain over 150 expected arrivals).
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn bursty_injects_more_during_bursts_and_counts_windows() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = empty_sim(2, 17);
        let nodes = sim.stack_ids();
        let until = Time::ZERO + Dur::secs(8);
        install(
            &mut sim,
            "bursty",
            nodes,
            until,
            Generator::Bursty {
                base: 10.0,
                burst: 400.0,
                period: Dur::secs(2),
                duty: 0.25,
                inject: counting_inject(Arc::clone(&hits)),
            },
        );
        sim.run_until(until);
        let n = hits.load(Ordering::Relaxed);
        // Mean rate = 0.25×400 + 0.75×10 = 107.5 msg/s over 8 s ≈ 860.
        assert!((600..1100).contains(&n), "got {n} injections");
        let w = &sim.stats().workloads[0];
        assert_eq!(w.injected, n);
        assert_eq!(w.bursts, 4, "one burst window per 2s period over 8s");
    }

    #[test]
    fn closed_loop_respects_the_window() {
        // completed() always reports 0, so each node can only ever have
        // `window` outstanding → exactly window × n injections.
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = empty_sim(3, 23);
        let nodes = sim.stack_ids();
        let until = Time::ZERO + Dur::secs(5);
        install(
            &mut sim,
            "closed",
            nodes,
            until,
            Generator::ClosedLoop {
                window: 2,
                poll: Dur::millis(50),
                inject: counting_inject(Arc::clone(&hits)),
                completed: Box::new(|_, _| 0),
            },
        );
        sim.run_until(until);
        assert_eq!(hits.load(Ordering::Relaxed), 6, "window 2 × 3 nodes, nothing completes");
    }

    #[test]
    fn closed_loop_recovers_when_completions_reset_after_restart() {
        // A restarted node's fresh stack reports completed = 0; the
        // closed loop must reconcile its stale `sent` count instead of
        // treating the node as saturated forever.
        let completions = Arc::new(AtomicU64::new(0));
        let injections = Arc::new(AtomicU64::new(0));
        let mut sim = empty_sim(1, 41);
        let nodes = sim.stack_ids();
        let until = Time::ZERO + Dur::secs(4);
        let c = Arc::clone(&completions);
        let i = Arc::clone(&injections);
        install(
            &mut sim,
            "closed",
            nodes,
            until,
            Generator::ClosedLoop {
                window: 1,
                poll: Dur::millis(100),
                // Every injection completes instantly…
                inject: Box::new(move |_, _| {
                    i.fetch_add(1, Ordering::Relaxed);
                    c.fetch_add(1, Ordering::Relaxed);
                }),
                completed: {
                    let c = Arc::clone(&completions);
                    Box::new(move |_, _| c.load(Ordering::Relaxed))
                },
            },
        );
        sim.run_until(Time::ZERO + Dur::secs(2));
        let before_reset = injections.load(Ordering::Relaxed);
        assert!(before_reset > 10, "loop must be injecting steadily");
        // Simulate a churn restart: the fresh stack has completed nothing.
        completions.store(0, Ordering::Relaxed);
        sim.run_until(until);
        let after_reset = injections.load(Ordering::Relaxed);
        assert!(
            after_reset > before_reset + 10,
            "loop starved after the completion counter reset: {before_reset} -> {after_reset}"
        );
    }

    #[test]
    fn churn_crashes_and_restarts_the_configured_count() {
        let mut sim = empty_sim(6, 31);
        let nodes = sim.stack_ids();
        let until = Time::ZERO + Dur::secs(2);
        let factory: StackFactory = Arc::new(|sc| Stack::new(sc, FactoryRegistry::new()));
        install(
            &mut sim,
            "churn",
            nodes,
            until,
            Generator::Churn { crashes: 2, downtime: Dur::millis(100), factory },
        );
        sim.run_until(until + Dur::secs(1));
        let w = &sim.stats().workloads[0];
        assert_eq!(w.crashes, 2);
        assert_eq!(w.restarts, 2);
        // Everyone is alive again at the end.
        for id in sim.stack_ids() {
            assert!(!sim.stack(id).is_crashed(), "{id} should have restarted");
        }
    }
}
