//! The conservative parallel execution engine: cluster shards on a
//! worker-thread pool, synchronized by lookahead-wide epochs.
//!
//! # Why conservative, and where the lookahead comes from
//!
//! PR 4 made the *scheduler* ~6× faster, but every stack step, wire
//! decode and timer fire still ran on one core. Classic conservative
//! parallel discrete-event simulation (bounded-window / YAWNS-style
//! synchronization) recovers the idle cores: partition the nodes so
//! that interactions *within* a partition are frequent and interactions
//! *across* partitions are slow, then let each partition advance
//! independently through a time window no wider than the fastest
//! cross-partition interaction. The [`crate::Topology`] hands us
//! exactly that partition — LAN clusters joined by a WAN backbone — and
//! the window width (*lookahead*) is the minimum cross-cluster link
//! latency ([`crate::Topology::lookahead`]): a packet sent at time `t`
//! across a cluster boundary cannot arrive before `t + lookahead`,
//! because jitter, transmission delay and NIC queueing only ever add to
//! the propagation delay.
//!
//! # The epoch protocol
//!
//! Let `T` be the earliest pending event over all shards and `W` the
//! lookahead. One epoch:
//!
//! 1. **parallel phase** — every shard processes its own events with
//!    time `< T + W`, in its local deterministic `(time, seq)` order.
//!    Sends to nodes of the same cluster are pushed straight back into
//!    the shard's queue (they may arrive inside the epoch); sends that
//!    cross a cluster boundary are buffered in the source shard's
//!    per-destination outbox — their arrival times are necessarily
//!    `≥ T + W`, so the destination cannot need them this epoch;
//! 2. **barrier** — workers rendezvous on a spin barrier;
//! 3. **exchange** — outboxes are merged into the destination shards'
//!    queues in a fixed order (destination-major, then source shard,
//!    then emission order), each arrival taking the next local `seq`.
//!
//! Barrier-time *actions* (scheduled closures, workload injections —
//! anything needing `&mut Sim`) bound the stretch of epochs: an action
//! at time `t` runs after every shard event before `t` and before any
//! shard event at or after `t` (`crate::Sim::schedule`).
//!
//! # Determinism
//!
//! The run is bit-identical for every worker count because nothing a
//! worker computes depends on *when* or *where* it runs:
//!
//! * shard state (nodes, event queue, `seq` counter, link-randomness
//!   RNG stream, stats partial) is touched only by the shard's owner —
//!   one worker per epoch, exclusive;
//! * the epoch schedule (`T`, `T + W`, action barriers) is derived from
//!   shard queue minima and the action queue — pure functions of the
//!   configuration and seed;
//! * the exchange merges outboxes in a fixed order, so cross-cluster
//!   arrivals get identical `(time, seq)` keys no matter which thread
//!   produced them; ties in arrival time are broken by (source shard,
//!   emission order), both deterministic;
//! * per-worker counters are per-*shard* counters; folding them
//!   ([`crate::Sim::stats`]) is commutative addition.
//!
//! A flat topology is a single cluster: the lookahead is undefined (no
//! cross-cluster link exists), no safe window exists, and the engine
//! falls back to the classic serial loop — which is why the golden
//! trace of `tests/host_equivalence.rs` is unchanged even with
//! `workers > 1`. `crates/sim/tests/par_equiv.rs` property-tests the
//! serial-vs-parallel equivalence across random clustered topologies,
//! seeds and worker counts, the same way `sched_equiv.rs` pins the
//! scheduler implementations to each other.

use crate::{Shard, SimShared};
use dpu_core::time::Time;
use parking_lot::Mutex;
use std::ops::DerefMut;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// A reusable sense-reversing barrier. Spins briefly (the common case:
/// workers finish their epochs within microseconds of each other), then
/// yields, so it degrades gracefully on machines with fewer cores than
/// workers.
pub(crate) struct SpinBarrier {
    parties: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    pub(crate) fn new(parties: usize) -> SpinBarrier {
        SpinBarrier {
            parties,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Mark the barrier dead: every current and future [`wait`] returns
    /// `false` instead of blocking. Called from a panicking party's
    /// unwind path, so its peers disband instead of spinning forever on
    /// a cohort that can no longer complete.
    ///
    /// [`wait`]: SpinBarrier::wait
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Rendezvous; `true` on a completed phase, `false` if the barrier
    /// was poisoned (the caller must stop using it).
    #[must_use]
    pub(crate) fn wait(&self) -> bool {
        if self.poisoned.load(Ordering::Acquire) {
            return false;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arrival: reset the count, then release the cohort.
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if self.poisoned.load(Ordering::Acquire) {
                    return false;
                }
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        true
    }
}

/// Poisons the barrier if dropped mid-panic, so a panicking worker (or
/// control thread) disbands the cohort; the panic then propagates
/// through the scoped join instead of deadlocking the run.
struct PoisonOnPanic<'a>(&'a SpinBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// The earliest pending event time over all shards (the epoch floor).
pub(crate) fn min_next_time<S: DerefMut<Target = Shard>>(shards: &mut [S]) -> Option<Time> {
    shards.iter_mut().filter_map(|s| s.next_time()).min()
}

/// Merge every shard's cross-cluster outboxes into the destination
/// shards, in the fixed deterministic order: destination-major, then
/// source shard, then emission order. Also used by the serial engine
/// (single worker) and for barrier-context sends, so all three paths
/// assign identical `(time, seq)` keys.
pub(crate) fn exchange<S: DerefMut<Target = Shard>>(shards: &mut [S]) {
    for dst in 0..shards.len() {
        for src in 0..shards.len() {
            let batch = shards[src].take_outbox(dst);
            for packet in batch {
                shards[dst].push_arrival(packet);
            }
        }
    }
}

/// Run epochs on a worker pool until every shard's next event is at or
/// beyond `bound` (exclusive), then hand the shards back. The control
/// thread computes each epoch's horizon and performs the exchange; the
/// workers process `worker-index + k·workers`-strided shards between two
/// barrier waits. Shards travel through `Mutex`es, but every lock is
/// uncontended by construction — the barrier phases alternate exclusive
/// access between the workers and the control thread.
///
/// The pool is scoped to one *stretch* (the span between two barrier
/// actions): each call spawns and joins its workers. That costs a few
/// tens of microseconds per action timestamp — noise for timer-driven
/// load, and ~1% of an action-dense run like the Poisson abcast soak
/// (hundreds of stretches over seconds of wall time). A pool that
/// persists across stretches would need the shards (and the topology
/// they read) lifted out of `Sim` behind `Arc`s so actions can still
/// take `&mut Sim` between epochs; tracked as a ROADMAP follow-up.
pub(crate) fn run_stretch_threaded(
    shards: Vec<Shard>,
    shared: &SimShared<'_>,
    lookahead_ns: u64,
    bound: Time,
    workers: usize,
) -> Vec<Shard> {
    let nshards = shards.len();
    let cells: Vec<Mutex<Shard>> = shards.into_iter().map(Mutex::new).collect();
    let barrier = SpinBarrier::new(workers + 1);
    let horizon = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    crossbeam::thread::scope(|scope| {
        for wi in 0..workers {
            let (cells, barrier, horizon, stop) = (&cells, &barrier, &horizon, &stop);
            scope.spawn(move |_| {
                // A panic in module code (run_epoch executes arbitrary
                // stack handlers) poisons the barrier on unwind so the
                // cohort disbands; the panic itself propagates through
                // the scoped join below.
                let _poison = PoisonOnPanic(barrier);
                loop {
                    if !barrier.wait() {
                        return; // a peer panicked
                    }
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let h = Time(horizon.load(Ordering::Acquire));
                    let mut i = wi;
                    while i < nshards {
                        cells[i].lock().run_epoch(shared, h);
                        i += workers;
                    }
                    if !barrier.wait() {
                        return; // a peer panicked
                    }
                }
            });
        }
        // Control loop. Between the end-of-epoch barrier and the next
        // start-of-epoch barrier the workers hold no locks, so the
        // control thread has exclusive access for exchange + floor.
        // Returning on a poisoned wait (never blocking on it) lets the
        // scope join the panicked worker and re-raise its panic.
        let _poison = PoisonOnPanic(&barrier);
        let mut floor = {
            let mut guards: Vec<_> = cells.iter().map(|c| c.lock()).collect();
            min_next_time(&mut guards)
        };
        loop {
            let Some(f) = floor.filter(|f| *f < bound) else {
                stop.store(true, Ordering::Release);
                let _ = barrier.wait();
                return;
            };
            horizon.store(f.0.saturating_add(lookahead_ns).min(bound.0), Ordering::Release);
            if !barrier.wait() {
                return; // workers start the epoch (or a worker panicked)
            }
            if !barrier.wait() {
                return; // workers finished the epoch (or one panicked)
            }
            let mut guards: Vec<_> = cells.iter().map(|c| c.lock()).collect();
            exchange(&mut guards);
            floor = min_next_time(&mut guards);
        }
    })
    .expect("parallel simulation worker panicked");
    cells.into_iter().map(Mutex::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::SpinBarrier;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spin_barrier_synchronizes_repeated_phases() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = SpinBarrier::new(THREADS);
        let arrived = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|_| {
                    for round in 0..ROUNDS {
                        arrived.fetch_add(1, Ordering::AcqRel);
                        assert!(barrier.wait());
                        // Between two waits every thread observes the
                        // full cohort of the current round.
                        let seen = arrived.load(Ordering::Acquire);
                        assert!(
                            seen >= (round + 1) * THREADS,
                            "round {round}: saw only {seen} arrivals"
                        );
                        assert!(barrier.wait());
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(arrived.load(Ordering::Acquire), THREADS * ROUNDS);
    }
}
