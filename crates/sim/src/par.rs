//! The conservative parallel execution engine: cluster shards on a
//! worker-thread pool, synchronized by lookahead-wide epochs.
//!
//! # Why conservative, and where the lookahead comes from
//!
//! PR 4 made the *scheduler* ~6× faster, but every stack step, wire
//! decode and timer fire still ran on one core. Classic conservative
//! parallel discrete-event simulation (bounded-window / YAWNS-style
//! synchronization) recovers the idle cores: partition the nodes so
//! that interactions *within* a partition are frequent and interactions
//! *across* partitions are slow, then let each partition advance
//! independently through a time window no wider than the fastest
//! cross-partition interaction. The [`crate::Topology`] hands us
//! exactly that partition — LAN clusters joined by a WAN backbone — and
//! the window width (*lookahead*) is the minimum cross-cluster link
//! latency ([`crate::Topology::lookahead`]): a packet sent at time `t`
//! across a cluster boundary cannot arrive before `t + lookahead`,
//! because jitter, transmission delay and NIC queueing only ever add to
//! the propagation delay.
//!
//! # The epoch protocol
//!
//! Let `T` be the earliest pending event over all shards and `W` the
//! lookahead. One epoch:
//!
//! 1. **parallel phase** — every shard processes its own events with
//!    time `< T + W`, in its local deterministic `(time, seq)` order.
//!    Sends to nodes of the same cluster are pushed straight back into
//!    the shard's queue (they may arrive inside the epoch); sends that
//!    cross a cluster boundary are buffered in the source shard's
//!    per-destination outbox — their arrival times are necessarily
//!    `≥ T + W`, so the destination cannot need them this epoch;
//! 2. **barrier** — workers rendezvous on a spin barrier;
//! 3. **exchange** — outboxes are merged into the destination shards'
//!    queues in a fixed order (destination-major, then source shard,
//!    then emission order), each arrival taking the next local `seq`.
//!
//! Barrier-time *actions* (scheduled closures, workload injections —
//! anything needing `&mut Sim`) bound the stretch of epochs: an action
//! at time `t` runs after every shard event before `t` and before any
//! shard event at or after `t` (`crate::Sim::schedule`).
//!
//! # Determinism
//!
//! The run is bit-identical for every worker count because nothing a
//! worker computes depends on *when* or *where* it runs:
//!
//! * shard state (nodes, event queue, `seq` counter, link-randomness
//!   RNG stream, stats partial) is touched only by the shard's owner —
//!   one worker per epoch, exclusive. *Which* worker owns a shard is
//!   decided dynamically (work-stealing claims, see `WorkerPool`),
//!   but the claim is exclusive and the shard's event order is its own,
//!   so ownership placement is invisible to the result;
//! * the epoch schedule (`T`, `T + W`, action barriers) is derived from
//!   shard queue minima and the action queue — pure functions of the
//!   configuration and seed;
//! * the exchange merges outboxes in a fixed order, so cross-cluster
//!   arrivals get identical `(time, seq)` keys no matter which thread
//!   produced them; ties in arrival time are broken by (source shard,
//!   emission order), both deterministic;
//! * per-worker counters are per-*shard* counters; folding them
//!   ([`crate::Sim::stats`]) is commutative addition.
//!
//! A flat topology is a single cluster: the lookahead is undefined (no
//! cross-cluster link exists), no safe window exists, and the engine
//! falls back to the classic serial loop — which is why the golden
//! trace of `tests/host_equivalence.rs` is unchanged even with
//! `workers > 1`. `crates/sim/tests/par_equiv.rs` property-tests the
//! serial-vs-parallel equivalence across random clustered topologies,
//! seeds and worker counts, the same way `sched_equiv.rs` pins the
//! scheduler implementations to each other.

use crate::{CpuConfig, Shard, SimShared, Topology};
use dpu_core::time::Time;
use parking_lot::Mutex;
use std::ops::DerefMut;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;

/// A reusable sense-reversing barrier. Spins briefly (the common case:
/// workers finish their epochs within microseconds of each other), then
/// yields, so it degrades gracefully on machines with fewer cores than
/// workers.
pub(crate) struct SpinBarrier {
    parties: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    pub(crate) fn new(parties: usize) -> SpinBarrier {
        SpinBarrier {
            parties,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Mark the barrier dead: every current and future [`wait`] returns
    /// `false` instead of blocking. Called from a panicking party's
    /// unwind path, so its peers disband instead of spinning forever on
    /// a cohort that can no longer complete.
    ///
    /// [`wait`]: SpinBarrier::wait
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Rendezvous; `true` on a completed phase, `false` if the barrier
    /// was poisoned (the caller must stop using it).
    #[must_use]
    pub(crate) fn wait(&self) -> bool {
        if self.poisoned.load(Ordering::Acquire) {
            return false;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arrival: reset the count, then release the cohort.
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if self.poisoned.load(Ordering::Acquire) {
                    return false;
                }
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        true
    }
}

/// Poisons the barrier if dropped mid-panic, so a panicking worker (or
/// control thread) disbands the cohort; the panic then propagates
/// through the scoped join instead of deadlocking the run.
struct PoisonOnPanic<'a>(&'a SpinBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// The earliest pending event time over all shards (the epoch floor).
pub(crate) fn min_next_time<S: DerefMut<Target = Shard>>(shards: &mut [S]) -> Option<Time> {
    shards.iter_mut().filter_map(|s| s.next_time()).min()
}

/// Merge every shard's cross-cluster outboxes into the destination
/// shards, in the fixed deterministic order: destination-major, then
/// source shard, then emission order. Also used by the serial engine
/// (single worker) and for barrier-context sends, so all three paths
/// assign identical `(time, seq)` keys.
pub(crate) fn exchange<S: DerefMut<Target = Shard>>(shards: &mut [S]) {
    for dst in 0..shards.len() {
        for src in 0..shards.len() {
            let batch = shards[src].take_outbox(dst);
            for packet in batch {
                shards[dst].push_arrival(packet);
            }
        }
    }
}

/// One stretch of epochs handed to the pool. The shards sit in their
/// cells only during a parallel phase (the control thread owns them
/// between epochs for exchange + floor); the rest is the read-only view
/// workers dispatch against plus the epoch-control atomics.
struct StretchJob {
    cells: Vec<Mutex<Option<Shard>>>,
    topology: Arc<Topology>,
    cpu: CpuConfig,
    n: u32,
    barrier: SpinBarrier,
    /// Exclusive horizon of the current epoch (nanoseconds).
    horizon: AtomicU64,
    stop: AtomicBool,
    /// Work-stealing cursor: workers `fetch_add` their way through
    /// [`StretchJob::order`] until it runs out, so an epoch-imbalanced
    /// shard set self-balances instead of idling the fixed-stride
    /// owners of light shards.
    claim: AtomicUsize,
    /// The claim order of the current epoch: shard indices, busiest
    /// event queue first (longest-processing-time-first — the heavy
    /// shard starts immediately and stragglers don't gate the barrier).
    /// Written by the control thread before the start-of-epoch barrier.
    order: Vec<AtomicUsize>,
}

/// What the pool's condvar guards: a monotone job generation plus the
/// current job. Workers sleep here between stretches.
#[derive(Default)]
struct JobBoard {
    gen: u64,
    job: Option<Arc<StretchJob>>,
    shutdown: bool,
}

/// The persistent worker pool: `workers` OS threads spawned once per
/// [`crate::Sim`] and parked on a condvar between stretches, replacing
/// the old spawn-and-join of scoped threads per stretch (a few tens of
/// microseconds per barrier action — ~1% of an action-dense Poisson
/// soak, and pure waste at the 10⁵-stack scale where stretches are
/// short and plentiful).
///
/// Within a stretch the protocol is unchanged — start barrier, parallel
/// phase, end barrier — except that workers *claim* shards dynamically
/// through [`StretchJob::claim`] instead of walking a fixed stride.
/// Claiming is work stealing with deterministic results: it only decides
/// *which thread* executes a shard's epoch, never the order of events
/// within the shard (exclusive per epoch) nor the exchange order at the
/// barrier (fixed, destination-major), so the run stays bit-identical
/// for every worker count — see the module docs.
///
/// A panic in module code poisons the stretch's barrier: its cohort
/// disbands, the control thread re-raises the panic, and the `Sim` is
/// dead (the shards died with the job). The pool itself shuts down via
/// [`Drop`], which is what a panicking run unwinds into.
pub(crate) struct WorkerPool {
    workers: usize,
    board: Arc<(StdMutex<JobBoard>, Condvar)>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    pub(crate) fn new(workers: usize) -> WorkerPool {
        let board = Arc::new((StdMutex::new(JobBoard::default()), Condvar::new()));
        let threads = (0..workers)
            .map(|wi| {
                let board = Arc::clone(&board);
                std::thread::Builder::new()
                    .name(format!("sim-worker-{wi}"))
                    .spawn(move || worker_loop(&board))
                    .expect("spawn simulation worker thread")
            })
            .collect();
        WorkerPool { workers, board, threads }
    }

    /// Run epochs until every shard's next event is at or beyond `bound`
    /// (exclusive), then hand the shards back. The control thread (the
    /// caller) computes each epoch's horizon and claim order, parks the
    /// shards in the job's cells for the parallel phase, and performs
    /// the exchange between phases, when the workers hold no locks.
    pub(crate) fn run_stretch(
        &self,
        mut shards: Vec<Shard>,
        topology: Arc<Topology>,
        cpu: CpuConfig,
        n: u32,
        lookahead_ns: u64,
        bound: Time,
    ) -> Vec<Shard> {
        let nshards = shards.len();
        let job = Arc::new(StretchJob {
            cells: (0..nshards).map(|_| Mutex::new(None)).collect(),
            topology,
            cpu,
            n,
            barrier: SpinBarrier::new(self.workers + 1),
            horizon: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            claim: AtomicUsize::new(0),
            order: (0..nshards).map(AtomicUsize::new).collect(),
        });
        {
            let (board, cond) = &*self.board;
            let mut b = board.lock().expect("pool board poisoned");
            b.gen += 1;
            b.job = Some(Arc::clone(&job));
            cond.notify_all();
        }
        // If the control thread panics (exchange runs Shard code), the
        // workers must disband rather than spin on a dead cohort.
        let _poison = PoisonOnPanic(&job.barrier);
        loop {
            let floor = {
                let mut views: Vec<&mut Shard> = shards.iter_mut().collect();
                min_next_time(&mut views)
            };
            let Some(f) = floor.filter(|f| *f < bound) else {
                job.stop.store(true, Ordering::Release);
                if !job.barrier.wait() {
                    panic!("parallel simulation worker panicked");
                }
                return shards;
            };
            job.horizon.store(f.0.saturating_add(lookahead_ns).min(bound.0), Ordering::Release);
            // Longest-queue-first claim order; ties break on shard index
            // (sort_by_key is stable), keeping the order deterministic —
            // not that it matters for the result, only for telemetry.
            let mut order: Vec<usize> = (0..nshards).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(shards[i].sched.len()));
            for (slot, idx) in job.order.iter().zip(order) {
                slot.store(idx, Ordering::Relaxed);
            }
            job.claim.store(0, Ordering::Relaxed);
            for (cell, shard) in job.cells.iter().zip(shards.drain(..)) {
                *cell.lock() = Some(shard);
            }
            if !job.barrier.wait() {
                panic!("parallel simulation worker panicked");
            }
            // ... the workers execute the epoch ...
            if !job.barrier.wait() {
                panic!("parallel simulation worker panicked");
            }
            shards.extend(
                job.cells.iter().map(|c| c.lock().take().expect("shard parked for the epoch")),
            );
            let mut views: Vec<&mut Shard> = shards.iter_mut().collect();
            exchange(&mut views);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let (board, cond) = &*self.board;
            if let Ok(mut b) = board.lock() {
                b.shutdown = true;
                cond.notify_all();
            }
        }
        for t in self.threads.drain(..) {
            // A worker that panicked mid-run is already gone; its join
            // error is the panic we re-raised at the barrier.
            let _ = t.join();
        }
    }
}

/// A pool thread: sleep on the board until a new job generation (or
/// shutdown), work the stretch, repeat.
fn worker_loop(board: &(StdMutex<JobBoard>, Condvar)) {
    let mut last_gen = 0;
    loop {
        let job = {
            let (board, cond) = board;
            let mut b = board.lock().expect("pool board poisoned");
            loop {
                if b.shutdown {
                    return;
                }
                if b.gen != last_gen {
                    last_gen = b.gen;
                    break Arc::clone(b.job.as_ref().expect("job posted with the gen bump"));
                }
                b = cond.wait(b).expect("pool board poisoned");
            }
        };
        stretch_worker(&job);
    }
}

/// One worker's side of a stretch: rendezvous, claim-and-run shards
/// until the epoch's claim cursor runs dry, rendezvous again.
fn stretch_worker(job: &StretchJob) {
    // A panic in module code (run_epoch executes arbitrary stack
    // handlers) poisons the barrier on unwind, so the cohort — control
    // thread included — disbands instead of waiting forever; the control
    // thread then re-raises the panic on its side.
    let _poison = PoisonOnPanic(&job.barrier);
    let shared = SimShared { topology: &job.topology, cpu: &job.cpu, n: job.n };
    let nshards = job.cells.len();
    loop {
        if !job.barrier.wait() {
            return; // a peer panicked
        }
        if job.stop.load(Ordering::Acquire) {
            return; // stretch complete — back to the board
        }
        let h = Time(job.horizon.load(Ordering::Acquire));
        loop {
            let k = job.claim.fetch_add(1, Ordering::AcqRel);
            if k >= nshards {
                break;
            }
            let idx = job.order[k].load(Ordering::Relaxed);
            let mut cell = job.cells[idx].lock();
            cell.as_mut().expect("shard parked for the epoch").run_epoch(&shared, h);
        }
        if !job.barrier.wait() {
            return; // a peer panicked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::SpinBarrier;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spin_barrier_synchronizes_repeated_phases() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = SpinBarrier::new(THREADS);
        let arrived = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for round in 0..ROUNDS {
                        arrived.fetch_add(1, Ordering::AcqRel);
                        assert!(barrier.wait());
                        // Between two waits every thread observes the
                        // full cohort of the current round.
                        let seen = arrived.load(Ordering::Acquire);
                        assert!(
                            seen >= (round + 1) * THREADS,
                            "round {round}: saw only {seen} arrivals"
                        );
                        assert!(barrier.wait());
                    }
                });
            }
        });
        assert_eq!(arrived.load(Ordering::Acquire), THREADS * ROUNDS);
    }
}
