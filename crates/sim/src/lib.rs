//! # dpu-sim — deterministic discrete-event host for DPU stacks
//!
//! Stands in for the paper's evaluation testbed (a cluster of 7 PCs on
//! switched 100 Mb/s Ethernet, §6.1). A [`Sim`] hosts `n` [`Stack`]s under
//! a single virtual clock and models:
//!
//! * **the network** ([`NetConfig`]): per-hop propagation delay + jitter,
//!   transmission delay from a configurable bandwidth, probabilistic loss
//!   and duplication, and dynamic partitions — datagram semantics, like
//!   the UDP the paper's stack bottoms out in;
//! * **the CPU** ([`CpuConfig`]): each dispatched stack step occupies the
//!   node's single CPU for a configurable service time, so load produces
//!   queueing and the latency-vs-load curves of the paper's Figure 6 get
//!   their characteristic knee;
//! * **faults**: node crashes at arbitrary virtual times.
//!
//! Everything is driven from one seeded RNG, so a run is a pure function
//! of `(configuration, seed)` — every figure in `EXPERIMENTS.md` is
//! exactly reproducible.
//!
//! ```
//! use dpu_core::{Stack, StackConfig, FactoryRegistry};
//! use dpu_sim::{Sim, SimConfig};
//! use dpu_core::time::{Time, Dur};
//!
//! let cfg = SimConfig::lan(3, 42);
//! let mut sim = Sim::new(cfg, |sc| Stack::new(sc, FactoryRegistry::new()));
//! sim.run_until(Time::ZERO + Dur::millis(10));
//! assert_eq!(sim.now(), Time::ZERO + Dur::millis(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bytes::Bytes;
use dpu_core::host::{ActionSink, HostEvent, StackDriver};
use dpu_core::stack::StepCategory;
use dpu_core::time::{Dur, Time};
use dpu_core::trace::TraceLog;
use dpu_core::{Stack, StackConfig, StackId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Network model parameters (the paper's 100BaseTX switched Ethernet).
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Base one-way propagation + switching delay.
    pub latency: Dur,
    /// Uniform jitter added on top of `latency`: `[0, jitter)`.
    pub jitter: Dur,
    /// Link bandwidth in bits per second; transmission delay is
    /// `8 * (size + header) / bandwidth`.
    pub bandwidth_bps: u64,
    /// Fixed per-datagram header bytes (UDP/IP/Ethernet framing).
    pub header_bytes: usize,
    /// Probability a datagram is dropped.
    pub loss: f64,
    /// Probability a datagram is duplicated (delivered twice).
    pub duplicate: f64,
}

impl NetConfig {
    /// A healthy switched 100 Mb/s LAN.
    pub fn lan() -> NetConfig {
        NetConfig {
            latency: Dur::micros(60),
            jitter: Dur::micros(30),
            bandwidth_bps: 100_000_000,
            header_bytes: 54,
            loss: 0.0,
            duplicate: 0.0,
        }
    }

    /// A lossy LAN for fault-injection tests.
    pub fn lossy(loss: f64) -> NetConfig {
        NetConfig { loss, ..NetConfig::lan() }
    }
}

/// CPU model: virtual service time charged per dispatched stack step, by
/// step category. Calibrated very roughly to the paper's Pentium III
/// 766 MHz running a Java protocol framework — absolute values only shape
/// the saturation point, not the comparative results.
#[derive(Clone, Debug)]
pub struct CpuConfig {
    /// Cost of dispatching a service call.
    pub call: Dur,
    /// Cost of dispatching a response.
    pub response: Dur,
    /// Cost of a timer handler.
    pub timer: Dur,
    /// Cost of `on_start`.
    pub start: Dur,
    /// Cost of `on_stop`.
    pub stop: Dur,
}

impl CpuConfig {
    /// Default calibration (see module docs).
    pub fn default_cal() -> CpuConfig {
        CpuConfig {
            call: Dur::micros(40),
            response: Dur::micros(40),
            timer: Dur::micros(15),
            start: Dur::micros(80),
            stop: Dur::micros(30),
        }
    }

    /// Cost for a step category.
    pub fn cost(&self, cat: StepCategory) -> Dur {
        match cat {
            StepCategory::Call => self.call,
            StepCategory::Response => self.response,
            StepCategory::Timer => self.timer,
            StepCategory::Start => self.start,
            StepCategory::Stop => self.stop,
        }
    }
}

/// Full simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of stacks (machines), ids `0..n`.
    pub n: u32,
    /// Master seed; all randomness (jitter, loss, per-stack RNG streams)
    /// derives from it.
    pub seed: u64,
    /// Network model.
    pub net: NetConfig,
    /// CPU model.
    pub cpu: CpuConfig,
    /// Record traces in each stack (disable for long benchmark runs).
    pub trace: bool,
}

impl SimConfig {
    /// `n` machines on a healthy LAN.
    pub fn lan(n: u32, seed: u64) -> SimConfig {
        SimConfig { n, seed, net: NetConfig::lan(), cpu: CpuConfig::default_cal(), trace: true }
    }
}

/// Counters accumulated over a run (window them by snapshotting).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Datagrams handed to the network.
    pub packets_sent: u64,
    /// Datagrams dropped by the loss model or partitions.
    pub packets_dropped: u64,
    /// Datagrams delivered (duplicates counted).
    pub packets_delivered: u64,
    /// Payload bytes handed to the network (headers excluded).
    pub bytes_sent: u64,
    /// Stack steps dispatched across all nodes.
    pub steps: u64,
}

enum EventKind {
    PacketArrive {
        dst: StackId,
        src: StackId,
        payload: Bytes,
    },
    /// Wake a node's [`StackDriver`] so it fires its due timers. One
    /// wake is kept scheduled per node, stamped in [`Node::wake`];
    /// entries whose time no longer matches the stamp are stale
    /// (a nearer deadline was scheduled since) and are skipped.
    NodeWake {
        node: StackId,
    },
    NodeStep {
        node: StackId,
    },
    Crash {
        node: StackId,
    },
    Action(Box<dyn FnOnce(&mut Sim) + Send>),
}

// BinaryHeap is a max-heap; order by Reverse((at, seq)) for a stable
// min-heap with FIFO tie-breaking.
struct HeapEntry(Reverse<(Time, u64)>, EventKind);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

struct Node {
    /// The stack plus its timer queue, driven through the unified host
    /// API (`dpu_core::host`).
    driver: StackDriver,
    cpu_free: Time,
    /// When this node's outbound link finishes its current transmission;
    /// sends serialise behind it (NIC queueing).
    nic_free: Time,
    step_scheduled: bool,
    crashed: bool,
    /// Time of the currently scheduled [`EventKind::NodeWake`], if any.
    wake: Option<Time>,
}

/// [`ActionSink`] that buffers sends so they can be replayed through the
/// network model once the driver borrow ends.
#[derive(Default)]
struct SendBuf {
    sends: Vec<(Time, StackId, StackId, Bytes)>,
}

impl ActionSink for SendBuf {
    fn net_send(&mut self, at: Time, src: StackId, dst: StackId, payload: Bytes) {
        self.sends.push((at, src, dst, payload));
    }
}

/// The deterministic discrete-event host. See module docs.
pub struct Sim {
    cfg: SimConfig,
    now: Time,
    seq: u64,
    heap: BinaryHeap<HeapEntry>,
    nodes: Vec<Node>,
    rng: SmallRng,
    /// Ordered pairs `(a, b)` such that packets a→b are blocked.
    partitions: BTreeSet<(StackId, StackId)>,
    stats: SimStats,
}

impl Sim {
    /// Build a simulation; `mk_stack` constructs each stack from its
    /// [`StackConfig`] (attach factories, install modules, etc.).
    pub fn new(cfg: SimConfig, mut mk_stack: impl FnMut(StackConfig) -> Stack) -> Sim {
        let nodes = (0..cfg.n)
            .map(|i| {
                let sc = StackConfig {
                    id: StackId(i),
                    peers: (0..cfg.n).map(StackId).collect(),
                    seed: cfg.seed,
                    trace: cfg.trace,
                };
                Node {
                    driver: StackDriver::new(mk_stack(sc)),
                    cpu_free: Time::ZERO,
                    nic_free: Time::ZERO,
                    step_scheduled: false,
                    crashed: false,
                    wake: None,
                }
            })
            .collect();
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0xD1B54A32D192ED03);
        let mut sim = Sim {
            cfg,
            now: Time::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            nodes,
            rng,
            partitions: BTreeSet::new(),
            stats: SimStats::default(),
        };
        // Stacks are born with pending Start deliveries.
        for i in 0..sim.nodes.len() {
            sim.ensure_step(StackId(i as u32));
        }
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of stacks.
    pub fn n(&self) -> u32 {
        self.cfg.n
    }

    /// All stack ids.
    pub fn stack_ids(&self) -> Vec<StackId> {
        (0..self.cfg.n).map(StackId).collect()
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Immutable access to a stack.
    pub fn stack(&self, id: StackId) -> &Stack {
        self.nodes[id.idx()].driver.stack()
    }

    /// Mutate a stack, then reschedule its CPU if the mutation produced
    /// work. Use this (not direct field access) so injected calls run.
    pub fn with_stack<R>(&mut self, id: StackId, f: impl FnOnce(&mut Stack) -> R) -> R {
        let r = f(self.nodes[id.idx()].driver.stack_mut());
        self.after_stack_mutation(id);
        r
    }

    fn after_stack_mutation(&mut self, id: StackId) {
        // A direct mutation (e.g. install()) may have produced host
        // actions; execute them and schedule the CPU.
        let mut buf = SendBuf::default();
        self.nodes[id.idx()].driver.settle(self.now, &mut buf);
        self.flush_sends(buf);
        self.ensure_step(id);
        self.ensure_wake(id);
    }

    /// Schedule a closure to run at absolute virtual time `at` (clamped to
    /// now).
    pub fn schedule(&mut self, at: Time, f: impl FnOnce(&mut Sim) + Send + 'static) {
        let at = at.max(self.now);
        self.push(at, EventKind::Action(Box::new(f)));
    }

    /// Schedule a closure `delay` from now.
    pub fn schedule_in(&mut self, delay: Dur, f: impl FnOnce(&mut Sim) + Send + 'static) {
        self.schedule(self.now + delay, f);
    }

    /// Crash node `id` at time `at`.
    pub fn crash_at(&mut self, at: Time, id: StackId) {
        let at = at.max(self.now);
        self.push(at, EventKind::Crash { node: id });
    }

    /// Block traffic in both directions between the two groups.
    pub fn partition(&mut self, a: &[StackId], b: &[StackId]) {
        for &x in a {
            for &y in b {
                self.partitions.insert((x, y));
                self.partitions.insert((y, x));
            }
        }
    }

    /// Remove all partitions.
    pub fn heal_partitions(&mut self) {
        self.partitions.clear();
    }

    /// Change the loss probability from now on.
    pub fn set_loss(&mut self, loss: f64) {
        self.cfg.net.loss = loss;
    }

    /// Run until virtual time `t`, processing all events up to it.
    pub fn run_until(&mut self, t: Time) {
        while let Some(HeapEntry(Reverse((at, _)), _)) = self.heap.peek() {
            if *at > t {
                break;
            }
            self.pop_and_dispatch();
        }
        self.now = self.now.max(t);
    }

    /// Run until no events remain or the cap is reached; returns the final
    /// virtual time. Note: stacks with periodic timers never quiesce —
    /// use [`Sim::run_until`] for those.
    pub fn run_until_quiescent(&mut self, cap: Time) -> Time {
        while let Some(HeapEntry(Reverse((at, _)), _)) = self.heap.peek() {
            if *at > cap {
                break;
            }
            self.pop_and_dispatch();
        }
        self.now
    }

    /// Aggregate [`dpu_core::wire::ScratchStats`] over every stack's
    /// scratch pool: the steady-state-allocation oracle for the whole
    /// simulation (see the `wire_codec` bench and `BENCH_wire.json`).
    pub fn wire_stats(&self) -> dpu_core::wire::ScratchStats {
        let mut total = dpu_core::wire::ScratchStats::default();
        for node in &self.nodes {
            total.absorb(node.driver.stack().wire_stats());
        }
        total
    }

    /// Merge and take the traces of all stacks.
    pub fn merged_trace(&mut self) -> TraceLog {
        let mut merged = TraceLog::new();
        for node in &mut self.nodes {
            let t = node.driver.stack_mut().take_trace();
            merged.merge(&t);
        }
        merged
    }

    fn push(&mut self, at: Time, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry(Reverse((at, seq)), kind));
    }

    fn pop_and_dispatch(&mut self) {
        let HeapEntry(Reverse((at, _)), kind) = self.heap.pop().expect("peeked");
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        match kind {
            EventKind::PacketArrive { dst, src, payload } => {
                let node = &mut self.nodes[dst.idx()];
                if node.crashed {
                    return;
                }
                self.stats.packets_delivered += 1;
                node.driver.inject(HostEvent::Packet { src, payload });
                node.driver.absorb(at);
                self.ensure_step(dst);
            }
            EventKind::NodeWake { node } => {
                let n = &mut self.nodes[node.idx()];
                if n.crashed || n.wake != Some(at) {
                    // Stale wake: a nearer deadline superseded this entry.
                    return;
                }
                n.wake = None;
                n.driver.fire_due(at);
                self.ensure_step(node);
                self.ensure_wake(node);
            }
            EventKind::NodeStep { node } => {
                self.nodes[node.idx()].step_scheduled = false;
                self.node_step(node, at);
            }
            EventKind::Crash { node } => {
                let n = &mut self.nodes[node.idx()];
                n.crashed = true;
                n.driver.stack_mut().crash(at);
            }
            EventKind::Action(f) => f(self),
        }
    }

    fn node_step(&mut self, id: StackId, at: Time) {
        let node = &mut self.nodes[id.idx()];
        if node.crashed {
            return;
        }
        let Some(info) = node.driver.step_raw(at) else { return };
        self.stats.steps += 1;
        let cost = self.cfg.cpu.cost(info.category);
        node.cpu_free = at + cost;
        let done = node.cpu_free;
        let mut buf = SendBuf::default();
        node.driver.settle(done, &mut buf);
        self.flush_sends(buf);
        self.ensure_step(id);
        self.ensure_wake(id);
    }

    /// Replay sends buffered by a [`StackDriver`] call through the
    /// network model, in action order.
    fn flush_sends(&mut self, buf: SendBuf) {
        for (at, src, dst, payload) in buf.sends {
            self.net_send(src, dst, payload, at);
        }
    }

    fn net_send(&mut self, src: StackId, dst: StackId, payload: Bytes, when: Time) {
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        if dst.idx() >= self.nodes.len() || self.partitions.contains(&(src, dst)) {
            self.stats.packets_dropped += 1;
            return;
        }
        if self.cfg.net.loss > 0.0 && self.rng.gen::<f64>() < self.cfg.net.loss {
            self.stats.packets_dropped += 1;
            return;
        }
        // Serialise on the sender's outbound link: a burst of sends
        // queues behind the NIC, which is what bends the latency-vs-load
        // curves at high throughput.
        let bits = 8 * (payload.len() + self.cfg.net.header_bytes) as u64;
        let tx = Dur::nanos(bits.saturating_mul(1_000_000_000) / self.cfg.net.bandwidth_bps);
        let depart = when.max(self.nodes[src.idx()].nic_free);
        self.nodes[src.idx()].nic_free = depart + tx;
        let copies =
            if self.cfg.net.duplicate > 0.0 && self.rng.gen::<f64>() < self.cfg.net.duplicate {
                2
            } else {
                1
            };
        for _ in 0..copies {
            let jitter = if self.cfg.net.jitter.as_nanos() > 0 {
                Dur::nanos(self.rng.gen_range(0..self.cfg.net.jitter.as_nanos()))
            } else {
                Dur::ZERO
            };
            let arrive = depart + tx + self.cfg.net.latency + jitter;
            self.push(arrive, EventKind::PacketArrive { dst, src, payload: payload.clone() });
        }
    }

    fn ensure_step(&mut self, id: StackId) {
        let node = &mut self.nodes[id.idx()];
        if node.crashed || node.step_scheduled || !node.driver.stack().has_work() {
            return;
        }
        node.step_scheduled = true;
        let at = self.now.max(node.cpu_free);
        self.push(at, EventKind::NodeStep { node: id });
    }

    /// Keep one [`EventKind::NodeWake`] scheduled at the driver's
    /// earliest timer deadline. Scheduling a nearer wake strands the old
    /// heap entry; the stamp in [`Node::wake`] marks it stale.
    fn ensure_wake(&mut self, id: StackId) {
        let node = &mut self.nodes[id.idx()];
        if node.crashed {
            return;
        }
        let Some(deadline) = node.driver.next_deadline() else { return };
        let at = deadline.max(self.now);
        if node.wake.is_some_and(|w| w <= at) {
            return;
        }
        node.wake = Some(at);
        self.push(at, EventKind::NodeWake { node: id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::stack::{net_ops, FactoryRegistry, ModuleCtx};
    use dpu_core::wire::{self, Encode};
    use dpu_core::{Call, Module, Response, ServiceId};

    /// A module that, on start, sends one datagram to every peer and
    /// counts datagrams received.
    struct Pinger {
        received: Vec<(StackId, Bytes)>,
    }

    impl Module for Pinger {
        fn kind(&self) -> &str {
            "pinger"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(dpu_core::svc::NET)]
        }
        fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
            let me = ctx.stack_id();
            for peer in ctx.peers().to_vec() {
                if peer != me {
                    let data = (peer, Bytes::from(vec![me.0 as u8])).to_bytes();
                    ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data);
                }
            }
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op == net_ops::RECV {
                let (src, data): (StackId, Bytes) = resp.decode().unwrap();
                self.received.push((src, data));
            }
        }
    }

    /// In every pinger stack: net bridge is m1, pinger is m2.
    const PINGER: dpu_core::ModuleId = dpu_core::ModuleId(2);

    fn pinger_sim(n: u32, seed: u64) -> Sim {
        Sim::new(SimConfig::lan(n, seed), |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            s.add_module(Box::new(Pinger { received: vec![] }));
            s
        })
    }

    fn received(sim: &mut Sim, id: u32) -> usize {
        sim.with_stack(StackId(id), |s| {
            s.with_module::<Pinger, _>(PINGER, |p| p.received.len()).unwrap()
        })
    }

    #[test]
    fn all_to_all_pings_arrive() {
        let mut sim = pinger_sim(4, 1);
        sim.run_until(Time::ZERO + Dur::millis(10));
        for i in 0..4u32 {
            assert_eq!(received(&mut sim, i), 3, "stack {i} should get one ping per peer");
        }
        assert_eq!(sim.stats().packets_sent, 12);
        assert_eq!(sim.stats().packets_delivered, 12);
        assert_eq!(sim.stats().packets_dropped, 0);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed| {
            let mut sim = pinger_sim(5, seed);
            sim.run_until(Time::ZERO + Dur::millis(5));
            let stats = sim.stats().clone();
            let trace_len = sim.merged_trace().len();
            (stats, trace_len)
        };
        assert_eq!(run(7), run(7));
        let (a, _) = run(7);
        let (b, _) = run(8);
        assert_eq!(a.packets_delivered, b.packets_delivered);
    }

    #[test]
    fn loss_drops_packets() {
        let mut cfg = SimConfig::lan(2, 3);
        cfg.net.loss = 1.0;
        let mut sim = Sim::new(cfg, |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            s.add_module(Box::new(Pinger { received: vec![] }));
            s
        });
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert_eq!(sim.stats().packets_sent, 2);
        assert_eq!(sim.stats().packets_dropped, 2);
        assert_eq!(sim.stats().packets_delivered, 0);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut cfg = SimConfig::lan(2, 3);
        cfg.net.duplicate = 1.0;
        let mut sim = Sim::new(cfg, |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            s.add_module(Box::new(Pinger { received: vec![] }));
            s
        });
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert_eq!(sim.stats().packets_delivered, 4);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let mut sim = pinger_sim(2, 9);
        sim.partition(&[StackId(0)], &[StackId(1)]);
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert_eq!(sim.stats().packets_delivered, 0);
        assert_eq!(sim.stats().packets_dropped, 2);
        sim.heal_partitions();
        let data = (StackId(1), Bytes::from_static(b"x")).to_bytes();
        sim.with_stack(StackId(0), |s| {
            s.call_as(PINGER, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
        sim.run_until(Time::ZERO + Dur::millis(10));
        assert_eq!(sim.stats().packets_delivered, 1);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut sim = pinger_sim(3, 5);
        sim.crash_at(Time::ZERO, StackId(2));
        sim.run_until(Time::ZERO + Dur::millis(10));
        // The crash event at t=0 was scheduled before any processing.
        assert_eq!(received(&mut sim, 2), 0);
        assert!(sim.stack(StackId(2)).is_crashed());
    }

    #[test]
    fn scheduled_actions_run_in_order() {
        let mut sim = pinger_sim(2, 5);
        sim.schedule(Time::ZERO + Dur::millis(2), |sim| {
            assert_eq!(sim.now(), Time::ZERO + Dur::millis(2));
            sim.crash_at(sim.now(), StackId(1));
        });
        sim.schedule_in(Dur::millis(1), |sim| {
            assert!(!sim.stack(StackId(1)).is_crashed());
        });
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert!(sim.stack(StackId(1)).is_crashed());
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = pinger_sim(2, 5);
        sim.run_until(Time::ZERO + Dur::secs(1));
        assert_eq!(sim.now(), Time::ZERO + Dur::secs(1));
    }

    #[test]
    fn cpu_cost_serialises_steps_on_one_node() {
        // With a huge per-step cost, a burst of packets takes multiple
        // service times to process on the receiving node.
        let mut cfg = SimConfig::lan(2, 11);
        cfg.cpu.response = Dur::millis(10);
        let mut sim = Sim::new(cfg, |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            s.add_module(Box::new(Pinger { received: vec![] }));
            s
        });
        for _ in 0..5 {
            let data = (StackId(1), Bytes::from_static(b"x")).to_bytes();
            sim.with_stack(StackId(0), |s| {
                s.call_as(PINGER, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
            });
        }
        // Node 1 receives 6 datagrams in total: the startup ping from
        // node 0 plus the 5 injected ones.
        sim.run_until(Time::ZERO + Dur::millis(38));
        let partial = received(&mut sim, 1);
        assert!(partial < 6, "CPU queueing must spread processing out; got {partial}");
        sim.run_until(Time::ZERO + Dur::millis(200));
        assert_eq!(received(&mut sim, 1), 6);
    }

    #[test]
    fn wire_roundtrip_through_sim_payloads() {
        let payload = Bytes::from(vec![7u8; 100]);
        let encoded = (StackId(1), payload.clone()).to_bytes();
        let (dst, data): (StackId, Bytes) = wire::from_bytes(&encoded).unwrap();
        assert_eq!(dst, StackId(1));
        assert_eq!(data, payload);
    }

    #[test]
    fn run_until_quiescent_stops_when_drained() {
        let mut sim = pinger_sim(3, 13);
        let end = sim.run_until_quiescent(Time::ZERO + Dur::secs(10));
        assert!(end < Time::ZERO + Dur::secs(1), "pingers quiesce quickly, got {end}");
        assert_eq!(sim.stats().packets_delivered, 6);
    }
}
