//! # dpu-sim — deterministic discrete-event host for DPU stacks
//!
//! Stands in for the paper's evaluation testbed (a cluster of 7 PCs on
//! switched 100 Mb/s Ethernet, §6.1) — and scales far past it: the
//! sharded [`sched`] scheduler and the [`topology`]/[`workload`]
//! subsystems exist to run the same live-switch experiments on
//! thousands of simulated nodes. A [`Sim`] hosts `n` [`Stack`]s under
//! a single virtual clock and models:
//!
//! * **the network** ([`NetConfig`] per link, composed by a
//!   [`Topology`]): per-hop propagation delay + jitter, transmission
//!   delay from a configurable bandwidth, probabilistic loss and
//!   duplication, and dynamic partitions — datagram semantics, like the
//!   UDP the paper's stack bottoms out in. Topologies range from the
//!   paper's flat LAN to datacenter clusters joined by a WAN backbone;
//! * **the CPU** ([`CpuConfig`]): each dispatched stack step occupies the
//!   node's single CPU for a configurable service time, so load produces
//!   queueing and the latency-vs-load curves of the paper's Figure 6 get
//!   their characteristic knee;
//! * **faults**: node crashes (and restarts) at arbitrary virtual times;
//! * **traffic**: pluggable [`workload`] generators — closed-loop,
//!   open-loop Poisson, bursty Poisson, node churn.
//!
//! Everything is driven from one seeded RNG, so a run is a pure function
//! of `(configuration, seed)` — every figure in `EXPERIMENTS.md` is
//! exactly reproducible, whichever scheduler implementation is selected
//! (see [`SchedConfig`]).
//!
//! ```
//! use dpu_core::{Stack, StackConfig, FactoryRegistry};
//! use dpu_sim::{Sim, SimConfig};
//! use dpu_core::time::{Time, Dur};
//!
//! let cfg = SimConfig::lan(3, 42);
//! let mut sim = Sim::new(cfg, |sc| Stack::new(sc, FactoryRegistry::new()));
//! sim.run_until(Time::ZERO + Dur::millis(10));
//! assert_eq!(sim.now(), Time::ZERO + Dur::millis(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sched;
pub mod stats;
pub mod topology;
pub mod workload;

pub use sched::{SchedConfig, SchedKind};
pub use stats::{ShardStats, SimReport, SimStats, WorkloadStats};
pub use topology::{NetConfig, Topology};

use bytes::Bytes;
use dpu_core::host::{ActionSink, StackDriver};
use dpu_core::stack::StepCategory;
use dpu_core::time::{Dur, Time};
use dpu_core::trace::TraceLog;
use dpu_core::{Stack, StackConfig, StackId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sched::Scheduler;

/// CPU model: virtual service time charged per dispatched stack step, by
/// step category. Calibrated very roughly to the paper's Pentium III
/// 766 MHz running a Java protocol framework — absolute values only shape
/// the saturation point, not the comparative results.
#[derive(Clone, Debug)]
pub struct CpuConfig {
    /// Cost of dispatching a service call.
    pub call: Dur,
    /// Cost of dispatching a response.
    pub response: Dur,
    /// Cost of a timer handler.
    pub timer: Dur,
    /// Cost of `on_start`.
    pub start: Dur,
    /// Cost of `on_stop`.
    pub stop: Dur,
}

impl CpuConfig {
    /// Default calibration (see module docs).
    pub fn default_cal() -> CpuConfig {
        CpuConfig {
            call: Dur::micros(40),
            response: Dur::micros(40),
            timer: Dur::micros(15),
            start: Dur::micros(80),
            stop: Dur::micros(30),
        }
    }

    /// A modern-hardware calibration: ~1 µs per dispatch, i.e. a few
    /// thousand cycles on a ~3 GHz core running the native stack rather
    /// than the paper's Pentium III Java framework. The thousand-node
    /// experiments use this together with [`crate::NetConfig::datacenter`];
    /// with [`CpuConfig::default_cal`] a sequencer fanning one broadcast
    /// out to 1024 peers would charge 2 × 1024 × 40 µs ≈ 82 ms of CPU
    /// per message and saturate at ~12 msg/s.
    pub fn fast() -> CpuConfig {
        CpuConfig {
            call: Dur::micros(1),
            response: Dur::micros(1),
            timer: Dur::nanos(500),
            start: Dur::micros(2),
            stop: Dur::micros(1),
        }
    }

    /// Cost for a step category.
    pub fn cost(&self, cat: StepCategory) -> Dur {
        match cat {
            StepCategory::Call => self.call,
            StepCategory::Response => self.response,
            StepCategory::Timer => self.timer,
            StepCategory::Start => self.start,
            StepCategory::Stop => self.stop,
        }
    }
}

/// Full simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of stacks (machines), ids `0..n`.
    pub n: u32,
    /// Master seed; all randomness (jitter, loss, per-stack RNG streams,
    /// workload generators) derives from it.
    pub seed: u64,
    /// Flat network model — the default link config. For non-flat shapes
    /// set [`SimConfig::topology`] instead.
    pub net: NetConfig,
    /// CPU model.
    pub cpu: CpuConfig,
    /// Record traces in each stack (disable for long benchmark runs).
    pub trace: bool,
    /// Event scheduler implementation and tuning.
    pub sched: SchedConfig,
    /// Non-flat topology (clusters, per-link overrides). When `None` the
    /// simulation is flat: every link uses [`SimConfig::net`].
    pub topology: Option<Topology>,
}

impl SimConfig {
    /// `n` machines on a healthy LAN.
    pub fn lan(n: u32, seed: u64) -> SimConfig {
        SimConfig {
            n,
            seed,
            net: NetConfig::lan(),
            cpu: CpuConfig::default_cal(),
            trace: true,
            sched: SchedConfig::default(),
            topology: None,
        }
    }

    /// `n` machines in clusters of `cluster_size` on `intra` links,
    /// joined by `backbone` — see [`Topology::clustered`].
    pub fn clustered(
        n: u32,
        seed: u64,
        cluster_size: u32,
        intra: NetConfig,
        backbone: NetConfig,
    ) -> SimConfig {
        SimConfig {
            net: intra.clone(),
            topology: Some(Topology::clustered(cluster_size, intra, backbone)),
            ..SimConfig::lan(n, seed)
        }
    }

    /// Select the reference single-heap scheduler (builder style, for
    /// equivalence tests and benchmarks).
    pub fn with_single_heap(mut self) -> SimConfig {
        self.sched = SchedConfig::single_heap();
        self
    }
}

enum EventKind {
    PacketArrive {
        dst: StackId,
        src: StackId,
        payload: Bytes,
    },
    /// Wake a node's [`StackDriver`] so it fires its due timers. One
    /// wake is kept scheduled per node, stamped in [`Node::wake`];
    /// entries whose time no longer matches the stamp are stale
    /// (a nearer deadline was scheduled since) and are skipped.
    NodeWake {
        node: StackId,
    },
    NodeStep {
        node: StackId,
    },
    Crash {
        node: StackId,
    },
    Action(Box<dyn FnOnce(&mut Sim) + Send>),
}

struct Node {
    /// The stack plus its timer queue, driven through the unified host
    /// API (`dpu_core::host`).
    driver: StackDriver,
    cpu_free: Time,
    /// When this node's outbound link finishes its current transmission;
    /// sends serialise behind it (NIC queueing).
    nic_free: Time,
    step_scheduled: bool,
    crashed: bool,
    /// Time of the currently scheduled [`EventKind::NodeWake`], if any.
    wake: Option<Time>,
}

/// [`ActionSink`] that buffers sends so they can be replayed through the
/// network model once the driver borrow ends.
#[derive(Default)]
struct SendBuf {
    sends: Vec<(Time, StackId, StackId, Bytes)>,
}

impl ActionSink for SendBuf {
    fn net_send(&mut self, at: Time, src: StackId, dst: StackId, payload: Bytes) {
        self.sends.push((at, src, dst, payload));
    }
}

/// The deterministic discrete-event host. See module docs.
pub struct Sim {
    cfg: SimConfig,
    now: Time,
    seq: u64,
    sched: Scheduler<EventKind>,
    nodes: Vec<Node>,
    rng: SmallRng,
    topology: Topology,
    stats: SimStats,
}

impl Sim {
    /// Build a simulation; `mk_stack` constructs each stack from its
    /// [`StackConfig`] (attach factories, install modules, etc.).
    pub fn new(mut cfg: SimConfig, mut mk_stack: impl FnMut(StackConfig) -> Stack) -> Sim {
        let topology = cfg.topology.take().unwrap_or_else(|| Topology::flat(cfg.net.clone()));
        let nodes = (0..cfg.n)
            .map(|i| Node {
                driver: StackDriver::new(mk_stack(Self::mk_stack_config(&cfg, StackId(i)))),
                cpu_free: Time::ZERO,
                nic_free: Time::ZERO,
                step_scheduled: false,
                crashed: false,
                wake: None,
            })
            .collect();
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0xD1B54A32D192ED03);
        let sched = Scheduler::new(&cfg.sched, cfg.n as usize);
        let stats = SimStats::with_shards(cfg.n);
        let mut sim = Sim { cfg, now: Time::ZERO, seq: 0, sched, nodes, rng, topology, stats };
        // Stacks are born with pending Start deliveries.
        for i in 0..sim.nodes.len() {
            sim.ensure_step(StackId(i as u32));
        }
        sim
    }

    fn mk_stack_config(cfg: &SimConfig, id: StackId) -> StackConfig {
        StackConfig {
            id,
            peers: (0..cfg.n).map(StackId).collect(),
            seed: cfg.seed,
            trace: cfg.trace,
        }
    }

    /// The [`StackConfig`] node `id` was (and would again be) built from
    /// — used by churn workloads to construct replacement stacks.
    pub fn stack_config(&self, id: StackId) -> StackConfig {
        Self::mk_stack_config(&self.cfg, id)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of stacks.
    pub fn n(&self) -> u32 {
        self.cfg.n
    }

    /// All stack ids.
    pub fn stack_ids(&self) -> Vec<StackId> {
        (0..self.cfg.n).map(StackId).collect()
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Number of events currently queued in the scheduler (in-flight
    /// packets, pending steps, armed wakes, scheduled actions).
    pub fn queued_events(&self) -> usize {
        self.sched.len()
    }

    /// One-stop end-of-run summary: run counters, per-shard and
    /// per-generator breakdowns, and the aggregated wire scratch stats,
    /// with a printable [`std::fmt::Display`].
    pub fn report(&self) -> SimReport {
        SimReport {
            n: self.cfg.n,
            now: self.now,
            stats: self.stats.clone(),
            wire: self.wire_stats(),
        }
    }

    /// The topology (for link inspection; mutate via the `Sim` methods
    /// so partition changes stay on the simulation thread).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a stack.
    pub fn stack(&self, id: StackId) -> &Stack {
        self.nodes[id.idx()].driver.stack()
    }

    /// Mutate a stack, then reschedule its CPU if the mutation produced
    /// work. Use this (not direct field access) so injected calls run.
    pub fn with_stack<R>(&mut self, id: StackId, f: impl FnOnce(&mut Stack) -> R) -> R {
        let r = f(self.nodes[id.idx()].driver.stack_mut());
        self.after_stack_mutation(id);
        r
    }

    fn after_stack_mutation(&mut self, id: StackId) {
        // A direct mutation (e.g. install()) may have produced host
        // actions; execute them and schedule the CPU.
        let mut buf = SendBuf::default();
        self.nodes[id.idx()].driver.settle(self.now, &mut buf);
        self.flush_sends(buf);
        self.ensure_step(id);
        self.ensure_wake(id);
    }

    /// Schedule a closure to run at absolute virtual time `at` (clamped to
    /// now).
    pub fn schedule(&mut self, at: Time, f: impl FnOnce(&mut Sim) + Send + 'static) {
        let at = at.max(self.now);
        self.push(at, EventKind::Action(Box::new(f)));
    }

    /// Schedule a closure `delay` from now.
    pub fn schedule_in(&mut self, delay: Dur, f: impl FnOnce(&mut Sim) + Send + 'static) {
        self.schedule(self.now + delay, f);
    }

    /// Crash node `id` at time `at`.
    pub fn crash_at(&mut self, at: Time, id: StackId) {
        let at = at.max(self.now);
        self.push(at, EventKind::Crash { node: id });
    }

    /// Replace node `id` with a freshly constructed stack, reviving it if
    /// it was crashed. The new stack starts from scratch (it re-runs
    /// `on_start`); in-flight packets addressed to the node are delivered
    /// to the *new* incarnation. Used by [`workload::Generator::Churn`]-style
    /// crash/restart schedules.
    pub fn restart_node(&mut self, id: StackId, stack: Stack) {
        let now = self.now;
        let node = &mut self.nodes[id.idx()];
        node.driver = StackDriver::new(stack);
        node.crashed = false;
        node.cpu_free = now;
        node.nic_free = now;
        node.step_scheduled = false;
        node.wake = None;
        self.after_stack_mutation(id);
    }

    /// Block traffic in both directions between the two groups.
    pub fn partition(&mut self, a: &[StackId], b: &[StackId]) {
        self.topology.partition(a, b);
    }

    /// Block all traffic between two clusters of the topology.
    pub fn partition_clusters(&mut self, a: u32, b: u32) {
        let n = self.cfg.n;
        self.topology.partition_clusters(a, b, n);
    }

    /// Remove all partitions.
    pub fn heal_partitions(&mut self) {
        self.topology.heal_partitions();
    }

    /// Change the loss probability from now on (applied to the default
    /// link config and, in clustered topologies, the backbone; per-link
    /// overrides are left alone).
    pub fn set_loss(&mut self, loss: f64) {
        self.cfg.net.loss = loss;
        self.topology.default_mut().loss = loss;
        if let Some(backbone) = self.topology.backbone_mut() {
            backbone.loss = loss;
        }
    }

    /// An RNG stream derived from the master seed and `salt`, independent
    /// of the simulator's own stream (drawing from it does not perturb
    /// jitter/loss decisions). Workload generators take their randomness
    /// from here so runs stay pure functions of `(config, seed)`.
    pub fn derive_rng(&self, salt: u64) -> SmallRng {
        // splitmix64-style finalizer over (seed, salt).
        let mut z = self.cfg.seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        SmallRng::seed_from_u64(z ^ (z >> 31))
    }

    pub(crate) fn register_workload(&mut self, name: String) -> usize {
        self.stats.workloads.push(WorkloadStats { name, ..WorkloadStats::default() });
        self.stats.workloads.len() - 1
    }

    pub(crate) fn workload_mut(&mut self, id: usize) -> &mut WorkloadStats {
        &mut self.stats.workloads[id]
    }

    /// Run until virtual time `t`, processing all events up to it.
    pub fn run_until(&mut self, t: Time) {
        while let Some((at, kind)) = self.sched.pop_before(t) {
            self.dispatch(at, kind);
        }
        self.now = self.now.max(t);
    }

    /// Run until no events remain or the cap is reached; returns the final
    /// virtual time. Note: stacks with periodic timers never quiesce —
    /// use [`Sim::run_until`] for those.
    pub fn run_until_quiescent(&mut self, cap: Time) -> Time {
        while let Some((at, kind)) = self.sched.pop_before(cap) {
            self.dispatch(at, kind);
        }
        self.now
    }

    /// Aggregate [`dpu_core::wire::ScratchStats`] over every stack's
    /// scratch pool: the steady-state-allocation oracle for the whole
    /// simulation (see the `wire_codec` bench and `BENCH_wire.json`).
    /// Also folded into [`Sim::report`].
    pub fn wire_stats(&self) -> dpu_core::wire::ScratchStats {
        let mut total = dpu_core::wire::ScratchStats::default();
        for node in &self.nodes {
            total.absorb(node.driver.stack().wire_stats());
        }
        total
    }

    /// Merge and take the traces of all stacks.
    pub fn merged_trace(&mut self) -> TraceLog {
        let mut merged = TraceLog::new();
        for node in &mut self.nodes {
            let t = node.driver.stack_mut().take_trace();
            merged.merge(&t);
        }
        merged
    }

    fn push(&mut self, at: Time, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.sched.push(at, seq, kind);
    }

    fn dispatch(&mut self, at: Time, kind: EventKind) {
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.stats.events += 1;
        match kind {
            EventKind::PacketArrive { dst, src, payload } => {
                self.stats.shard_mut(dst.0).events += 1;
                let node = &mut self.nodes[dst.idx()];
                if node.crashed {
                    return;
                }
                node.driver.deliver(at, src, payload);
                self.stats.packets_delivered += 1;
                self.stats.shard_mut(dst.0).packets_delivered += 1;
                self.ensure_step(dst);
            }
            EventKind::NodeWake { node } => {
                self.stats.shard_mut(node.0).events += 1;
                let n = &mut self.nodes[node.idx()];
                if n.crashed || n.wake != Some(at) {
                    // Stale wake: a nearer deadline superseded this entry.
                    return;
                }
                n.wake = None;
                let next = n.driver.wake(at);
                self.ensure_step(node);
                self.ensure_wake_at(node, next);
            }
            EventKind::NodeStep { node } => {
                self.stats.shard_mut(node.0).events += 1;
                self.nodes[node.idx()].step_scheduled = false;
                self.node_step(node, at);
            }
            EventKind::Crash { node } => {
                self.stats.shard_mut(node.0).events += 1;
                let n = &mut self.nodes[node.idx()];
                n.crashed = true;
                n.driver.stack_mut().crash(at);
            }
            EventKind::Action(f) => f(self),
        }
    }

    fn node_step(&mut self, id: StackId, at: Time) {
        let node = &mut self.nodes[id.idx()];
        if node.crashed {
            return;
        }
        let Some(info) = node.driver.step_raw(at) else { return };
        self.stats.steps += 1;
        self.stats.shard_mut(id.0).steps += 1;
        let node = &mut self.nodes[id.idx()];
        let cost = self.cfg.cpu.cost(info.category);
        node.cpu_free = at + cost;
        let done = node.cpu_free;
        let mut buf = SendBuf::default();
        node.driver.settle(done, &mut buf);
        self.flush_sends(buf);
        self.ensure_step(id);
        self.ensure_wake(id);
    }

    /// Replay sends buffered by a [`StackDriver`] call through the
    /// network model, in action order.
    fn flush_sends(&mut self, buf: SendBuf) {
        for (at, src, dst, payload) in buf.sends {
            self.net_send(src, dst, payload, at);
        }
    }

    fn net_send(&mut self, src: StackId, dst: StackId, payload: Bytes, when: Time) {
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        if dst.idx() >= self.nodes.len() || self.topology.blocked(src, dst) {
            self.stats.dropped_partition += 1;
            return;
        }
        let link = self.topology.link(src, dst).clone();
        if link.loss > 0.0 && self.rng.gen::<f64>() < link.loss {
            self.stats.dropped_loss += 1;
            return;
        }
        // Serialise on the sender's outbound link: a burst of sends
        // queues behind the NIC, which is what bends the latency-vs-load
        // curves at high throughput.
        let bits = 8 * (payload.len() + link.header_bytes) as u64;
        let tx = Dur::nanos(bits.saturating_mul(1_000_000_000) / link.bandwidth_bps);
        let depart = when.max(self.nodes[src.idx()].nic_free);
        self.nodes[src.idx()].nic_free = depart + tx;
        let copies =
            if link.duplicate > 0.0 && self.rng.gen::<f64>() < link.duplicate { 2 } else { 1 };
        for _ in 0..copies {
            let jitter = if link.jitter.as_nanos() > 0 {
                Dur::nanos(self.rng.gen_range(0..link.jitter.as_nanos()))
            } else {
                Dur::ZERO
            };
            let arrive = depart + tx + link.latency + jitter;
            self.push(arrive, EventKind::PacketArrive { dst, src, payload: payload.clone() });
        }
    }

    fn ensure_step(&mut self, id: StackId) {
        let node = &mut self.nodes[id.idx()];
        if node.crashed || node.step_scheduled || !node.driver.stack().has_work() {
            return;
        }
        node.step_scheduled = true;
        let at = self.now.max(node.cpu_free);
        self.push(at, EventKind::NodeStep { node: id });
    }

    /// Keep one [`EventKind::NodeWake`] scheduled at the driver's
    /// earliest timer deadline. Scheduling a nearer wake strands the old
    /// heap entry; the stamp in [`Node::wake`] marks it stale.
    fn ensure_wake(&mut self, id: StackId) {
        let deadline = self.nodes[id.idx()].driver.next_deadline();
        self.ensure_wake_at(id, deadline);
    }

    /// [`Sim::ensure_wake`] with the deadline already in hand (the fused
    /// [`StackDriver::wake`] hook reports it for free).
    fn ensure_wake_at(&mut self, id: StackId, deadline: Option<Time>) {
        let node = &mut self.nodes[id.idx()];
        if node.crashed {
            return;
        }
        let Some(deadline) = deadline else { return };
        let at = deadline.max(self.now);
        if node.wake.is_some_and(|w| w <= at) {
            return;
        }
        node.wake = Some(at);
        self.push(at, EventKind::NodeWake { node: id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::stack::{net_ops, FactoryRegistry, ModuleCtx};
    use dpu_core::wire::{self, Encode};
    use dpu_core::{Call, Module, Response, ServiceId};

    /// A module that, on start, sends one datagram to every peer and
    /// counts datagrams received.
    struct Pinger {
        received: Vec<(StackId, Bytes)>,
    }

    impl Module for Pinger {
        fn kind(&self) -> &str {
            "pinger"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(dpu_core::svc::NET)]
        }
        fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
            let me = ctx.stack_id();
            for peer in ctx.peers().to_vec() {
                if peer != me {
                    let data = (peer, Bytes::from(vec![me.0 as u8])).to_bytes();
                    ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data);
                }
            }
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op == net_ops::RECV {
                let (src, data): (StackId, Bytes) = resp.decode().unwrap();
                self.received.push((src, data));
            }
        }
    }

    /// In every pinger stack: net bridge is m1, pinger is m2.
    const PINGER: dpu_core::ModuleId = dpu_core::ModuleId(2);

    fn pinger_sim(n: u32, seed: u64) -> Sim {
        Sim::new(SimConfig::lan(n, seed), |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            s.add_module(Box::new(Pinger { received: vec![] }));
            s
        })
    }

    fn received(sim: &mut Sim, id: u32) -> usize {
        sim.with_stack(StackId(id), |s| {
            s.with_module::<Pinger, _>(PINGER, |p| p.received.len()).unwrap()
        })
    }

    #[test]
    fn all_to_all_pings_arrive() {
        let mut sim = pinger_sim(4, 1);
        sim.run_until(Time::ZERO + Dur::millis(10));
        for i in 0..4u32 {
            assert_eq!(received(&mut sim, i), 3, "stack {i} should get one ping per peer");
        }
        assert_eq!(sim.stats().packets_sent, 12);
        assert_eq!(sim.stats().packets_delivered, 12);
        assert_eq!(sim.stats().packets_dropped(), 0);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed| {
            let mut sim = pinger_sim(5, seed);
            sim.run_until(Time::ZERO + Dur::millis(5));
            let stats = sim.stats().clone();
            let trace_len = sim.merged_trace().len();
            (stats, trace_len)
        };
        assert_eq!(run(7), run(7));
        let (a, _) = run(7);
        let (b, _) = run(8);
        assert_eq!(a.packets_delivered, b.packets_delivered);
    }

    #[test]
    fn loss_drops_packets() {
        let mut cfg = SimConfig::lan(2, 3);
        cfg.net.loss = 1.0;
        let mut sim = Sim::new(cfg, |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            s.add_module(Box::new(Pinger { received: vec![] }));
            s
        });
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert_eq!(sim.stats().packets_sent, 2);
        assert_eq!(sim.stats().dropped_loss, 2);
        assert_eq!(sim.stats().dropped_partition, 0);
        assert_eq!(sim.stats().packets_delivered, 0);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut cfg = SimConfig::lan(2, 3);
        cfg.net.duplicate = 1.0;
        let mut sim = Sim::new(cfg, |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            s.add_module(Box::new(Pinger { received: vec![] }));
            s
        });
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert_eq!(sim.stats().packets_delivered, 4);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let mut sim = pinger_sim(2, 9);
        sim.partition(&[StackId(0)], &[StackId(1)]);
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert_eq!(sim.stats().packets_delivered, 0);
        assert_eq!(sim.stats().dropped_partition, 2);
        assert_eq!(sim.stats().dropped_loss, 0);
        sim.heal_partitions();
        let data = (StackId(1), Bytes::from_static(b"x")).to_bytes();
        sim.with_stack(StackId(0), |s| {
            s.call_as(PINGER, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
        sim.run_until(Time::ZERO + Dur::millis(10));
        assert_eq!(sim.stats().packets_delivered, 1);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut sim = pinger_sim(3, 5);
        sim.crash_at(Time::ZERO, StackId(2));
        sim.run_until(Time::ZERO + Dur::millis(10));
        // The crash event at t=0 was scheduled before any processing.
        assert_eq!(received(&mut sim, 2), 0);
        assert!(sim.stack(StackId(2)).is_crashed());
    }

    #[test]
    fn restart_revives_a_crashed_node() {
        let mut sim = pinger_sim(3, 5);
        sim.crash_at(Time::ZERO, StackId(2));
        sim.run_until(Time::ZERO + Dur::millis(10));
        assert!(sim.stack(StackId(2)).is_crashed());
        // Restart with a fresh stack: it re-pings on start and receives.
        let sc = sim.stack_config(StackId(2));
        let mut stack = Stack::new(sc, FactoryRegistry::new());
        stack.add_module(Box::new(Pinger { received: vec![] }));
        sim.restart_node(StackId(2), stack);
        assert!(!sim.stack(StackId(2)).is_crashed());
        sim.run_until(sim.now() + Dur::millis(10));
        // Its startup pings reached the live peers (node 2 crashed at
        // t=0, before its own initial ping could go out)...
        assert_eq!(received(&mut sim, 0), 2, "peer 0: node 1's initial ping + restart ping");
        // ...and a direct message to it is delivered again.
        let data = (StackId(2), Bytes::from_static(b"hi")).to_bytes();
        sim.with_stack(StackId(0), |s| {
            s.call_as(PINGER, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
        sim.run_until(sim.now() + Dur::millis(10));
        assert_eq!(received(&mut sim, 2), 1);
    }

    #[test]
    fn scheduled_actions_run_in_order() {
        let mut sim = pinger_sim(2, 5);
        sim.schedule(Time::ZERO + Dur::millis(2), |sim| {
            assert_eq!(sim.now(), Time::ZERO + Dur::millis(2));
            sim.crash_at(sim.now(), StackId(1));
        });
        sim.schedule_in(Dur::millis(1), |sim| {
            assert!(!sim.stack(StackId(1)).is_crashed());
        });
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert!(sim.stack(StackId(1)).is_crashed());
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = pinger_sim(2, 5);
        sim.run_until(Time::ZERO + Dur::secs(1));
        assert_eq!(sim.now(), Time::ZERO + Dur::secs(1));
    }

    #[test]
    fn cpu_cost_serialises_steps_on_one_node() {
        // With a huge per-step cost, a burst of packets takes multiple
        // service times to process on the receiving node.
        let mut cfg = SimConfig::lan(2, 11);
        cfg.cpu.response = Dur::millis(10);
        let mut sim = Sim::new(cfg, |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            s.add_module(Box::new(Pinger { received: vec![] }));
            s
        });
        for _ in 0..5 {
            let data = (StackId(1), Bytes::from_static(b"x")).to_bytes();
            sim.with_stack(StackId(0), |s| {
                s.call_as(PINGER, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
            });
        }
        // Node 1 receives 6 datagrams in total: the startup ping from
        // node 0 plus the 5 injected ones.
        sim.run_until(Time::ZERO + Dur::millis(38));
        let partial = received(&mut sim, 1);
        assert!(partial < 6, "CPU queueing must spread processing out; got {partial}");
        sim.run_until(Time::ZERO + Dur::millis(200));
        assert_eq!(received(&mut sim, 1), 6);
    }

    #[test]
    fn wire_roundtrip_through_sim_payloads() {
        let payload = Bytes::from(vec![7u8; 100]);
        let encoded = (StackId(1), payload.clone()).to_bytes();
        let (dst, data): (StackId, Bytes) = wire::from_bytes(&encoded).unwrap();
        assert_eq!(dst, StackId(1));
        assert_eq!(data, payload);
    }

    #[test]
    fn run_until_quiescent_stops_when_drained() {
        let mut sim = pinger_sim(3, 13);
        let end = sim.run_until_quiescent(Time::ZERO + Dur::secs(10));
        assert!(end < Time::ZERO + Dur::secs(1), "pingers quiesce quickly, got {end}");
        assert_eq!(sim.stats().packets_delivered, 6);
    }

    #[test]
    fn single_heap_and_sharded_agree_exactly() {
        let run = |cfg: SimConfig| {
            let mut sim = Sim::new(cfg, |sc| {
                let mut s = Stack::new(sc, FactoryRegistry::new());
                s.add_module(Box::new(Pinger { received: vec![] }));
                s
            });
            sim.run_until(Time::ZERO + Dur::millis(20));
            (sim.stats().clone(), sim.merged_trace().len())
        };
        let mut lossy = SimConfig::lan(5, 99);
        lossy.net.loss = 0.2;
        lossy.net.duplicate = 0.1;
        let a = run(lossy.clone());
        let b = run(lossy.with_single_heap());
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_topology_delays_cross_cluster_traffic() {
        // 2 clusters of 2 on instant-ish LANs joined by a slow backbone:
        // the intra-cluster ping lands long before the inter-cluster one.
        let cfg = SimConfig::clustered(4, 7, 2, NetConfig::datacenter(), NetConfig::wan());
        let mut sim = Sim::new(cfg, |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            s.add_module(Box::new(Pinger { received: vec![] }));
            s
        });
        sim.run_until(Time::ZERO + Dur::millis(5));
        // Intra-cluster pings (1 per node) have arrived; WAN ones (15 ms
        // one-way) have not.
        for i in 0..4 {
            assert_eq!(received(&mut sim, i), 1, "stack {i} at t=5ms");
        }
        sim.run_until(Time::ZERO + Dur::millis(100));
        for i in 0..4 {
            assert_eq!(received(&mut sim, i), 3, "stack {i} after WAN delivery");
        }
    }

    #[test]
    fn per_shard_counters_cover_all_nodes() {
        let mut sim = pinger_sim(4, 21);
        sim.run_until(Time::ZERO + Dur::millis(10));
        let stats = sim.stats();
        let shard_delivered: u64 = stats.per_shard.iter().map(|s| s.packets_delivered).sum();
        let shard_steps: u64 = stats.per_shard.iter().map(|s| s.steps).sum();
        assert_eq!(shard_delivered, stats.packets_delivered);
        assert_eq!(shard_steps, stats.steps);
        assert!(stats.events >= stats.steps + stats.packets_delivered);
        let report = sim.report();
        assert!(report.to_string().contains("sim report"), "{report}");
    }
}
