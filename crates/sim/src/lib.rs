//! # dpu-sim — deterministic discrete-event host for DPU stacks
//!
//! Stands in for the paper's evaluation testbed (a cluster of 7 PCs on
//! switched 100 Mb/s Ethernet, §6.1) — and scales far past it: the
//! cluster-sharded engine ([`par`]), the [`sched`] timing-wheel
//! scheduler and the [`topology`]/[`workload`] subsystems exist to run
//! the same live-switch experiments on thousands of simulated nodes. A
//! [`Sim`] hosts `n` [`Stack`]s under a single virtual clock and models:
//!
//! * **the network** ([`NetConfig`] per link, composed by a
//!   [`Topology`]): per-hop propagation delay + jitter, transmission
//!   delay from a configurable bandwidth, probabilistic loss and
//!   duplication, and dynamic partitions — datagram semantics, like the
//!   UDP the paper's stack bottoms out in. Topologies range from the
//!   paper's flat LAN to datacenter clusters joined by a WAN backbone;
//! * **the CPU** ([`CpuConfig`]): each dispatched stack step occupies the
//!   node's single CPU for a configurable service time, so load produces
//!   queueing and the latency-vs-load curves of the paper's Figure 6 get
//!   their characteristic knee;
//! * **faults**: node crashes (and restarts) at arbitrary virtual times;
//! * **traffic**: pluggable [`workload`] generators — closed-loop,
//!   open-loop Poisson, bursty Poisson, node churn.
//!
//! Everything is driven from one seeded RNG family, so a run is a pure
//! function of `(configuration, seed)` — every figure in
//! `EXPERIMENTS.md` is exactly reproducible, whichever scheduler
//! implementation (see [`SchedConfig`]) or worker count (see
//! [`SimConfig::workers`] and [`par`]) executes it.
//!
//! # Execution engines
//!
//! Nodes are partitioned into *shards*, one per [`Topology`] cluster.
//! Each shard owns its nodes, its own [`sched`] event queue, its own
//! RNG stream for link randomness, and its own [`stats`] partial:
//!
//! * a **flat topology** has a single shard, processed by the classic
//!   serial loop in strict `(time, seq)` order — byte-identical to the
//!   pre-sharding simulator (the golden trace of
//!   `tests/host_equivalence.rs` pins this);
//! * a **clustered topology** advances shards in *epochs* bounded by
//!   the topology-derived lookahead (see [`Topology::lookahead`] and
//!   the [`par`] module docs), exchanging cross-cluster packets at
//!   deterministic barriers. The epoch schedule is a pure function of
//!   the configuration, so the run is bit-identical whether the shards
//!   are processed by one thread ([`SimConfig::workers`]` = 1`, the
//!   default) or by a worker pool.
//!
//! ```
//! use dpu_core::{Stack, StackConfig, FactoryRegistry};
//! use dpu_sim::{Sim, SimConfig};
//! use dpu_core::time::{Time, Dur};
//!
//! let cfg = SimConfig::lan(3, 42);
//! let mut sim = Sim::new(cfg, |sc| Stack::new(sc, FactoryRegistry::new()));
//! sim.run_until(Time::ZERO + Dur::millis(10));
//! assert_eq!(sim.now(), Time::ZERO + Dur::millis(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod par;
pub mod sched;
mod slab;
pub mod stats;
pub mod topology;
pub mod workload;

pub use sched::{SchedConfig, SchedKind};
pub use stats::{MemStats, ShardStats, SimReport, SimStats, WorkloadStats};
pub use topology::{NetConfig, Topology};

use bytes::Bytes;
use dpu_core::host::{ActionSink, StackDriver};
use dpu_core::stack::StepCategory;
use dpu_core::time::{Dur, Time};
use dpu_core::trace::TraceLog;
use dpu_core::{Stack, StackConfig, StackId, TelemetryConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sched::Scheduler;
use slab::NodeSlab;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// CPU model: virtual service time charged per dispatched stack step, by
/// step category. Calibrated very roughly to the paper's Pentium III
/// 766 MHz running a Java protocol framework — absolute values only shape
/// the saturation point, not the comparative results.
#[derive(Clone, Debug)]
pub struct CpuConfig {
    /// Cost of dispatching a service call.
    pub call: Dur,
    /// Cost of dispatching a response.
    pub response: Dur,
    /// Cost of a timer handler.
    pub timer: Dur,
    /// Cost of `on_start`.
    pub start: Dur,
    /// Cost of `on_stop`.
    pub stop: Dur,
}

impl CpuConfig {
    /// Default calibration (see module docs).
    pub fn default_cal() -> CpuConfig {
        CpuConfig {
            call: Dur::micros(40),
            response: Dur::micros(40),
            timer: Dur::micros(15),
            start: Dur::micros(80),
            stop: Dur::micros(30),
        }
    }

    /// A modern-hardware calibration: ~1 µs per dispatch, i.e. a few
    /// thousand cycles on a ~3 GHz core running the native stack rather
    /// than the paper's Pentium III Java framework. The thousand-node
    /// experiments use this together with [`crate::NetConfig::datacenter`];
    /// with [`CpuConfig::default_cal`] a sequencer fanning one broadcast
    /// out to 1024 peers would charge 2 × 1024 × 40 µs ≈ 82 ms of CPU
    /// per message and saturate at ~12 msg/s.
    pub fn fast() -> CpuConfig {
        CpuConfig {
            call: Dur::micros(1),
            response: Dur::micros(1),
            timer: Dur::nanos(500),
            start: Dur::micros(2),
            stop: Dur::micros(1),
        }
    }

    /// Cost for a step category.
    pub fn cost(&self, cat: StepCategory) -> Dur {
        match cat {
            StepCategory::Call => self.call,
            StepCategory::Response => self.response,
            StepCategory::Timer => self.timer,
            StepCategory::Start => self.start,
            StepCategory::Stop => self.stop,
        }
    }
}

/// Full simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of stacks (machines), ids `0..n`.
    pub n: u32,
    /// Master seed; all randomness (jitter, loss, per-stack RNG streams,
    /// workload generators) derives from it.
    pub seed: u64,
    /// Flat network model — the default link config. For non-flat shapes
    /// set [`SimConfig::topology`] instead.
    pub net: NetConfig,
    /// CPU model.
    pub cpu: CpuConfig,
    /// Record traces in each stack (disable for long benchmark runs).
    pub trace: bool,
    /// Event scheduler implementation and tuning.
    pub sched: SchedConfig,
    /// Non-flat topology (clusters, per-link overrides). When `None` the
    /// simulation is flat: every link uses [`SimConfig::net`].
    pub topology: Option<Topology>,
    /// Worker threads for the conservative parallel engine (default 1 =
    /// process every shard on the calling thread). The worker count
    /// never changes the result of a run — only its wall-clock time —
    /// and only clustered topologies have exploitable parallelism; see
    /// the [`par`] module docs.
    pub workers: usize,
    /// Per-stack observability (histograms, switch timeline, flight
    /// recorder). On by default like `trace`; capacity runs switch it
    /// off. Never affects simulation results — telemetry records, it
    /// does not feed back.
    pub telemetry: TelemetryConfig,
    /// Shard-level scratch pooling (default on): each shard owns one
    /// [`dpu_core::wire::WireScratch`] pool loaned to whichever stack
    /// is being driven, so retained encode buffers scale with *shards*
    /// instead of total stacks. A pure representation change — encoded
    /// bytes, traces and [`SimStats`] are bit-identical either way
    /// (`tests/scratch_pool_equiv.rs` pins this); `false` restores the
    /// per-stack retained pools.
    pub scratch_pooling: bool,
}

impl SimConfig {
    /// `n` machines on a healthy LAN.
    pub fn lan(n: u32, seed: u64) -> SimConfig {
        SimConfig {
            n,
            seed,
            net: NetConfig::lan(),
            cpu: CpuConfig::default_cal(),
            trace: true,
            sched: SchedConfig::default(),
            topology: None,
            workers: 1,
            telemetry: TelemetryConfig::default(),
            scratch_pooling: true,
        }
    }

    /// `n` machines in clusters of `cluster_size` on `intra` links,
    /// joined by `backbone` — see [`Topology::clustered`].
    pub fn clustered(
        n: u32,
        seed: u64,
        cluster_size: u32,
        intra: NetConfig,
        backbone: NetConfig,
    ) -> SimConfig {
        SimConfig {
            net: intra.clone(),
            topology: Some(Topology::clustered(cluster_size, intra, backbone)),
            ..SimConfig::lan(n, seed)
        }
    }

    /// Select the reference single-heap scheduler (builder style, for
    /// equivalence tests and benchmarks).
    pub fn with_single_heap(mut self) -> SimConfig {
        self.sched = SchedConfig::single_heap();
        self
    }

    /// Set the worker-thread count (builder style).
    pub fn with_workers(mut self, workers: usize) -> SimConfig {
        self.workers = workers;
        self
    }

    /// Enable/disable shard-level scratch pooling (builder style; see
    /// [`SimConfig::scratch_pooling`]).
    pub fn with_scratch_pooling(mut self, pooling: bool) -> SimConfig {
        self.scratch_pooling = pooling;
        self
    }
}

pub(crate) enum EventKind {
    PacketArrive {
        dst: StackId,
        src: StackId,
        payload: Bytes,
    },
    /// Wake a node's [`StackDriver`] so it fires its due timers. One
    /// wake is kept scheduled per node, stamped in [`Node::wake`];
    /// entries whose time no longer matches the stamp are stale
    /// (a nearer deadline was scheduled since) and are skipped.
    NodeWake {
        node: StackId,
    },
    NodeStep {
        node: StackId,
    },
    Crash {
        node: StackId,
    },
    /// A control closure against the whole simulation. Only ever queued
    /// in single-shard runs — clustered runs keep actions in the
    /// simulation-level barrier queue (see [`Sim::schedule`]).
    Action(Box<dyn FnOnce(&mut Sim) + Send>),
}

/// [`ActionSink`] that buffers sends so they can be replayed through the
/// network model once the driver borrow ends.
#[derive(Default)]
struct SendBuf {
    sends: Vec<(Time, StackId, StackId, Bytes)>,
}

impl ActionSink for SendBuf {
    fn net_send(&mut self, at: Time, src: StackId, dst: StackId, payload: Bytes) {
        self.sends.push((at, src, dst, payload));
    }
}

/// A cross-cluster packet in transit between shards: arrival time,
/// destination, source, payload. Buffered in the source shard's
/// [`Shard::outbox`] and merged at the next epoch barrier.
pub(crate) type Inflight = (Time, StackId, StackId, Bytes);

/// Read-only simulation state shared with shard processing (and, in the
/// parallel engine, across worker threads).
pub(crate) struct SimShared<'a> {
    topology: &'a Topology,
    cpu: &'a CpuConfig,
    n: u32,
}

/// Everything one topology cluster owns: its nodes, its event queue,
/// its link-randomness RNG stream, its `seq` counter (the tie-break of
/// the deterministic `(time, seq)` order is *per shard*), its stats
/// partial, and outboxes for cross-cluster packets. A shard never
/// touches another shard's state — that independence is what lets the
/// parallel engine process shards on worker threads and still produce
/// the serial result bit for bit.
pub(crate) struct Shard {
    /// First global node id owned by this shard (clusters are
    /// contiguous id ranges).
    base: u32,
    /// Slot-stable drivers + SoA hot fields (see [`slab`]); slot =
    /// `id - base`.
    nodes: NodeSlab,
    sched: Scheduler<EventKind>,
    seq: u64,
    rng: SmallRng,
    stats: SimStats,
    /// Shard-local clock: the time of the last dispatched event.
    now: Time,
    /// Cross-cluster packets emitted this epoch, per destination shard.
    outbox: Vec<Vec<Inflight>>,
    /// The shard-level encode-buffer pool, loaned to whichever stack is
    /// being driven (see [`Shard::lend`]). Retained encode memory thus
    /// scales with shards, not stacks.
    pool: dpu_core::wire::WireScratch,
    /// Whether the loan discipline is active ([`SimConfig::scratch_pooling`]).
    pooled: bool,
    /// Wire counters of retired stack incarnations (node restarts drop
    /// the old stack's scratch; its history folds in here so
    /// [`Sim::wire_stats`] stays exact across churn).
    retired_wire: dpu_core::wire::ScratchStats,
    /// Transport counters of retired stack incarnations, same story.
    retired_transport: dpu_core::TransportStats,
}

impl Shard {
    #[inline]
    fn slot(&self, id: StackId) -> usize {
        (id.0 - self.base) as usize
    }

    fn push(&mut self, at: Time, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.sched.push(at, seq, kind);
    }

    /// The scratch-pool loan handoff: swap the shard pool into (or back
    /// out of) the stack in `slot`. Called symmetrically around every
    /// encode-capable driver entry point — packet delivery, dispatch
    /// steps, host closures — so all encodes land in the shard pool and
    /// the stack's resident scratch stays empty. No-op when pooling is
    /// off. An O(1) field swap, not a copy.
    #[inline]
    fn lend(&mut self, slot: usize) {
        if self.pooled {
            self.nodes.driver_mut(slot).swap_scratch(&mut self.pool);
        }
    }

    /// The earliest queued event's time (the epoch-floor probe).
    pub(crate) fn next_time(&mut self) -> Option<Time> {
        self.sched.next_time()
    }

    /// Pop and dispatch every queued event strictly before `horizon` —
    /// one epoch of this shard. Events this produces inside the window
    /// are processed in the same pass; cross-cluster packets land in
    /// [`Shard::outbox`] (the lookahead guarantees their arrival times
    /// are at or beyond `horizon`).
    pub(crate) fn run_epoch(&mut self, shared: &SimShared<'_>, horizon: Time) {
        let last = Time(horizon.0 - 1);
        while let Some((at, kind)) = self.sched.pop_before(last) {
            self.dispatch(shared, at, kind);
        }
    }

    /// Push an exchanged cross-cluster arrival (barrier context).
    pub(crate) fn push_arrival(&mut self, (at, dst, src, payload): Inflight) {
        self.push(at, EventKind::PacketArrive { dst, src, payload });
    }

    /// Take the outbox destined for shard `dst`.
    pub(crate) fn take_outbox(&mut self, dst: usize) -> Vec<Inflight> {
        std::mem::take(&mut self.outbox[dst])
    }

    fn dispatch(&mut self, shared: &SimShared<'_>, at: Time, kind: EventKind) {
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.stats.events += 1;
        match kind {
            EventKind::PacketArrive { dst, src, payload } => {
                let slot = self.slot(dst);
                if self.nodes.crashed(slot) {
                    return;
                }
                self.lend(slot);
                self.nodes.driver_mut(slot).deliver(at, src, payload);
                self.lend(slot);
                self.stats.packets_delivered += 1;
                self.ensure_step(dst);
            }
            EventKind::NodeWake { node } => {
                let slot = self.slot(node);
                if self.nodes.crashed(slot) || self.nodes.wake(slot) != Some(at) {
                    // Stale wake: a nearer deadline superseded this entry.
                    return;
                }
                self.nodes.set_wake(slot, None);
                let next = self.nodes.driver_mut(slot).wake(at);
                self.ensure_step(node);
                self.ensure_wake_at(node, next);
            }
            EventKind::NodeStep { node } => {
                let slot = self.slot(node);
                self.nodes.set_step_scheduled(slot, false);
                self.node_step(shared, node, at);
            }
            EventKind::Crash { node } => {
                let slot = self.slot(node);
                self.nodes.set_crashed(slot);
                self.nodes.driver_mut(slot).stack_mut().crash(at);
            }
            EventKind::Action(_) => unreachable!("actions are dispatched by the Sim, not a shard"),
        }
    }

    fn node_step(&mut self, shared: &SimShared<'_>, id: StackId, at: Time) {
        let slot = self.slot(id);
        if self.nodes.crashed(slot) {
            return;
        }
        self.lend(slot);
        let step = self.nodes.driver_mut(slot).step_raw(at);
        let Some(info) = step else {
            self.lend(slot);
            return;
        };
        self.stats.steps += 1;
        let cost = shared.cpu.cost(info.category);
        let done = at + cost;
        self.nodes.set_cpu_free(slot, done);
        let mut buf = SendBuf::default();
        self.nodes.driver_mut(slot).settle(done, &mut buf);
        self.lend(slot);
        self.flush_sends(shared, buf);
        self.ensure_step(id);
        self.ensure_wake(id);
    }

    /// Replay sends buffered by a [`StackDriver`] call through the
    /// network model, in action order.
    fn flush_sends(&mut self, shared: &SimShared<'_>, buf: SendBuf) {
        for (at, src, dst, payload) in buf.sends {
            self.net_send(shared, src, dst, payload, at);
        }
    }

    fn net_send(
        &mut self,
        shared: &SimShared<'_>,
        src: StackId,
        dst: StackId,
        payload: Bytes,
        when: Time,
    ) {
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        if dst.0 >= shared.n || shared.topology.blocked(src, dst) {
            self.stats.dropped_partition += 1;
            return;
        }
        let link = shared.topology.link(src, dst).clone();
        if link.loss > 0.0 && self.rng.gen::<f64>() < link.loss {
            self.stats.dropped_loss += 1;
            return;
        }
        // Serialise on the sender's outbound link: a burst of sends
        // queues behind the NIC, which is what bends the latency-vs-load
        // curves at high throughput.
        let bits = 8 * (payload.len() + link.header_bytes) as u64;
        let tx = Dur::nanos(bits.saturating_mul(1_000_000_000) / link.bandwidth_bps);
        let src_slot = self.slot(src);
        let depart = when.max(self.nodes.nic_free(src_slot));
        self.nodes.set_nic_free(src_slot, depart + tx);
        let copies =
            if link.duplicate > 0.0 && self.rng.gen::<f64>() < link.duplicate { 2 } else { 1 };
        let dst_shard = shared.topology.cluster_of(dst) as usize;
        let local = dst_shard == shared.topology.cluster_of(src) as usize;
        for _ in 0..copies {
            let jitter = if link.jitter.as_nanos() > 0 {
                Dur::nanos(self.rng.gen_range(0..link.jitter.as_nanos()))
            } else {
                Dur::ZERO
            };
            let arrive = depart + tx + link.latency + jitter;
            if local {
                self.push(arrive, EventKind::PacketArrive { dst, src, payload: payload.clone() });
            } else {
                self.outbox[dst_shard].push((arrive, dst, src, payload.clone()));
            }
        }
    }

    fn ensure_step(&mut self, id: StackId) {
        let slot = self.slot(id);
        if self.nodes.crashed(slot)
            || self.nodes.step_scheduled(slot)
            || !self.nodes.driver(slot).stack().has_work()
        {
            return;
        }
        self.nodes.set_step_scheduled(slot, true);
        let at = self.now.max(self.nodes.cpu_free(slot));
        self.push(at, EventKind::NodeStep { node: id });
    }

    /// Keep one [`EventKind::NodeWake`] scheduled at the driver's
    /// earliest timer deadline. Scheduling a nearer wake strands the old
    /// queue entry; the wake stamp in the [`NodeSlab`] marks it stale.
    fn ensure_wake(&mut self, id: StackId) {
        let slot = self.slot(id);
        let deadline = self.nodes.driver_mut(slot).next_deadline();
        self.ensure_wake_at(id, deadline);
    }

    /// Fold a retiring stack incarnation's wire/transport counters into
    /// the shard's retired partials — called just before
    /// [`NodeSlab::retire`] drops the old stack.
    fn absorb_retiring(&mut self, slot: usize) {
        let stack = self.nodes.driver(slot).stack();
        self.retired_wire.absorb(stack.wire_stats());
        self.retired_transport.absorb(stack.transport_stats());
    }

    /// [`Shard::ensure_wake`] with the deadline already in hand (the
    /// fused [`StackDriver::wake`] hook reports it for free).
    fn ensure_wake_at(&mut self, id: StackId, deadline: Option<Time>) {
        let slot = self.slot(id);
        if self.nodes.crashed(slot) {
            return;
        }
        let Some(deadline) = deadline else { return };
        let at = deadline.max(self.now);
        if self.nodes.wake(slot).is_some_and(|w| w <= at) {
            return;
        }
        self.nodes.set_wake(slot, Some(at));
        self.push(at, EventKind::NodeWake { node: id });
    }
}

/// A barrier-time control closure: `(time, seq)`-ordered entries of the
/// clustered engine's action queue. Actions at time `t` run after every
/// shard event before `t` and before any shard event at or after `t`.
struct ActionEntry {
    at: Time,
    seq: u64,
    f: Box<dyn FnOnce(&mut Sim) + Send>,
}

impl PartialEq for ActionEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for ActionEntry {}
impl PartialOrd for ActionEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ActionEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min key on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Builds the [`SimShared`] view without borrowing all of `self`, so
/// shard borrows stay disjoint from the read-only fields.
macro_rules! shared_view {
    ($sim:expr) => {
        SimShared { topology: &$sim.topology, cpu: &$sim.cfg.cpu, n: $sim.cfg.n }
    };
}

/// Mutable access to the topology. It sits behind an [`Arc`] so the
/// persistent worker pool can hold a reference across a stretch; between
/// stretches the refcount is (almost always) 1 and `make_mut` is free.
/// A clone can only happen in the harmless window where a pool worker
/// still holds the previous stretch's job.
macro_rules! topology_mut {
    ($sim:expr) => {
        Arc::make_mut(&mut $sim.topology)
    };
}

/// The deterministic discrete-event host. See module docs.
pub struct Sim {
    cfg: SimConfig,
    now: Time,
    shards: Vec<Shard>,
    /// Barrier-time actions (clustered engine only; single-shard runs
    /// keep actions inline in the shard's event queue).
    actions: BinaryHeap<ActionEntry>,
    action_seq: u64,
    /// Actions dispatched from the barrier queue (counted into
    /// [`SimStats::events`]; they belong to no shard).
    actions_dispatched: u64,
    workloads: Vec<WorkloadStats>,
    /// Shared with the worker pool during parallel stretches; mutate
    /// through `topology_mut!` (partitions, loss changes).
    topology: Arc<Topology>,
    /// The one peer table every stack of the run shares (an owned vector
    /// per stack would cost O(n²) bytes — the old 65536-stack ceiling).
    peer_table: Arc<[StackId]>,
    /// Persistent worker threads for the parallel engine, spawned on the
    /// first parallel stretch and parked on a condvar between stretches.
    pool: Option<par::WorkerPool>,
    /// Conservative epoch width for the clustered engine (`ZERO` when
    /// there is a single shard and epochs are unbounded).
    lookahead: Dur,
}

/// The splitmix64 finalizer behind every derived RNG stream of the
/// simulator ([`shard_seed`], [`Sim::derive_rng`]).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The link-randomness RNG stream of shard `idx`: shard 0 keeps the
/// exact pre-sharding global stream (flat runs are byte-identical to
/// the serial simulator of old); further shards get independent streams
/// derived from the master seed.
fn shard_seed(seed: u64, idx: u32) -> u64 {
    let base = seed ^ 0xD1B54A32D192ED03;
    if idx == 0 {
        return base;
    }
    mix64(base.wrapping_add(u64::from(idx).wrapping_mul(0x9E3779B97F4A7C15)))
}

impl Sim {
    /// Build a simulation; `mk_stack` constructs each stack from its
    /// [`StackConfig`] (attach factories, install modules, etc.).
    pub fn new(mut cfg: SimConfig, mut mk_stack: impl FnMut(StackConfig) -> Stack) -> Sim {
        let topology =
            Arc::new(cfg.topology.take().unwrap_or_else(|| Topology::flat(cfg.net.clone())));
        let nshards = topology.cluster_count(cfg.n) as usize;
        let lookahead = topology.lookahead(cfg.n).unwrap_or(Dur::ZERO);
        let cluster_size = topology.cluster_size().unwrap_or(cfg.n.max(1));
        let peer_table = StackConfig::peer_table(cfg.n);
        let mut shards = Vec::with_capacity(nshards);
        for k in 0..nshards as u32 {
            let base = k * cluster_size;
            let count = cluster_size.min(cfg.n - base);
            let drivers = (base..base + count)
                .map(|i| {
                    StackDriver::new(mk_stack(Self::mk_stack_config(
                        &cfg,
                        topology.cluster_size(),
                        &peer_table,
                        StackId(i),
                    )))
                })
                .collect();
            shards.push(Shard {
                base,
                nodes: NodeSlab::new(drivers),
                sched: Scheduler::new(&cfg.sched, count as usize),
                seq: 0,
                rng: SmallRng::seed_from_u64(shard_seed(cfg.seed, k)),
                stats: SimStats::default(),
                now: Time::ZERO,
                outbox: vec![Vec::new(); nshards],
                pool: dpu_core::wire::WireScratch::shard_pool(),
                pooled: cfg.scratch_pooling,
                retired_wire: dpu_core::wire::ScratchStats::default(),
                retired_transport: dpu_core::TransportStats::default(),
            });
        }
        let mut sim = Sim {
            cfg,
            now: Time::ZERO,
            shards,
            actions: BinaryHeap::new(),
            action_seq: 0,
            actions_dispatched: 0,
            workloads: Vec::new(),
            topology,
            peer_table,
            pool: None,
            lookahead,
        };
        // Stacks are born with pending Start deliveries.
        for i in 0..sim.cfg.n {
            sim.shard_of(StackId(i)).ensure_step(StackId(i));
        }
        sim
    }

    fn mk_stack_config(
        cfg: &SimConfig,
        cluster_size: Option<u32>,
        peers: &Arc<[StackId]>,
        id: StackId,
    ) -> StackConfig {
        StackConfig {
            id,
            peers: Arc::clone(peers),
            seed: cfg.seed,
            trace: cfg.trace,
            cluster_size,
            telemetry: cfg.telemetry,
        }
    }

    #[inline]
    fn shard_of(&mut self, id: StackId) -> &mut Shard {
        let k = self.topology.cluster_of(id) as usize;
        &mut self.shards[k]
    }

    /// The [`StackConfig`] node `id` was (and would again be) built from
    /// — used by churn workloads to construct replacement stacks.
    pub fn stack_config(&self, id: StackId) -> StackConfig {
        Self::mk_stack_config(&self.cfg, self.topology.cluster_size(), &self.peer_table, id)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of stacks.
    pub fn n(&self) -> u32 {
        self.cfg.n
    }

    /// All stack ids.
    pub fn stack_ids(&self) -> Vec<StackId> {
        (0..self.cfg.n).map(StackId).collect()
    }

    /// Run statistics so far: the per-shard partials folded into totals
    /// plus one [`ShardStats`] row per cluster (see [`stats`]).
    pub fn stats(&self) -> SimStats {
        let mut total = SimStats::default();
        for shard in &self.shards {
            total.absorb(&shard.stats);
            total.per_shard.push(shard.stats.shard_row());
        }
        total.events += self.actions_dispatched;
        total.workloads = self.workloads.clone();
        total
    }

    /// Number of events currently queued (in-flight packets, pending
    /// steps, armed wakes, scheduled actions) across all shards and the
    /// barrier action queue.
    pub fn queued_events(&self) -> usize {
        self.shards.iter().map(|s| s.sched.len()).sum::<usize>() + self.actions.len()
    }

    /// One-stop end-of-run summary: run counters, per-shard and
    /// per-generator breakdowns, and the aggregated wire scratch stats,
    /// with a printable [`std::fmt::Display`].
    pub fn report(&self) -> SimReport {
        SimReport {
            n: self.cfg.n,
            now: self.now,
            stats: self.stats(),
            wire: self.wire_stats(),
            transport: self.transport_stats(),
            mem: self.mem_stats(),
        }
    }

    /// Structural memory audit: summed [`dpu_core::StackDriver`]
    /// estimates plus each shard's scheduler queue and outboxes, and
    /// the shared peer table counted once. A floor on the true
    /// resident set (see [`MemStats`]); the `bench_scale` binary pairs
    /// it with allocator-measured numbers. Also folded into
    /// [`Sim::report`].
    pub fn mem_stats(&self) -> MemStats {
        use std::mem::size_of;
        let mut total = 0usize;
        for shard in &self.shards {
            total += shard.nodes.mem_bytes();
            total += shard.pool.mem_bytes();
            total += shard.sched.mem_bytes();
            for ob in &shard.outbox {
                total += ob.capacity() * size_of::<Inflight>();
            }
        }
        total += self.peer_table.len() * size_of::<StackId>();
        let bytes_total = total as u64;
        MemStats { bytes_total, bytes_per_stack: bytes_total / u64::from(self.cfg.n.max(1)) }
    }

    /// The topology (for link inspection; mutate via the `Sim` methods
    /// so partition changes stay on the simulation thread).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a stack.
    pub fn stack(&self, id: StackId) -> &Stack {
        let k = self.topology.cluster_of(id) as usize;
        let shard = &self.shards[k];
        shard.nodes.driver(shard.slot(id)).stack()
    }

    /// Mutate a stack, then reschedule its CPU if the mutation produced
    /// work. Use this (not direct field access) so injected calls run.
    pub fn with_stack<R>(&mut self, id: StackId, f: impl FnOnce(&mut Stack) -> R) -> R {
        let shard = self.shard_of(id);
        let slot = shard.slot(id);
        shard.lend(slot);
        let r = f(shard.nodes.driver_mut(slot).stack_mut());
        shard.lend(slot);
        self.after_stack_mutation(id);
        r
    }

    fn after_stack_mutation(&mut self, id: StackId) {
        // A direct mutation (e.g. install()) may have produced host
        // actions; execute them and schedule the CPU.
        let now = self.now;
        let shared = shared_view!(self);
        let k = shared.topology.cluster_of(id) as usize;
        let shard = &mut self.shards[k];
        shard.now = shard.now.max(now);
        let mut buf = SendBuf::default();
        let slot = shard.slot(id);
        shard.nodes.driver_mut(slot).settle(now, &mut buf);
        shard.flush_sends(&shared, buf);
        shard.ensure_step(id);
        shard.ensure_wake(id);
        self.flush_outboxes_from(k);
    }

    /// Move the cross-cluster packets a barrier-context mutation
    /// buffered in shard `src`'s outboxes into their destination
    /// shards. Only `src` can hold anything here — every other outbox
    /// was drained at the preceding epoch barrier — so this is O(shard
    /// count), not a full exchange. Destination order matches
    /// [`par::exchange`], so the assigned `(time, seq)` keys are the
    /// same ones a full exchange would produce.
    fn flush_outboxes_from(&mut self, src: usize) {
        for dst in 0..self.shards.len() {
            if dst == src {
                continue; // a shard's own slot is never used
            }
            let batch = self.shards[src].take_outbox(dst);
            for packet in batch {
                self.shards[dst].push_arrival(packet);
            }
        }
    }

    /// Schedule a closure to run at absolute virtual time `at` (clamped
    /// to now). In clustered runs the closure runs at a deterministic
    /// epoch barrier: after every event before `at`, before any event at
    /// or after `at`.
    pub fn schedule(&mut self, at: Time, f: impl FnOnce(&mut Sim) + Send + 'static) {
        let at = at.max(self.now);
        if self.shards.len() == 1 {
            self.shards[0].push(at, EventKind::Action(Box::new(f)));
        } else {
            let seq = self.action_seq;
            self.action_seq += 1;
            self.actions.push(ActionEntry { at, seq, f: Box::new(f) });
        }
    }

    /// Schedule a closure `delay` from now.
    pub fn schedule_in(&mut self, delay: Dur, f: impl FnOnce(&mut Sim) + Send + 'static) {
        self.schedule(self.now + delay, f);
    }

    /// Crash node `id` at time `at`.
    pub fn crash_at(&mut self, at: Time, id: StackId) {
        let at = at.max(self.now);
        self.shard_of(id).push(at, EventKind::Crash { node: id });
    }

    /// Replace node `id` with a freshly constructed stack, reviving it if
    /// it was crashed. The new stack starts from scratch (it re-runs
    /// `on_start`); in-flight packets addressed to the node are delivered
    /// to the *new* incarnation. Used by [`workload::Generator::Churn`]-style
    /// crash/restart schedules.
    pub fn restart_node(&mut self, id: StackId, stack: Stack) {
        let now = self.now;
        let shard = self.shard_of(id);
        let slot = shard.slot(id);
        // Recycle the slab slot in place: the old incarnation's module,
        // timer and scratch state is dropped here, before the SoA fields
        // are reset — nothing of it survives into the new incarnation.
        // Its counters do: fold them into the shard's retired partials
        // so run totals stay exact across churn.
        shard.absorb_retiring(slot);
        shard.nodes.retire(slot);
        shard.nodes.recycle(slot, StackDriver::new(stack), now);
        self.after_stack_mutation(id);
    }

    /// [`Sim::restart_node`], but the replacement stack is built *after*
    /// the old incarnation has been dropped: the factory runs against a
    /// vacant slab slot, so a restart's resident peak is one stack's
    /// worth of state, not two. Churn workloads restart through this
    /// path — at 10^5+ stacks the difference is whether a restart storm
    /// doubles the process footprint.
    pub fn restart_node_with(&mut self, id: StackId, factory: impl FnOnce(StackConfig) -> Stack) {
        let cfg = self.stack_config(id);
        let shard = self.shard_of(id);
        let slot = shard.slot(id);
        shard.absorb_retiring(slot);
        shard.nodes.retire(slot);
        let driver = StackDriver::new(factory(cfg));
        let now = self.now;
        let shard = self.shard_of(id);
        shard.nodes.recycle(slot, driver, now);
        self.after_stack_mutation(id);
    }

    /// Block traffic in both directions between the two groups.
    pub fn partition(&mut self, a: &[StackId], b: &[StackId]) {
        topology_mut!(self).partition(a, b);
    }

    /// Block all traffic between two clusters of the topology.
    pub fn partition_clusters(&mut self, a: u32, b: u32) {
        let n = self.cfg.n;
        topology_mut!(self).partition_clusters(a, b, n);
    }

    /// Remove all partitions.
    pub fn heal_partitions(&mut self) {
        topology_mut!(self).heal_partitions();
    }

    /// Change the loss probability from now on (applied to the default
    /// link config and, in clustered topologies, the backbone; per-link
    /// overrides are left alone).
    pub fn set_loss(&mut self, loss: f64) {
        self.cfg.net.loss = loss;
        let topology = topology_mut!(self);
        topology.default_mut().loss = loss;
        if let Some(backbone) = topology.backbone_mut() {
            backbone.loss = loss;
        }
    }

    /// An RNG stream derived from the master seed and `salt`, independent
    /// of the simulator's own streams (drawing from it does not perturb
    /// jitter/loss decisions). Workload generators take their randomness
    /// from here so runs stay pure functions of `(config, seed)`.
    pub fn derive_rng(&self, salt: u64) -> SmallRng {
        // splitmix64-style finalizer over (seed, salt).
        SmallRng::seed_from_u64(mix64(self.cfg.seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15)))
    }

    pub(crate) fn register_workload(&mut self, name: String) -> usize {
        self.workloads.push(WorkloadStats { name, ..WorkloadStats::default() });
        self.workloads.len() - 1
    }

    pub(crate) fn workload_mut(&mut self, id: usize) -> &mut WorkloadStats {
        &mut self.workloads[id]
    }

    /// Run until virtual time `t`, processing all events up to it.
    pub fn run_until(&mut self, t: Time) {
        self.run_events(t);
        self.now = self.now.max(t);
    }

    /// Run until no events remain or the cap is reached; returns the final
    /// virtual time. Note: stacks with periodic timers never quiesce —
    /// use [`Sim::run_until`] for those.
    pub fn run_until_quiescent(&mut self, cap: Time) -> Time {
        self.run_events(cap);
        self.now
    }

    /// Process every event (and barrier action) with time ≤ `t`.
    fn run_events(&mut self, t: Time) {
        if self.shards.len() == 1 {
            self.run_serial(t);
        } else {
            self.run_clustered(t);
        }
    }

    /// The classic serial loop: one shard, strict `(time, seq)` order,
    /// actions inline in the event queue. Byte-identical to the
    /// pre-sharding simulator.
    fn run_serial(&mut self, t: Time) {
        loop {
            let Some((at, kind)) = self.shards[0].sched.pop_before(t) else { return };
            match kind {
                EventKind::Action(f) => {
                    debug_assert!(at >= self.now, "time went backwards");
                    self.now = at;
                    self.shards[0].now = at;
                    self.shards[0].stats.events += 1;
                    f(self);
                }
                kind => {
                    let shared = shared_view!(self);
                    self.shards[0].dispatch(&shared, at, kind);
                    self.now = at;
                }
            }
        }
    }

    /// The conservative clustered engine: epochs of lookahead width,
    /// cross-cluster exchange and barrier actions between them. The
    /// epoch schedule — and therefore the entire run — is independent
    /// of [`SimConfig::workers`]; see the [`par`] module docs for the
    /// determinism argument.
    fn run_clustered(&mut self, t: Time) {
        let cap = Time(t.0.saturating_add(1)); // exclusive event bound
        loop {
            let next_act = self.actions.peek().map(|a| a.at);
            let next_ev = self.shards.iter_mut().filter_map(|s| s.next_time()).min();
            let floor = match (next_act, next_ev) {
                (None, None) => return,
                (a, e) => a.into_iter().chain(e).min().expect("one side is Some"),
            };
            if floor > t {
                return;
            }
            if next_act == Some(floor) {
                // Actions at `floor` run before shard events at `floor`.
                self.now = floor;
                while self.actions.peek().is_some_and(|a| a.at <= floor) {
                    let entry = self.actions.pop().expect("peeked");
                    self.actions_dispatched += 1;
                    (entry.f)(self);
                }
                continue;
            }
            // A stretch of pure shard events: epochs up to the next
            // action time (actions need `&mut Sim`, so they bound it).
            let bound = Time(next_act.map_or(cap.0, |a| a.0.min(cap.0)));
            self.run_stretch(bound);
            let reached = self.shards.iter().map(|s| s.now).max().unwrap_or(self.now);
            self.now = self.now.max(reached);
        }
    }

    /// Run lookahead-wide epochs until every shard's next event is at or
    /// beyond `bound` (exclusive). With `workers > 1` the shards are
    /// processed by the [`par`] worker pool; the results are identical.
    fn run_stretch(&mut self, bound: Time) {
        let workers = self.cfg.workers.clamp(1, self.shards.len());
        let la = self.lookahead.as_nanos().max(1);
        if workers == 1 {
            let shared = shared_view!(self);
            let mut views: Vec<&mut Shard> = self.shards.iter_mut().collect();
            loop {
                let Some(floor) = par::min_next_time(&mut views) else { return };
                if floor >= bound {
                    return;
                }
                let horizon = Time(floor.0.saturating_add(la).min(bound.0));
                for shard in views.iter_mut() {
                    shard.run_epoch(&shared, horizon);
                }
                par::exchange(&mut views);
            }
        } else {
            let pool = self.pool.get_or_insert_with(|| par::WorkerPool::new(workers));
            let shards = std::mem::take(&mut self.shards);
            self.shards = pool.run_stretch(
                shards,
                Arc::clone(&self.topology),
                self.cfg.cpu.clone(),
                self.cfg.n,
                la,
                bound,
            );
        }
    }

    /// Aggregate [`dpu_core::wire::ScratchStats`] over the run: the
    /// steady-state-allocation oracle for the whole simulation (see the
    /// `wire_codec` bench and `BENCH_wire.json`). Also folded into
    /// [`Sim::report`].
    ///
    /// With shard-level pooling active (the default) every encode runs
    /// under the pool loan, so the totals are exactly Σ shard-pool
    /// counters + retired partials — **O(shards), not O(n)**, which is
    /// what makes a million-stack report cheap. With pooling off the
    /// per-stack pools are walked instead (plus the retired partials,
    /// so churned incarnations still count).
    pub fn wire_stats(&self) -> dpu_core::wire::ScratchStats {
        let mut total = dpu_core::wire::ScratchStats::default();
        for shard in &self.shards {
            total.absorb(shard.pool.stats());
            total.absorb(shard.retired_wire);
            if !shard.pooled {
                for driver in shard.nodes.drivers() {
                    total.absorb(driver.stack().wire_stats());
                }
            }
        }
        total
    }

    /// Aggregate [`dpu_core::TransportStats`] over every stack — the
    /// reliable-transport health of the run (rp2p retransmissions,
    /// frames given up after the retransmit cap, current unacked
    /// backlog) — plus the per-shard partials of retired (churned)
    /// incarnations. The live counters are module state, so this walk
    /// is O(live modules); it allocates nothing and materializes no
    /// intermediate. Also folded into [`Sim::report`].
    pub fn transport_stats(&self) -> dpu_core::TransportStats {
        let mut total = dpu_core::TransportStats::default();
        for shard in &self.shards {
            total.absorb(shard.retired_transport);
            for driver in shard.nodes.drivers() {
                total.absorb(driver.stack().transport_stats());
            }
        }
        total
    }

    /// The unified observability report: per-stack telemetry partials
    /// (latency/cascade/occupancy histograms, switch timelines, flight
    /// drops) folded by addition — the same order-independent fold as
    /// [`Sim::wire_stats`] — plus the wire and transport counter
    /// families. Shape-identical to `Runtime::telemetry_report` and
    /// `Reactor::telemetry_report`.
    pub fn telemetry_report(&self) -> dpu_core::telemetry::TelemetryReport {
        let mut agg = dpu_core::telemetry::TelemetryAggregate::new();
        // Capacity runs build every stack with telemetry off, so the
        // per-stack partials are all empty — skip the O(n) walk and the
        // report is O(shards) like the rest of the streaming stats path.
        if self.cfg.telemetry.enabled {
            for shard in &self.shards {
                for driver in shard.nodes.drivers() {
                    agg.absorb(driver.stack().telemetry());
                }
            }
        }
        let mut report = agg.report("sim", self.cfg.n, self.now.as_nanos());
        let w = self.wire_stats();
        report.wire = dpu_core::telemetry::WireCounters {
            emitted: w.emitted,
            reclaimed: w.reclaimed,
            allocations: w.allocations,
        };
        let t = self.transport_stats();
        report.transport = dpu_core::telemetry::TransportCounters {
            retransmissions: t.retransmissions,
            exhausted: t.exhausted,
            unacked: t.unacked,
        };
        report
    }

    /// Dump every stack's flight recorder (most recent events, oldest
    /// first, with drop counts) — the postmortem a failing soak prints.
    pub fn dump_flight_recorders(&self) -> String {
        let mut out = String::new();
        for shard in &self.shards {
            for driver in shard.nodes.drivers() {
                let stack = driver.stack();
                stack.telemetry().dump_flight(&format!("stack {}", stack.id().0), &mut out);
            }
        }
        out
    }

    /// Merge and take the traces of all stacks.
    pub fn merged_trace(&mut self) -> TraceLog {
        let mut merged = TraceLog::new();
        for shard in &mut self.shards {
            for driver in shard.nodes.drivers_mut() {
                let t = driver.stack_mut().take_trace();
                merged.merge(&t);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::stack::{net_ops, FactoryRegistry, ModuleCtx};
    use dpu_core::wire::{self, Encode};
    use dpu_core::{Call, Module, Response, ServiceId};

    /// A module that, on start, sends one datagram to every peer and
    /// counts datagrams received.
    struct Pinger {
        received: Vec<(StackId, Bytes)>,
    }

    impl Module for Pinger {
        fn kind(&self) -> &str {
            "pinger"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(dpu_core::svc::NET)]
        }
        fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
            let me = ctx.stack_id();
            for peer in ctx.peers().to_vec() {
                if peer != me {
                    let data = (peer, Bytes::from(vec![me.0 as u8])).to_bytes();
                    ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data);
                }
            }
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op == net_ops::RECV {
                let (src, data): (StackId, Bytes) = resp.decode().unwrap();
                self.received.push((src, data));
            }
        }
    }

    /// In every pinger stack: net bridge is m1, pinger is m2.
    const PINGER: dpu_core::ModuleId = dpu_core::ModuleId(2);

    fn pinger_stack(sc: StackConfig) -> Stack {
        let mut s = Stack::new(sc, FactoryRegistry::new());
        s.add_module(Box::new(Pinger { received: vec![] }));
        s
    }

    fn pinger_sim(n: u32, seed: u64) -> Sim {
        Sim::new(SimConfig::lan(n, seed), pinger_stack)
    }

    fn received(sim: &mut Sim, id: u32) -> usize {
        sim.with_stack(StackId(id), |s| {
            s.with_module::<Pinger, _>(PINGER, |p| p.received.len()).unwrap()
        })
    }

    #[test]
    fn all_to_all_pings_arrive() {
        let mut sim = pinger_sim(4, 1);
        sim.run_until(Time::ZERO + Dur::millis(10));
        for i in 0..4u32 {
            assert_eq!(received(&mut sim, i), 3, "stack {i} should get one ping per peer");
        }
        assert_eq!(sim.stats().packets_sent, 12);
        assert_eq!(sim.stats().packets_delivered, 12);
        assert_eq!(sim.stats().packets_dropped(), 0);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed| {
            let mut sim = pinger_sim(5, seed);
            sim.run_until(Time::ZERO + Dur::millis(5));
            let stats = sim.stats();
            let trace_len = sim.merged_trace().len();
            (stats, trace_len)
        };
        assert_eq!(run(7), run(7));
        let (a, _) = run(7);
        let (b, _) = run(8);
        assert_eq!(a.packets_delivered, b.packets_delivered);
    }

    #[test]
    fn loss_drops_packets() {
        let mut cfg = SimConfig::lan(2, 3);
        cfg.net.loss = 1.0;
        let mut sim = Sim::new(cfg, pinger_stack);
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert_eq!(sim.stats().packets_sent, 2);
        assert_eq!(sim.stats().dropped_loss, 2);
        assert_eq!(sim.stats().dropped_partition, 0);
        assert_eq!(sim.stats().packets_delivered, 0);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut cfg = SimConfig::lan(2, 3);
        cfg.net.duplicate = 1.0;
        let mut sim = Sim::new(cfg, pinger_stack);
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert_eq!(sim.stats().packets_delivered, 4);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let mut sim = pinger_sim(2, 9);
        sim.partition(&[StackId(0)], &[StackId(1)]);
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert_eq!(sim.stats().packets_delivered, 0);
        assert_eq!(sim.stats().dropped_partition, 2);
        assert_eq!(sim.stats().dropped_loss, 0);
        sim.heal_partitions();
        let data = (StackId(1), Bytes::from_static(b"x")).to_bytes();
        sim.with_stack(StackId(0), |s| {
            s.call_as(PINGER, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
        sim.run_until(Time::ZERO + Dur::millis(10));
        assert_eq!(sim.stats().packets_delivered, 1);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut sim = pinger_sim(3, 5);
        sim.crash_at(Time::ZERO, StackId(2));
        sim.run_until(Time::ZERO + Dur::millis(10));
        // The crash event at t=0 was scheduled before any processing.
        assert_eq!(received(&mut sim, 2), 0);
        assert!(sim.stack(StackId(2)).is_crashed());
    }

    #[test]
    fn restart_revives_a_crashed_node() {
        let mut sim = pinger_sim(3, 5);
        sim.crash_at(Time::ZERO, StackId(2));
        sim.run_until(Time::ZERO + Dur::millis(10));
        assert!(sim.stack(StackId(2)).is_crashed());
        // Restart with a fresh stack: it re-pings on start and receives.
        let sc = sim.stack_config(StackId(2));
        sim.restart_node(StackId(2), pinger_stack(sc));
        assert!(!sim.stack(StackId(2)).is_crashed());
        sim.run_until(sim.now() + Dur::millis(10));
        // Its startup pings reached the live peers (node 2 crashed at
        // t=0, before its own initial ping could go out)...
        assert_eq!(received(&mut sim, 0), 2, "peer 0: node 1's initial ping + restart ping");
        // ...and a direct message to it is delivered again.
        let data = (StackId(2), Bytes::from_static(b"hi")).to_bytes();
        sim.with_stack(StackId(0), |s| {
            s.call_as(PINGER, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
        sim.run_until(sim.now() + Dur::millis(10));
        assert_eq!(received(&mut sim, 2), 1);
    }

    #[test]
    fn scheduled_actions_run_in_order() {
        let mut sim = pinger_sim(2, 5);
        sim.schedule(Time::ZERO + Dur::millis(2), |sim| {
            assert_eq!(sim.now(), Time::ZERO + Dur::millis(2));
            sim.crash_at(sim.now(), StackId(1));
        });
        sim.schedule_in(Dur::millis(1), |sim| {
            assert!(!sim.stack(StackId(1)).is_crashed());
        });
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert!(sim.stack(StackId(1)).is_crashed());
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = pinger_sim(2, 5);
        sim.run_until(Time::ZERO + Dur::secs(1));
        assert_eq!(sim.now(), Time::ZERO + Dur::secs(1));
    }

    #[test]
    fn cpu_cost_serialises_steps_on_one_node() {
        // With a huge per-step cost, a burst of packets takes multiple
        // service times to process on the receiving node.
        let mut cfg = SimConfig::lan(2, 11);
        cfg.cpu.response = Dur::millis(10);
        let mut sim = Sim::new(cfg, pinger_stack);
        for _ in 0..5 {
            let data = (StackId(1), Bytes::from_static(b"x")).to_bytes();
            sim.with_stack(StackId(0), |s| {
                s.call_as(PINGER, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
            });
        }
        // Node 1 receives 6 datagrams in total: the startup ping from
        // node 0 plus the 5 injected ones.
        sim.run_until(Time::ZERO + Dur::millis(38));
        let partial = received(&mut sim, 1);
        assert!(partial < 6, "CPU queueing must spread processing out; got {partial}");
        sim.run_until(Time::ZERO + Dur::millis(200));
        assert_eq!(received(&mut sim, 1), 6);
    }

    #[test]
    fn wire_roundtrip_through_sim_payloads() {
        let payload = Bytes::from(vec![7u8; 100]);
        let encoded = (StackId(1), payload.clone()).to_bytes();
        let (dst, data): (StackId, Bytes) = wire::from_bytes(&encoded).unwrap();
        assert_eq!(dst, StackId(1));
        assert_eq!(data, payload);
    }

    #[test]
    fn run_until_quiescent_stops_when_drained() {
        let mut sim = pinger_sim(3, 13);
        let end = sim.run_until_quiescent(Time::ZERO + Dur::secs(10));
        assert!(end < Time::ZERO + Dur::secs(1), "pingers quiesce quickly, got {end}");
        assert_eq!(sim.stats().packets_delivered, 6);
    }

    #[test]
    fn single_heap_and_sharded_agree_exactly() {
        let run = |cfg: SimConfig| {
            let mut sim = Sim::new(cfg, pinger_stack);
            sim.run_until(Time::ZERO + Dur::millis(20));
            (sim.stats(), sim.merged_trace().len())
        };
        let mut lossy = SimConfig::lan(5, 99);
        lossy.net.loss = 0.2;
        lossy.net.duplicate = 0.1;
        let a = run(lossy.clone());
        let b = run(lossy.with_single_heap());
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_topology_delays_cross_cluster_traffic() {
        // 2 clusters of 2 on instant-ish LANs joined by a slow backbone:
        // the intra-cluster ping lands long before the inter-cluster one.
        let cfg = SimConfig::clustered(4, 7, 2, NetConfig::datacenter(), NetConfig::wan());
        let mut sim = Sim::new(cfg, pinger_stack);
        sim.run_until(Time::ZERO + Dur::millis(5));
        // Intra-cluster pings (1 per node) have arrived; WAN ones (15 ms
        // one-way) have not.
        for i in 0..4 {
            assert_eq!(received(&mut sim, i), 1, "stack {i} at t=5ms");
        }
        sim.run_until(Time::ZERO + Dur::millis(100));
        for i in 0..4 {
            assert_eq!(received(&mut sim, i), 3, "stack {i} after WAN delivery");
        }
    }

    #[test]
    fn per_shard_counters_are_per_cluster_and_cover_all_nodes() {
        // Flat: one shard row holding every counter.
        let mut sim = pinger_sim(4, 21);
        sim.run_until(Time::ZERO + Dur::millis(10));
        let stats = sim.stats();
        assert_eq!(stats.per_shard.len(), 1);
        assert_eq!(stats.per_shard[0].packets_delivered, stats.packets_delivered);
        assert_eq!(stats.per_shard[0].steps, stats.steps);
        // Clustered: one row per cluster, folding back to the totals.
        let cfg = SimConfig::clustered(6, 21, 2, NetConfig::lan(), NetConfig::wan());
        let mut sim = Sim::new(cfg, pinger_stack);
        sim.run_until(Time::ZERO + Dur::millis(100));
        let stats = sim.stats();
        assert_eq!(stats.per_shard.len(), 3);
        let shard_delivered: u64 = stats.per_shard.iter().map(|s| s.packets_delivered).sum();
        let shard_steps: u64 = stats.per_shard.iter().map(|s| s.steps).sum();
        assert_eq!(shard_delivered, stats.packets_delivered);
        assert_eq!(shard_steps, stats.steps);
        assert!(stats.events >= stats.steps + stats.packets_delivered);
        assert!(stats.per_shard.iter().all(|s| s.packets_delivered > 0), "{stats:?}");
        let report = sim.report();
        assert!(report.to_string().contains("sim report"), "{report}");
    }

    #[test]
    fn flat_runs_ignore_the_worker_knob() {
        // One cluster has no lookahead, so `workers` cannot change
        // anything — not even the code path taken.
        let run = |workers| {
            let mut sim = Sim::new(SimConfig::lan(4, 33).with_workers(workers), pinger_stack);
            sim.run_until(Time::ZERO + Dur::millis(10));
            (sim.stats(), sim.merged_trace().len())
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn clustered_engine_matches_across_worker_counts() {
        // The quick in-crate version of crates/sim/tests/par_equiv.rs:
        // same clustered config, workers 1 vs 3, identical stats.
        let run = |workers| {
            let cfg = SimConfig::clustered(6, 77, 2, NetConfig::lan(), NetConfig::wan())
                .with_workers(workers);
            let mut sim = Sim::new(cfg, pinger_stack);
            sim.run_until(Time::ZERO + Dur::millis(120));
            (sim.stats(), sim.merged_trace().len())
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn clustered_actions_run_between_epochs_in_time_order() {
        let cfg = SimConfig::clustered(4, 5, 2, NetConfig::lan(), NetConfig::wan());
        let mut sim = Sim::new(cfg, pinger_stack);
        sim.schedule(Time::ZERO + Dur::millis(2), |sim| {
            assert_eq!(sim.now(), Time::ZERO + Dur::millis(2));
            sim.crash_at(sim.now(), StackId(1));
        });
        sim.schedule_in(Dur::millis(1), |sim| {
            assert!(!sim.stack(StackId(1)).is_crashed());
        });
        sim.run_until(Time::ZERO + Dur::millis(5));
        assert!(sim.stack(StackId(1)).is_crashed());
    }
}
