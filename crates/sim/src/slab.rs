//! Slab + struct-of-arrays storage for per-node simulator state.
//!
//! The old layout kept one `Node` struct per stack — driver, CPU/NIC
//! clocks, flags and wake stamp boxed together — so the epoch loop's
//! hot checks (`crashed`, `step_scheduled`, `cpu_free`, `nic_free`,
//! `wake`) chased a 100+-byte stride to poke a few bytes. [`NodeSlab`]
//! splits the shard's nodes the other way:
//!
//! * **slab**: the [`StackDriver`]s sit in a slot-stable vector, indexed
//!   by `id - shard.base`. Slots are never moved after construction;
//!   churn restarts *recycle* a slot in place ([`NodeSlab::retire`] +
//!   [`NodeSlab::recycle`]), so a restart frees the old incarnation's
//!   module and scratch state eagerly instead of holding both stacks
//!   alive while the replacement is built;
//! * **struct-of-arrays**: the per-node fields the dispatch loop
//!   actually walks live in dense parallel vectors (`cpu_free`,
//!   `nic_free`, `wake`, packed `crashed`/`step_scheduled` flags), one
//!   cache line covering 8–64 nodes instead of one node.
//!
//! The layout is pure representation: event order, RNG draws and stats
//! are untouched, so the golden trace fingerprint and serial/parallel
//! bit-equality are preserved by construction.

use dpu_core::host::StackDriver;
use dpu_core::time::Time;

/// Sentinel for "no wake scheduled" in the dense wake-stamp array
/// (replaces the old `Option<Time>` field — `u64::MAX` is beyond any
/// virtual time the scheduler accepts).
const NO_WAKE: Time = Time(u64::MAX);

const CRASHED: u8 = 1 << 0;
const STEP_SCHEDULED: u8 = 1 << 1;

/// Slot-stable driver slab + SoA hot fields for one shard's nodes. See
/// module docs.
pub(crate) struct NodeSlab {
    /// `None` only transiently: between [`NodeSlab::retire`] and the
    /// [`NodeSlab::recycle`] that refills the slot (no event dispatch
    /// can observe a vacant slot — the simulation is paused during a
    /// restart).
    drivers: Vec<Option<StackDriver>>,
    cpu_free: Vec<Time>,
    /// When each node's outbound link finishes its current
    /// transmission; sends serialise behind it (NIC queueing).
    nic_free: Vec<Time>,
    /// Time of the currently scheduled `NodeWake` ([`NO_WAKE`] = none);
    /// queue entries whose time no longer matches are stale.
    wake: Vec<Time>,
    flags: Vec<u8>,
}

impl NodeSlab {
    pub(crate) fn new(drivers: Vec<StackDriver>) -> NodeSlab {
        let n = drivers.len();
        NodeSlab {
            drivers: drivers.into_iter().map(Some).collect(),
            cpu_free: vec![Time::ZERO; n],
            nic_free: vec![Time::ZERO; n],
            wake: vec![NO_WAKE; n],
            flags: vec![0; n],
        }
    }

    #[inline]
    pub(crate) fn driver(&self, slot: usize) -> &StackDriver {
        self.drivers[slot].as_ref().expect("node slot vacant outside a restart")
    }

    #[inline]
    pub(crate) fn driver_mut(&mut self, slot: usize) -> &mut StackDriver {
        self.drivers[slot].as_mut().expect("node slot vacant outside a restart")
    }

    /// The drivers, in slot order (stats/trace aggregation).
    pub(crate) fn drivers(&self) -> impl Iterator<Item = &StackDriver> {
        self.drivers.iter().map(|d| d.as_ref().expect("node slot vacant outside a restart"))
    }

    /// Mutable drivers, in slot order.
    pub(crate) fn drivers_mut(&mut self) -> impl Iterator<Item = &mut StackDriver> {
        self.drivers.iter_mut().map(|d| d.as_mut().expect("node slot vacant outside a restart"))
    }

    /// Drop the slot's driver *now*, leaving the slot vacant for
    /// [`NodeSlab::recycle`]. Separating the drop from the refill is
    /// what caps a churn restart's resident peak at one incarnation.
    pub(crate) fn retire(&mut self, slot: usize) {
        self.drivers[slot] = None;
    }

    /// Refill a slot with a fresh incarnation and reset its SoA state
    /// (revived, idle CPU/NIC as of `now`, no wake scheduled).
    pub(crate) fn recycle(&mut self, slot: usize, driver: StackDriver, now: Time) {
        self.drivers[slot] = Some(driver);
        self.cpu_free[slot] = now;
        self.nic_free[slot] = now;
        self.wake[slot] = NO_WAKE;
        self.flags[slot] = 0;
    }

    /// Structural bytes of this slab: the SoA backbone, the slot
    /// vector, and every live driver's own estimate
    /// ([`StackDriver::mem_bytes`], minus the `Stack` struct bytes the
    /// inline slot capacity already covers). Feeds [`crate::Sim`]'s
    /// memory audit.
    pub(crate) fn mem_bytes(&self) -> usize {
        use std::mem::size_of;
        let backbone = self.drivers.capacity() * size_of::<Option<StackDriver>>()
            + self.cpu_free.capacity() * size_of::<Time>()
            + self.nic_free.capacity() * size_of::<Time>()
            + self.wake.capacity() * size_of::<Time>()
            + self.flags.capacity();
        let heap: usize = self
            .drivers()
            .map(|d| d.mem_bytes().saturating_sub(size_of::<dpu_core::Stack>()))
            .sum();
        backbone + heap
    }

    #[inline]
    pub(crate) fn crashed(&self, slot: usize) -> bool {
        self.flags[slot] & CRASHED != 0
    }

    #[inline]
    pub(crate) fn set_crashed(&mut self, slot: usize) {
        self.flags[slot] |= CRASHED;
    }

    #[inline]
    pub(crate) fn step_scheduled(&self, slot: usize) -> bool {
        self.flags[slot] & STEP_SCHEDULED != 0
    }

    #[inline]
    pub(crate) fn set_step_scheduled(&mut self, slot: usize, on: bool) {
        if on {
            self.flags[slot] |= STEP_SCHEDULED;
        } else {
            self.flags[slot] &= !STEP_SCHEDULED;
        }
    }

    #[inline]
    pub(crate) fn cpu_free(&self, slot: usize) -> Time {
        self.cpu_free[slot]
    }

    #[inline]
    pub(crate) fn set_cpu_free(&mut self, slot: usize, at: Time) {
        self.cpu_free[slot] = at;
    }

    #[inline]
    pub(crate) fn nic_free(&self, slot: usize) -> Time {
        self.nic_free[slot]
    }

    #[inline]
    pub(crate) fn set_nic_free(&mut self, slot: usize, at: Time) {
        self.nic_free[slot] = at;
    }

    #[inline]
    pub(crate) fn wake(&self, slot: usize) -> Option<Time> {
        let w = self.wake[slot];
        (w != NO_WAKE).then_some(w)
    }

    #[inline]
    pub(crate) fn set_wake(&mut self, slot: usize, at: Option<Time>) {
        self.wake[slot] = at.unwrap_or(NO_WAKE);
    }
}
