//! Run statistics: the counters a simulation accumulates, sharded and
//! per-workload-generator breakdowns, and the one-stop [`SimReport`]
//! scenarios print.

use dpu_core::wire::ScratchStats;
use std::fmt;

/// How many shards the per-shard counters are grouped into. Nodes map to
/// shards round-robin (`node % SHARDS`), mirroring how the sharded
/// scheduler homes per-node queues; a power of two keeps the mapping a
/// mask.
pub const STAT_SHARDS: u32 = 8;

/// Counters for one shard (a `node % STAT_SHARDS` group of nodes).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Scheduler events dispatched to this shard's nodes.
    pub events: u64,
    /// Datagrams delivered to this shard's nodes.
    pub packets_delivered: u64,
    /// Stack steps dispatched on this shard's nodes.
    pub steps: u64,
}

/// Counters for one installed workload generator (see
/// [`crate::workload`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Generator name (unique per installation).
    pub name: String,
    /// Messages injected.
    pub injected: u64,
    /// Burst windows entered (bursty generators only).
    pub bursts: u64,
    /// Crashes induced (churn generators only).
    pub crashes: u64,
    /// Restarts performed (churn generators only).
    pub restarts: u64,
}

/// Counters accumulated over a run (window them by snapshotting).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Datagrams handed to the network.
    pub packets_sent: u64,
    /// Datagrams dropped by the probabilistic loss model.
    pub dropped_loss: u64,
    /// Datagrams dropped by a partition (or an unreachable destination).
    pub dropped_partition: u64,
    /// Datagrams delivered (duplicates counted).
    pub packets_delivered: u64,
    /// Payload bytes handed to the network (headers excluded).
    pub bytes_sent: u64,
    /// Stack steps dispatched across all nodes.
    pub steps: u64,
    /// Scheduler events dispatched (packets, steps, wakes, crashes,
    /// actions) — the numerator of the `bench_sim` events/sec metric.
    pub events: u64,
    /// Per-shard breakdown ([`STAT_SHARDS`] groups, `node % STAT_SHARDS`).
    pub per_shard: Vec<ShardStats>,
    /// Per-generator breakdown, in installation order.
    pub workloads: Vec<WorkloadStats>,
}

impl SimStats {
    pub(crate) fn with_shards(n: u32) -> SimStats {
        let shards = n.min(STAT_SHARDS) as usize;
        SimStats { per_shard: vec![ShardStats::default(); shards], ..SimStats::default() }
    }

    /// Total datagrams dropped, regardless of cause.
    pub fn packets_dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_partition
    }

    #[inline]
    pub(crate) fn shard_mut(&mut self, node: u32) -> &mut ShardStats {
        let idx = node as usize % self.per_shard.len().max(1);
        &mut self.per_shard[idx]
    }
}

/// Everything a scenario wants to print at the end of a run, in one
/// value with a one-summary [`fmt::Display`]: the run counters, the
/// per-shard and per-generator breakdowns, and the aggregated wire
/// scratch counters (`Sim::wire_stats`, folded in here so callers no
/// longer stitch two reports together).
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Number of stacks.
    pub n: u32,
    /// Final virtual time.
    pub now: dpu_core::time::Time,
    /// Run counters.
    pub stats: SimStats,
    /// Aggregated wire scratch counters over every stack.
    pub wire: ScratchStats,
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        writeln!(f, "# sim report: n = {}, t = {}", self.n, self.now)?;
        writeln!(
            f,
            "packets: sent {} delivered {} dropped {} (loss {} / partition {}), {} payload bytes",
            s.packets_sent,
            s.packets_delivered,
            s.packets_dropped(),
            s.dropped_loss,
            s.dropped_partition,
            s.bytes_sent,
        )?;
        writeln!(f, "dispatch: {} events, {} stack steps", s.events, s.steps)?;
        if !s.per_shard.is_empty() {
            write!(f, "shards (events/delivered/steps):")?;
            for (i, sh) in s.per_shard.iter().enumerate() {
                write!(f, " [{i}] {}/{}/{}", sh.events, sh.packets_delivered, sh.steps)?;
            }
            writeln!(f)?;
        }
        for w in &s.workloads {
            write!(f, "workload {:12} injected {}", w.name, w.injected)?;
            if w.bursts > 0 {
                write!(f, ", bursts {}", w.bursts)?;
            }
            if w.crashes + w.restarts > 0 {
                write!(f, ", crashes {} restarts {}", w.crashes, w.restarts)?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "wire: {} emitted, {} reclaimed, {} allocations",
            self.wire.emitted, self.wire.reclaimed, self.wire.allocations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_dropped_sums_both_causes() {
        let s = SimStats { dropped_loss: 3, dropped_partition: 4, ..SimStats::default() };
        assert_eq!(s.packets_dropped(), 7);
    }

    #[test]
    fn shard_mapping_is_round_robin() {
        let mut s = SimStats::with_shards(16);
        assert_eq!(s.per_shard.len(), STAT_SHARDS as usize);
        s.shard_mut(9).steps += 1;
        assert_eq!(s.per_shard[1].steps, 1);
        let mut small = SimStats::with_shards(3);
        assert_eq!(small.per_shard.len(), 3);
        small.shard_mut(5).events += 1;
        assert_eq!(small.per_shard[2].events, 1);
    }

    #[test]
    fn report_renders_one_summary() {
        let mut stats = SimStats::with_shards(2);
        stats.packets_sent = 10;
        stats.packets_delivered = 8;
        stats.dropped_loss = 2;
        stats.workloads.push(WorkloadStats {
            name: "poisson".into(),
            injected: 50,
            ..WorkloadStats::default()
        });
        let report = SimReport {
            n: 2,
            now: dpu_core::time::Time(5_000_000),
            stats,
            wire: ScratchStats::default(),
        };
        let text = report.to_string();
        assert!(text.contains("dropped 2 (loss 2 / partition 0)"), "{text}");
        assert!(text.contains("workload poisson"), "{text}");
        assert!(text.contains("wire:"), "{text}");
    }
}
