//! Run statistics: the counters a simulation accumulates, per-cluster
//! (shard) and per-workload-generator breakdowns, and the one-stop
//! [`SimReport`] scenarios print.
//!
//! Since the cluster-sharded engine, counters are accumulated *per
//! shard* — each topology cluster owns a private [`SimStats`] partial
//! that its (possibly worker-thread-hosted) event loop increments
//! without any synchronization — and [`crate::Sim::stats`] /
//! [`crate::Sim::report`] fold the partials into the totals plus one
//! [`ShardStats`] row per cluster. Folding is pure addition, so the
//! totals are identical whichever worker count executed the run.

use dpu_core::wire::ScratchStats;
use dpu_core::TransportStats;
use std::fmt;

/// Counters for one shard (one topology cluster, the unit the parallel
/// engine schedules onto worker threads). Flat topologies have a single
/// shard covering every node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Scheduler events dispatched on this shard.
    pub events: u64,
    /// Datagrams delivered to this shard's nodes.
    pub packets_delivered: u64,
    /// Stack steps dispatched on this shard's nodes.
    pub steps: u64,
}

/// Counters for one installed workload generator (see
/// [`crate::workload`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Generator name (unique per installation).
    pub name: String,
    /// Messages injected.
    pub injected: u64,
    /// Burst windows entered (bursty generators only; counted per
    /// cluster sub-generator on clustered topologies).
    pub bursts: u64,
    /// Crashes induced (churn generators only).
    pub crashes: u64,
    /// Restarts performed (churn generators only).
    pub restarts: u64,
}

/// Counters accumulated over a run (window them by snapshotting).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Datagrams handed to the network.
    pub packets_sent: u64,
    /// Datagrams dropped by the probabilistic loss model.
    pub dropped_loss: u64,
    /// Datagrams dropped by a partition (or an unreachable destination).
    pub dropped_partition: u64,
    /// Datagrams delivered (duplicates counted).
    pub packets_delivered: u64,
    /// Payload bytes handed to the network (headers excluded).
    pub bytes_sent: u64,
    /// Stack steps dispatched across all nodes.
    pub steps: u64,
    /// Scheduler events dispatched (packets, steps, wakes, crashes,
    /// actions) — the numerator of the `bench_sim` events/sec metric.
    /// Includes barrier-time actions, which belong to no shard, so this
    /// can exceed the sum of the per-shard rows.
    pub events: u64,
    /// Per-shard breakdown, one row per topology cluster. The spread of
    /// `events` across rows is the parallel engine's load-balance
    /// signal: `sum / max` bounds the achievable speedup.
    pub per_shard: Vec<ShardStats>,
    /// Per-generator breakdown, in installation order.
    pub workloads: Vec<WorkloadStats>,
}

impl SimStats {
    /// Total datagrams dropped, regardless of cause.
    pub fn packets_dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_partition
    }

    /// Fold another partial into this one: plain addition on every
    /// counter. Per-shard rows and workloads are *not* merged here —
    /// the simulator assembles those itself (one row per cluster).
    pub(crate) fn absorb(&mut self, other: &SimStats) {
        self.packets_sent += other.packets_sent;
        self.dropped_loss += other.dropped_loss;
        self.dropped_partition += other.dropped_partition;
        self.packets_delivered += other.packets_delivered;
        self.bytes_sent += other.bytes_sent;
        self.steps += other.steps;
        self.events += other.events;
    }

    /// The [`ShardStats`] row of a shard-local partial.
    pub(crate) fn shard_row(&self) -> ShardStats {
        ShardStats {
            events: self.events,
            packets_delivered: self.packets_delivered,
            steps: self.steps,
        }
    }
}

/// Structural memory audit of a simulation (see `Sim::mem_stats`):
/// the summed per-driver estimates plus the shards' scheduler queues,
/// outboxes and the shared peer table (counted once).
///
/// These are *structural* numbers — walked from the data structures,
/// not read from the allocator — so they floor the true resident set
/// (module-internal boxes and in-flight payload `Bytes` are invisible).
/// The committed `BENCH_scale.json` pairs them with allocator-measured
/// bytes/stack from the counting-allocator harness in `dpu-bench`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Summed structural bytes across the whole simulation.
    pub bytes_total: u64,
    /// `bytes_total / n` — the capacity-planning headline: multiply by
    /// the target stack count to size a box.
    pub bytes_per_stack: u64,
}

/// Everything a scenario wants to print at the end of a run, in one
/// value with a one-summary [`fmt::Display`]: the run counters, the
/// per-shard and per-generator breakdowns, and the aggregated wire
/// scratch counters (`Sim::wire_stats`, folded in here so callers no
/// longer stitch two reports together).
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Number of stacks.
    pub n: u32,
    /// Final virtual time.
    pub now: dpu_core::time::Time,
    /// Run counters.
    pub stats: SimStats,
    /// Aggregated wire scratch counters over every stack.
    pub wire: ScratchStats,
    /// Aggregated reliable-transport counters over every stack
    /// (`Sim::transport_stats`): rp2p retransmissions, frames given up
    /// after the retransmit cap, and the unacked backlog at run end.
    pub transport: TransportStats,
    /// Structural memory audit (`Sim::mem_stats`): total and per-stack
    /// resident-byte estimates at report time.
    pub mem: MemStats,
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        writeln!(f, "# sim report: n = {}, t = {}", self.n, self.now)?;
        writeln!(
            f,
            "packets: sent {} delivered {} dropped {} (loss {} / partition {}), {} payload bytes",
            s.packets_sent,
            s.packets_delivered,
            s.packets_dropped(),
            s.dropped_loss,
            s.dropped_partition,
            s.bytes_sent,
        )?;
        writeln!(f, "dispatch: {} events, {} stack steps", s.events, s.steps)?;
        if !s.per_shard.is_empty() {
            write!(f, "shards (events/delivered/steps):")?;
            for (i, sh) in s.per_shard.iter().enumerate() {
                write!(f, " [{i}] {}/{}/{}", sh.events, sh.packets_delivered, sh.steps)?;
            }
            writeln!(f)?;
        }
        for w in &s.workloads {
            write!(f, "workload {:12} injected {}", w.name, w.injected)?;
            if w.bursts > 0 {
                write!(f, ", bursts {}", w.bursts)?;
            }
            if w.crashes + w.restarts > 0 {
                write!(f, ", crashes {} restarts {}", w.crashes, w.restarts)?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "wire: {} emitted, {} reclaimed, {} allocations",
            self.wire.emitted, self.wire.reclaimed, self.wire.allocations
        )?;
        writeln!(
            f,
            "transport: {} retransmissions, {} exhausted, {} unacked",
            self.transport.retransmissions, self.transport.exhausted, self.transport.unacked
        )?;
        write!(
            f,
            "memory: ~{} bytes/stack structural ({} total)",
            self.mem.bytes_per_stack, self.mem.bytes_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_dropped_sums_both_causes() {
        let s = SimStats { dropped_loss: 3, dropped_partition: 4, ..SimStats::default() };
        assert_eq!(s.packets_dropped(), 7);
    }

    #[test]
    fn absorb_adds_every_counter() {
        let mut total = SimStats {
            packets_sent: 1,
            dropped_loss: 2,
            dropped_partition: 3,
            packets_delivered: 4,
            bytes_sent: 5,
            steps: 6,
            events: 7,
            ..SimStats::default()
        };
        let partial = SimStats {
            packets_sent: 10,
            dropped_loss: 20,
            dropped_partition: 30,
            packets_delivered: 40,
            bytes_sent: 50,
            steps: 60,
            events: 70,
            ..SimStats::default()
        };
        total.absorb(&partial);
        assert_eq!(total.packets_sent, 11);
        assert_eq!(total.dropped_loss, 22);
        assert_eq!(total.dropped_partition, 33);
        assert_eq!(total.packets_delivered, 44);
        assert_eq!(total.bytes_sent, 55);
        assert_eq!(total.steps, 66);
        assert_eq!(total.events, 77);
        assert_eq!(
            partial.shard_row(),
            ShardStats { events: 70, packets_delivered: 40, steps: 60 }
        );
    }

    /// Folding is pure addition, so the totals must come out identical
    /// whichever grouping (or worker count) produced the partials:
    /// folding three shard partials one-by-one equals folding a
    /// pre-summed pair plus the remainder, in any order.
    #[test]
    fn fold_by_addition_is_grouping_independent() {
        let partials: Vec<SimStats> = (1..=3u64)
            .map(|k| SimStats {
                packets_sent: 10 * k,
                dropped_loss: k,
                dropped_partition: 2 * k,
                packets_delivered: 7 * k,
                bytes_sent: 100 * k,
                steps: 5 * k,
                events: 20 * k,
                ..SimStats::default()
            })
            .collect();

        // One shard at a time, installation order.
        let mut one_by_one = SimStats::default();
        for p in &partials {
            one_by_one.absorb(p);
        }

        // Pre-summed pair (as a two-worker engine would hand back),
        // then the straggler, reversed order.
        let mut pair = SimStats::default();
        pair.absorb(&partials[2]);
        pair.absorb(&partials[1]);
        let mut grouped = SimStats::default();
        grouped.absorb(&pair);
        grouped.absorb(&partials[0]);

        assert_eq!(one_by_one, grouped);
        assert_eq!(one_by_one.packets_sent, 60);
        assert_eq!(one_by_one.packets_dropped(), 18);
        assert_eq!(one_by_one.events, 120);
    }

    /// Golden snapshot of the full `Display` output: format changes
    /// must be deliberate (update this string when they are).
    #[test]
    fn report_display_golden_snapshot() {
        let stats = SimStats {
            packets_sent: 120,
            dropped_loss: 3,
            dropped_partition: 1,
            packets_delivered: 116,
            bytes_sent: 7680,
            steps: 240,
            events: 500,
            per_shard: vec![
                ShardStats { events: 260, packets_delivered: 60, steps: 130 },
                ShardStats { events: 230, packets_delivered: 56, steps: 110 },
            ],
            workloads: vec![WorkloadStats {
                name: "bursty".into(),
                injected: 64,
                bursts: 4,
                ..WorkloadStats::default()
            }],
        };
        let report = SimReport {
            n: 8,
            now: dpu_core::time::Time(2_500_000_000),
            stats,
            wire: ScratchStats { emitted: 120, reclaimed: 120, allocations: 6 },
            transport: TransportStats { retransmissions: 2, exhausted: 0, unacked: 1 },
            mem: MemStats { bytes_total: 160_000, bytes_per_stack: 20_000 },
        };
        let expected = "\
# sim report: n = 8, t = 2500.000ms
packets: sent 120 delivered 116 dropped 4 (loss 3 / partition 1), 7680 payload bytes
dispatch: 500 events, 240 stack steps
shards (events/delivered/steps): [0] 260/60/130 [1] 230/56/110
workload bursty       injected 64, bursts 4
wire: 120 emitted, 120 reclaimed, 6 allocations
transport: 2 retransmissions, 0 exhausted, 1 unacked
memory: ~20000 bytes/stack structural (160000 total)";
        assert_eq!(report.to_string(), expected);
    }

    #[test]
    fn report_renders_one_summary() {
        let stats = SimStats {
            per_shard: vec![ShardStats::default(); 2],
            packets_sent: 10,
            packets_delivered: 8,
            dropped_loss: 2,
            workloads: vec![WorkloadStats {
                name: "poisson".into(),
                injected: 50,
                ..WorkloadStats::default()
            }],
            ..SimStats::default()
        };
        let report = SimReport {
            n: 2,
            now: dpu_core::time::Time(5_000_000),
            stats,
            wire: ScratchStats::default(),
            transport: TransportStats { retransmissions: 9, exhausted: 1, unacked: 0 },
            mem: MemStats { bytes_total: 40_000, bytes_per_stack: 20_000 },
        };
        let text = report.to_string();
        assert!(text.contains("dropped 2 (loss 2 / partition 0)"), "{text}");
        assert!(text.contains("workload poisson"), "{text}");
        assert!(text.contains("wire:"), "{text}");
        assert!(text.contains("transport: 9 retransmissions, 1 exhausted, 0 unacked"), "{text}");
        assert!(text.contains("memory: ~20000 bytes/stack structural (40000 total)"), "{text}");
    }
}
