//! The event scheduler behind [`crate::Sim`]: a hierarchical timing
//! wheel (calendar queue) keyed by coarse time buckets, with the
//! original single global `BinaryHeap` kept alongside as the reference
//! implementation.
//!
//! # Why not one big heap
//!
//! The paper's evaluation stops at 7 machines; this workspace pushes the
//! same live-switch experiments to thousands of simulated nodes. At that
//! scale the global heap is the bottleneck: every pop pays an
//! `O(log E)` sift over *all* in-flight events — tens of thousands of
//! entries at n = 1024 — and every sift level moves a full-size event
//! payload (packets carry `Bytes`, actions carry boxed closures) through
//! cache-hostile strides. The per-node event queues (each
//! `StackDriver`'s timer queue and pending-event buffer, with a single
//! stamped wake/step entry per node, from PR 2) already bound how many
//! entries a node contributes; what they feed deserves better than
//! `O(log E)` per event.
//!
//! # The hierarchical timing wheel
//!
//! Three levels of `slots` buckets each (default 256), with level-0
//! bucket width [`SchedConfig::bucket`] (default 128 ns): level 0 spans
//! 32.8 µs, level 1 spans 8.4 ms, level 2 spans 2.15 s; the handful of
//! events beyond that sit in a small overflow heap. Pushing is `O(1)`:
//! compute the level whose current bucket range contains the deadline,
//! append to that bucket's `Vec`. Popping serves the *current* level-0
//! bucket from a sorted `serving` array; when it empties, an occupancy
//! bitmap finds the next non-empty bucket, and crossing a level
//! boundary *cascades* the next coarser bucket down one level — each
//! event is moved at most twice before being served, so the amortized
//! cost per event is `O(1)` with small constants (24-byte key compares,
//! `sort_unstable` over a handful of same-bucket entries).
//!
//! The level-0 width is the knob: a bucket should hold only a few
//! events (so the serving sort stays trivial) while `slots³ × width`
//! still covers the protocol stack's timer range (rp2p retransmit
//! 20–100 ms, fd heartbeat/timeout 20/100 ms all live in level 2). The
//! 128 ns default keeps buckets near-singleton even with half a
//! million datagrams in flight (the WAN-sustained profile of
//! `BENCH_sim.json`) and measured best-or-equal across every profile
//! swept; see `ARCHITECTURE.md` for the sensitivity data.
//!
//! # Determinism
//!
//! Events are totally ordered by `(time, seq)`, `seq` being the
//! simulator's global push counter. Wheel levels are *exactly* aligned
//! (one level-1 bucket is precisely 256 level-0 buckets), so a bucket
//! never mixes events from different coarser ranges, and the serving
//! array always holds the global minimum of the wheel; the overflow
//! head is compared by full key on every pop. The pop sequence is
//! therefore identical to the single heap's — and so is every
//! downstream decision (RNG draws, trace contents, the golden
//! fingerprint in `tests/host_equivalence.rs`).
//! `crates/sim/tests/sched_equiv.rs` property-tests the equivalence;
//! [`crate::SimConfig`] selects the implementation via [`SchedConfig`].

use dpu_core::time::{Dur, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which scheduler implementation a [`crate::Sim`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// One global `BinaryHeap` over all events — the pre-wheel
    /// reference implementation, kept for equivalence tests and the
    /// `bench_sim` comparison.
    SingleHeap,
    /// Hierarchical timing-wheel calendar queue (default).
    Calendar,
}

/// Scheduler configuration, part of [`crate::SimConfig`].
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Implementation to use.
    pub kind: SchedKind,
    /// Level-0 bucket width (calendar only); rounded up to a power of
    /// two of nanoseconds. See the module docs for the trade-off; the
    /// default is 128 ns.
    pub bucket: Dur,
    /// Buckets per wheel level (calendar only); rounded up to a power
    /// of two, minimum 64. Three levels cover `bucket × slots³`.
    /// Default 256.
    pub buckets: usize,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig { kind: SchedKind::Calendar, bucket: Dur::nanos(128), buckets: 256 }
    }
}

impl SchedConfig {
    /// The reference single-heap configuration.
    pub fn single_heap() -> SchedConfig {
        SchedConfig { kind: SchedKind::SingleHeap, ..SchedConfig::default() }
    }
}

/// The deterministic total order: `(time, global push sequence)`.
pub type Key = (Time, u64);

/// A queued event: key plus payload.
struct Entry<E> {
    key: Key,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min key on top.
        other.key.cmp(&self.key)
    }
}

/// Payload storage for the wheel: keys circulate through buckets and
/// heaps as 24-byte `(Time, seq, slot)` tuples, while the (much larger)
/// event payloads sit still in this slab until served. Heap sifts,
/// bucket drains and sorts therefore move a third of the bytes the
/// reference single heap moves per level.
struct Slab<E> {
    items: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> Slab<E> {
    fn new() -> Slab<E> {
        Slab { items: Vec::new(), free: Vec::new() }
    }

    #[inline]
    fn insert(&mut self, ev: E) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.items[i as usize] = Some(ev);
                i
            }
            None => {
                self.items.push(Some(ev));
                (self.items.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn remove(&mut self, i: u32) -> E {
        self.free.push(i);
        self.items[i as usize].take().expect("live slab entry")
    }
}

/// A wheel key: the deterministic order pair plus the payload's slab
/// index. `seq` is unique, so the index never participates in ordering
/// decisions.
type WheelKey = (Time, u64, u32);

/// One wheel level: `slots` unsorted key buckets plus an occupancy
/// bitmap.
struct Level {
    slots: Vec<Vec<WheelKey>>,
    occ: Vec<u64>,
}

impl Level {
    fn new(slots: usize) -> Level {
        Level { slots: (0..slots).map(|_| Vec::new()).collect(), occ: vec![0u64; slots / 64] }
    }

    #[inline]
    fn mark(&mut self, slot: usize) {
        self.occ[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn clear(&mut self, slot: usize) {
        self.occ[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// First occupied slot ≥ `from`, if any (scans never wrap: pushes
    /// always land strictly ahead of the cursor within a level).
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= self.slots.len() {
            return None;
        }
        let mut w = from / 64;
        let mut bits = self.occ[w] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w == self.occ.len() {
                return None;
            }
            bits = self.occ[w];
        }
    }
}

/// Three-level hierarchical timing wheel + overflow heap. See the
/// module docs for structure and invariants.
struct Wheel<E> {
    slab: Slab<E>,
    levels: Vec<Level>,
    /// Current level-0 bucket's keys, sorted *descending* and served
    /// from the back. Only ever filled by draining a bucket — never
    /// inserted into.
    serving: Vec<WheelKey>,
    /// Keys pushed *at or before* the serving bucket (immediate
    /// reschedules — the post-dispatch `NodeStep` pattern). A small
    /// min-heap: its keys all precede everything in the wheel levels,
    /// and it drains as fast as it fills.
    late: BinaryHeap<Reverse<WheelKey>>,
    /// Absolute level-0 bucket index of the serving bucket.
    cursor: u64,
    /// log2 of the level-0 bucket width in nanoseconds (the width is
    /// rounded to a power of two so bucket mapping is a shift, not a
    /// division — `place` maps every key up to four times).
    w_shift: u32,
    /// log2(slots per level).
    shift: u32,
    /// Slots per level minus one (mask).
    mask: u64,
    /// Keys in the three levels (excluding serving/late/overflow).
    in_levels: usize,
    /// Keys beyond the level-2 horizon.
    overflow: BinaryHeap<Reverse<WheelKey>>,
    /// Cached `overflow` head, so the per-pop comparison against the
    /// far future is a register compare, not a heap peek.
    overflow_min: Option<WheelKey>,
}

impl<E> Wheel<E> {
    fn new(cfg: &SchedConfig) -> Wheel<E> {
        let slots = cfg.buckets.next_power_of_two().max(64);
        Wheel {
            slab: Slab::new(),
            levels: (0..3).map(|_| Level::new(slots)).collect(),
            serving: Vec::new(),
            late: BinaryHeap::new(),
            cursor: 0,
            w_shift: cfg.bucket.as_nanos().max(1).next_power_of_two().trailing_zeros(),
            shift: slots.trailing_zeros(),
            mask: (slots - 1) as u64,
            in_levels: 0,
            overflow: BinaryHeap::new(),
            overflow_min: None,
        }
    }

    /// Absolute level-0 bucket index of `t`.
    #[inline]
    fn bucket0(&self, t: Time) -> u64 {
        t.as_nanos() >> self.w_shift
    }

    #[inline]
    fn push(&mut self, at: Time, seq: u64, ev: E) {
        let idx = self.slab.insert(ev);
        self.place((at, seq, idx));
    }

    fn place(&mut self, key: WheelKey) {
        let b0 = self.bucket0(key.0);
        if b0 <= self.cursor {
            self.late.push(Reverse(key));
            return;
        }
        // Exact level alignment: the key belongs to the finest level
        // whose current coarse bucket contains it.
        for l in 0..3u32 {
            if b0 >> (self.shift * (l + 1)) == self.cursor >> (self.shift * (l + 1)) {
                let slot = ((b0 >> (self.shift * l)) & self.mask) as usize;
                self.levels[l as usize].slots[slot].push(key);
                self.levels[l as usize].mark(slot);
                self.in_levels += 1;
                return;
            }
        }
        if self.overflow_min.is_none_or(|m| key < m) {
            self.overflow_min = Some(key);
        }
        self.overflow.push(Reverse(key));
    }

    /// Refill `serving`/`late` from the wheel: advance to the next
    /// occupied level-0 bucket, cascading coarser levels across
    /// boundaries. On return, `serving ∪ late` (if non-empty) holds the
    /// earliest wheel keys; only the overflow heap can hold an earlier
    /// key.
    fn refill(&mut self) {
        debug_assert!(self.serving.is_empty() && self.late.is_empty());
        if self.in_levels == 0 {
            // Wheel empty: jump the cursor to the overflow's first
            // bucket and migrate its near span back into the levels.
            let Some(&Reverse(head)) = self.overflow.peek() else { return };
            self.cursor = self.bucket0(head.0);
            let horizon = self.cursor >> (3 * self.shift);
            while let Some(&Reverse(head)) = self.overflow.peek() {
                if self.bucket0(head.0) >> (3 * self.shift) != horizon {
                    break;
                }
                self.overflow.pop();
                self.place(head); // lands in `late` or a level
            }
            self.overflow_min = self.overflow.peek().map(|&Reverse(k)| k);
            // The cursor was set to the head's own bucket, so the head
            // necessarily landed in `late` — serveable immediately.
            debug_assert!(!self.late.is_empty());
            return;
        }
        loop {
            // A cascade (or the jump above) may have landed keys in
            // `late` already, in which case they are serveable now.
            if !self.late.is_empty() {
                return;
            }
            // Next occupied level-0 slot strictly after the cursor,
            // within the current level-1 bucket.
            let from = ((self.cursor & self.mask) + 1) as usize;
            if let Some(slot) = self.levels[0].next_occupied(from) {
                self.cursor = (self.cursor & !self.mask) | slot as u64;
                let bucket = &mut self.levels[0].slots[slot];
                std::mem::swap(bucket, &mut self.serving);
                self.levels[0].clear(slot);
                self.in_levels -= self.serving.len();
                self.serving.sort_unstable_by(|a, b| b.cmp(a));
                return;
            }
            // Level 0 exhausted: cascade the next occupied coarser
            // bucket down and retry.
            if !self.cascade() {
                return; // wheel truly empty (only overflow remains)
            }
        }
    }

    /// Advance across the next level-1 (or level-2) boundary, draining
    /// one coarse bucket down a level. Returns false when no coarser
    /// bucket holds anything.
    fn cascade(&mut self) -> bool {
        for l in 1..3u32 {
            let cur = (self.cursor >> (self.shift * l)) & self.mask;
            let Some(slot) = self.levels[l as usize].next_occupied(cur as usize + 1) else {
                continue;
            };
            // Jump the cursor to the start of that coarse bucket…
            let coarse = ((self.cursor >> (self.shift * l)) & !self.mask) | slot as u64;
            self.cursor = coarse << (self.shift * l);
            // …and re-place its keys: they land one level finer (or in
            // `late`, for the bucket the cursor now points at).
            let drained = std::mem::take(&mut self.levels[l as usize].slots[slot]);
            self.levels[l as usize].clear(slot);
            self.in_levels -= drained.len();
            for key in drained {
                self.place(key);
            }
            return true;
        }
        false
    }

    fn pop_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        if self.serving.is_empty() && self.late.is_empty() {
            self.refill();
        }
        // Fast path — the dominant state: nothing late, nothing beyond
        // the wheel horizon, so the sorted serving array *is* the queue.
        if self.late.is_empty() && self.overflow_min.is_none() {
            let key = *self.serving.last()?;
            if key.0 > horizon {
                return None;
            }
            self.serving.pop();
            return Some((key.0, self.slab.remove(key.2)));
        }
        let sk = self.serving.last().copied();
        let lk = self.late.peek().map(|&Reverse(k)| k);
        // Three-way min: serving (current drained bucket), late
        // (immediate reschedules), overflow (cached far-future head).
        let min = [sk, lk, self.overflow_min].into_iter().flatten().min()?;
        if min.0 > horizon {
            return None;
        }
        if sk == Some(min) {
            self.serving.pop();
        } else if lk == Some(min) {
            self.late.pop();
        } else {
            self.overflow.pop();
            self.overflow_min = self.overflow.peek().map(|&Reverse(k)| k);
        }
        Some((min.0, self.slab.remove(min.2)))
    }
}

/// A deterministic event scheduler: single-heap or hierarchical-wheel
/// per [`SchedConfig`]. Generic over the event payload so the
/// `bench_sim` binary can drive it with synthetic events.
pub struct Scheduler<E> {
    imp: Imp<E>,
    len: usize,
}

enum Imp<E> {
    Single(BinaryHeap<Entry<E>>),
    Wheel(Box<Wheel<E>>),
}

impl<E> Scheduler<E> {
    /// Build a scheduler. (`_homes` reserves the node count; the wheel
    /// itself is node-agnostic — per-node queues live in each node's
    /// `StackDriver`.)
    pub fn new(cfg: &SchedConfig, _homes: usize) -> Scheduler<E> {
        let imp = match cfg.kind {
            SchedKind::SingleHeap => Imp::Single(BinaryHeap::new()),
            SchedKind::Calendar => Imp::Wheel(Box::new(Wheel::new(cfg))),
        };
        Scheduler { imp, len: 0 }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue event `ev` at `(at, seq)`. The caller owns the `seq`
    /// counter — keys must be unique.
    #[inline]
    pub fn push(&mut self, at: Time, seq: u64, ev: E) {
        self.len += 1;
        match &mut self.imp {
            Imp::Single(heap) => heap.push(Entry { key: (at, seq), ev }),
            Imp::Wheel(w) => w.push(at, seq, ev),
        }
    }

    /// Pop the earliest event if it is due at or before `horizon`.
    /// Events come out in strict `(time, seq)` order regardless of the
    /// implementation.
    pub fn pop_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        let popped = match &mut self.imp {
            Imp::Single(heap) => {
                if heap.peek()?.key.0 > horizon {
                    return None;
                }
                let e = heap.pop().expect("peeked");
                (e.key.0, e.ev)
            }
            Imp::Wheel(w) => w.pop_before(horizon)?,
        };
        self.len -= 1;
        Some(popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAR: Time = Time(u64::MAX);

    fn drain<E>(s: &mut Scheduler<E>) -> Vec<(Time, E)> {
        let mut out = Vec::new();
        while let Some(e) = s.pop_before(FAR) {
            out.push(e);
        }
        out
    }

    #[test]
    fn both_kinds_agree_on_interleaved_pushes_and_pops() {
        let mk = |kind| {
            let cfg = SchedConfig { kind, bucket: Dur::micros(1), buckets: 64 };
            Scheduler::<u64>::new(&cfg, 4)
        };
        let mut a = mk(SchedKind::SingleHeap);
        let mut b = mk(SchedKind::Calendar);
        // A deterministic pseudo-random schedule with ties, far timers,
        // zero-delay events and interleaved pops.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut popped = Vec::new();
        for round in 0..3000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = Time((x >> 33) % 2_000_000_000); // 0..2s: spans all levels
            a.push(t, round, round);
            b.push(t, round, round);
            if round % 3 == 0 {
                let pa = a.pop_before(Time(1_000_000_000));
                let pb = b.pop_before(Time(1_000_000_000));
                assert_eq!(pa, pb, "divergence at round {round}");
                popped.push(pa);
            }
        }
        assert_eq!(drain(&mut a), drain(&mut b));
        assert!(popped.iter().any(Option::is_some));
    }

    #[test]
    fn pop_order_is_time_then_seq() {
        let mut s = Scheduler::new(&SchedConfig::default(), 2);
        s.push(Time(100), 0, "a");
        s.push(Time(50), 1, "b");
        s.push(Time(100), 2, "c");
        s.push(Time(50), 3, "d");
        let order: Vec<&str> = drain(&mut s).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b", "d", "a", "c"]);
    }

    #[test]
    fn pop_before_respects_horizon_and_resumes() {
        let mut s = Scheduler::new(&SchedConfig::default(), 1);
        s.push(Time(10), 0, 1);
        s.push(Time(20), 1, 2);
        assert_eq!(s.pop_before(Time(15)), Some((Time(10), 1)));
        assert_eq!(s.pop_before(Time(15)), None);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_before(Time(25)), Some((Time(20), 2)));
        assert!(s.is_empty());
    }

    #[test]
    fn far_future_events_survive_idle_jumps() {
        // Events beyond the wheel horizon (overflow), popped after long
        // idle gaps, interleaved with new near-term pushes.
        let cfg = SchedConfig { kind: SchedKind::Calendar, bucket: Dur::micros(1), buckets: 64 };
        let mut s = Scheduler::new(&cfg, 2);
        s.push(Time::ZERO + Dur::secs(3600), 0, "hour");
        s.push(Time(5), 1, "now");
        assert_eq!(s.pop_before(FAR).unwrap().1, "now");
        assert_eq!(s.pop_before(FAR).unwrap().1, "hour");
        // Push something relative to the far-future region after the jump.
        s.push(Time::ZERO + Dur::secs(3600) + Dur::micros(1), 2, "later");
        assert_eq!(s.pop_before(FAR).unwrap().1, "later");
        assert!(s.is_empty());
    }

    #[test]
    fn same_bucket_late_pushes_keep_order() {
        // Events pushed into the *serving* bucket while it is being
        // drained must interleave by (time, seq).
        let cfg = SchedConfig { kind: SchedKind::Calendar, bucket: Dur::millis(1), buckets: 64 };
        let mut s = Scheduler::new(&cfg, 1);
        s.push(Time(500), 0, "a");
        s.push(Time(900), 1, "c");
        assert_eq!(s.pop_before(FAR).unwrap().1, "a");
        // Now inside bucket 0's serving phase: push an earlier-time and
        // a same-time entry.
        s.push(Time(700), 2, "b");
        s.push(Time(900), 3, "d");
        let order: Vec<&str> = drain(&mut s).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b", "c", "d"]);
    }

    #[test]
    fn cascades_across_all_levels_preserve_order() {
        // Entries at every level of a tiny wheel (64 slots: L0 64µs,
        // L1 4.1ms, L2 262ms, overflow beyond ~16.8s at 1µs buckets).
        let cfg = SchedConfig { kind: SchedKind::Calendar, bucket: Dur::micros(1), buckets: 64 };
        let mut s = Scheduler::new(&cfg, 1);
        let times = [
            3u64,
            63,                 // L0 edge
            64,                 // first slot beyond L0
            4_000,              // L1
            4_095,              // L1 edge
            260_000,            // L2
            300_000,            // next L2 bucket
            20_000_000,         // deep L2
            600_000_000_000u64, // overflow (600s)
        ];
        // Push out of order.
        for (i, &t) in times.iter().rev().enumerate() {
            s.push(Time(t * 1_000), i as u64, t);
        }
        let got: Vec<u64> = drain(&mut s).into_iter().map(|(_, e)| e).collect();
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
