//! The event scheduler behind [`crate::Sim`]: a hierarchical timing
//! wheel (calendar queue) keyed by coarse time buckets, with the
//! original single global `BinaryHeap` kept alongside as the reference
//! implementation.
//!
//! # Why not one big heap
//!
//! The paper's evaluation stops at 7 machines; this workspace pushes the
//! same live-switch experiments to thousands of simulated nodes. At that
//! scale the global heap is the bottleneck: every pop pays an
//! `O(log E)` sift over *all* in-flight events — tens of thousands of
//! entries at n = 1024 — and every sift level moves a full-size event
//! payload (packets carry `Bytes`, actions carry boxed closures) through
//! cache-hostile strides. The per-node event queues (each
//! `StackDriver`'s timer queue and pending-event buffer, with a single
//! stamped wake/step entry per node, from PR 2) already bound how many
//! entries a node contributes; what they feed deserves better than
//! `O(log E)` per event.
//!
//! # The hierarchical timing wheel
//!
//! Three levels of `slots` buckets each (default 256), with level-0
//! bucket width [`SchedConfig::bucket`] (default 128 ns): level 0 spans
//! 32.8 µs, level 1 spans 8.4 ms, level 2 spans 2.15 s; the handful of
//! events beyond that sit in a small overflow heap. Pushing is `O(1)`:
//! compute the level whose current bucket range contains the deadline,
//! append to that bucket's `Vec`. Popping serves the *current* level-0
//! bucket from a sorted `serving` array; when it empties, an occupancy
//! bitmap finds the next non-empty bucket, and crossing a level
//! boundary *cascades* the next coarser bucket down one level — each
//! event is moved at most twice before being served, so the amortized
//! cost per event is `O(1)` with small constants (24-byte key compares,
//! `sort_unstable` over a handful of same-bucket entries).
//!
//! The level-0 width is the knob: a bucket should hold only a few
//! events (so the serving sort stays trivial) while `slots³ × width`
//! still covers the protocol stack's timer range (rp2p retransmit
//! 20–100 ms, fd heartbeat/timeout 20/100 ms all live in level 2). The
//! 128 ns default keeps buckets near-singleton even with half a
//! million datagrams in flight (the WAN-sustained profile of
//! `BENCH_sim.json`) and measured best-or-equal across every profile
//! swept; see `ARCHITECTURE.md` for the sensitivity data.
//!
//! # Determinism
//!
//! Events are totally ordered by `(time, seq)`, `seq` being the
//! simulator's global push counter. Wheel levels are *exactly* aligned
//! (one level-1 bucket is precisely 256 level-0 buckets), so a bucket
//! never mixes events from different coarser ranges, and the serving
//! array always holds the global minimum of the wheel; the overflow
//! head is compared by full key on every pop. The pop sequence is
//! therefore identical to the single heap's — and so is every
//! downstream decision (RNG draws, trace contents, the golden
//! fingerprint in `tests/host_equivalence.rs`).
//! `crates/sim/tests/sched_equiv.rs` property-tests the equivalence;
//! [`crate::SimConfig`] selects the implementation via [`SchedConfig`].

use dpu_core::time::{Dur, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which scheduler implementation a [`crate::Sim`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// One global `BinaryHeap` over all events — the pre-wheel
    /// reference implementation, kept for equivalence tests and the
    /// `bench_sim` comparison.
    SingleHeap,
    /// Hierarchical timing-wheel calendar queue (default).
    Calendar,
}

/// Scheduler configuration, part of [`crate::SimConfig`].
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Implementation to use.
    pub kind: SchedKind,
    /// Level-0 bucket width (calendar only); rounded up to a power of
    /// two of nanoseconds. See the module docs for the trade-off; the
    /// default is 128 ns. With [`SchedConfig::adaptive`] set this is
    /// only the starting width.
    pub bucket: Dur,
    /// Buckets per wheel level (calendar only); rounded up to a power
    /// of two, minimum 64. Three levels cover `bucket × slots³`.
    /// Default 256.
    pub buckets: usize,
    /// Brown-style adaptive bucket width (calendar only, default on):
    /// the wheel tracks the average number of events per traversed
    /// level-0 bucket and, when it drifts outside `[0.5, 2]`, halves or
    /// doubles the bucket width and rebuilds. Resizing never changes
    /// the pop order — the wheel is order-exact for *any* width — so
    /// this is purely a constant-factor adaptation for event densities
    /// the fixed default width does not fit.
    pub adaptive: bool,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            kind: SchedKind::Calendar,
            bucket: Dur::nanos(128),
            buckets: 256,
            adaptive: true,
        }
    }
}

impl SchedConfig {
    /// The reference single-heap configuration.
    pub fn single_heap() -> SchedConfig {
        SchedConfig { kind: SchedKind::SingleHeap, ..SchedConfig::default() }
    }
}

/// The deterministic total order: `(time, global push sequence)`.
pub type Key = (Time, u64);

/// A queued event: key plus payload.
struct Entry<E> {
    key: Key,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min key on top.
        other.key.cmp(&self.key)
    }
}

/// Payload storage for the wheel: keys circulate through buckets and
/// heaps as 24-byte `(Time, seq, slot)` tuples, while the (much larger)
/// event payloads sit still in this slab until served. Heap sifts,
/// bucket drains and sorts therefore move a third of the bytes the
/// reference single heap moves per level.
struct Slab<E> {
    items: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> Slab<E> {
    fn new() -> Slab<E> {
        Slab { items: Vec::new(), free: Vec::new() }
    }

    #[inline]
    fn insert(&mut self, ev: E) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.items[i as usize] = Some(ev);
                i
            }
            None => {
                if self.items.len() == self.items.capacity() {
                    // Grow in 1/8 chunks instead of Vec's doubling: the
                    // slab tracks the standing event population (a
                    // million stacks hold millions of events), and
                    // doubling's up-to-100% slack on ~50-byte payloads
                    // is hundreds of bytes per stack. An eighth keeps
                    // amortized O(1) growth with bounded dead capacity.
                    let chunk = (self.items.len() / 8).max(32);
                    self.items.reserve_exact(chunk);
                }
                self.items.push(Some(ev));
                (self.items.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn remove(&mut self, i: u32) -> E {
        self.free.push(i);
        self.items[i as usize].take().expect("live slab entry")
    }
}

/// A wheel key: the deterministic order pair plus the payload's slab
/// index. `seq` is unique, so the index never participates in ordering
/// decisions.
type WheelKey = (Time, u64, u32);

/// One wheel level: `slots` unsorted key buckets plus an occupancy
/// bitmap.
struct Level {
    slots: Vec<Vec<WheelKey>>,
    occ: Vec<u64>,
}

impl Level {
    fn new(slots: usize) -> Level {
        Level { slots: (0..slots).map(|_| Vec::new()).collect(), occ: vec![0u64; slots / 64] }
    }

    #[inline]
    fn mark(&mut self, slot: usize) {
        self.occ[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn clear(&mut self, slot: usize) {
        self.occ[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// First occupied slot ≥ `from`, if any (scans never wrap: pushes
    /// always land strictly ahead of the cursor within a level).
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= self.slots.len() {
            return None;
        }
        let mut w = from / 64;
        let mut bits = self.occ[w] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w == self.occ.len() {
                return None;
            }
            bits = self.occ[w];
        }
    }
}

/// Three-level hierarchical timing wheel + overflow heap. See the
/// module docs for structure and invariants.
struct Wheel<E> {
    slab: Slab<E>,
    levels: Vec<Level>,
    /// Current level-0 bucket's keys, sorted *descending* and served
    /// from the back. Only ever filled by draining a bucket — never
    /// inserted into.
    serving: Vec<WheelKey>,
    /// Keys pushed *at or before* the serving bucket (immediate
    /// reschedules — the post-dispatch `NodeStep` pattern). A small
    /// min-heap: its keys all precede everything in the wheel levels,
    /// and it drains as fast as it fills.
    late: BinaryHeap<Reverse<WheelKey>>,
    /// Absolute level-0 bucket index of the serving bucket.
    cursor: u64,
    /// log2 of the level-0 bucket width in nanoseconds (the width is
    /// rounded to a power of two so bucket mapping is a shift, not a
    /// division — `place` maps every key up to four times).
    w_shift: u32,
    /// log2(slots per level).
    shift: u32,
    /// Slots per level minus one (mask).
    mask: u64,
    /// Keys in the three levels (excluding serving/late/overflow).
    in_levels: usize,
    /// Keys beyond the level-2 horizon.
    overflow: BinaryHeap<Reverse<WheelKey>>,
    /// Cached `overflow` head, so the per-pop comparison against the
    /// far future is a register compare, not a heap peek.
    overflow_min: Option<WheelKey>,
    /// Adaptive-width state (see [`SchedConfig::adaptive`]): events
    /// served, serving refills, and level-0 buckets traversed since the
    /// last resize decision.
    adaptive: bool,
    served_events: u64,
    served_refills: u64,
    l0_advanced: u64,
    resizes: u64,
}

/// Resize decision cadence: evaluate the occupancy once this many
/// samples accumulate, counting both served events and serving-bucket
/// refills — so crowded wheels (few huge buckets) and sparse wheels
/// (many near-empty buckets) both reach a decision after a few thousand
/// operations.
const RESIZE_PERIOD: u64 = 4096;

/// Bounds on the adaptive level-0 bucket width: 2⁴ ns = 16 ns up to
/// 2²⁶ ns ≈ 67 ms (beyond that, three 256-slot levels span > 4000 years
/// of virtual time — no workload needs coarser buckets).
const MIN_W_SHIFT: u32 = 4;
const MAX_W_SHIFT: u32 = 26;

impl<E> Wheel<E> {
    fn new(cfg: &SchedConfig) -> Wheel<E> {
        let slots = cfg.buckets.next_power_of_two().max(64);
        Wheel {
            slab: Slab::new(),
            levels: (0..3).map(|_| Level::new(slots)).collect(),
            serving: Vec::new(),
            late: BinaryHeap::new(),
            cursor: 0,
            w_shift: cfg.bucket.as_nanos().max(1).next_power_of_two().trailing_zeros(),
            shift: slots.trailing_zeros(),
            mask: (slots - 1) as u64,
            in_levels: 0,
            overflow: BinaryHeap::new(),
            overflow_min: None,
            adaptive: cfg.adaptive,
            served_events: 0,
            served_refills: 0,
            l0_advanced: 0,
            resizes: 0,
        }
    }

    /// Absolute level-0 bucket index of `t`.
    #[inline]
    fn bucket0(&self, t: Time) -> u64 {
        t.as_nanos() >> self.w_shift
    }

    #[inline]
    fn push(&mut self, at: Time, seq: u64, ev: E) {
        let idx = self.slab.insert(ev);
        self.place((at, seq, idx));
    }

    fn place(&mut self, key: WheelKey) {
        let b0 = self.bucket0(key.0);
        if b0 <= self.cursor {
            self.late.push(Reverse(key));
            return;
        }
        // Exact level alignment: the key belongs to the finest level
        // whose current coarse bucket contains it.
        for l in 0..3u32 {
            if b0 >> (self.shift * (l + 1)) == self.cursor >> (self.shift * (l + 1)) {
                let slot = ((b0 >> (self.shift * l)) & self.mask) as usize;
                self.levels[l as usize].slots[slot].push(key);
                self.levels[l as usize].mark(slot);
                self.in_levels += 1;
                return;
            }
        }
        if self.overflow_min.is_none_or(|m| key < m) {
            self.overflow_min = Some(key);
        }
        self.overflow.push(Reverse(key));
    }

    /// Refill `serving`/`late` from the wheel: advance to the next
    /// occupied level-0 bucket, cascading coarser levels across
    /// boundaries. On return, `serving ∪ late` (if non-empty) holds the
    /// earliest wheel keys; only the overflow heap can hold an earlier
    /// key.
    fn refill(&mut self) {
        debug_assert!(self.serving.is_empty() && self.late.is_empty());
        if self.in_levels == 0 {
            // Wheel empty: jump the cursor to the overflow's first
            // bucket and migrate its near span back into the levels.
            let Some(&Reverse(head)) = self.overflow.peek() else { return };
            self.cursor = self.bucket0(head.0);
            let horizon = self.cursor >> (3 * self.shift);
            while let Some(&Reverse(head)) = self.overflow.peek() {
                if self.bucket0(head.0) >> (3 * self.shift) != horizon {
                    break;
                }
                self.overflow.pop();
                self.place(head); // lands in `late` or a level
            }
            self.overflow_min = self.overflow.peek().map(|&Reverse(k)| k);
            // The cursor was set to the head's own bucket, so the head
            // necessarily landed in `late` — serveable immediately.
            debug_assert!(!self.late.is_empty());
            return;
        }
        loop {
            // A cascade (or the jump above) may have landed keys in
            // `late` already, in which case they are serveable now.
            if !self.late.is_empty() {
                return;
            }
            // Next occupied level-0 slot strictly after the cursor,
            // within the current level-1 bucket.
            let from = ((self.cursor & self.mask) + 1) as usize;
            if let Some(slot) = self.levels[0].next_occupied(from) {
                let prev = self.cursor;
                self.cursor = (self.cursor & !self.mask) | slot as u64;
                let bucket = &mut self.levels[0].slots[slot];
                std::mem::swap(bucket, &mut self.serving);
                self.levels[0].clear(slot);
                self.in_levels -= self.serving.len();
                self.serving.sort_unstable_by(|a, b| b.cmp(a));
                // Occupancy sample for the adaptive width: events per
                // level-0 bucket traversed (cursor teleports across idle
                // gaps are clamped to one wheel span, so long-idle
                // queues read as sparse, not as division by a huge gap).
                self.served_events += self.serving.len() as u64;
                self.served_refills += 1;
                self.l0_advanced += (self.cursor - prev).min(self.mask + 1);
                return;
            }
            // Level 0 exhausted: cascade the next occupied coarser
            // bucket down and retry.
            if !self.cascade() {
                return; // wheel truly empty (only overflow remains)
            }
        }
    }

    /// Advance across the next level-1 (or level-2) boundary, draining
    /// one coarse bucket down a level. Returns false when no coarser
    /// bucket holds anything.
    fn cascade(&mut self) -> bool {
        for l in 1..3u32 {
            let cur = (self.cursor >> (self.shift * l)) & self.mask;
            let Some(slot) = self.levels[l as usize].next_occupied(cur as usize + 1) else {
                continue;
            };
            // Jump the cursor to the start of that coarse bucket…
            let coarse = ((self.cursor >> (self.shift * l)) & !self.mask) | slot as u64;
            self.cursor = coarse << (self.shift * l);
            // …and re-place its keys: they land one level finer (or in
            // `late`, for the bucket the cursor now points at).
            let drained = std::mem::take(&mut self.levels[l as usize].slots[slot]);
            self.levels[l as usize].clear(slot);
            self.in_levels -= drained.len();
            for key in drained {
                self.place(key);
            }
            return true;
        }
        false
    }

    /// Evaluate the occupancy window and, when the average number of
    /// events per traversed level-0 bucket left `[0.5, 2]`, halve or
    /// double the bucket width (Brown's calendar-queue resize rule,
    /// applied to the wheel's hierarchical layout) and re-place every
    /// parked key — including `serving` and `late`, so the resize is
    /// legal at any point and order-exactness is preserved by the
    /// re-placement itself. Pops served from `late` count as events
    /// with zero cursor advance: a wheel degenerated into its `late`
    /// heap (every event mapping to one huge bucket) reads as maximally
    /// crowded and shrinks its way back to real wheel operation.
    fn maybe_resize(&mut self) {
        let occupancy = self.served_events as f64 / self.l0_advanced.max(1) as f64;
        self.served_events = 0;
        self.served_refills = 0;
        self.l0_advanced = 0;
        let new_shift = if occupancy > 2.0 && self.w_shift > MIN_W_SHIFT {
            self.w_shift - 1 // crowded buckets: narrow them
        } else if occupancy < 0.5 && self.w_shift < MAX_W_SHIFT {
            self.w_shift + 1 // mostly-empty span: widen them
        } else {
            return;
        };
        // Re-anchor the cursor at the start of its current bucket and
        // re-place every key under the new width. Keys at or before the
        // new cursor land in `late`, which the pop path already merges.
        let floor_ns = self.cursor << self.w_shift;
        self.w_shift = new_shift;
        self.cursor = floor_ns >> new_shift;
        let mut keys: Vec<WheelKey> =
            Vec::with_capacity(self.in_levels + self.overflow.len() + self.late.len());
        for level in &mut self.levels {
            for slot in &mut level.slots {
                keys.append(slot);
            }
            level.occ.fill(0);
        }
        while let Some(Reverse(k)) = self.overflow.pop() {
            keys.push(k);
        }
        keys.append(&mut self.serving);
        while let Some(Reverse(k)) = self.late.pop() {
            keys.push(k);
        }
        self.overflow_min = None;
        self.in_levels = 0;
        for key in keys {
            self.place(key);
        }
        self.resizes += 1;
    }

    /// The earliest queued key's time without popping it (refills the
    /// serving window if necessary, which does not change pop order).
    fn next_time(&mut self) -> Option<Time> {
        if self.serving.is_empty() && self.late.is_empty() {
            self.refill();
        }
        let sk = self.serving.last().copied();
        let lk = self.late.peek().map(|&Reverse(k)| k);
        [sk, lk, self.overflow_min].into_iter().flatten().min().map(|k| k.0)
    }

    fn pop_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        if self.adaptive && self.served_events + self.served_refills >= RESIZE_PERIOD {
            self.maybe_resize();
        }
        if self.serving.is_empty() && self.late.is_empty() {
            self.refill();
        }
        // Fast path — the dominant state: nothing late, nothing beyond
        // the wheel horizon, so the sorted serving array *is* the queue.
        if self.late.is_empty() && self.overflow_min.is_none() {
            let key = *self.serving.last()?;
            if key.0 > horizon {
                return None;
            }
            self.serving.pop();
            return Some((key.0, self.slab.remove(key.2)));
        }
        let sk = self.serving.last().copied();
        let lk = self.late.peek().map(|&Reverse(k)| k);
        // Three-way min: serving (current drained bucket), late
        // (immediate reschedules), overflow (cached far-future head).
        let min = [sk, lk, self.overflow_min].into_iter().flatten().min()?;
        if min.0 > horizon {
            return None;
        }
        if sk == Some(min) {
            self.serving.pop();
        } else if lk == Some(min) {
            self.late.pop();
            // Late-heap service is the degenerate regime the adaptive
            // width exists to escape: events, no bucket advance.
            self.served_events += 1;
        } else {
            self.overflow.pop();
            self.overflow_min = self.overflow.peek().map(|&Reverse(k)| k);
        }
        Some((min.0, self.slab.remove(min.2)))
    }
}

/// A deterministic event scheduler: single-heap or hierarchical-wheel
/// per [`SchedConfig`]. Generic over the event payload so the
/// `bench_sim` binary can drive it with synthetic events.
pub struct Scheduler<E> {
    imp: Imp<E>,
    len: usize,
}

enum Imp<E> {
    Single(BinaryHeap<Entry<E>>),
    Wheel(Box<Wheel<E>>),
}

impl<E> Scheduler<E> {
    /// Build a scheduler. (`_homes` reserves the node count; the wheel
    /// itself is node-agnostic — per-node queues live in each node's
    /// `StackDriver`.)
    pub fn new(cfg: &SchedConfig, _homes: usize) -> Scheduler<E> {
        let imp = match cfg.kind {
            SchedKind::SingleHeap => Imp::Single(BinaryHeap::new()),
            SchedKind::Calendar => Imp::Wheel(Box::new(Wheel::new(cfg))),
        };
        Scheduler { imp, len: 0 }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue event `ev` at `(at, seq)`. The caller owns the `seq`
    /// counter — keys must be unique.
    #[inline]
    pub fn push(&mut self, at: Time, seq: u64, ev: E) {
        self.len += 1;
        match &mut self.imp {
            Imp::Single(heap) => heap.push(Entry { key: (at, seq), ev }),
            Imp::Wheel(w) => w.push(at, seq, ev),
        }
    }

    /// The earliest queued event's time without popping it — the
    /// parallel engine's epoch-floor probe.
    pub fn next_time(&mut self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        match &mut self.imp {
            Imp::Single(heap) => heap.peek().map(|e| e.key.0),
            Imp::Wheel(w) => w.next_time(),
        }
    }

    /// How many adaptive bucket-width resizes the wheel has performed
    /// (always 0 for the single heap and with `adaptive` off).
    pub fn resizes(&self) -> u64 {
        match &self.imp {
            Imp::Single(_) => 0,
            Imp::Wheel(w) => w.resizes,
        }
    }

    /// Heap bytes held by the scheduler at *capacity* (slab, buckets,
    /// heaps, free list) — what the allocator actually charges, not
    /// just the live-event footprint. Feeds the structural memory
    /// audit (`Sim::mem_stats`), which `tests/mem_audit.rs` reconciles
    /// against a counting allocator.
    pub fn mem_bytes(&self) -> usize {
        use std::mem::size_of;
        match &self.imp {
            Imp::Single(heap) => heap.capacity() * size_of::<Entry<E>>(),
            Imp::Wheel(w) => {
                let mut total = w.slab.items.capacity() * size_of::<Option<E>>()
                    + w.slab.free.capacity() * size_of::<u32>()
                    + w.serving.capacity() * size_of::<WheelKey>()
                    + (w.late.capacity() + w.overflow.capacity()) * size_of::<Reverse<WheelKey>>();
                for level in &w.levels {
                    total += level.occ.capacity() * size_of::<u64>();
                    for slot in &level.slots {
                        total += slot.capacity() * size_of::<WheelKey>();
                    }
                    total += level.slots.capacity() * size_of::<Vec<WheelKey>>();
                }
                total
            }
        }
    }

    /// Pop the earliest event if it is due at or before `horizon`.
    /// Events come out in strict `(time, seq)` order regardless of the
    /// implementation.
    pub fn pop_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        let popped = match &mut self.imp {
            Imp::Single(heap) => {
                if heap.peek()?.key.0 > horizon {
                    return None;
                }
                let e = heap.pop().expect("peeked");
                (e.key.0, e.ev)
            }
            Imp::Wheel(w) => w.pop_before(horizon)?,
        };
        self.len -= 1;
        Some(popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAR: Time = Time(u64::MAX);

    fn drain<E>(s: &mut Scheduler<E>) -> Vec<(Time, E)> {
        let mut out = Vec::new();
        while let Some(e) = s.pop_before(FAR) {
            out.push(e);
        }
        out
    }

    #[test]
    fn both_kinds_agree_on_interleaved_pushes_and_pops() {
        let mk = |kind| {
            let cfg = SchedConfig { kind, bucket: Dur::micros(1), buckets: 64, adaptive: true };
            Scheduler::<u64>::new(&cfg, 4)
        };
        let mut a = mk(SchedKind::SingleHeap);
        let mut b = mk(SchedKind::Calendar);
        // A deterministic pseudo-random schedule with ties, far timers,
        // zero-delay events and interleaved pops.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut popped = Vec::new();
        for round in 0..3000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = Time((x >> 33) % 2_000_000_000); // 0..2s: spans all levels
            a.push(t, round, round);
            b.push(t, round, round);
            if round % 3 == 0 {
                let pa = a.pop_before(Time(1_000_000_000));
                let pb = b.pop_before(Time(1_000_000_000));
                assert_eq!(pa, pb, "divergence at round {round}");
                popped.push(pa);
            }
        }
        assert_eq!(drain(&mut a), drain(&mut b));
        assert!(popped.iter().any(Option::is_some));
    }

    #[test]
    fn pop_order_is_time_then_seq() {
        let mut s = Scheduler::new(&SchedConfig::default(), 2);
        s.push(Time(100), 0, "a");
        s.push(Time(50), 1, "b");
        s.push(Time(100), 2, "c");
        s.push(Time(50), 3, "d");
        let order: Vec<&str> = drain(&mut s).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b", "d", "a", "c"]);
    }

    #[test]
    fn pop_before_respects_horizon_and_resumes() {
        let mut s = Scheduler::new(&SchedConfig::default(), 1);
        s.push(Time(10), 0, 1);
        s.push(Time(20), 1, 2);
        assert_eq!(s.pop_before(Time(15)), Some((Time(10), 1)));
        assert_eq!(s.pop_before(Time(15)), None);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_before(Time(25)), Some((Time(20), 2)));
        assert!(s.is_empty());
    }

    #[test]
    fn far_future_events_survive_idle_jumps() {
        // Events beyond the wheel horizon (overflow), popped after long
        // idle gaps, interleaved with new near-term pushes.
        let cfg = SchedConfig {
            kind: SchedKind::Calendar,
            bucket: Dur::micros(1),
            buckets: 64,
            adaptive: true,
        };
        let mut s = Scheduler::new(&cfg, 2);
        s.push(Time::ZERO + Dur::secs(3600), 0, "hour");
        s.push(Time(5), 1, "now");
        assert_eq!(s.pop_before(FAR).unwrap().1, "now");
        assert_eq!(s.pop_before(FAR).unwrap().1, "hour");
        // Push something relative to the far-future region after the jump.
        s.push(Time::ZERO + Dur::secs(3600) + Dur::micros(1), 2, "later");
        assert_eq!(s.pop_before(FAR).unwrap().1, "later");
        assert!(s.is_empty());
    }

    #[test]
    fn same_bucket_late_pushes_keep_order() {
        // Events pushed into the *serving* bucket while it is being
        // drained must interleave by (time, seq).
        let cfg = SchedConfig {
            kind: SchedKind::Calendar,
            bucket: Dur::millis(1),
            buckets: 64,
            adaptive: true,
        };
        let mut s = Scheduler::new(&cfg, 1);
        s.push(Time(500), 0, "a");
        s.push(Time(900), 1, "c");
        assert_eq!(s.pop_before(FAR).unwrap().1, "a");
        // Now inside bucket 0's serving phase: push an earlier-time and
        // a same-time entry.
        s.push(Time(700), 2, "b");
        s.push(Time(900), 3, "d");
        let order: Vec<&str> = drain(&mut s).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b", "c", "d"]);
    }

    /// Drive a pathological density through an adaptive wheel and the
    /// single heap in lockstep; the pop streams must match exactly and
    /// the wheel must actually have resized in the given direction.
    fn adaptive_agrees_with_heap(start_bucket: Dur, spacing_ns: u64) -> u64 {
        let mk = |kind, adaptive| {
            let cfg = SchedConfig { kind, bucket: start_bucket, buckets: 64, adaptive };
            Scheduler::<u64>::new(&cfg, 1)
        };
        let mut heap = mk(SchedKind::SingleHeap, false);
        let mut wheel = mk(SchedKind::Calendar, true);
        // Steady-state pop/push at a fixed event spacing: enough
        // traffic to cross several resize evaluation windows.
        let mut seq = 0u64;
        for i in 0..64u64 {
            heap.push(Time(i * spacing_ns), seq, i);
            wheel.push(Time(i * spacing_ns), seq, i);
            seq += 1;
        }
        for _ in 0..60_000u64 {
            let a = heap.pop_before(FAR).expect("heap nonempty");
            let b = wheel.pop_before(FAR).expect("wheel nonempty");
            assert_eq!(a, b, "adaptive wheel diverged from the single heap");
            let t = Time(a.0.as_nanos() + 64 * spacing_ns);
            heap.push(t, seq, a.1);
            wheel.push(t, seq, a.1);
            seq += 1;
        }
        assert_eq!(drain(&mut heap), drain(&mut wheel));
        wheel.resizes()
    }

    #[test]
    fn adaptive_wheel_narrows_crowded_buckets_without_reordering() {
        // 1 ms buckets, events every 50 ns: ~20k events per bucket.
        let resizes = adaptive_agrees_with_heap(Dur::millis(1), 50);
        assert!(resizes >= 3, "crowded buckets must shrink, got {resizes} resizes");
    }

    #[test]
    fn adaptive_wheel_widens_sparse_buckets_without_reordering() {
        // 16 ns buckets, events every 40 µs: occupancy ~0.0004.
        let resizes = adaptive_agrees_with_heap(Dur::nanos(16), 40_000);
        assert!(resizes >= 3, "sparse buckets must widen, got {resizes} resizes");
    }

    #[test]
    fn non_adaptive_wheel_never_resizes() {
        let cfg = SchedConfig { adaptive: false, bucket: Dur::millis(1), ..SchedConfig::default() };
        let mut s = Scheduler::new(&cfg, 1);
        for seq in 0..30_000u64 {
            s.push(Time(seq * 10), seq, seq);
        }
        while s.pop_before(FAR).is_some() {}
        assert_eq!(s.resizes(), 0);
    }

    #[test]
    fn next_time_peeks_without_consuming() {
        for kind in [SchedKind::SingleHeap, SchedKind::Calendar] {
            let cfg = SchedConfig { kind, ..SchedConfig::default() };
            let mut s = Scheduler::new(&cfg, 1);
            assert_eq!(s.next_time(), None);
            s.push(Time(70), 0, "a");
            s.push(Time(30), 1, "b");
            s.push(Time::ZERO + Dur::secs(3600), 2, "far");
            assert_eq!(s.next_time(), Some(Time(30)), "{kind:?}");
            assert_eq!(s.next_time(), Some(Time(30)), "{kind:?}: peek must not consume");
            assert_eq!(s.pop_before(FAR), Some((Time(30), "b")));
            assert_eq!(s.next_time(), Some(Time(70)), "{kind:?}");
            s.pop_before(FAR);
            assert_eq!(s.next_time(), Some(Time::ZERO + Dur::secs(3600)), "{kind:?}: overflow");
            s.pop_before(FAR);
            assert_eq!(s.next_time(), None, "{kind:?}");
        }
    }

    #[test]
    fn cascades_across_all_levels_preserve_order() {
        // Entries at every level of a tiny wheel (64 slots: L0 64µs,
        // L1 4.1ms, L2 262ms, overflow beyond ~16.8s at 1µs buckets).
        let cfg = SchedConfig {
            kind: SchedKind::Calendar,
            bucket: Dur::micros(1),
            buckets: 64,
            adaptive: true,
        };
        let mut s = Scheduler::new(&cfg, 1);
        let times = [
            3u64,
            63,                 // L0 edge
            64,                 // first slot beyond L0
            4_000,              // L1
            4_095,              // L1 edge
            260_000,            // L2
            300_000,            // next L2 bucket
            20_000_000,         // deep L2
            600_000_000_000u64, // overflow (600s)
        ];
        // Push out of order.
        for (i, &t) in times.iter().rev().enumerate() {
            s.push(Time(t * 1_000), i as u64, t);
        }
        let got: Vec<u64> = drain(&mut s).into_iter().map(|(_, e)| e).collect();
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
