//! The network topology layer: per-link and per-cluster [`NetConfig`]s
//! plus dynamic partitions, lifting the network model from one global
//! config (the paper's single switched LAN) to shapes a thousand-node
//! deployment actually has — racks of machines on fast local links joined
//! by a slower backbone.
//!
//! A [`Topology`] answers one question for the simulator's send path:
//! *which [`NetConfig`] governs the link `src → dst` right now?* Lookup
//! precedence is per-link override → cluster membership (intra-cluster
//! config vs. backbone config) → the flat default. Partitions live here
//! too and are fully dynamic: scenario code can cut and heal node pairs
//! or whole clusters at any virtual time.

use dpu_core::time::Dur;
use dpu_core::StackId;
use std::collections::{BTreeMap, BTreeSet};

/// Network model parameters for one link class (the flat default models
/// the paper's 100BaseTX switched Ethernet).
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Base one-way propagation + switching delay.
    pub latency: Dur,
    /// Uniform jitter added on top of `latency`: `[0, jitter)`.
    pub jitter: Dur,
    /// Link bandwidth in bits per second; transmission delay is
    /// `8 * (size + header) / bandwidth`.
    pub bandwidth_bps: u64,
    /// Fixed per-datagram header bytes (UDP/IP/Ethernet framing).
    pub header_bytes: usize,
    /// Probability a datagram is dropped.
    pub loss: f64,
    /// Probability a datagram is duplicated (delivered twice).
    pub duplicate: f64,
}

impl NetConfig {
    /// A healthy switched 100 Mb/s LAN — the paper's §6.1 testbed
    /// (switched 100BaseTX, sub-0.1 ms one-way delay).
    pub fn lan() -> NetConfig {
        NetConfig {
            latency: Dur::micros(60),
            jitter: Dur::micros(30),
            bandwidth_bps: 100_000_000,
            header_bytes: 54,
            loss: 0.0,
            duplicate: 0.0,
        }
    }

    /// A lossy LAN for fault-injection tests.
    pub fn lossy(loss: f64) -> NetConfig {
        NetConfig { loss, ..NetConfig::lan() }
    }

    /// A wide-area backbone link: ~15 ms one-way propagation with a few
    /// milliseconds of queueing jitter, 50 Mb/s of usable per-flow
    /// bandwidth, and a small residual loss rate. The numbers model a
    /// continental path (1500–3000 km of fiber at ~5 µs/km plus router
    /// hops gives 10–20 ms one-way) with DiffServ-style constrained
    /// bandwidth, in the spirit of Gan Chaudhuri's QoS-on-constrained-IP
    /// latency/throughput modeling; 10⁻⁴ loss is a healthy provider SLA.
    pub fn wan() -> NetConfig {
        NetConfig {
            latency: Dur::millis(15),
            jitter: Dur::millis(3),
            bandwidth_bps: 50_000_000,
            header_bytes: 54,
            loss: 0.0001,
            duplicate: 0.0,
        }
    }

    /// A modern datacenter fabric link: 10 Gb/s host NICs with a
    /// two-tier Clos fabric giving ~10 µs one-way latency (≈ 2–5 µs
    /// per switch hop plus serialization) and low microburst jitter.
    /// This is the preset the ≥1024-stack experiments use for
    /// intra-cluster traffic — at 10 Gb/s a 150-byte datagram
    /// serializes in ~0.12 µs, so a sequencer fanning out to 1024
    /// peers is latency-bound, not transmission-bound.
    pub fn datacenter() -> NetConfig {
        NetConfig {
            latency: Dur::micros(10),
            jitter: Dur::micros(5),
            bandwidth_bps: 10_000_000_000,
            header_bytes: 54,
            loss: 0.0,
            duplicate: 0.0,
        }
    }
}

/// Per-link / per-cluster network configuration with dynamic partitions.
///
/// Built once and handed to [`crate::SimConfig`]; the simulator consults
/// [`Topology::link`] on every send and [`Topology::blocked`] for the
/// partition check.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Flat default, used when no override or cluster rule applies. This
    /// is the config `SimConfig::net` seeds and `Sim::set_loss` mutates.
    default: NetConfig,
    /// Nodes per cluster (`None` = flat topology, every pair uses
    /// `default`). Node `i` belongs to cluster `i / cluster_size`.
    cluster_size: Option<u32>,
    /// Config for links between different clusters (the WAN backbone).
    backbone: Option<NetConfig>,
    /// Per-link overrides, highest precedence. Directed: `(src, dst)`.
    links: BTreeMap<(StackId, StackId), NetConfig>,
    /// Ordered pairs `(a, b)` such that packets a→b are blocked.
    partitions: BTreeSet<(StackId, StackId)>,
}

impl Topology {
    /// A flat topology: every link uses `net` (the pre-topology
    /// behavior, and what [`crate::SimConfig::lan`] builds).
    pub fn flat(net: NetConfig) -> Topology {
        Topology {
            default: net,
            cluster_size: None,
            backbone: None,
            links: BTreeMap::new(),
            partitions: BTreeSet::new(),
        }
    }

    /// Clusters of `cluster_size` nodes on `intra` links, joined by a
    /// `backbone` for inter-cluster traffic — the LAN-cluster + WAN-
    /// backbone preset (e.g. `clustered(64, NetConfig::datacenter(),
    /// NetConfig::wan())` models 16 racks of 64 joined by a WAN at
    /// n = 1024).
    pub fn clustered(cluster_size: u32, intra: NetConfig, backbone: NetConfig) -> Topology {
        assert!(cluster_size > 0, "cluster_size must be positive");
        Topology {
            default: intra,
            cluster_size: Some(cluster_size),
            backbone: Some(backbone),
            links: BTreeMap::new(),
            partitions: BTreeSet::new(),
        }
    }

    /// The cluster node `id` belongs to (0 in a flat topology).
    pub fn cluster_of(&self, id: StackId) -> u32 {
        match self.cluster_size {
            Some(sz) => id.0 / sz,
            None => 0,
        }
    }

    /// Override the config of the directed link `src → dst`.
    pub fn set_link(&mut self, src: StackId, dst: StackId, cfg: NetConfig) {
        self.links.insert((src, dst), cfg);
    }

    /// The config governing `src → dst`: per-link override, else the
    /// backbone for inter-cluster pairs, else the default.
    pub fn link(&self, src: StackId, dst: StackId) -> &NetConfig {
        if !self.links.is_empty() {
            if let Some(cfg) = self.links.get(&(src, dst)) {
                return cfg;
            }
        }
        if let Some(backbone) = &self.backbone {
            if self.cluster_of(src) != self.cluster_of(dst) {
                return backbone;
            }
        }
        &self.default
    }

    /// The flat default config (mutable, for `Sim::set_loss`).
    pub(crate) fn default_mut(&mut self) -> &mut NetConfig {
        &mut self.default
    }

    /// The backbone config, if clustered (mutable, for `Sim::set_loss`).
    pub(crate) fn backbone_mut(&mut self) -> Option<&mut NetConfig> {
        self.backbone.as_mut()
    }

    /// Block traffic in both directions between the two node groups.
    pub fn partition(&mut self, a: &[StackId], b: &[StackId]) {
        for &x in a {
            for &y in b {
                self.partitions.insert((x, y));
                self.partitions.insert((y, x));
            }
        }
    }

    /// Block all traffic between two clusters (both directions). `n` is
    /// the total node count of the simulation.
    pub fn partition_clusters(&mut self, a: u32, b: u32, n: u32) {
        let members = |c: u32| -> Vec<StackId> {
            (0..n).map(StackId).filter(|&id| self.cluster_of(id) == c).collect()
        };
        let (ma, mb) = (members(a), members(b));
        self.partition(&ma, &mb);
    }

    /// Remove all partitions.
    pub fn heal_partitions(&mut self) {
        self.partitions.clear();
    }

    /// Whether `src → dst` is currently blocked by a partition.
    #[inline]
    pub fn blocked(&self, src: StackId, dst: StackId) -> bool {
        !self.partitions.is_empty() && self.partitions.contains(&(src, dst))
    }

    /// Number of clusters an `n`-node simulation has under this
    /// topology (1 for flat topologies).
    pub fn cluster_count(&self, n: u32) -> u32 {
        match self.cluster_size {
            Some(sz) => n.div_ceil(sz).max(1),
            None => 1,
        }
    }

    /// Nodes per cluster (`None` for flat topologies).
    pub fn cluster_size(&self) -> Option<u32> {
        self.cluster_size
    }

    /// The conservative-parallel-simulation *lookahead*: a lower bound
    /// on the delay of every packet that crosses a cluster boundary,
    /// i.e. the minimum cross-cluster link latency (jitter, transmission
    /// delay and NIC queueing only ever add to it). The parallel engine
    /// ([`crate::par`]) may advance each cluster independently through a
    /// window of this width, because no event inside the window can be
    /// affected by another cluster's events in the same window.
    ///
    /// `None` when the topology has at most one cluster for `n` nodes
    /// (no cross-cluster traffic exists, the window is unbounded).
    /// Per-link overrides are part of the minimum; they must be
    /// installed before the `Sim` is built, which the `Sim` API
    /// enforces (partitions and loss changes do not lower latency).
    pub fn lookahead(&self, n: u32) -> Option<Dur> {
        if self.cluster_count(n) <= 1 {
            return None;
        }
        let base = self.backbone.as_ref().unwrap_or(&self.default).latency;
        let mut la = base;
        for ((src, dst), cfg) in &self.links {
            if self.cluster_of(*src) != self.cluster_of(*dst) {
                la = la.min(cfg.latency);
            }
        }
        Some(la)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_uses_default_everywhere() {
        let t = Topology::flat(NetConfig::lan());
        assert_eq!(t.link(StackId(0), StackId(5)).bandwidth_bps, 100_000_000);
        assert_eq!(t.cluster_of(StackId(9)), 0);
    }

    #[test]
    fn clustered_topology_routes_inter_cluster_over_backbone() {
        let t = Topology::clustered(4, NetConfig::datacenter(), NetConfig::wan());
        // 0..4 cluster 0, 4..8 cluster 1.
        assert_eq!(t.cluster_of(StackId(3)), 0);
        assert_eq!(t.cluster_of(StackId(4)), 1);
        assert_eq!(t.link(StackId(0), StackId(3)).latency, Dur::micros(10));
        assert_eq!(t.link(StackId(0), StackId(4)).latency, Dur::millis(15));
        assert_eq!(t.link(StackId(4), StackId(0)).latency, Dur::millis(15));
    }

    #[test]
    fn link_override_beats_cluster_rule() {
        let mut t = Topology::clustered(2, NetConfig::lan(), NetConfig::wan());
        t.set_link(StackId(0), StackId(3), NetConfig::lossy(0.5));
        assert!(t.link(StackId(0), StackId(3)).loss > 0.4);
        // Only the overridden direction changes.
        assert_eq!(t.link(StackId(3), StackId(0)).loss, NetConfig::wan().loss);
    }

    #[test]
    fn lookahead_is_min_cross_cluster_latency() {
        let flat = Topology::flat(NetConfig::lan());
        assert_eq!(flat.lookahead(8), None, "flat topologies have no cross-cluster links");
        let t = Topology::clustered(4, NetConfig::datacenter(), NetConfig::wan());
        assert_eq!(t.cluster_count(8), 2);
        assert_eq!(t.lookahead(8), Some(Dur::millis(15)), "backbone latency bounds the window");
        assert_eq!(t.lookahead(4), None, "a single populated cluster has no cross traffic");
        // A faster cross-cluster override lowers the bound; an
        // intra-cluster override does not.
        let mut t = Topology::clustered(4, NetConfig::datacenter(), NetConfig::wan());
        t.set_link(
            StackId(0),
            StackId(1),
            NetConfig { latency: Dur::nanos(5), ..NetConfig::lan() },
        );
        assert_eq!(t.lookahead(8), Some(Dur::millis(15)));
        t.set_link(
            StackId(0),
            StackId(5),
            NetConfig { latency: Dur::micros(2), ..NetConfig::lan() },
        );
        assert_eq!(t.lookahead(8), Some(Dur::micros(2)));
    }

    #[test]
    fn cluster_partitions_cut_and_heal() {
        let mut t = Topology::clustered(2, NetConfig::lan(), NetConfig::lan());
        t.partition_clusters(0, 1, 6);
        assert!(t.blocked(StackId(0), StackId(2)));
        assert!(t.blocked(StackId(3), StackId(1)));
        assert!(!t.blocked(StackId(0), StackId(1)));
        assert!(!t.blocked(StackId(2), StackId(3)));
        t.heal_partitions();
        assert!(!t.blocked(StackId(0), StackId(2)));
    }
}
