//! Construction of the paper's Figure-4 group communication stack, and a
//! simulation harness around it.
//!
//! [`build`] assembles one stack:
//!
//! ```text
//!        Probe (application)        GM (optional)
//!                 \                  /
//!                  r-abcast  ◀── switch layer (Repl / Maestro / Graceful)
//!                      │                 (or none: probe sits on abcast)
//!                   abcast   ◀── abcast.ct | abcast.seq | abcast.ring
//!                   /    \
//!            consensus   rp2p
//!               /  \       │
//!             fd   rp2p   udp
//!              \    │      │
//!               udp └──────┤
//!                │         │
//!               net (host boundary)
//! ```
//!
//! [`group_sim`] instantiates `n` such stacks in a deterministic
//! simulation and [`group_runtime`] instantiates them on the sharded
//! live runtime (same stacks, wall clock — the paper's host-agnosticism
//! claim in one call); [`drive_load`] generates the paper's
//! constant-rate workload; [`check_run`] applies the generic DPU
//! properties (§3) and the four atomic broadcast properties (§5.1) to a
//! finished simulation run.

use crate::abcast_repl::{ReplAbcastModule, ReplParams};
use crate::graceful::{GracefulParams, GracefulSwitcher};
use crate::maestro::{MaestroParams, MaestroSwitcher};
use dpu_core::abcast_check::AbcastChecker;
use dpu_core::probe::Probe;
use dpu_core::props;
use dpu_core::time::{Dur, Time};
use dpu_core::{FactoryRegistry, ModuleId, ModuleSpec, ServiceId, Stack, StackConfig, StackId};
use dpu_net::rp2p::Rp2pModule;
use dpu_net::udp::UdpModule;
use dpu_protocols::abcast::ct::CtAbcastModule;
use dpu_protocols::abcast::hier::HierAbcastModule;
use dpu_protocols::abcast::ops as ab_ops;
use dpu_protocols::abcast::ring::RingAbcastModule;
use dpu_protocols::abcast::sequencer::SeqAbcastModule;
use dpu_protocols::consensus::ConsensusModule;
use dpu_protocols::fd::FdModule;
use dpu_protocols::gm::{GmModule, GmParams};
use dpu_reactor::{Reactor, ReactorConfig};
use dpu_runtime::{Runtime, RuntimeConfig};
use dpu_sim::{Sim, SimConfig};

/// Ready-made [`ModuleSpec`]s for the protocols of the workspace, with
/// fresh incarnation namespaces. Used by benchmarks, examples and tests.
pub mod specs {
    use dpu_core::ModuleSpec;
    use dpu_protocols::abcast::ct::{CtAbcastParams, KIND as CT_KIND};
    use dpu_protocols::abcast::hier::{HierAbcastParams, KIND as HIER_KIND};
    use dpu_protocols::abcast::ring::{RingAbcastParams, KIND as RING_KIND};
    use dpu_protocols::abcast::sequencer::{SeqAbcastParams, KIND as SEQ_KIND};
    use dpu_protocols::consensus::{ConsensusParams, KIND_CT, KIND_OFFSET};

    /// Consensus-based atomic broadcast with incarnation `ns`.
    pub fn ct(ns: u64) -> ModuleSpec {
        ModuleSpec::with_params(
            CT_KIND,
            &CtAbcastParams { namespace: ns, ..CtAbcastParams::default() },
        )
    }

    /// Consensus-based atomic broadcast bound to a specific consensus
    /// service — the consensus-replacement experiment's switch target.
    pub fn ct_with_consensus(ns: u64, consensus: &str) -> ModuleSpec {
        ModuleSpec::with_params(
            CT_KIND,
            &CtAbcastParams {
                namespace: ns,
                consensus: consensus.to_string(),
                ..CtAbcastParams::default()
            },
        )
    }

    /// Fixed-sequencer atomic broadcast with incarnation `ns`.
    pub fn seq(ns: u64) -> ModuleSpec {
        seq_in(ns, dpu_protocols::ABCAST_SVC)
    }

    /// Fixed-sequencer atomic broadcast providing a specific service
    /// (Graceful Adaptation targets must provide the inactive slot).
    pub fn seq_in(ns: u64, service: &str) -> ModuleSpec {
        ModuleSpec::with_params(
            SEQ_KIND,
            &SeqAbcastParams { namespace: ns, service: service.to_string() },
        )
    }

    /// Token-ring atomic broadcast with incarnation `ns`.
    pub fn ring(ns: u64) -> ModuleSpec {
        ModuleSpec::with_params(
            RING_KIND,
            &RingAbcastParams { namespace: ns, ..RingAbcastParams::default() },
        )
    }

    /// Token-ring atomic broadcast providing a specific service.
    pub fn ring_in(ns: u64, service: &str) -> ModuleSpec {
        ModuleSpec::with_params(
            RING_KIND,
            &RingAbcastParams {
                namespace: ns,
                service: service.to_string(),
                ..RingAbcastParams::default()
            },
        )
    }

    /// Hierarchical (per-cluster sequencer) atomic broadcast with
    /// incarnation `ns`; cluster membership derives from the host.
    pub fn hier(ns: u64) -> ModuleSpec {
        hier_in(ns, dpu_protocols::ABCAST_SVC)
    }

    /// Hierarchical atomic broadcast providing a specific service.
    pub fn hier_in(ns: u64, service: &str) -> ModuleSpec {
        ModuleSpec::with_params(
            HIER_KIND,
            &HierAbcastParams {
                namespace: ns,
                service: service.to_string(),
                ..HierAbcastParams::default()
            },
        )
    }

    /// Rotating-coordinator (Chandra–Toueg) consensus providing `service`
    /// with wire incarnation `inc`.
    pub fn consensus_ct(service: &str, inc: u64) -> ModuleSpec {
        ModuleSpec::with_params(
            KIND_CT,
            &ConsensusParams { service: service.to_string(), incarnation: inc },
        )
    }

    /// Instance-offset consensus providing `service` with wire
    /// incarnation `inc`.
    pub fn consensus_offset(service: &str, inc: u64) -> ModuleSpec {
        ModuleSpec::with_params(
            KIND_OFFSET,
            &ConsensusParams { service: service.to_string(), incarnation: inc },
        )
    }
}

/// A factory registry with every module kind of the workspace registered.
pub fn registry() -> FactoryRegistry {
    let mut reg = FactoryRegistry::new();
    UdpModule::register(&mut reg);
    dpu_net::frag::FragModule::register(&mut reg);
    Rp2pModule::register(&mut reg);
    FdModule::register(&mut reg);
    ConsensusModule::register(&mut reg);
    CtAbcastModule::register(&mut reg);
    SeqAbcastModule::register(&mut reg);
    RingAbcastModule::register(&mut reg);
    HierAbcastModule::register(&mut reg);
    ReplAbcastModule::register(&mut reg);
    MaestroSwitcher::register(&mut reg);
    GracefulSwitcher::register(&mut reg);
    GmModule::register(&mut reg);
    dpu_protocols::rb::RbModule::register(&mut reg);
    dpu_protocols::omega::OmegaModule::register(&mut reg);
    reg
}

/// Which dynamic-update layer (if any) to interpose between the
/// application and atomic broadcast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchLayer {
    /// No layer: the probe calls `abcast` directly (the paper's "normal,
    /// without replacement layer" configuration).
    None,
    /// The paper's replacement module (Algorithm 1).
    Repl,
    /// Maestro-style whole-stack switcher baseline.
    Maestro,
    /// Graceful-Adaptation-style AAC switcher baseline.
    Graceful,
}

/// Options for [`build`].
#[derive(Clone, Debug)]
pub struct GroupStackOpts {
    /// Spec of the initial atomic broadcast module.
    pub abcast: ModuleSpec,
    /// Which switch layer to interpose.
    pub layer: SwitchLayer,
    /// Attach a measurement probe with this much payload padding.
    pub probe_pad: Option<usize>,
    /// Attach a group membership module on top of the (possibly wrapped)
    /// broadcast service.
    pub with_gm: bool,
    /// Extra `(service, spec)` default providers, e.g. a second consensus
    /// service for the consensus-replacement experiment.
    pub extra_defaults: Vec<(String, ModuleSpec)>,
}

impl Default for GroupStackOpts {
    fn default() -> Self {
        GroupStackOpts {
            abcast: ModuleSpec::new(dpu_protocols::abcast::ct::KIND),
            layer: SwitchLayer::Repl,
            probe_pad: Some(0),
            with_gm: false,
            extra_defaults: Vec::new(),
        }
    }
}

/// Module handles of a built stack. Construction is deterministic, so the
/// handles are identical on every stack of a group.
#[derive(Clone, Debug)]
pub struct Handles {
    /// The service the application talks to (`r-abcast` with a layer,
    /// `abcast` without).
    pub top_service: ServiceId,
    /// The probe module, if requested.
    pub probe: Option<ModuleId>,
    /// The switch layer module, if any.
    pub layer: Option<ModuleId>,
    /// The group membership module, if requested.
    pub gm: Option<ModuleId>,
    /// The initial atomic broadcast module.
    pub abcast: ModuleId,
}

/// A stack built by [`build`].
pub struct BuiltStack {
    /// The assembled stack.
    pub stack: Stack,
    /// Module handles.
    pub handles: Handles,
}

/// Assemble one group communication stack per `opts`.
pub fn build(sc: StackConfig, opts: &GroupStackOpts) -> BuiltStack {
    let mut stack = Stack::new(sc, registry());
    stack.set_default_provider(ServiceId::new(dpu_net::UDP_SVC), ModuleSpec::new("udp"));
    stack.set_default_provider(ServiceId::new(dpu_net::RP2P_SVC), ModuleSpec::new("rp2p"));
    stack.set_default_provider(ServiceId::new(dpu_protocols::FD_SVC), ModuleSpec::new("fd"));
    stack.set_default_provider(
        ServiceId::new(dpu_protocols::CONSENSUS_SVC),
        ModuleSpec::new(dpu_protocols::consensus::KIND_CT),
    );
    for (svc, spec) in &opts.extra_defaults {
        stack.set_default_provider(ServiceId::new(svc), spec.clone());
    }

    let abcast_svc = ServiceId::new(dpu_protocols::ABCAST_SVC);
    let abcast = stack.install(&opts.abcast).expect("install abcast");

    let (layer, top_service) = match opts.layer {
        SwitchLayer::None => (None, abcast_svc.clone()),
        SwitchLayer::Repl => {
            let m = stack.add_module(Box::new(ReplAbcastModule::new(ReplParams::default())));
            stack.bind(&abcast_svc.replaced(), m);
            (Some(m), abcast_svc.replaced())
        }
        SwitchLayer::Maestro => {
            let m = stack.add_module(Box::new(MaestroSwitcher::new(MaestroParams::default())));
            stack.bind(&abcast_svc.replaced(), m);
            (Some(m), abcast_svc.replaced())
        }
        SwitchLayer::Graceful => {
            let m = stack.add_module(Box::new(GracefulSwitcher::new(GracefulParams::default())));
            stack.bind(&abcast_svc.replaced(), m);
            (Some(m), abcast_svc.replaced())
        }
    };

    let probe = opts.probe_pad.map(|pad| {
        stack.add_module(Box::new(Probe::new(
            top_service.clone(),
            ab_ops::ABCAST,
            ab_ops::ADELIVER,
            pad,
        )))
    });

    let gm = if opts.with_gm {
        let m = stack.add_module(Box::new(GmModule::new(GmParams {
            service: dpu_protocols::GM_SVC.to_string(),
            abcast: top_service.name().to_string(),
            auto_exclude: false,
        })));
        stack.bind(&ServiceId::new(dpu_protocols::GM_SVC), m);
        Some(m)
    } else {
        None
    };

    BuiltStack { stack, handles: Handles { top_service, probe, layer, gm, abcast } }
}

/// Instantiate `n` identical stacks (per `opts`) in a deterministic
/// simulation. Returns the module handles, which are identical on every
/// stack (construction order is fixed).
pub fn group_sim(sim_cfg: SimConfig, opts: &GroupStackOpts) -> (Sim, Handles) {
    let mut handles: Option<Handles> = None;
    let sim = Sim::new(sim_cfg, |sc| {
        let built = build(sc, opts);
        if handles.is_none() {
            handles = Some(built.handles.clone());
        }
        built.stack
    });
    (sim, handles.expect("at least one stack"))
}

/// Instantiate `cfg.n` identical stacks (per `opts`) on the sharded
/// live runtime — the counterpart of [`group_sim`] for wall-clock hosts.
/// The returned [`Handles`] are identical on every stack (construction
/// is deterministic).
pub fn group_runtime(cfg: RuntimeConfig, opts: &GroupStackOpts) -> (Runtime, Handles) {
    let mut handles: Option<Handles> = None;
    let rt = Runtime::spawn(cfg, |sc| {
        let built = build(sc, opts);
        if handles.is_none() {
            handles = Some(built.handles.clone());
        }
        built.stack
    });
    (rt, handles.expect("at least one stack"))
}

/// Send one probe message from `node` on the live runtime (stamps the
/// current wall-clock time). Counterpart of [`send_probe`].
pub fn send_probe_live(rt: &Runtime, node: StackId, h: &Handles) {
    let Some(probe) = h.probe else { return };
    let top = h.top_service.clone();
    let now = rt.now();
    rt.with_stack(node, move |s| {
        let payload =
            s.with_module::<Probe, _>(probe, |p| p.next_payload(node, now)).expect("probe present");
        s.call_as(probe, &top, ab_ops::ABCAST, payload);
    });
}

/// Request a protocol change from `node` on the live runtime (the
/// paper's `changeABcast(prot)`). Counterpart of [`request_change`].
pub fn request_change_live(rt: &Runtime, node: StackId, h: &Handles, new_spec: &ModuleSpec) {
    let Some(probe) = h.probe else { return };
    let top = h.top_service.clone();
    let data = dpu_core::wire::to_bytes(new_spec);
    rt.with_stack(node, move |s| s.call_as(probe, &top, crate::CHANGE_OP, data));
}

/// Instantiate the locally-hosted slice of an `cfg.n`-stack group (per
/// `opts`) on the epoll-backed real-socket host. The counterpart of
/// [`group_runtime`] when the group spans OS processes: each process
/// hosts `cfg.local` and exchanges frames over loopback UDP. The
/// returned [`Handles`] are identical on every stack.
pub fn group_reactor(
    cfg: ReactorConfig,
    opts: &GroupStackOpts,
) -> std::io::Result<(Reactor, Handles)> {
    let mut handles: Option<Handles> = None;
    let r = Reactor::spawn(cfg, |sc| {
        let built = build(sc, opts);
        if handles.is_none() {
            handles = Some(built.handles.clone());
        }
        built.stack
    })?;
    Ok((r, handles.expect("at least one local stack")))
}

/// Send one probe message from `node` on the real-socket host (stamps
/// the current wall-clock time). Counterpart of [`send_probe_live`].
pub fn send_probe_reactor(r: &Reactor, node: StackId, h: &Handles) {
    let Some(probe) = h.probe else { return };
    let top = h.top_service.clone();
    let now = r.now();
    r.with_stack(node, move |s| {
        let payload =
            s.with_module::<Probe, _>(probe, |p| p.next_payload(node, now)).expect("probe present");
        s.call_as(probe, &top, ab_ops::ABCAST, payload);
    });
}

/// Request a protocol change from `node` on the real-socket host (the
/// paper's `changeABcast(prot)`). Counterpart of [`request_change_live`].
pub fn request_change_reactor(r: &Reactor, node: StackId, h: &Handles, new_spec: &ModuleSpec) {
    let Some(probe) = h.probe else { return };
    let top = h.top_service.clone();
    let data = dpu_core::wire::to_bytes(new_spec);
    r.with_stack(node, move |s| s.call_as(probe, &top, crate::CHANGE_OP, data));
}

/// Send one probe message from `node` (stamps the current virtual time).
pub fn send_probe(sim: &mut Sim, node: StackId, h: &Handles) {
    let Some(probe) = h.probe else { return };
    let top = h.top_service.clone();
    let now = sim.now();
    sim.with_stack(node, |s| {
        let payload =
            s.with_module::<Probe, _>(probe, |p| p.next_payload(node, now)).expect("probe present");
        s.call_as(probe, &top, ab_ops::ABCAST, payload);
    });
}

/// Request a protocol change from `node` (the paper's
/// `changeABcast(prot)`): delivered to the switch layer on the top
/// service.
pub fn request_change(sim: &mut Sim, node: StackId, h: &Handles, new_spec: &ModuleSpec) {
    let Some(probe) = h.probe else { return };
    let top = h.top_service.clone();
    let data = dpu_core::wire::to_bytes(new_spec);
    sim.with_stack(node, |s| s.call_as(probe, &top, crate::CHANGE_OP, data));
}

/// An [`dpu_sim::workload::InjectFn`] that broadcasts one probe message
/// (the workload subsystem's bridge to the Figure-4 stack).
pub fn probe_inject(h: &Handles) -> dpu_sim::workload::InjectFn {
    let h = h.clone();
    Box::new(move |sim, node| send_probe(sim, node, &h))
}

/// A [`dpu_sim::workload::CompletedFn`] reporting how many of a node's
/// own probe messages it has delivered back — the closed-loop feedback
/// signal. Counts incrementally (only records appended since the last
/// poll), so a long run stays O(deliveries), not O(polls × deliveries);
/// a shrunken record list (the stack was replaced by a churn restart)
/// resets the count, which is what lets the closed loop reconcile.
pub fn probe_completed(h: &Handles) -> dpu_sim::workload::CompletedFn {
    let probe = h.probe.expect("closed-loop workload requires a probe");
    let mut seen: std::collections::HashMap<StackId, (usize, u64)> =
        std::collections::HashMap::new();
    Box::new(move |sim, node| {
        let (idx, count) = seen.get(&node).copied().unwrap_or((0, 0));
        let (new_idx, new_count) = sim.with_stack(node, |s| {
            s.with_module::<Probe, _>(probe, |p| {
                let recs = p.delivered();
                let own = |r: &&dpu_core::probe::DeliveryRecord| r.msg.0 == node;
                if recs.len() < idx {
                    // Fresh stack after a restart: recount from zero.
                    (recs.len(), recs.iter().filter(own).count() as u64)
                } else {
                    (recs.len(), count + recs[idx..].iter().filter(own).count() as u64)
                }
            })
            .expect("probe present")
        });
        seen.insert(node, (new_idx, new_count));
        new_count
    })
}

/// Open-loop Poisson probe load at `rate_per_sec` aggregate
/// messages/second across all stacks, until `until`. Returns the
/// workload's index into [`dpu_sim::SimStats::workloads`].
pub fn drive_poisson(sim: &mut Sim, h: &Handles, rate_per_sec: f64, until: Time) -> usize {
    let nodes = sim.stack_ids();
    dpu_sim::workload::install(
        sim,
        "poisson",
        nodes,
        until,
        dpu_sim::workload::Generator::Poisson { rate: rate_per_sec, inject: probe_inject(h) },
    )
}

/// Bursty (inhomogeneous Poisson) probe load: `base`/`burst` aggregate
/// rates alternating each `period` with the given burst `duty` fraction.
pub fn drive_bursty(
    sim: &mut Sim,
    h: &Handles,
    base: f64,
    burst: f64,
    period: Dur,
    duty: f64,
    until: Time,
) -> usize {
    let nodes = sim.stack_ids();
    dpu_sim::workload::install(
        sim,
        "bursty",
        nodes,
        until,
        dpu_sim::workload::Generator::Bursty { base, burst, period, duty, inject: probe_inject(h) },
    )
}

/// Closed-loop probe load: each stack keeps up to `window` probes
/// outstanding, polling every `poll`.
pub fn drive_closed_loop(sim: &mut Sim, h: &Handles, window: u64, poll: Dur, until: Time) -> usize {
    let nodes = sim.stack_ids();
    dpu_sim::workload::install(
        sim,
        "closed-loop",
        nodes,
        until,
        dpu_sim::workload::Generator::ClosedLoop {
            window,
            poll,
            inject: probe_inject(h),
            completed: probe_completed(h),
        },
    )
}

/// Generate a constant aggregate load of `rate_per_sec` messages/second,
/// spread round-robin over all stacks, from `sim.now()` until `until`.
pub fn drive_load(sim: &mut Sim, h: &Handles, rate_per_sec: f64, until: Time) {
    let n = sim.n();
    let interval = Dur::secs_f64(n as f64 / rate_per_sec);
    for node in 0..n {
        let offset = Dur::nanos(interval.as_nanos() * u64::from(node) / u64::from(n));
        let h = h.clone();
        sim.schedule_in(offset, move |sim| load_tick(sim, StackId(node), h, interval, until));
    }
}

fn load_tick(sim: &mut Sim, node: StackId, h: Handles, interval: Dur, until: Time) {
    if sim.now() > until || sim.stack(node).is_crashed() {
        return;
    }
    send_probe(sim, node, &h);
    sim.schedule_in(interval, move |sim| load_tick(sim, node, h, interval, until));
}

/// Outcome of [`check_run`].
pub struct RunReport {
    /// The atomic broadcast property checker, already populated.
    pub checker: AbcastChecker,
    /// Stack-well-formedness assessment.
    pub wellformed: props::Assessment,
}

impl RunReport {
    /// Panic if any checked property is violated.
    pub fn assert_ok(&self) {
        self.checker.assert_ok();
        assert!(
            self.wellformed.weak,
            "weak stack-well-formedness violated: {:?}",
            self.wellformed.violations
        );
    }
}

/// Collect probe records and traces from a finished run and check the
/// paper's correctness properties.
pub fn check_run(sim: &mut Sim, h: &Handles) -> RunReport {
    let ids = sim.stack_ids();
    let mut checker = AbcastChecker::new(ids.iter().copied());
    let Some(probe) = h.probe else {
        panic!("check_run requires a probe");
    };
    for &id in &ids {
        if sim.stack(id).is_crashed() {
            // A crashed stack is exempt from liveness obligations, but
            // its broadcasts and pre-crash deliveries still count for
            // the uniform properties.
            checker.record_crash(id);
        }
        let (sent, delivered) = sim.with_stack(id, |s| {
            s.with_module::<Probe, _>(probe, |p| (p.sent().to_vec(), p.delivered().to_vec()))
                .expect("probe present")
        });
        for (msg, t) in sent {
            checker.record_broadcast(msg, id, t);
        }
        for rec in delivered {
            checker.record_delivery(rec.msg, id, rec.delivered_at);
        }
    }
    let trace = sim.merged_trace();
    let wellformed = props::check_stack_well_formedness(&trace);
    RunReport { checker, wellformed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abcast_repl::ReplAbcastModule;
    use crate::graceful::GracefulSwitcher;
    use crate::maestro::MaestroSwitcher;
    use dpu_protocols::abcast::ct::{CtAbcastParams, KIND as CT_KIND};
    use dpu_protocols::abcast::ring::{RingAbcastParams, KIND as RING_KIND};
    use dpu_protocols::abcast::sequencer::{SeqAbcastParams, KIND as SEQ_KIND};

    fn ct_spec(namespace: u64) -> ModuleSpec {
        ModuleSpec::with_params(CT_KIND, &CtAbcastParams { namespace, ..CtAbcastParams::default() })
    }

    fn seq_spec(namespace: u64, service: &str) -> ModuleSpec {
        ModuleSpec::with_params(
            SEQ_KIND,
            &SeqAbcastParams { namespace, service: service.to_string() },
        )
    }

    fn ring_spec(namespace: u64) -> ModuleSpec {
        ModuleSpec::with_params(
            RING_KIND,
            &RingAbcastParams { namespace, ..RingAbcastParams::default() },
        )
    }

    fn run_with_switch(
        layer: SwitchLayer,
        initial: ModuleSpec,
        new_spec: ModuleSpec,
        n: u32,
        seed: u64,
    ) -> (Sim, Handles) {
        run_with_switch_on(SimConfig::lan(n, seed), layer, initial, new_spec)
    }

    fn run_with_switch_on(
        cfg: SimConfig,
        layer: SwitchLayer,
        initial: ModuleSpec,
        new_spec: ModuleSpec,
    ) -> (Sim, Handles) {
        let n = cfg.n;
        let opts = GroupStackOpts { abcast: initial, layer, ..Default::default() };
        let (mut sim, h) = group_sim(cfg, &opts);
        sim.run_until(Time::ZERO + Dur::millis(200));
        // Phase 1: messages before the switch.
        for i in 0..n {
            send_probe(&mut sim, StackId(i), &h);
        }
        sim.run_until(Time::ZERO + Dur::secs(2));
        // The switch, from stack 1 (any stack may initiate).
        request_change(&mut sim, StackId(1 % n), &h, &new_spec);
        // Phase 2: messages racing the switch.
        for i in 0..n {
            send_probe(&mut sim, StackId(i), &h);
        }
        sim.run_until(Time::ZERO + Dur::secs(6));
        // Phase 3: messages after the switch.
        for i in 0..n {
            send_probe(&mut sim, StackId(i), &h);
        }
        sim.run_until(Time::ZERO + Dur::secs(12));
        let report = check_run(&mut sim, &h);
        report.assert_ok();
        // Everything sent must have been delivered everywhere.
        for id in sim.stack_ids() {
            assert_eq!(
                report.checker.delivery_count(id),
                3 * n as usize,
                "stack {id} missed deliveries"
            );
        }
        (sim, h)
    }

    #[test]
    fn repl_replaces_ct_by_ct_like_the_paper() {
        // §6.2: "we replace the Chandra-Toueg ABcast protocol by the same
        // protocol, while performing all steps of the replacement
        // algorithm".
        let (mut sim, h) = run_with_switch(SwitchLayer::Repl, ct_spec(0), ct_spec(1), 3, 42);
        let layer = h.layer.unwrap();
        for id in sim.stack_ids() {
            let (sn, switches, undeliv) = sim.with_stack(id, |s| {
                s.with_module::<ReplAbcastModule, _>(layer, |m| {
                    (m.seq_number(), m.switches_applied(), m.undelivered_len())
                })
                .unwrap()
            });
            assert_eq!(sn, 1, "{id} must have bumped seqNumber");
            assert_eq!(switches, 1);
            assert_eq!(undeliv, 0, "{id} must have no stuck messages");
        }
    }

    #[test]
    fn repl_switches_ct_to_sequencer() {
        run_with_switch(
            SwitchLayer::Repl,
            ct_spec(0),
            seq_spec(1, dpu_protocols::ABCAST_SVC),
            3,
            7,
        );
    }

    #[test]
    fn repl_switches_sequencer_to_ring() {
        run_with_switch(
            SwitchLayer::Repl,
            seq_spec(0, dpu_protocols::ABCAST_SVC),
            ring_spec(1),
            3,
            9,
        );
    }

    #[test]
    fn repl_switch_with_seven_stacks() {
        run_with_switch(SwitchLayer::Repl, ct_spec(0), ct_spec(1), 7, 11);
    }

    #[test]
    fn repl_switches_sequencer_to_hier_on_flat_host() {
        // Flat LAN: hier degenerates to a single cluster and must still
        // interchange cleanly with the flat sequencer.
        run_with_switch(
            SwitchLayer::Repl,
            seq_spec(0, dpu_protocols::ABCAST_SVC),
            specs::hier(1),
            3,
            15,
        );
    }

    #[test]
    fn repl_switches_hier_to_ct_on_clustered_topology() {
        use dpu_sim::NetConfig;
        let cfg = SimConfig::clustered(6, 17, 3, NetConfig::datacenter(), NetConfig::lan());
        run_with_switch_on(cfg, SwitchLayer::Repl, specs::hier(0), ct_spec(1));
    }

    #[test]
    fn repl_switches_ct_to_hier_on_clustered_topology() {
        use dpu_sim::NetConfig;
        let cfg = SimConfig::clustered(6, 19, 3, NetConfig::datacenter(), NetConfig::lan());
        run_with_switch_on(cfg, SwitchLayer::Repl, ct_spec(0), specs::hier(1));
    }

    #[test]
    fn graceful_switch_to_hier_via_alternate_slot() {
        run_with_switch(SwitchLayer::Graceful, ct_spec(0), specs::hier_in(1, "abcast.alt"), 3, 23);
    }

    #[test]
    fn maestro_switch_blocks_the_application() {
        let (mut sim, h) = run_with_switch(SwitchLayer::Maestro, ct_spec(0), ct_spec(1), 3, 5);
        let layer = h.layer.unwrap();
        for id in sim.stack_ids() {
            let (switches, blocked) = sim.with_stack(id, |s| {
                s.with_module::<MaestroSwitcher, _>(layer, |m| (m.switches(), m.total_blocked()))
                    .unwrap()
            });
            assert_eq!(switches, 1, "{id}");
            assert!(
                blocked > Dur::ZERO,
                "{id}: Maestro must have blocked the application, got {blocked}"
            );
        }
    }

    #[test]
    fn graceful_switch_via_alternate_slot() {
        // GA's restriction: the new AAC must provide the pre-declared
        // alternative slot.
        let (mut sim, h) =
            run_with_switch(SwitchLayer::Graceful, ct_spec(0), seq_spec(1, "abcast.alt"), 3, 13);
        let layer = h.layer.unwrap();
        for id in sim.stack_ids() {
            let (switches, blocked, msgs) = sim.with_stack(id, |s| {
                s.with_module::<GracefulSwitcher, _>(layer, |m| {
                    (m.switches(), m.total_blocked(), m.coord_msgs())
                })
                .unwrap()
            });
            assert_eq!(switches, 1, "{id}");
            // Three barrier phases cost coordination messages on every
            // stack (replies) and extra on the coordinator.
            assert!(msgs >= 2, "{id} sent only {msgs} coordination messages");
            let _ = blocked; // blocked window may be tiny but exists
        }
    }

    #[test]
    fn graceful_slots_alternate_across_two_switches() {
        // GA's pre-declared AAC slots: the first switch targets
        // "abcast.alt", the second must target "abcast" again.
        use crate::graceful::GracefulSwitcher;
        let opts = GroupStackOpts { layer: SwitchLayer::Graceful, ..Default::default() };
        let (mut sim, h) = group_sim(SimConfig::lan(3, 53), &opts);
        sim.run_until(Time::ZERO + Dur::millis(300));
        send_probe(&mut sim, StackId(0), &h);
        sim.run_until(Time::ZERO + Dur::secs(2));
        // Switch 1: into the alternate slot.
        request_change(&mut sim, StackId(0), &h, &seq_spec(1, "abcast.alt"));
        sim.run_until(Time::ZERO + Dur::secs(5));
        let layer = h.layer.unwrap();
        let inactive = sim.with_stack(StackId(0), |s| {
            s.with_module::<GracefulSwitcher, _>(layer, |m| m.inactive_slot().clone()).unwrap()
        });
        assert_eq!(inactive, ServiceId::new(dpu_protocols::ABCAST_SVC));
        send_probe(&mut sim, StackId(1), &h);
        sim.run_until(Time::ZERO + Dur::secs(7));
        // Switch 2: back into the original slot.
        request_change(&mut sim, StackId(1), &h, &ct_spec(2));
        sim.run_until(Time::ZERO + Dur::secs(11));
        send_probe(&mut sim, StackId(2), &h);
        sim.run_until(Time::ZERO + Dur::secs(16));
        for id in sim.stack_ids() {
            let switches = sim.with_stack(id, |s| {
                s.with_module::<GracefulSwitcher, _>(layer, |m| m.switches()).unwrap()
            });
            assert_eq!(switches, 2, "{id}");
        }
        let report = check_run(&mut sim, &h);
        report.assert_ok();
        for id in sim.stack_ids() {
            assert_eq!(report.checker.delivery_count(id), 3, "{id}");
        }
    }

    #[test]
    fn group_runtime_spawns_same_handles_as_group_sim() {
        let opts = GroupStackOpts::default();
        let (rt, h_rt) = group_runtime(dpu_runtime::RuntimeConfig::new(3).with_shards(2), &opts);
        let (_, h_sim) = group_sim(SimConfig::lan(3, 1), &opts);
        assert_eq!(h_rt.top_service, h_sim.top_service);
        assert_eq!(h_rt.probe, h_sim.probe);
        assert_eq!(h_rt.layer, h_sim.layer);
        assert_eq!(h_rt.abcast, h_sim.abcast);
        let stacks = rt.shutdown();
        assert_eq!(stacks.len(), 3);
    }

    #[test]
    fn no_layer_configuration_works_without_switching() {
        let opts = GroupStackOpts { layer: SwitchLayer::None, ..Default::default() };
        let (mut sim, h) = group_sim(SimConfig::lan(3, 3), &opts);
        assert_eq!(h.top_service, ServiceId::new("abcast"));
        sim.run_until(Time::ZERO + Dur::millis(200));
        for i in 0..3 {
            send_probe(&mut sim, StackId(i), &h);
        }
        sim.run_until(Time::ZERO + Dur::secs(5));
        check_run(&mut sim, &h).assert_ok();
    }

    #[test]
    fn drive_load_generates_the_requested_rate() {
        let opts = GroupStackOpts::default();
        let (mut sim, h) = group_sim(SimConfig::lan(3, 17), &opts);
        sim.run_until(Time::ZERO + Dur::millis(100));
        let until = sim.now() + Dur::secs(2);
        drive_load(&mut sim, &h, 90.0, until);
        sim.run_until(until + Dur::secs(4));
        let report = check_run(&mut sim, &h);
        report.assert_ok();
        let total = report.checker.broadcast_count();
        // 90 msg/s for 2 s ≈ 180 messages (±1 per stack for edge ticks).
        assert!((174..=186).contains(&total), "sent {total} messages");
    }

    #[test]
    fn drive_closed_loop_keeps_the_window_full() {
        let opts = GroupStackOpts::default();
        let (mut sim, h) = group_sim(SimConfig::lan(3, 19), &opts);
        sim.run_until(Time::ZERO + Dur::millis(100));
        let until = sim.now() + Dur::secs(3);
        drive_closed_loop(&mut sim, &h, 1, Dur::millis(100), until);
        sim.run_until(until + Dur::secs(4));
        let report = check_run(&mut sim, &h);
        report.assert_ok();
        let total = report.checker.broadcast_count();
        // Window 1, poll 100 ms, delivery latency ≪ poll: each node
        // injects roughly once per poll over the 3 s window (~30 each).
        assert!((60..=93).contains(&total), "closed loop injected {total}");
        assert_eq!(sim.stats().workloads[0].injected as usize, total);
    }

    #[test]
    fn switch_under_load_loses_nothing() {
        let opts = GroupStackOpts::default();
        let (mut sim, h) = group_sim(SimConfig::lan(3, 23), &opts);
        sim.run_until(Time::ZERO + Dur::millis(100));
        let until = sim.now() + Dur::secs(4);
        drive_load(&mut sim, &h, 60.0, until);
        let h2 = h.clone();
        sim.schedule_in(Dur::secs(2), move |sim| {
            request_change(sim, StackId(0), &h2, &ct_spec(1));
        });
        sim.run_until(until + Dur::secs(8));
        let report = check_run(&mut sim, &h);
        report.assert_ok();
        let sent = report.checker.broadcast_count();
        for id in sim.stack_ids() {
            assert_eq!(report.checker.delivery_count(id), sent, "stack {id}");
        }
    }

    #[test]
    fn gm_keeps_working_across_a_switch() {
        use dpu_protocols::gm::{ops as gm_ops, GmModule, GmOp, View};
        let opts = GroupStackOpts { with_gm: true, ..Default::default() };
        let (mut sim, h) = group_sim(SimConfig::lan(3, 31), &opts);
        let gm = h.gm.unwrap();
        sim.run_until(Time::ZERO + Dur::millis(200));
        // Request a view change, then switch protocols, then another view
        // change; GM must install both views identically everywhere.
        sim.with_stack(StackId(0), |s| {
            s.call_as(
                gm,
                &ServiceId::new(dpu_protocols::GM_SVC),
                gm_ops::REQUEST,
                dpu_core::wire::to_bytes(&GmOp::Leave(StackId(2))),
            )
        });
        sim.run_until(Time::ZERO + Dur::secs(3));
        request_change(&mut sim, StackId(0), &h, &ct_spec(1));
        sim.run_until(Time::ZERO + Dur::secs(6));
        sim.with_stack(StackId(1), |s| {
            s.call_as(
                gm,
                &ServiceId::new(dpu_protocols::GM_SVC),
                gm_ops::REQUEST,
                dpu_core::wire::to_bytes(&GmOp::Join(StackId(2))),
            )
        });
        sim.run_until(Time::ZERO + Dur::secs(12));
        let views: Vec<View> = sim
            .stack_ids()
            .into_iter()
            .map(|id| {
                sim.with_stack(id, |s| {
                    s.with_module::<GmModule, _>(gm, |m| m.view().clone()).unwrap()
                })
            })
            .collect();
        assert_eq!(views[0].id, 2, "two view changes must have been applied");
        assert_eq!(views[0].members, vec![StackId(0), StackId(1), StackId(2)]);
        assert_eq!(views[1], views[0]);
        assert_eq!(views[2], views[0]);
    }

    #[test]
    fn concurrent_change_requests_resolve_to_one_switch() {
        // Two stacks request a change at the same instant. Both requests
        // ride the old protocol's total order: the first one ordered
        // wins; the second arrives with a stale sn and is discarded
        // identically on every stack (the line-10 guard).
        let opts = GroupStackOpts::default();
        let (mut sim, h) = group_sim(SimConfig::lan(3, 41), &opts);
        sim.run_until(Time::ZERO + Dur::millis(300));
        request_change(&mut sim, StackId(0), &h, &ct_spec(1));
        request_change(&mut sim, StackId(2), &h, &seq_spec(2, dpu_protocols::ABCAST_SVC));
        for i in 0..3 {
            send_probe(&mut sim, StackId(i), &h);
        }
        sim.run_until(Time::ZERO + Dur::secs(8));
        let layer = h.layer.unwrap();
        let mut kinds = Vec::new();
        for id in sim.stack_ids() {
            let sn = sim.with_stack(id, |s| {
                s.with_module::<ReplAbcastModule, _>(layer, |m| m.seq_number()).unwrap()
            });
            assert_eq!(sn, 1, "{id}: exactly one of the two requests applies");
            let bound = sim.stack(id).bound(&ServiceId::new(dpu_protocols::ABCAST_SVC));
            let kind = sim.stack(id).module_kind(bound.expect("abcast bound")).unwrap().to_string();
            kinds.push(kind);
        }
        // All stacks agree on *which* request won.
        assert!(kinds.iter().all(|k| k == &kinds[0]), "winner differs: {kinds:?}");
        check_run(&mut sim, &h).assert_ok();
    }

    #[test]
    fn switch_request_from_every_stack_in_sequence() {
        // n consecutive switches, initiated round-robin, targets cycling
        // through all three protocols; everything stays consistent.
        let opts = GroupStackOpts::default();
        let (mut sim, h) = group_sim(SimConfig::lan(3, 43), &opts);
        sim.run_until(Time::ZERO + Dur::millis(300));
        let specs_seq: Vec<ModuleSpec> =
            vec![seq_spec(1, dpu_protocols::ABCAST_SVC), ring_spec(2), ct_spec(3)];
        for (k, spec) in specs_seq.iter().enumerate() {
            request_change(&mut sim, StackId(k as u32), &h, spec);
            send_probe(&mut sim, StackId(k as u32), &h);
            let t = sim.now() + Dur::secs(3);
            sim.run_until(t);
        }
        sim.run_until(sim.now() + Dur::secs(6));
        let layer = h.layer.unwrap();
        for id in sim.stack_ids() {
            let sn = sim.with_stack(id, |s| {
                s.with_module::<ReplAbcastModule, _>(layer, |m| m.seq_number()).unwrap()
            });
            assert_eq!(sn, 3, "{id}");
            let bound = sim.stack(id).bound(&ServiceId::new(dpu_protocols::ABCAST_SVC));
            assert_eq!(
                sim.stack(id).module_kind(bound.unwrap()),
                Some("abcast.ct"),
                "{id} ends on the final target"
            );
        }
        check_run(&mut sim, &h).assert_ok();
    }

    #[test]
    fn old_modules_remain_in_stack_after_unbind() {
        // Paper §2: "Unbinding a module does not remove it from the
        // stack". After a switch the old abcast module must still exist
        // (and may respond), just unbound.
        let opts = GroupStackOpts::default();
        let (mut sim, h) = group_sim(SimConfig::lan(3, 47), &opts);
        sim.run_until(Time::ZERO + Dur::millis(300));
        let old_bound =
            sim.stack(StackId(0)).bound(&ServiceId::new(dpu_protocols::ABCAST_SVC)).unwrap();
        request_change(&mut sim, StackId(0), &h, &ct_spec(1));
        sim.run_until(Time::ZERO + Dur::secs(4));
        let stack = sim.stack(StackId(0));
        let new_bound = stack.bound(&ServiceId::new(dpu_protocols::ABCAST_SVC)).unwrap();
        assert_ne!(old_bound, new_bound, "a fresh module is bound");
        assert!(
            stack.module_kind(old_bound).is_some(),
            "the old module remains in the stack (unbound)"
        );
    }

    #[test]
    fn double_switch_back_and_forth() {
        let opts = GroupStackOpts::default();
        let (mut sim, h) = group_sim(SimConfig::lan(3, 37), &opts);
        sim.run_until(Time::ZERO + Dur::millis(100));
        send_probe(&mut sim, StackId(0), &h);
        sim.run_until(Time::ZERO + Dur::secs(2));
        request_change(&mut sim, StackId(0), &h, &seq_spec(1, dpu_protocols::ABCAST_SVC));
        sim.run_until(Time::ZERO + Dur::secs(5));
        send_probe(&mut sim, StackId(1), &h);
        sim.run_until(Time::ZERO + Dur::secs(7));
        request_change(&mut sim, StackId(2), &h, &ct_spec(2));
        sim.run_until(Time::ZERO + Dur::secs(10));
        send_probe(&mut sim, StackId(2), &h);
        sim.run_until(Time::ZERO + Dur::secs(16));
        let report = check_run(&mut sim, &h);
        report.assert_ok();
        let layer = h.layer.unwrap();
        let sn = sim.with_stack(StackId(0), |s| {
            s.with_module::<ReplAbcastModule, _>(layer, |m| m.seq_number()).unwrap()
        });
        assert_eq!(sn, 2, "two switches applied");
        for id in sim.stack_ids() {
            assert_eq!(report.checker.delivery_count(id), 3, "stack {id}");
        }
    }
}
