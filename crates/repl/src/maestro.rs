//! Maestro-style baseline switcher (paper §4.2, after van Renesse et
//! al.'s Ensemble/Maestro).
//!
//! Maestro supports only the replacement of *complete protocol stacks*: a
//! stack switch (SS) module finalizes the local old stack and coordinates
//! the start of the new one. The defining cost, which the paper's §5.3
//! highlights, is that **the application is blocked** from the moment the
//! switch starts until the new stack is globally ready.
//!
//! The protocol implemented here:
//!
//! 1. the initiator broadcasts `Flush` (point-to-point, channel
//!    [`dpu_protocols::channels::MAESTRO`]);
//! 2. on `Flush`, every stack **blocks** its application (new `rABcast`
//!    calls are queued), and finalizes the old protocol by atomically
//!    broadcasting a *marker*; once it has Adelivered markers from all
//!    stacks, the old protocol has drained (per-sender FIFO holds through
//!    each of our atomic broadcasts), so it destroys the old module,
//!    creates the new one, and reports `Ready` to the initiator;
//! 3. the initiator collects `Ready` from everyone and broadcasts
//!    `Resume`; only then do the stacks unblock and send their queued
//!    messages through the new protocol.
//!
//! Differences from the paper's own solution (measured by `dpu-bench`'s
//! `comparison`): the application blocks for a full global
//! flush+rebuild+barrier round-trip, the switcher needs `finalize`-style
//! cooperation (the marker) from the protocol's send path, and a crashed
//! stack stalls the barrier (real Maestro leans on group membership for
//! that — another dependency the paper's solution avoids).

use crate::CHANGE_OP;
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::time::{Dur, Time};
use dpu_core::wire::{Decode, Encode, WireError, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};
use dpu_net::dgram::{self, Dgram, DgramRef};
use dpu_protocols::abcast::ops as ab_ops;
use dpu_protocols::channels;
use std::collections::{BTreeSet, VecDeque};

/// Module kind name, for factory registration.
pub const KIND: &str = "maestro";

/// Factory parameters of the Maestro-style switcher.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaestroParams {
    /// The updateable service (default [`dpu_protocols::ABCAST_SVC`]).
    /// The switcher provides `r-<service>` and requires `<service>`.
    pub service: String,
}

impl Default for MaestroParams {
    fn default() -> Self {
        MaestroParams { service: dpu_protocols::ABCAST_SVC.to_string() }
    }
}

impl Encode for MaestroParams {
    fn encode(&self, buf: &mut BytesMut) {
        self.service.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.service.encoded_len()
    }
}

impl Decode for MaestroParams {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(MaestroParams { service: String::decode(buf)? })
    }
}

/// Payload envelope through the underlying atomic broadcast.
enum Envelope {
    /// tag 0: an application message.
    Data { data: Bytes },
    /// tag 1: a flush marker: "stack `from` has stopped sending in epoch
    /// `epoch`".
    Marker { epoch: u64, from: StackId },
}

impl Encode for Envelope {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Envelope::Data { data } => {
                0u32.encode(buf);
                data.encode(buf);
            }
            Envelope::Marker { epoch, from } => {
                1u32.encode(buf);
                epoch.encode(buf);
                from.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            Envelope::Data { data } => 0u32.encoded_len() + data.encoded_len(),
            Envelope::Marker { epoch, from } => {
                1u32.encoded_len() + epoch.encoded_len() + from.encoded_len()
            }
        }
    }
}

impl Decode for Envelope {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        match u32::decode(buf)? {
            0 => Ok(Envelope::Data { data: Bytes::decode(buf)? }),
            1 => Ok(Envelope::Marker { epoch: u64::decode(buf)?, from: StackId::decode(buf)? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Point-to-point coordination messages (channel `MAESTRO`).
enum Coord {
    /// tag 0: start the switch (sent by the initiator to everyone).
    Flush { epoch: u64, spec: ModuleSpec, coord: StackId },
    /// tag 1: this stack rebuilt its protocol (sent to the initiator).
    Ready { epoch: u64, from: StackId },
    /// tag 2: everyone is ready — unblock (initiator to everyone).
    Resume { epoch: u64 },
}

impl Encode for Coord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Coord::Flush { epoch, spec, coord } => {
                0u32.encode(buf);
                epoch.encode(buf);
                spec.encode(buf);
                coord.encode(buf);
            }
            Coord::Ready { epoch, from } => {
                1u32.encode(buf);
                epoch.encode(buf);
                from.encode(buf);
            }
            Coord::Resume { epoch } => {
                2u32.encode(buf);
                epoch.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            Coord::Flush { epoch, spec, coord } => {
                0u32.encoded_len() + epoch.encoded_len() + spec.encoded_len() + coord.encoded_len()
            }
            Coord::Ready { epoch, from } => {
                1u32.encoded_len() + epoch.encoded_len() + from.encoded_len()
            }
            Coord::Resume { epoch } => 2u32.encoded_len() + epoch.encoded_len(),
        }
    }
}

impl Decode for Coord {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        match u32::decode(buf)? {
            0 => Ok(Coord::Flush {
                epoch: u64::decode(buf)?,
                spec: ModuleSpec::decode(buf)?,
                coord: StackId::decode(buf)?,
            }),
            1 => Ok(Coord::Ready { epoch: u64::decode(buf)?, from: StackId::decode(buf)? }),
            2 => Ok(Coord::Resume { epoch: u64::decode(buf)? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Blocked; waiting for markers from all stacks, then for `Resume`.
    Flushing,
    /// Old destroyed, new built, `Ready` sent; waiting for `Resume`.
    WaitResume,
}

/// The Maestro-style stack switch module. See module docs.
pub struct MaestroSwitcher {
    provided: ServiceId,
    required: ServiceId,
    rp2p_svc: ServiceId,
    epoch: u64,
    phase: Phase,
    pending_spec: Option<ModuleSpec>,
    coordinator: Option<StackId>,
    markers_seen: BTreeSet<StackId>,
    /// Markers that arrived (through the totally ordered broadcast)
    /// before this stack's `Flush` coordination message (which travels
    /// point-to-point and may lose the race).
    future_markers: BTreeSet<(u64, StackId)>,
    ready_seen: BTreeSet<StackId>,
    queued: VecDeque<Bytes>,
    // ---- instrumentation ----
    blocked_since: Option<Time>,
    total_blocked: Dur,
    switch_started: Option<Time>,
    last_switch_duration: Option<Dur>,
    switches: u64,
    coord_msgs: u64,
    delivered_count: u64,
}

impl MaestroSwitcher {
    /// Build with explicit parameters.
    pub fn new(params: MaestroParams) -> MaestroSwitcher {
        let required = ServiceId::new(&params.service);
        MaestroSwitcher {
            provided: required.replaced(),
            required,
            rp2p_svc: ServiceId::new(dpu_net::RP2P_SVC),
            epoch: 0,
            phase: Phase::Idle,
            pending_spec: None,
            coordinator: None,
            markers_seen: BTreeSet::new(),
            future_markers: BTreeSet::new(),
            ready_seen: BTreeSet::new(),
            queued: VecDeque::new(),
            blocked_since: None,
            total_blocked: Dur::ZERO,
            switch_started: None,
            last_switch_duration: None,
            switches: 0,
            coord_msgs: 0,
            delivered_count: 0,
        }
    }

    /// Register this module's factory under [`KIND`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let params = if spec.params.is_empty() {
                MaestroParams::default()
            } else {
                spec.params::<MaestroParams>().unwrap_or_default()
            };
            Box::new(MaestroSwitcher::new(params))
        });
    }

    /// Completed switches.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Total virtual time the application spent blocked.
    pub fn total_blocked(&self) -> Dur {
        self.total_blocked
    }

    /// Duration of the last completed switch (flush start → resume).
    pub fn last_switch_duration(&self) -> Option<Dur> {
        self.last_switch_duration
    }

    /// Point-to-point coordination messages sent by this stack.
    pub fn coord_msgs(&self) -> u64 {
        self.coord_msgs
    }

    /// Whether the application is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.phase != Phase::Idle
    }

    /// Messages rAdelivered to the users above.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    fn send_coord(&mut self, ctx: &mut ModuleCtx<'_>, to: StackId, msg: &Coord) {
        self.coord_msgs += 1;
        let d = DgramRef { peer: to, channel: channels::MAESTRO, body: msg };
        let payload = ctx.encode(&d);
        ctx.call(&self.rp2p_svc, dgram::SEND, payload);
    }

    fn abcast(&self, ctx: &mut ModuleCtx<'_>, env: &Envelope) {
        let payload = ctx.encode(env);
        ctx.call(&self.required, ab_ops::ABCAST, payload);
    }

    fn start_flush(
        &mut self,
        ctx: &mut ModuleCtx<'_>,
        epoch: u64,
        spec: ModuleSpec,
        coord: StackId,
    ) {
        if self.phase != Phase::Idle || epoch <= self.epoch {
            return;
        }
        self.epoch = epoch;
        self.phase = Phase::Flushing;
        let now_ns = ctx.now().as_nanos();
        ctx.telemetry().switch_requested(now_ns);
        self.pending_spec = Some(spec);
        self.coordinator = Some(coord);
        self.markers_seen.clear();
        self.ready_seen.clear();
        // Collect any markers that raced ahead of the Flush message.
        let buffered: Vec<StackId> =
            self.future_markers.iter().filter(|(e, _)| *e == epoch).map(|&(_, s)| s).collect();
        self.future_markers.retain(|(e, _)| *e > epoch);
        self.markers_seen.extend(buffered);
        self.blocked_since = Some(ctx.now());
        // Finalize the old protocol: stop sending, emit our marker.
        self.abcast(ctx, &Envelope::Marker { epoch, from: ctx.stack_id() });
        self.maybe_rebuild(ctx);
    }

    fn maybe_rebuild(&mut self, ctx: &mut ModuleCtx<'_>) {
        if self.phase != Phase::Flushing {
            return;
        }
        let all: BTreeSet<StackId> = ctx.peers().iter().copied().collect();
        if self.markers_seen != all {
            return;
        }
        // Old protocol drained: whole-module teardown + rebuild.
        let now_ns = ctx.now().as_nanos();
        ctx.telemetry().switch_flushed(now_ns);
        let spec = self.pending_spec.take().expect("spec set at flush");
        if let Some(old) = ctx.bound(&self.required) {
            ctx.destroy_module(old);
        }
        if let Err(e) = ctx.create_module(&spec) {
            panic!("maestro rebuild failed on {}: {e}", ctx.stack_id());
        }
        let now_ns = ctx.now().as_nanos();
        ctx.telemetry().switch_activated(now_ns);
        self.phase = Phase::WaitResume;
        let coord = self.coordinator.expect("coordinator set at flush");
        let epoch = self.epoch;
        let me = ctx.stack_id();
        self.send_coord(ctx, coord, &Coord::Ready { epoch, from: me });
    }

    fn resume(&mut self, ctx: &mut ModuleCtx<'_>) {
        if self.phase != Phase::WaitResume {
            return;
        }
        self.phase = Phase::Idle;
        self.coordinator = None;
        if let Some(since) = self.blocked_since.take() {
            let blocked = ctx.now().since(since);
            self.total_blocked += blocked;
        }
        if let Some(start) = self.switch_started.take() {
            self.last_switch_duration = Some(ctx.now().since(start));
        }
        self.switches += 1;
        // Release the queued application messages through the new
        // protocol.
        while let Some(data) = self.queued.pop_front() {
            self.abcast(ctx, &Envelope::Data { data });
        }
    }
}

impl Module for MaestroSwitcher {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.provided.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.required.clone(), self.rp2p_svc.clone()]
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        match call.op {
            ab_ops::ABCAST => {
                if self.phase == Phase::Idle {
                    self.abcast(ctx, &Envelope::Data { data: call.data });
                } else {
                    // The Maestro cost: the application blocks during the
                    // whole switch.
                    self.queued.push_back(call.data);
                }
            }
            CHANGE_OP => {
                if self.phase != Phase::Idle {
                    return; // one switch at a time
                }
                let Ok(spec) = call.decode::<ModuleSpec>() else { return };
                let epoch = self.epoch + 1;
                let me = ctx.stack_id();
                self.switch_started = Some(ctx.now());
                let now_ns = ctx.now().as_nanos();
                ctx.telemetry().switch_requested(now_ns);
                for peer in ctx.peers().to_vec() {
                    self.send_coord(
                        ctx,
                        peer,
                        &Coord::Flush { epoch, spec: spec.clone(), coord: me },
                    );
                }
            }
            _ => {}
        }
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.service == self.required && resp.op == ab_ops::ADELIVER {
            let Ok(env) = resp.decode::<Envelope>() else { return };
            match env {
                Envelope::Data { data } => {
                    self.delivered_count += 1;
                    // First post-switch delivery closes the blackout
                    // window even without a timestamping consumer.
                    let now_ns = ctx.now().as_nanos();
                    ctx.telemetry().note_switch_delivery(now_ns);
                    ctx.respond(&self.provided, ab_ops::ADELIVER, data);
                }
                Envelope::Marker { epoch, from } => {
                    if epoch == self.epoch && self.phase == Phase::Flushing {
                        self.markers_seen.insert(from);
                        self.maybe_rebuild(ctx);
                    } else if epoch > self.epoch {
                        self.future_markers.insert((epoch, from));
                    }
                }
            }
            return;
        }
        if resp.service == self.rp2p_svc && resp.op == dgram::RECV {
            let Ok(d) = resp.decode::<Dgram>() else { return };
            if d.channel != channels::MAESTRO {
                return;
            }
            let Ok(msg) = dpu_core::wire::from_bytes::<Coord>(&d.data) else { return };
            match msg {
                Coord::Flush { epoch, spec, coord } => self.start_flush(ctx, epoch, spec, coord),
                Coord::Ready { epoch, from } => {
                    // Only the coordinator collects Ready.
                    if epoch != self.epoch || self.coordinator != Some(ctx.stack_id()) {
                        return;
                    }
                    self.ready_seen.insert(from);
                    let all: BTreeSet<StackId> = ctx.peers().iter().copied().collect();
                    if self.ready_seen == all {
                        for peer in ctx.peers().to_vec() {
                            self.send_coord(ctx, peer, &Coord::Resume { epoch });
                        }
                    }
                }
                Coord::Resume { epoch } => {
                    if epoch == self.epoch {
                        self.resume(ctx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::wire;

    #[test]
    fn maestro_types_wire_contract() {
        use dpu_core::wire::testing::assert_wire_contract;
        assert_wire_contract(&MaestroParams::default());
        assert_wire_contract(&Envelope::Data { data: Bytes::from_static(b"m") });
        assert_wire_contract(&Envelope::Marker { epoch: 3, from: StackId(1) });
        assert_wire_contract(&Coord::Flush {
            epoch: 1,
            spec: ModuleSpec::new("abcast.seq"),
            coord: StackId(0),
        });
        assert_wire_contract(&Coord::Ready { epoch: 1, from: StackId(2) });
        assert_wire_contract(&Coord::Resume { epoch: 1 });
    }

    #[test]
    fn params_and_naming() {
        let p = MaestroParams::default();
        let b = wire::to_bytes(&p);
        assert_eq!(wire::from_bytes::<MaestroParams>(&b).unwrap(), p);
        let m = MaestroSwitcher::new(p);
        assert_eq!(m.provides(), vec![ServiceId::new("r-abcast")]);
        assert!(m.requires().contains(&ServiceId::new("abcast")));
        assert!(!m.is_blocked());
    }

    #[test]
    fn envelope_and_coord_roundtrip() {
        let e = Envelope::Marker { epoch: 3, from: StackId(2) };
        let b = wire::to_bytes(&e);
        match wire::from_bytes::<Envelope>(&b).unwrap() {
            Envelope::Marker { epoch, from } => assert_eq!((epoch, from), (3, StackId(2))),
            _ => panic!("wrong variant"),
        }
        let c = Coord::Flush { epoch: 1, spec: ModuleSpec::new("abcast.ct"), coord: StackId(0) };
        let b = wire::to_bytes(&c);
        match wire::from_bytes::<Coord>(&b).unwrap() {
            Coord::Flush { epoch, spec, coord } => {
                assert_eq!(epoch, 1);
                assert_eq!(spec.kind, "abcast.ct");
                assert_eq!(coord, StackId(0));
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn factory_registration() {
        let mut reg = dpu_core::FactoryRegistry::new();
        MaestroSwitcher::register(&mut reg);
        assert!(reg.contains(KIND));
    }

    // End-to-end switch behaviour is exercised in builder::tests and the
    // workspace integration tests.
}
