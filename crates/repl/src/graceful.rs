//! Graceful-Adaptation-style baseline switcher (paper §4.2, after
//! Chen, Hiltunen & Schlichting, *Constructing adaptive software in
//! distributed systems*).
//!
//! Graceful Adaptation switches between pre-declared *Adaptation-Aware
//! Components* (AACs) inside a component, coordinated by a Component
//! Adaptor (CA) through three **barrier-synchronised** phases:
//!
//! 1. **prepare** — every stack instantiates the new AAC (traffic still
//!    flows through the old one); barrier;
//! 2. **deactivate** — every stack stops sending through the old AAC and
//!    drains it (marker flush, run in parallel with the message flow as
//!    the paper notes); barrier;
//! 3. **activate** — every stack atomically redirects to the new AAC and
//!    releases the (briefly) queued sends; done.
//!
//! The GA restriction the paper criticises is modelled faithfully: the
//! alternative components must be *pre-declared* — this switcher requires
//! exactly two service slots ([`GracefulParams::service`] and
//! [`GracefulParams::alt`]) fixed at construction, and each switch target
//! must provide whichever slot is currently inactive. A replacement whose
//! protocol needs services outside the declared slots is impossible,
//! whereas Algorithm 1's recursive `create_module` handles it.
//!
//! Compared to Maestro the application-blocked window is much shorter
//! (only deactivate→activate, and the new component is pre-built), but
//! the three barriers cost coordination messages and wall-clock time —
//! both measured by `dpu-bench`'s `comparison`.

use crate::CHANGE_OP;
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::time::{Dur, Time};
use dpu_core::wire::{Decode, Encode, WireError, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};
use dpu_net::dgram::{self, Dgram, DgramRef};
use dpu_protocols::abcast::ops as ab_ops;
use dpu_protocols::channels;
use std::collections::{BTreeSet, VecDeque};

/// Module kind name, for factory registration.
pub const KIND: &str = "graceful";

/// Factory parameters of the Graceful-Adaptation-style switcher.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GracefulParams {
    /// First AAC slot: the service name of the initially active protocol
    /// (default [`dpu_protocols::ABCAST_SVC`]).
    pub service: String,
    /// Second AAC slot: the service name the *next* protocol must provide
    /// (default `abcast.alt`). Slots alternate on every switch.
    pub alt: String,
}

impl Default for GracefulParams {
    fn default() -> Self {
        GracefulParams {
            service: dpu_protocols::ABCAST_SVC.to_string(),
            alt: format!("{}.alt", dpu_protocols::ABCAST_SVC),
        }
    }
}

impl Encode for GracefulParams {
    fn encode(&self, buf: &mut BytesMut) {
        self.service.encode(buf);
        self.alt.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.service.encoded_len() + self.alt.encoded_len()
    }
}

impl Decode for GracefulParams {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(GracefulParams { service: String::decode(buf)?, alt: String::decode(buf)? })
    }
}

/// Payload envelope through the underlying atomic broadcast.
enum Envelope {
    Data { data: Bytes },
    Marker { epoch: u64, from: StackId },
}

impl Encode for Envelope {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Envelope::Data { data } => {
                0u32.encode(buf);
                data.encode(buf);
            }
            Envelope::Marker { epoch, from } => {
                1u32.encode(buf);
                epoch.encode(buf);
                from.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            Envelope::Data { data } => 0u32.encoded_len() + data.encoded_len(),
            Envelope::Marker { epoch, from } => {
                1u32.encoded_len() + epoch.encoded_len() + from.encoded_len()
            }
        }
    }
}

impl Decode for Envelope {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        match u32::decode(buf)? {
            0 => Ok(Envelope::Data { data: Bytes::decode(buf)? }),
            1 => Ok(Envelope::Marker { epoch: u64::decode(buf)?, from: StackId::decode(buf)? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Coordination messages of the CA protocol (channel `GRACEFUL`).
enum Coord {
    Prepare { epoch: u64, spec: ModuleSpec, coord: StackId },
    Prepared { epoch: u64, from: StackId },
    Deactivate { epoch: u64 },
    Deactivated { epoch: u64, from: StackId },
    Activate { epoch: u64 },
}

impl Encode for Coord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Coord::Prepare { epoch, spec, coord } => {
                0u32.encode(buf);
                epoch.encode(buf);
                spec.encode(buf);
                coord.encode(buf);
            }
            Coord::Prepared { epoch, from } => {
                1u32.encode(buf);
                epoch.encode(buf);
                from.encode(buf);
            }
            Coord::Deactivate { epoch } => {
                2u32.encode(buf);
                epoch.encode(buf);
            }
            Coord::Deactivated { epoch, from } => {
                3u32.encode(buf);
                epoch.encode(buf);
                from.encode(buf);
            }
            Coord::Activate { epoch } => {
                4u32.encode(buf);
                epoch.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            Coord::Prepare { epoch, spec, coord } => {
                0u32.encoded_len() + epoch.encoded_len() + spec.encoded_len() + coord.encoded_len()
            }
            Coord::Prepared { epoch, from } => {
                1u32.encoded_len() + epoch.encoded_len() + from.encoded_len()
            }
            Coord::Deactivate { epoch } => 2u32.encoded_len() + epoch.encoded_len(),
            Coord::Deactivated { epoch, from } => {
                3u32.encoded_len() + epoch.encoded_len() + from.encoded_len()
            }
            Coord::Activate { epoch } => 4u32.encoded_len() + epoch.encoded_len(),
        }
    }
}

impl Decode for Coord {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(match u32::decode(buf)? {
            0 => Coord::Prepare {
                epoch: u64::decode(buf)?,
                spec: ModuleSpec::decode(buf)?,
                coord: StackId::decode(buf)?,
            },
            1 => Coord::Prepared { epoch: u64::decode(buf)?, from: StackId::decode(buf)? },
            2 => Coord::Deactivate { epoch: u64::decode(buf)? },
            3 => Coord::Deactivated { epoch: u64::decode(buf)?, from: StackId::decode(buf)? },
            4 => Coord::Activate { epoch: u64::decode(buf)? },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    /// New AAC created; waiting for the CA's `Deactivate`.
    Prepared,
    /// Blocked; draining the old AAC with markers.
    Deactivating,
    /// Drained; waiting for the CA's `Activate`.
    WaitActivate,
}

/// The Graceful-Adaptation-style switcher. See module docs.
pub struct GracefulSwitcher {
    slot_a: ServiceId,
    slot_b: ServiceId,
    active: ServiceId,
    rp2p_svc: ServiceId,
    provided: ServiceId,
    epoch: u64,
    phase: Phase,
    coordinator: Option<StackId>,
    markers_seen: BTreeSet<StackId>,
    future_markers: BTreeSet<(u64, StackId)>,
    prepared_seen: BTreeSet<StackId>,
    deactivated_seen: BTreeSet<StackId>,
    queued: VecDeque<Bytes>,
    // ---- instrumentation ----
    blocked_since: Option<Time>,
    total_blocked: Dur,
    switch_started: Option<Time>,
    last_switch_duration: Option<Dur>,
    switches: u64,
    coord_msgs: u64,
    delivered_count: u64,
}

impl GracefulSwitcher {
    /// Build with explicit parameters.
    pub fn new(params: GracefulParams) -> GracefulSwitcher {
        let slot_a = ServiceId::new(&params.service);
        let slot_b = ServiceId::new(&params.alt);
        GracefulSwitcher {
            provided: slot_a.replaced(),
            active: slot_a.clone(),
            slot_a,
            slot_b,
            rp2p_svc: ServiceId::new(dpu_net::RP2P_SVC),
            epoch: 0,
            phase: Phase::Idle,
            coordinator: None,
            markers_seen: BTreeSet::new(),
            future_markers: BTreeSet::new(),
            prepared_seen: BTreeSet::new(),
            deactivated_seen: BTreeSet::new(),
            queued: VecDeque::new(),
            blocked_since: None,
            total_blocked: Dur::ZERO,
            switch_started: None,
            last_switch_duration: None,
            switches: 0,
            coord_msgs: 0,
            delivered_count: 0,
        }
    }

    /// Register this module's factory under [`KIND`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let params = if spec.params.is_empty() {
                GracefulParams::default()
            } else {
                spec.params::<GracefulParams>().unwrap_or_default()
            };
            Box::new(GracefulSwitcher::new(params))
        });
    }

    /// Completed switches.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Total virtual time the application spent blocked
    /// (deactivate → activate windows only).
    pub fn total_blocked(&self) -> Dur {
        self.total_blocked
    }

    /// Duration of the last completed switch (prepare → activate).
    pub fn last_switch_duration(&self) -> Option<Dur> {
        self.last_switch_duration
    }

    /// Point-to-point coordination messages sent by this stack.
    pub fn coord_msgs(&self) -> u64 {
        self.coord_msgs
    }

    /// The service slot the next protocol must provide.
    pub fn inactive_slot(&self) -> &ServiceId {
        if self.active == self.slot_a {
            &self.slot_b
        } else {
            &self.slot_a
        }
    }

    /// Messages rAdelivered to the users above.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    fn send_coord(&mut self, ctx: &mut ModuleCtx<'_>, to: StackId, msg: &Coord) {
        self.coord_msgs += 1;
        let d = DgramRef { peer: to, channel: channels::GRACEFUL, body: msg };
        let payload = ctx.encode(&d);
        ctx.call(&self.rp2p_svc, dgram::SEND, payload);
    }

    fn broadcast_coord(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Coord) {
        for peer in ctx.peers().to_vec() {
            self.send_coord(ctx, peer, msg);
        }
    }

    fn maybe_deactivated(&mut self, ctx: &mut ModuleCtx<'_>) {
        if self.phase != Phase::Deactivating {
            return;
        }
        let all: BTreeSet<StackId> = ctx.peers().iter().copied().collect();
        if self.markers_seen != all {
            return;
        }
        self.phase = Phase::WaitActivate;
        let coord = self.coordinator.expect("coordinator set");
        let epoch = self.epoch;
        let me = ctx.stack_id();
        self.send_coord(ctx, coord, &Coord::Deactivated { epoch, from: me });
    }

    fn activate(&mut self, ctx: &mut ModuleCtx<'_>) {
        if self.phase != Phase::WaitActivate {
            return;
        }
        // Deactivate the old AAC (unbind marks it inactive; the module
        // object remains, per the composition model) and flip the slot.
        ctx.unbind(&self.active.clone());
        self.active = self.inactive_slot().clone();
        self.phase = Phase::Idle;
        self.coordinator = None;
        if let Some(since) = self.blocked_since.take() {
            self.total_blocked += ctx.now().since(since);
        }
        if let Some(start) = self.switch_started.take() {
            self.last_switch_duration = Some(ctx.now().since(start));
        }
        self.switches += 1;
        while let Some(data) = self.queued.pop_front() {
            let active = self.active.clone();
            let payload = ctx.encode(&Envelope::Data { data });
            ctx.call(&active, ab_ops::ABCAST, payload);
        }
    }
}

impl Module for GracefulSwitcher {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.provided.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        // The GA restriction: both AAC slots are declared up front.
        vec![self.slot_a.clone(), self.slot_b.clone(), self.rp2p_svc.clone()]
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        match call.op {
            ab_ops::ABCAST => {
                if self.phase == Phase::Deactivating || self.phase == Phase::WaitActivate {
                    // Brief blocking window between deactivate & activate.
                    self.queued.push_back(call.data);
                } else {
                    let active = self.active.clone();
                    let payload = ctx.encode(&Envelope::Data { data: call.data });
                    ctx.call(&active, ab_ops::ABCAST, payload);
                }
            }
            CHANGE_OP => {
                if self.phase != Phase::Idle {
                    return;
                }
                let Ok(spec) = call.decode::<ModuleSpec>() else { return };
                let epoch = self.epoch + 1;
                let me = ctx.stack_id();
                self.switch_started = Some(ctx.now());
                let msg = Coord::Prepare { epoch, spec, coord: me };
                self.broadcast_coord(ctx, &msg);
            }
            _ => {}
        }
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if (resp.service == self.slot_a || resp.service == self.slot_b)
            && resp.op == ab_ops::ADELIVER
        {
            let Ok(env) = resp.decode::<Envelope>() else { return };
            match env {
                Envelope::Data { data } => {
                    self.delivered_count += 1;
                    ctx.respond(&self.provided, ab_ops::ADELIVER, data);
                }
                Envelope::Marker { epoch, from } => {
                    if epoch == self.epoch && self.phase == Phase::Deactivating {
                        self.markers_seen.insert(from);
                        self.maybe_deactivated(ctx);
                    } else if epoch > self.epoch {
                        self.future_markers.insert((epoch, from));
                    }
                }
            }
            return;
        }
        if resp.service == self.rp2p_svc && resp.op == dgram::RECV {
            let Ok(d) = resp.decode::<Dgram>() else { return };
            if d.channel != channels::GRACEFUL {
                return;
            }
            let Ok(msg) = dpu_core::wire::from_bytes::<Coord>(&d.data) else { return };
            let me = ctx.stack_id();
            let all: BTreeSet<StackId> = ctx.peers().iter().copied().collect();
            match msg {
                Coord::Prepare { epoch, spec, coord } => {
                    if self.phase != Phase::Idle || epoch <= self.epoch {
                        return;
                    }
                    self.epoch = epoch;
                    self.coordinator = Some(coord);
                    self.markers_seen.clear();
                    self.prepared_seen.clear();
                    self.deactivated_seen.clear();
                    // Phase 1: instantiate the new AAC; traffic still
                    // flows through the old one.
                    if let Err(e) = ctx.create_module(&spec) {
                        panic!("graceful prepare failed on {me}: {e}");
                    }
                    self.phase = Phase::Prepared;
                    self.send_coord(ctx, coord, &Coord::Prepared { epoch, from: me });
                }
                Coord::Prepared { epoch, from } => {
                    if epoch != self.epoch || self.coordinator != Some(me) {
                        return;
                    }
                    self.prepared_seen.insert(from);
                    if self.prepared_seen == all {
                        self.broadcast_coord(ctx, &Coord::Deactivate { epoch });
                    }
                }
                Coord::Deactivate { epoch } => {
                    if epoch != self.epoch || self.phase != Phase::Prepared {
                        return;
                    }
                    // Phase 2: stop sending through the old AAC, drain it.
                    self.phase = Phase::Deactivating;
                    self.blocked_since = Some(ctx.now());
                    let buffered: Vec<StackId> = self
                        .future_markers
                        .iter()
                        .filter(|(e, _)| *e == epoch)
                        .map(|&(_, s)| s)
                        .collect();
                    self.future_markers.retain(|(e, _)| *e > epoch);
                    self.markers_seen.extend(buffered);
                    let active = self.active.clone();
                    let payload = ctx.encode(&Envelope::Marker { epoch, from: me });
                    ctx.call(&active, ab_ops::ABCAST, payload);
                    self.maybe_deactivated(ctx);
                }
                Coord::Deactivated { epoch, from } => {
                    if epoch != self.epoch || self.coordinator != Some(me) {
                        return;
                    }
                    self.deactivated_seen.insert(from);
                    if self.deactivated_seen == all {
                        self.broadcast_coord(ctx, &Coord::Activate { epoch });
                    }
                }
                Coord::Activate { epoch } => {
                    if epoch == self.epoch {
                        self.activate(ctx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::wire;

    #[test]
    fn graceful_types_wire_contract() {
        use dpu_core::wire::testing::assert_wire_contract;
        assert_wire_contract(&GracefulParams::default());
        assert_wire_contract(&Envelope::Data { data: Bytes::from_static(b"m") });
        assert_wire_contract(&Envelope::Marker { epoch: 3, from: StackId(1) });
        assert_wire_contract(&Coord::Prepare {
            epoch: 1,
            spec: ModuleSpec::new("abcast.ring"),
            coord: StackId(0),
        });
        assert_wire_contract(&Coord::Prepared { epoch: 1, from: StackId(2) });
        assert_wire_contract(&Coord::Deactivate { epoch: 2 });
        assert_wire_contract(&Coord::Deactivated { epoch: 2, from: StackId(1) });
        assert_wire_contract(&Coord::Activate { epoch: 2 });
    }

    #[test]
    fn params_and_slots() {
        let p = GracefulParams::default();
        let b = wire::to_bytes(&p);
        assert_eq!(wire::from_bytes::<GracefulParams>(&b).unwrap(), p);
        let g = GracefulSwitcher::new(p);
        assert_eq!(g.provides(), vec![ServiceId::new("r-abcast")]);
        assert_eq!(g.inactive_slot(), &ServiceId::new("abcast.alt"));
        assert!(g.requires().contains(&ServiceId::new("abcast")));
        assert!(g.requires().contains(&ServiceId::new("abcast.alt")));
    }

    #[test]
    fn coord_roundtrips() {
        let msgs = [
            Coord::Prepare { epoch: 1, spec: ModuleSpec::new("abcast.seq"), coord: StackId(2) },
            Coord::Prepared { epoch: 1, from: StackId(0) },
            Coord::Deactivate { epoch: 1 },
            Coord::Deactivated { epoch: 1, from: StackId(1) },
            Coord::Activate { epoch: 1 },
        ];
        for m in msgs {
            let b = wire::to_bytes(&m);
            assert!(wire::from_bytes::<Coord>(&b).is_ok());
        }
    }

    #[test]
    fn factory_registration() {
        let mut reg = dpu_core::FactoryRegistry::new();
        GracefulSwitcher::register(&mut reg);
        assert!(reg.contains(KIND));
    }
}
