//! Ablation variants of Algorithm 1: deliberately *broken* replacement
//! modules, each missing exactly one ingredient of the paper's
//! algorithm. They exist to show — mechanically, via the property
//! checkers — that every line is load-bearing:
//!
//! * [`NoReissueRepl`] skips lines 15–16 (re-issuing `undelivered` under
//!   the new protocol). Messages that were in flight when the switch was
//!   ordered are silently dropped → **validity** (and agreement)
//!   violations under load.
//! * [`NoGuardRepl`] skips the `sn = seqNumber` check of line 18.
//!   Late deliveries from the old, unbound protocol are handed to the
//!   application alongside the re-issued copies → **uniform integrity**
//!   (duplicate delivery) violations.
//!
//! Both are bit-for-bit Algorithm 1 otherwise (compare
//! [`crate::abcast_repl::ReplAbcastModule`]). The negative tests live in
//! this module; the positive counterpart — the full algorithm passing the
//! same adversarial schedules — is everywhere else in the test suite.

use crate::CHANGE_OP;
use bytes::Bytes;
use dpu_core::stack::ModuleCtx;
use dpu_core::wire::{Decode, Encode, WireError, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};
use dpu_protocols::abcast::ops as ab_ops;
use std::collections::BTreeMap;

/// Module kind of the no-reissue ablation.
pub const KIND_NO_REISSUE: &str = "repl.abcast.no-reissue";
/// Module kind of the no-version-guard ablation.
pub const KIND_NO_GUARD: &str = "repl.abcast.no-guard";

/// Which ingredient to omit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Omit {
    /// Skip lines 15–16 (no re-issue of undelivered messages).
    Reissue,
    /// Skip the line-18 version check (deliver any `nil` message).
    VersionGuard,
}

// The payload mirrors ReplPayload in abcast_repl; duplicated here on
// purpose so the ablations stay self-contained and the real module stays
// free of test-only branches. The wire format is identical.
enum Payload {
    Nil { sn: u64, id: (StackId, u64), data: Bytes },
    NewAbcast { sn: u64, spec: ModuleSpec },
}

impl Encode for Payload {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        match self {
            Payload::Nil { sn, id, data } => {
                0u32.encode(buf);
                sn.encode(buf);
                id.0.encode(buf);
                id.1.encode(buf);
                data.encode(buf);
            }
            Payload::NewAbcast { sn, spec } => {
                1u32.encode(buf);
                sn.encode(buf);
                spec.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            Payload::Nil { sn, id, data } => {
                0u32.encoded_len()
                    + sn.encoded_len()
                    + id.0.encoded_len()
                    + id.1.encoded_len()
                    + data.encoded_len()
            }
            Payload::NewAbcast { sn, spec } => {
                1u32.encoded_len() + sn.encoded_len() + spec.encoded_len()
            }
        }
    }
}

impl Decode for Payload {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        match u32::decode(buf)? {
            0 => Ok(Payload::Nil {
                sn: u64::decode(buf)?,
                id: (StackId::decode(buf)?, u64::decode(buf)?),
                data: Bytes::decode(buf)?,
            }),
            1 => Ok(Payload::NewAbcast { sn: u64::decode(buf)?, spec: ModuleSpec::decode(buf)? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// A replacement module with one ingredient of Algorithm 1 omitted.
pub struct BrokenRepl {
    omit: Omit,
    provided: ServiceId,
    required: ServiceId,
    seq_number: u64,
    undelivered: BTreeMap<(StackId, u64), Bytes>,
    next_id: u64,
}

/// Type alias documenting intent at use sites.
pub type NoReissueRepl = BrokenRepl;
/// Type alias documenting intent at use sites.
pub type NoGuardRepl = BrokenRepl;

impl BrokenRepl {
    /// Build an ablation over the `abcast` service.
    pub fn new(omit: Omit) -> BrokenRepl {
        let required = ServiceId::new(dpu_protocols::ABCAST_SVC);
        BrokenRepl {
            omit,
            provided: required.replaced(),
            required,
            seq_number: 0,
            undelivered: BTreeMap::new(),
            next_id: 0,
        }
    }

    fn abcast(&self, ctx: &mut ModuleCtx<'_>, payload: &Payload) {
        let data = ctx.encode(payload);
        ctx.call(&self.required, ab_ops::ABCAST, data);
    }
}

impl Module for BrokenRepl {
    fn kind(&self) -> &str {
        match self.omit {
            Omit::Reissue => KIND_NO_REISSUE,
            Omit::VersionGuard => KIND_NO_GUARD,
        }
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.provided.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.required.clone()]
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        match call.op {
            ab_ops::ABCAST => {
                let id = (ctx.stack_id(), self.next_id);
                self.next_id += 1;
                self.undelivered.insert(id, call.data.clone());
                self.abcast(ctx, &Payload::Nil { sn: self.seq_number, id, data: call.data });
            }
            CHANGE_OP => {
                if let Ok(spec) = call.decode::<ModuleSpec>() {
                    self.abcast(ctx, &Payload::NewAbcast { sn: self.seq_number, spec });
                }
            }
            _ => {}
        }
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.service != self.required || resp.op != ab_ops::ADELIVER {
            return;
        }
        let Ok(payload) = resp.decode::<Payload>() else { return };
        match payload {
            Payload::NewAbcast { sn, spec } => {
                if sn != self.seq_number {
                    return;
                }
                self.seq_number += 1;
                ctx.unbind(&self.required);
                ctx.create_module(&spec).expect("ablation switch");
                match self.omit {
                    Omit::Reissue => {
                        // BROKEN: lines 15-16 skipped — whatever was in
                        // flight under the old protocol is lost.
                    }
                    Omit::VersionGuard => {
                        let reissue: Vec<_> =
                            self.undelivered.iter().map(|(&id, d)| (id, d.clone())).collect();
                        for (id, data) in reissue {
                            self.abcast(ctx, &Payload::Nil { sn: self.seq_number, id, data });
                        }
                    }
                }
            }
            Payload::Nil { sn, id, data } => {
                let accept = match self.omit {
                    // BROKEN: line 18 skipped — old-protocol stragglers
                    // are delivered alongside their re-issued copies.
                    Omit::VersionGuard => true,
                    Omit::Reissue => sn == self.seq_number,
                };
                if accept {
                    self.undelivered.remove(&id);
                    ctx.respond(&self.provided, ab_ops::ADELIVER, data);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{
        build, check_run, drive_load, request_change, specs, GroupStackOpts, SwitchLayer,
    };
    use dpu_core::abcast_check::AbcastViolation;
    use dpu_core::time::{Dur, Time};
    use dpu_sim::{Sim, SimConfig};

    /// Build the standard stack but with a broken replacement layer.
    fn broken_sim(omit: Omit, seed: u64) -> (Sim, crate::builder::Handles) {
        let opts = GroupStackOpts {
            abcast: specs::ct(0),
            layer: SwitchLayer::None, // placeholder; we wire our own layer
            probe_pad: Some(8),
            with_gm: false,
            extra_defaults: Vec::new(),
        };
        let mut handles = None;
        let sim = Sim::new(SimConfig::lan(3, seed), |sc| {
            let mut built = build(sc, &opts);
            let layer = built.stack.add_module(Box::new(BrokenRepl::new(omit)));
            let r_svc = ServiceId::new(dpu_protocols::ABCAST_SVC).replaced();
            built.stack.bind(&r_svc, layer);
            // Re-point the probe at the broken layer.
            let probe = built.stack.add_module(Box::new(dpu_core::probe::Probe::new(
                r_svc.clone(),
                ab_ops::ABCAST,
                ab_ops::ADELIVER,
                8,
            )));
            built.handles.layer = Some(layer);
            built.handles.probe = Some(probe);
            built.handles.top_service = r_svc;
            handles.get_or_insert(built.handles.clone());
            built.stack
        });
        (sim, handles.unwrap())
    }

    fn run_adversarial_switch(omit: Omit, seed: u64) -> Vec<AbcastViolation> {
        let (mut sim, h) = broken_sim(omit, seed);
        sim.run_until(Time::ZERO + Dur::millis(300));
        let until = sim.now() + Dur::secs(3);
        drive_load(&mut sim, &h, 80.0, until);
        let h2 = h.clone();
        sim.schedule_in(Dur::millis(1500), move |sim| {
            request_change(sim, StackId(0), &h2, &specs::ct(1));
        });
        sim.run_until(until + Dur::secs(10));
        check_run(&mut sim, &h).checker.check()
    }

    #[test]
    fn ablation_payload_wire_contract() {
        use dpu_core::wire::testing::assert_wire_contract;
        assert_wire_contract(&Payload::Nil {
            sn: 1,
            id: (StackId(0), 7),
            data: Bytes::from_static(b"m"),
        });
        assert_wire_contract(&Payload::NewAbcast { sn: 2, spec: ModuleSpec::new("abcast.ct") });
    }

    #[test]
    fn omitting_reissue_loses_in_flight_messages() {
        // Try a few seeds: the race (messages ordered after the switch
        // point in the old protocol) needs in-flight traffic at the
        // switch instant.
        let mut seen_validity_loss = false;
        for seed in [1u64, 2, 3, 4, 5] {
            let violations = run_adversarial_switch(Omit::Reissue, seed);
            if violations.iter().any(|v| matches!(v, AbcastViolation::Validity { .. })) {
                seen_validity_loss = true;
                break;
            }
        }
        assert!(seen_validity_loss, "dropping lines 15-16 must lose in-flight messages under load");
    }

    #[test]
    fn omitting_the_version_guard_duplicates_messages() {
        let mut seen_duplicate = false;
        for seed in [1u64, 2, 3, 4, 5] {
            let violations = run_adversarial_switch(Omit::VersionGuard, seed);
            if violations.iter().any(|v| {
                matches!(
                    v,
                    AbcastViolation::DuplicateDelivery { .. } | AbcastViolation::TotalOrder { .. }
                )
            }) {
                seen_duplicate = true;
                break;
            }
        }
        assert!(seen_duplicate, "dropping the line-18 guard must duplicate (or disorder) messages");
    }

    #[test]
    fn the_full_algorithm_passes_the_same_adversarial_schedules() {
        // Positive control: identical schedule, real Repl module, all
        // seeds clean.
        for seed in [1u64, 2, 3, 4, 5] {
            let opts = GroupStackOpts {
                abcast: specs::ct(0),
                layer: SwitchLayer::Repl,
                probe_pad: Some(8),
                with_gm: false,
                extra_defaults: Vec::new(),
            };
            let (mut sim, h) = crate::builder::group_sim(SimConfig::lan(3, seed), &opts);
            sim.run_until(Time::ZERO + Dur::millis(300));
            let until = sim.now() + Dur::secs(3);
            drive_load(&mut sim, &h, 80.0, until);
            let h2 = h.clone();
            sim.schedule_in(Dur::millis(1500), move |sim| {
                request_change(sim, StackId(0), &h2, &specs::ct(1));
            });
            sim.run_until(until + Dur::secs(10));
            check_run(&mut sim, &h).assert_ok();
        }
    }
}
