//! # dpu-repl — dynamic protocol update algorithms
//!
//! The paper's contribution (§4–§5) plus the two baselines it compares
//! against:
//!
//! * [`abcast_repl::ReplAbcastModule`] — **Algorithm 1**: the replacement
//!   module for atomic broadcast. Adds a level of indirection (`r-abcast`)
//!   between the service callers and the provider, intercepts calls and
//!   responses, and switches protocols by atomically broadcasting the
//!   replacement request through the *old* protocol itself — no barriers,
//!   no group membership, no blocking of the application.
//! * [`maestro::MaestroSwitcher`] — a Maestro-style baseline (van Renesse
//!   et al., *Building adaptive systems using Ensemble*): whole-stack
//!   switching with an explicit finalize phase that **blocks the
//!   application** until the new stack is globally ready.
//! * [`graceful::GracefulSwitcher`] — a Graceful-Adaptation-style baseline
//!   (Chen/Hiltunen/Schlichting): three coordinator-driven barrier phases
//!   (prepare / deactivate / activate) over pre-created alternative
//!   components.
//! * [`builder`] — constructs the full Figure-4 group communication stack
//!   in one call, with any of the three switch layers (or none), a
//!   measurement probe and optional group membership on top. Used by the
//!   integration tests, the examples and every benchmark.
//!
//! The consensus-replacement experiment (paper §7 / ref \[16\]) needs no
//! dedicated module: Algorithm 1's recursive `create_module` (lines
//! 22–28) already creates providers for services the *new* protocol
//! requires — switching to an `abcast.ct` spec that names a fresh
//! consensus service replaces the agreement protocol underneath atomic
//! broadcast in the same sweep. See `dpu-bench`'s `consensus_switch`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abcast_repl;
pub mod ablation;
pub mod builder;
pub mod graceful;
pub mod maestro;

/// Control operation shared by all three switch layers on their provided
/// (indirection) service: request a protocol change. Payload: the
/// [`dpu_core::ModuleSpec`] of the new protocol — the paper's
/// `changeABcast(prot)`.
pub const CHANGE_OP: dpu_core::Op = 10;
