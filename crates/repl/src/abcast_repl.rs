//! **Algorithm 1** of the paper: replacement of atomic broadcast.
//!
//! The `Repl-ABcast` module provides the indirection interface `r-abcast`
//! and requires `abcast`. Users of atomic broadcast (the application,
//! group membership, …) are wired to `r-abcast`; the protocol being
//! replaced is completely unaware of the replacement machinery, and the
//! replacement machinery depends only on the *specification* of atomic
//! broadcast — the two structural claims of §4.
//!
//! ```text
//! 1  Initialisation:
//! 2      undelivered ← ∅                 {messages not yet rAdelivered}
//! 3      curABcast ← current ABcast protocol
//! 4      seqNumber ← 0
//! 5  upon changeABcast(prot) do
//! 6      ABcast(newABcast, seqNumber, prot)
//! 7  upon rABcast(m) do
//! 8      undelivered ← undelivered ∪ {m}
//! 9      ABcast(nil, seqNumber, m)
//! 10 upon Adeliver(newABcast, sn, prot) do
//! 11     seqNumber ← seqNumber + 1
//! 12     unbind(curABcast)
//! 13     create_module(prot)             {recursively creates required services}
//! 14     curABcast ← prot
//! 15     for all m ∈ undelivered do
//! 16         ABcast(nil, seqNumber, m)
//! 17 upon Adeliver(nil, sn, m) do
//! 18     if sn = seqNumber then          {discard messages of older protocols}
//! 19         if m ∈ undelivered then undelivered ← undelivered ∖ {m}
//! 20         rAdeliver(m)
//! ```
//!
//! Because the replacement request travels through the old ABcast itself,
//! its position in the total order *is* the switch point: every stack
//! switches after delivering exactly the same prefix, which is what makes
//! the four atomic broadcast properties carry over (proof in §5.2.2,
//! checked mechanically by this module's tests via
//! [`dpu_core::abcast_check::AbcastChecker`]).
//!
//! One deviation from the paper's listing: line 10 is guarded by
//! `sn = seqNumber`, mirroring line 18. The listing relies on the switch
//! message being delivered once per protocol version; since an *unbound*
//! old module may still respond (§2 explicitly allows it), the guard
//! discards stale `newABcast` deliveries the same way stale `nil` ones
//! are discarded.

use crate::CHANGE_OP;
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::time::Time;
use dpu_core::wire::{Decode, Encode, WireError, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};
use dpu_protocols::abcast::ops as ab_ops;
use std::collections::BTreeMap;

/// Module kind name, for factory registration.
pub const KIND: &str = "repl.abcast";

/// Factory parameters of the replacement module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplParams {
    /// The updateable service (default [`dpu_protocols::ABCAST_SVC`]).
    /// The module provides `r-<service>` and requires `<service>`.
    pub service: String,
}

impl Default for ReplParams {
    fn default() -> Self {
        ReplParams { service: dpu_protocols::ABCAST_SVC.to_string() }
    }
}

impl Encode for ReplParams {
    fn encode(&self, buf: &mut BytesMut) {
        self.service.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.service.encoded_len()
    }
}

impl Decode for ReplParams {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(ReplParams { service: String::decode(buf)? })
    }
}

/// What the replacement layer hands to the underlying atomic broadcast:
/// either an ordinary message (tag `nil` in the paper) or a replacement
/// request (tag `newABcast`), both stamped with the current protocol
/// version `sn`.
enum ReplPayload {
    /// `(nil, sn, m)` — an ordinary message with its unique id.
    Nil { sn: u64, id: (StackId, u64), data: Bytes },
    /// `(newABcast, sn, prot)` — a replacement request.
    NewAbcast { sn: u64, spec: ModuleSpec },
}

impl Encode for ReplPayload {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ReplPayload::Nil { sn, id, data } => {
                0u32.encode(buf);
                sn.encode(buf);
                id.0.encode(buf);
                id.1.encode(buf);
                data.encode(buf);
            }
            ReplPayload::NewAbcast { sn, spec } => {
                1u32.encode(buf);
                sn.encode(buf);
                spec.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            ReplPayload::Nil { sn, id, data } => {
                0u32.encoded_len()
                    + sn.encoded_len()
                    + id.0.encoded_len()
                    + id.1.encoded_len()
                    + data.encoded_len()
            }
            ReplPayload::NewAbcast { sn, spec } => {
                1u32.encoded_len() + sn.encoded_len() + spec.encoded_len()
            }
        }
    }
}

impl Decode for ReplPayload {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        match u32::decode(buf)? {
            0 => Ok(ReplPayload::Nil {
                sn: u64::decode(buf)?,
                id: (StackId::decode(buf)?, u64::decode(buf)?),
                data: Bytes::decode(buf)?,
            }),
            1 => {
                Ok(ReplPayload::NewAbcast { sn: u64::decode(buf)?, spec: ModuleSpec::decode(buf)? })
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// The replacement module for atomic broadcast (Algorithm 1). See the
/// module docs for the listing and the correspondence.
pub struct ReplAbcastModule {
    /// `r-<service>`: what callers are wired to.
    provided: ServiceId,
    /// `<service>`: the updateable protocol underneath.
    required: ServiceId,
    /// Algorithm 1's `seqNumber`.
    seq_number: u64,
    /// Algorithm 1's `undelivered`, keyed by unique message id. Only
    /// locally-sent messages are tracked (line 8 runs on the sender).
    undelivered: BTreeMap<(StackId, u64), Bytes>,
    next_id: u64,
    // ---- instrumentation (not part of the algorithm) ----
    switches_applied: u64,
    reissued_total: u64,
    last_switch_at: Option<Time>,
    switch_times: Vec<Time>,
    delivered_count: u64,
}

impl ReplAbcastModule {
    /// Build with explicit parameters.
    pub fn new(params: ReplParams) -> ReplAbcastModule {
        let required = ServiceId::new(&params.service);
        ReplAbcastModule {
            provided: required.replaced(),
            required,
            seq_number: 0,
            undelivered: BTreeMap::new(),
            next_id: 0,
            switches_applied: 0,
            reissued_total: 0,
            last_switch_at: None,
            switch_times: Vec::new(),
            delivered_count: 0,
        }
    }

    /// Register this module's factory under [`KIND`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let params = if spec.params.is_empty() {
                ReplParams::default()
            } else {
                spec.params::<ReplParams>().unwrap_or_default()
            };
            Box::new(ReplAbcastModule::new(params))
        });
    }

    /// Algorithm 1's `seqNumber`: the current protocol version.
    pub fn seq_number(&self) -> u64 {
        self.seq_number
    }

    /// Messages sent locally and not yet rAdelivered.
    pub fn undelivered_len(&self) -> usize {
        self.undelivered.len()
    }

    /// How many replacements this stack has applied.
    pub fn switches_applied(&self) -> u64 {
        self.switches_applied
    }

    /// Total messages re-issued across all switches (lines 15–16).
    pub fn reissued_total(&self) -> u64 {
        self.reissued_total
    }

    /// Virtual time at which the last replacement was applied locally.
    pub fn last_switch_at(&self) -> Option<Time> {
        self.last_switch_at
    }

    /// Local application times of every replacement, in order. The
    /// paper's "replacement finishes when all machines have replaced the
    /// old modules" is the max of the k-th entry across stacks.
    pub fn switch_times(&self) -> &[Time] {
        &self.switch_times
    }

    /// Messages rAdelivered to the users above.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    fn abcast(&self, ctx: &mut ModuleCtx<'_>, payload: &ReplPayload) {
        let data = ctx.encode(payload);
        ctx.call(&self.required, ab_ops::ABCAST, data);
    }
}

impl Module for ReplAbcastModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.provided.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.required.clone()]
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        match call.op {
            // Lines 7–9: rABcast(m).
            ab_ops::ABCAST => {
                let id = (ctx.stack_id(), self.next_id);
                self.next_id += 1;
                self.undelivered.insert(id, call.data.clone());
                self.abcast(ctx, &ReplPayload::Nil { sn: self.seq_number, id, data: call.data });
            }
            // Lines 5–6: changeABcast(prot).
            CHANGE_OP => {
                let Ok(spec) = call.decode::<ModuleSpec>() else { return };
                // The initiator learns of the switch here; everyone else
                // when the NewAbcast announcement is adelivered (the
                // timeline's `requested` stamp is idempotent across both).
                let now_ns = ctx.now().as_nanos();
                ctx.telemetry().switch_requested(now_ns);
                self.abcast(ctx, &ReplPayload::NewAbcast { sn: self.seq_number, spec });
            }
            _ => {}
        }
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.service != self.required || resp.op != ab_ops::ADELIVER {
            return;
        }
        let Ok(payload) = resp.decode::<ReplPayload>() else { return };
        match payload {
            // Lines 10–16: Adeliver(newABcast, sn, prot).
            ReplPayload::NewAbcast { sn, spec } => {
                if sn != self.seq_number {
                    return; // stale switch request from an old protocol
                }
                let now_ns = ctx.now().as_nanos();
                ctx.telemetry().switch_requested(now_ns);
                self.seq_number += 1; // line 11
                                      // Under Repl there is no explicit flush protocol: the
                                      // total order itself guarantees old-protocol messages are
                                      // all delivered or reissued, so "flushed" coincides with
                                      // the unbind of the outgoing provider.
                ctx.telemetry().switch_flushed(now_ns);
                ctx.unbind(&self.required); // line 12
                match ctx.create_module(&spec) {
                    // lines 13–14 (create_module binds the new provider
                    // and recursively creates its required services)
                    Ok(_new_module) => {}
                    Err(e) => {
                        // The switch was agreed globally but this stack
                        // cannot build the protocol: surface loudly. The
                        // service stays unbound, so calls block (weak
                        // well-formedness) rather than corrupt state.
                        panic!("replacement failed on {}: {e}", ctx.stack_id());
                    }
                }
                let activated_ns = ctx.now().as_nanos();
                ctx.telemetry().switch_activated(activated_ns);
                self.switches_applied += 1;
                self.last_switch_at = Some(ctx.now());
                self.switch_times.push(ctx.now());
                // Lines 15–16: reissue undelivered under the new protocol.
                let reissue: Vec<((StackId, u64), Bytes)> =
                    self.undelivered.iter().map(|(&id, data)| (id, data.clone())).collect();
                self.reissued_total += reissue.len() as u64;
                for (id, data) in reissue {
                    self.abcast(ctx, &ReplPayload::Nil { sn: self.seq_number, id, data });
                }
            }
            // Lines 17–21: Adeliver(nil, sn, m).
            ReplPayload::Nil { sn, id, data } => {
                if sn != self.seq_number {
                    return; // line 18: message of an older protocol
                }
                self.undelivered.remove(&id); // lines 19–20
                self.delivered_count += 1;
                // Closes the blackout window on the first post-switch
                // delivery regardless of whether the consumer above
                // timestamps its messages.
                let now_ns = ctx.now().as_nanos();
                ctx.telemetry().note_switch_delivery(now_ns);
                ctx.respond(&self.provided, ab_ops::ADELIVER, data); // line 21
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::wire;

    #[test]
    fn repl_payload_wire_contract() {
        use dpu_core::wire::testing::assert_wire_contract;
        assert_wire_contract(&ReplParams::default());
        assert_wire_contract(&ReplPayload::Nil {
            sn: 1,
            id: (StackId(0), 7),
            data: Bytes::from_static(b"m"),
        });
        assert_wire_contract(&ReplPayload::NewAbcast { sn: 2, spec: ModuleSpec::new("abcast.ct") });
    }

    #[test]
    fn params_roundtrip_and_naming() {
        let p = ReplParams { service: "abcast".into() };
        let b = wire::to_bytes(&p);
        assert_eq!(wire::from_bytes::<ReplParams>(&b).unwrap(), p);
        let m = ReplAbcastModule::new(p);
        assert_eq!(m.provides(), vec![ServiceId::new("r-abcast")]);
        assert_eq!(m.requires(), vec![ServiceId::new("abcast")]);
    }

    #[test]
    fn payload_roundtrips() {
        let nil = ReplPayload::Nil { sn: 3, id: (StackId(1), 9), data: Bytes::from_static(b"msg") };
        let b = wire::to_bytes(&nil);
        match wire::from_bytes::<ReplPayload>(&b).unwrap() {
            ReplPayload::Nil { sn, id, data } => {
                assert_eq!((sn, id, data), (3, (StackId(1), 9), Bytes::from_static(b"msg")));
            }
            _ => panic!("wrong variant"),
        }
        let sw = ReplPayload::NewAbcast { sn: 1, spec: ModuleSpec::new("abcast.seq") };
        let b = wire::to_bytes(&sw);
        match wire::from_bytes::<ReplPayload>(&b).unwrap() {
            ReplPayload::NewAbcast { sn, spec } => {
                assert_eq!(sn, 1);
                assert_eq!(spec.kind, "abcast.seq");
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn factory_registration() {
        let mut reg = dpu_core::FactoryRegistry::new();
        ReplAbcastModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::new(KIND)).unwrap();
        assert_eq!(m.kind(), KIND);
        assert_eq!(m.provides(), vec![ServiceId::new("r-abcast")]);
    }

    // End-to-end switching behaviour (multi-stack, across protocols,
    // with load and crashes) is exercised in the builder module's tests
    // and in the workspace-level integration tests.
}
