//! Structural-audit reconciliation: `Sim::mem_stats` (the by-hand
//! walk over `Stack::mem_bytes`, slab arrays, scheduler, outboxes,
//! shard pools and the shared peer table) must track what the process
//! actually allocates. The audit is an *undercount* by construction —
//! it skips allocator slack, `Box` fatness, shard bookkeeping and
//! transient queue capacity — so the test pins it from both sides:
//! it must account for a stated majority of the counting allocator's
//! live delta, and it must never exceed it (an overcount means some
//! contribution is double-billed).
//!
//! One test per file: the counting allocator is process-global.

use dpu_bench::mem::CountingAlloc;
use dpu_bench::synth::datagram_soak_sim;
use dpu_core::time::{Dur, Time};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn structural_audit_reconciles_with_counting_allocator() {
    let n = 4096u32;
    let live0 = ALLOC.live();
    let mut sim = datagram_soak_sim(n, 42, 1);
    sim.run_until(Time::ZERO + Dur::millis(50));

    let measured = ALLOC.live() - live0;
    let audited = sim.mem_stats().bytes_total;

    // Lower bound: the audit walks every stack's modules, maps, queues,
    // scratch and telemetry plus the engine's slab/scheduler/outbox
    // arrays at *capacity* — that inventory covers the large majority
    // of live bytes in the steady-state soak (measured ~78% on the dev
    // host; the slack to 65% absorbs allocator and platform variance).
    assert!(
        audited * 100 >= measured * 65,
        "structural audit lost track of live bytes: audited {audited} vs measured {measured} \
         ({}%)",
        audited * 100 / measured.max(1)
    );
    // Upper bound: auditing more than the allocator handed out means a
    // contribution is double-counted (capacity billed twice, or a
    // shared table billed per stack as well as once globally).
    assert!(
        audited <= measured,
        "structural audit exceeds live bytes: audited {audited} vs measured {measured}"
    );
    eprintln!(
        "mem audit: n={n} measured {measured} B live, audited {audited} B ({}%)",
        audited * 100 / measured.max(1)
    );
}
