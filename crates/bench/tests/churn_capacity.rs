//! Churn-capacity regression: 100 crash/restart cycles must leave the
//! process's live bytes/stack flat. This pins the eager-drop restart
//! path (`Sim::restart_node_with` + slab slot recycling): a regression
//! that keeps both incarnations alive across a restart, or leaks the
//! old incarnation's module/timer/scratch state, shows up here as
//! monotone growth in the counting allocator's live counter.
//!
//! One test per file: the counting allocator is process-global, so the
//! measurement must not share its binary with concurrent allocations
//! from unrelated tests.

use dpu_bench::mem::CountingAlloc;
use dpu_bench::synth::LoadGen;
use dpu_core::stack::FactoryRegistry;
use dpu_core::time::{Dur, Time};
use dpu_core::{Stack, StackConfig, StackId};
use dpu_sim::{CpuConfig, NetConfig, Sim, SimConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const N: u32 = 64;
const CLUSTER: u32 = 8;

fn mk_stack(sc: StackConfig) -> Stack {
    let node_seed = sc.seed ^ (u64::from(sc.id.0) << 20) ^ 0xA076_1D64_78BD_642F;
    let mut s = Stack::new(sc, FactoryRegistry::new());
    s.add_module(Box::new(LoadGen::new(Dur::millis(5), 4, CLUSTER, node_seed)));
    s
}

#[test]
fn hundred_restarts_keep_live_bytes_per_stack_flat() {
    let mut cfg = SimConfig::clustered(N, 7, CLUSTER, NetConfig::datacenter(), NetConfig::wan());
    cfg.trace = false;
    cfg.cpu = CpuConfig::fast();
    let mut sim = Sim::new(cfg, mk_stack);

    // Warm up: reach the steady-state standing population before the
    // baseline is taken, so growth during churn cannot hide behind
    // first-use allocations (scratch pools, scheduler wheels, queues).
    sim.run_until(Time::ZERO + Dur::millis(200));
    let live_before = ALLOC.live();
    let structural_before = sim.mem_stats().bytes_per_stack;

    let mut deadline = Time::ZERO + Dur::millis(200);
    for round in 0..100u32 {
        let victim = StackId(round % N);
        sim.restart_node_with(victim, mk_stack);
        // Advance between restarts so each new incarnation re-arms its
        // load and traffic flows through the recycled slot.
        deadline += Dur::millis(2);
        sim.run_until(deadline);
    }
    // Settle after the last restart.
    sim.run_until(deadline + Dur::millis(100));
    let live_after = ALLOC.live();
    let structural_after = sim.mem_stats().bytes_per_stack;

    // "Flat" = no per-restart growth. 100 restarts over 64 stacks with
    // a leak of even one retained incarnation (~10 KB+) per restart
    // would add ≥ 1 MB; allow a quarter of that for allocator noise,
    // queue-capacity ratchets and timer-heap growth.
    let slack = 256 * 1024;
    assert!(
        live_after <= live_before + slack,
        "live bytes grew across churn: {live_before} -> {live_after} \
         (> {slack} slack; ~{} per restart)",
        (live_after.saturating_sub(live_before)) / 100,
    );
    // The structural estimate must agree: recycled slots, not new ones.
    assert!(
        structural_after <= structural_before + structural_before / 4,
        "structural bytes/stack grew across churn: \
         {structural_before} -> {structural_after}"
    );
    // And the audit itself must be live: a 64-stack simulation holds at
    // least a few hundred bytes of state per stack.
    assert!(structural_after > 500, "structural audit imploded: {structural_after}");
}
