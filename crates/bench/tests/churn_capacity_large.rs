//! Churn at capacity scale: crash/restart cycles at 262,144 stacks
//! must leave live bytes/stack flat. The small churn test
//! (`churn_capacity.rs`, n=64) pins the restart path itself; this one
//! pins the interactions that only appear at scale — slab slot
//! recycling inside a million-entry arena, shard scratch-pool
//! absorption of a retiring incarnation's wire buffers, and the
//! exact-growth maps not ratcheting when a rebuilt stack re-registers
//! its modules.
//!
//! `#[ignore]`d: at this size a debug run takes minutes; CI runs it in
//! release via
//! `cargo test --release -p dpu-bench --test churn_capacity_large -- --ignored`.
//!
//! One test per file: the counting allocator is process-global.

use dpu_bench::mem::CountingAlloc;
use dpu_bench::synth::LoadGen;
use dpu_core::stack::FactoryRegistry;
use dpu_core::time::{Dur, Time};
use dpu_core::{Stack, StackConfig, StackId};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const N: u32 = 1 << 18; // 262,144

// The restart factory must rebuild exactly what the soak's boot factory
// built (same LoadGen parameters as `datagram_soak_sim`), or the churn
// comparison would measure scenario drift instead of leaks.
fn mk_stack(sc: StackConfig) -> Stack {
    let node_seed = sc.seed ^ (u64::from(sc.id.0) << 20) ^ 0xA076_1D64_78BD_642F;
    let mut s = Stack::new(sc, FactoryRegistry::new());
    s.add_module(Box::new(LoadGen::new(Dur::millis(5), 8, N / 16, node_seed)));
    s
}

#[test]
#[ignore = "release-only capacity churn (262144 stacks); run with --release -- --ignored"]
fn restarts_at_capacity_keep_live_bytes_per_stack_flat() {
    let mut sim = dpu_bench::synth::datagram_soak_sim(N, 42, 1);

    // Warm up to the standing population high-water mark so churn-phase
    // growth cannot hide behind first-use allocations (scratch pools,
    // wheel buckets, per-stack queue capacity). The WAN backbone adds
    // ~15 ms of cross-cluster latency, so the in-flight population only
    // reaches steady state after a couple of backbone round trips —
    // baseline too early and normal fill-up masquerades as a leak.
    sim.run_until(Time::ZERO + Dur::millis(40));
    let live_before = ALLOC.live();
    let structural_before = sim.mem_stats().bytes_per_stack;

    let mut deadline = Time::ZERO + Dur::millis(40);
    for round in 0..32u32 {
        // Spread victims across shards so every restart exercises a
        // different slab neighborhood and scratch pool.
        let victim = StackId((round * 8191) % N);
        sim.restart_node_with(victim, mk_stack);
        deadline += Dur::micros(500);
        sim.run_until(deadline);
    }
    sim.run_until(deadline + Dur::millis(5));
    let live_after = ALLOC.live();
    let structural_after = sim.mem_stats().bytes_per_stack;

    // "Flat" = no per-restart growth. A retained incarnation is ~2 KB,
    // so even a one-per-restart leak would add ~64 KB; the slack is
    // sized for allocator noise across a quarter-million stacks still
    // ratcheting queue capacities toward their high-water marks
    // (~8 B/stack), not for leaks.
    let slack = 2 * 1024 * 1024;
    assert!(
        live_after <= live_before + slack,
        "live bytes grew across capacity churn: {live_before} -> {live_after} \
         (> {slack} slack; ~{} per restart)",
        (live_after.saturating_sub(live_before)) / 32,
    );
    // The structural estimate must agree: recycled slots, not new ones.
    assert!(
        structural_after <= structural_before + structural_before / 20,
        "structural bytes/stack grew across capacity churn: \
         {structural_before} -> {structural_after}"
    );
    assert!(structural_after > 500, "structural audit imploded: {structural_after}");
    eprintln!(
        "capacity churn: live {live_before} -> {live_after} B \
         ({} B/stack structural)",
        structural_after
    );
}
