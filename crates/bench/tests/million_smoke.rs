//! The tentpole acceptance test: a 1,048,576-stack datagram soak must
//! build on a dev machine in single-digit seconds and hold its
//! steady-state footprint under 2.5 KB per stack, telemetry off, as
//! measured by a counting allocator (not just the structural audit).
//! This is the claim `BENCH_scale.json`'s million row commits to;
//! the test keeps it honest on every capacity CI run.
//!
//! `#[ignore]`d because it only makes sense in release (debug builds
//! multiply the wall clock ~20x and the build budget is a release
//! number); CI runs it via
//! `cargo test --release -p dpu-bench --test million_smoke -- --ignored`.
//!
//! One test per file: the counting allocator is process-global.

use std::time::Instant;

use dpu_bench::mem::CountingAlloc;
use dpu_bench::synth::datagram_soak_sim;
use dpu_core::time::{Dur, Time};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
#[ignore = "release-only million-stack smoke; run with --release -- --ignored"]
fn million_smoke() {
    let n: u32 = 1 << 20;
    let live0 = ALLOC.live();

    let t0 = Instant::now();
    let mut sim = datagram_soak_sim(n, 42, 1);
    let build_secs = t0.elapsed().as_secs_f64();
    let built_per_stack = (ALLOC.live() - live0) / u64::from(n);

    // Build budget: the pre-refactor boxed layout took 125 s to build
    // 65536 stacks; the slab/SoA layout with the shared peer table must
    // assemble sixteen times as many in single-digit seconds.
    assert!(build_secs < 10.0, "million-stack build took {build_secs:.1} s (budget 10 s)");

    let run0 = Instant::now();
    sim.run_until(Time::ZERO + Dur::millis(5));
    let run_secs = run0.elapsed().as_secs_f64();
    let run_per_stack = (ALLOC.live() - live0) / u64::from(n);

    let report = sim.report();
    assert!(
        report.stats.events > u64::from(n),
        "the soak must actually run: {} events",
        report.stats.events
    );
    assert!(report.stats.packets_delivered > 0, "the soak must deliver traffic");
    // The headline bound: steady-state allocator-measured heap, per
    // stack, telemetry off. Shard scratch pools, exact-growth maps and
    // interned service names are what hold this under 2.5 KB.
    assert!(
        run_per_stack <= 2_560,
        "steady-state bytes/stack blew the 2.5 KB budget: {run_per_stack} \
         (built {built_per_stack})"
    );
    // Generous wall guard so a pathological slowdown (quadratic scan,
    // lost batching) fails loudly instead of hanging the CI job.
    assert!(run_secs < 600.0, "5 ms window took {run_secs:.0} s of wall clock");

    eprintln!(
        "million smoke: built in {build_secs:.2} s at {built_per_stack} B/stack, \
         ran {} events in {run_secs:.1} s at {run_per_stack} B/stack steady state",
        report.stats.events
    );
}
