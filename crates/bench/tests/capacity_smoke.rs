//! The 65536-stack capacity smoke: builds the `BENCH_scale.json`
//! datagram soak at its full size, runs a short window through the
//! persistent worker pool, and checks the structural memory audit —
//! proof that the slab/SoA layout and the shared peer table actually
//! hold at the scale the committed baseline claims. `#[ignore]`d
//! because it only makes sense in release (debug builds multiply the
//! wall clock ~20x); CI runs it as
//! `cargo test -p dpu-bench --release -- --ignored`.

use dpu_bench::synth::{datagram_soak_sim, datagram_soak_sim_telemetry};
use dpu_core::time::{Dur, Time};
use dpu_core::TelemetryConfig;

#[test]
#[ignore = "release-only capacity smoke (65536 stacks); run with --release -- --ignored"]
fn capacity_smoke_65536_stacks() {
    let n = 65_536;
    let mut sim = datagram_soak_sim(n, 42, 4);
    sim.run_until(Time::ZERO + Dur::millis(10));
    let report = sim.report();
    assert!(
        report.stats.events > u64::from(n),
        "the soak must actually run: {} events",
        report.stats.events
    );
    assert!(
        report.stats.packets_delivered > 0,
        "the soak must deliver traffic across the recycled layout"
    );
    // The capacity claim: the pre-refactor boxed layout sat at ~265 KB
    // of *allocator-measured* bytes/stack at this size (dominated by
    // the O(n²) owned peer tables). The structural estimate floors the
    // allocator number, so holding it an order of magnitude below the
    // old figure pins both the shared peer table and the slab reuse.
    assert!(
        report.mem.bytes_per_stack < 30_000,
        "structural bytes/stack regressed: {}",
        report.mem.bytes_per_stack
    );
}

/// The same soak with telemetry *on*: the documented per-stack budget
/// is the capacity-off figure plus a fixed ~17 KB of instrumentation
/// (six 2.4 KB histograms, the 64-event flight ring, timeline
/// bookkeeping — see ARCHITECTURE.md "Observability"). Fixed means
/// fixed: the telemetry cost must not scale with n, so the combined
/// structural bound is the off-mode bound plus 20 KB.
#[test]
#[ignore = "release-only capacity smoke (65536 stacks); run with --release -- --ignored"]
fn capacity_smoke_65536_stacks_telemetry_on() {
    let n = 65_536;
    let mut sim = datagram_soak_sim_telemetry(n, 42, 4, TelemetryConfig::on());
    sim.run_until(Time::ZERO + Dur::millis(10));
    let report = sim.report();
    assert!(
        report.stats.events > u64::from(n),
        "the soak must run: {} events",
        report.stats.events
    );
    assert!(
        report.mem.bytes_per_stack < 30_000 + 20_000,
        "telemetry-on structural bytes/stack blew the documented budget: {}",
        report.mem.bytes_per_stack
    );
    let tel = sim.telemetry_report();
    assert_eq!(tel.stacks_enabled, n, "every stack must be instrumented");
    assert!(
        tel.scratch_occupancy_bytes.count > 0,
        "instrumented soak must record occupancy samples"
    );
}
