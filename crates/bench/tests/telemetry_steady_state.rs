//! Steady-state allocation guard for the telemetry record path
//! (`tests/wire_steady_state.rs` applied to the observability layer).
//!
//! Every per-sample operation — histogram record, flight-recorder push,
//! switch-phase stamp — must be alloc-free once a `StackTelemetry` is
//! constructed: the histograms are fixed bucket arrays, the flight ring
//! is pre-sized, and the timeline's recent-switch window is bounded.
//! A counting global allocator measures the record phase directly; the
//! budget is zero.
//!
//! One test per file: the counting allocator is process-global, so the
//! measurement must not share its binary with concurrent allocations
//! from unrelated tests.

use dpu_bench::mem::CountingAlloc;
use dpu_core::{StackTelemetry, TelemetryConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn record_path_is_allocation_free() {
    let mut t = StackTelemetry::new(&TelemetryConfig::default());
    let mut off = StackTelemetry::disabled();

    // Warm-up: exercise every record kind once so any lazily-touched
    // state is in place before the measured phase.
    t.note_delivery(1_000, 500);
    t.cascade_step();
    t.cascade_end();
    t.record_scratch_occupancy(4096);
    t.record_reseq_depth(3);
    t.switch_requested(2_000);
    t.switch_flushed(2_500);
    t.switch_activated(3_000);
    t.note_delivery(3_500, 700);
    t.note_retransmit_exhausted(4_000, 9);

    let allocs0 = ALLOC.allocs();
    for i in 0..100_000u64 {
        let now = 10_000 + i * 10;
        t.note_delivery(now, 500 + (i % 1_000));
        t.cascade_step();
        t.cascade_step();
        t.cascade_end();
        t.record_scratch_occupancy(4096 + (i % 64) * 128);
        t.record_reseq_depth(i % 8);
        if i % 10_000 == 0 {
            // A full switch lifecycle, flight events included, is also
            // on the zero-allocation path.
            t.switch_requested(now);
            t.switch_flushed(now + 1);
            t.switch_activated(now + 2);
            t.note_delivery(now + 3, 900);
        }
        // The off-mode stub must be free too (it is the 65536-stack
        // capacity configuration).
        off.note_delivery(now, 500);
        off.record_scratch_occupancy(4096);
    }
    let new_allocs = ALLOC.allocs() - allocs0;
    assert_eq!(
        new_allocs, 0,
        "telemetry record path allocated {new_allocs} times over 100k samples; \
         record() must be alloc-free per stack"
    );
    assert!(t.is_enabled() && !off.is_enabled());
    let state = t.state().expect("enabled telemetry has state");
    assert!(state.delivery_latency.count() > 100_000, "samples must actually land");
}
