//! Live-heap accounting for the capacity benchmarks.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and keeps a live-bytes
//! counter plus a high-water mark, so `bench_scale` and the churn
//! regression test can report *measured* resident bytes per stack rather
//! than structural estimates. Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: dpu_bench::mem::CountingAlloc = dpu_bench::mem::CountingAlloc::new();
//! ```
//!
//! The counters are plain relaxed atomics: the probes read them from the
//! same thread that just finished building or running a simulation, and a
//! handful of bytes of cross-thread slop is far below measurement noise.
//!
//! This is the one module in the crate allowed to use `unsafe` (the
//! `GlobalAlloc` contract), mirroring how `dpu-reactor` confines its raw
//! epoll FFI to `sys.rs`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that tracks live and peak heap bytes.
pub struct CountingAlloc {
    live: AtomicU64,
    peak: AtomicU64,
    allocs: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counter (const so it can be a `#[global_allocator]` static).
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            live: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
        }
    }

    /// Heap bytes currently allocated and not yet freed.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::live`] since process start (or the last
    /// [`Self::reset_peak`]).
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restart the high-water mark from the current live level, so a probe
    /// can measure the peak of one phase (e.g. a churn window) in isolation.
    pub fn reset_peak(&self) {
        self.peak.store(self.live(), Ordering::Relaxed);
    }

    /// Total successful allocation calls since process start (frees not
    /// subtracted) — the counter steady-state guards difference across a
    /// measured phase to assert "~0 allocations per operation".
    pub fn allocs(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    fn add(&self, n: usize) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn sub(&self, n: usize) {
        self.live.fetch_sub(n as u64, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.sub(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Grow before shrink order doesn't matter for a saturating-free
            // counter pair: account the delta exactly.
            if new_size >= layout.size() {
                self.add(new_size - layout.size());
            } else {
                self.sub(layout.size() - new_size);
            }
        }
        p
    }
}
