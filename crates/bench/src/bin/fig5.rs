//! **Figure 5** — average atomic broadcast latency as a function of time,
//! across a dynamic replacement of the CT-ABcast protocol by the same
//! protocol (paper §6.2, n = 7, constant load).
//!
//! ```text
//! cargo run --release -p dpu-bench --bin fig5 [--n 7] [--load 150] [--seed 42]
//! ```
//!
//! Prints a `time_ms  latency_ms` series (binned), the replacement window
//! and the before/during/after summaries. The paper's qualitative result:
//! latency spikes briefly around the replacement and returns to normal;
//! the system is never unavailable.

use dpu_bench::experiments::{during_summary, run_repl_switches, ExpConfig};
use dpu_bench::stats::{time_series, Summary};
use dpu_bench::Args;
use dpu_core::time::{Dur, Time};
use dpu_repl::builder::specs;

fn main() {
    let args = Args::parse();
    let n: u32 = args.get("n", 7);
    let load: f64 = args.get("load", 150.0);
    let seed: u64 = args.get("seed", 42);
    let mut cfg = ExpConfig::new(n, load);
    cfg.seed = seed;
    if args.has("quick") {
        cfg.measure = Dur::secs(3);
        cfg.tail = Dur::secs(4);
    }

    println!("# Figure 5: ABcast latency vs. time across a replacement");
    println!("# n = {n}, load = {load} msg/s, seed = {seed}");
    let switch_at = cfg.measure / 2;
    let outcome = run_repl_switches(&cfg, &[switch_at], specs::ct);
    let (start, end) = outcome.windows[0];
    println!(
        "# replacement window: {:.3} ms .. {:.3} ms (duration {:.3} ms), {} reissued message(s)",
        start.as_millis_f64(),
        end.as_millis_f64(),
        end.since(start).as_millis_f64(),
        outcome.reissued,
    );

    println!("#\n# time_ms\tlatency_ms\tmsgs");
    for (t, lat, count) in time_series(&outcome.latencies, Dur::millis(100)) {
        println!("{t:.1}\t{lat:.4}\t{count}");
    }

    let margin = Dur::millis(300);
    let before = Summary::of_window(&outcome.latencies, Time::ZERO, start);
    let during = during_summary(&outcome);
    let after = Summary::of_window(&outcome.latencies, end + margin, cfg.measure_end());
    println!("#\n# phase     \tmean_ms\tp95_ms\tmax_ms\tmsgs");
    for (name, s) in [("before", before), ("during", during), ("after", after)] {
        println!("# {name:<10}\t{:.4}\t{:.4}\t{:.4}\t{}", s.mean_ms, s.p95_ms, s.max_ms, s.n);
    }
    println!(
        "# paper shape check: during-mean {:.2}x before-mean; after within {:.1}% of before",
        during.mean_ms / before.mean_ms.max(1e-9),
        (after.mean_ms / before.mean_ms.max(1e-9) - 1.0).abs() * 100.0
    );
}
