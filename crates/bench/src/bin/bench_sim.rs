//! Generates `BENCH_sim.json`: the simulator-scalability baseline — event
//! throughput of the single-heap scheduler vs. the hierarchical
//! timing-wheel calendar queue at n = 16 / 256 / 1024, committed so the
//! perf trajectory of the discrete-event core is visible in-tree (the
//! `BENCH_wire.json` pattern applied to the scheduler).
//!
//! Two measurements:
//!
//! * **scheduler microbenchmark** — push/pop throughput of
//!   [`dpu_sim::sched::Scheduler`] alone, on structurally realistic
//!   standing populations: one pending step per node (immediate
//!   reschedule at modeled CPU cost, the dominant event class in real
//!   runs — `SimStats` from the 1024-stack soak shows steps ≈ 5× packet
//!   deliveries), one armed wake per node, one protocol timer per node,
//!   and a per-profile population of in-flight datagrams:
//!   - `lan_steady` — 13 packets/node at 20–150 µs flight times;
//!   - `datacenter_burst` — 61 packets/node at 10–90 µs (fan-out
//!     bursts: one sequencer broadcast alone puts n packets in flight);
//!   - `wan_sustained` — 509 packets/node at 15–50 ms flight + NIC
//!     queueing (geo-replication: at 15 ms one-way latency, a thousand
//!     nodes exchanging a few thousand datagrams/s each keep hundreds
//!     of thousands of datagrams in flight).
//!
//!   Each pop pushes a same-class replacement, so the population shape
//!   is stationary. This isolates the data structure the refactor
//!   replaced: the single `BinaryHeap` pays `O(log E)` sifts of
//!   full-size payloads per event, the wheel `O(1)` bucket pushes and
//!   24-byte key moves.
//! * **end-to-end simulation** — the full Figure-4 stack (sequencer
//!   ABcast) on a clustered datacenter topology under open-loop Poisson
//!   load, measured as dispatched events per wall-clock second. Both
//!   schedulers produce *identical* runs (asserted) — only the wall
//!   clock differs.
//!
//! Usage: `cargo run --release -p dpu-bench --bin bench_sim [out.json]`
//! (default output path `BENCH_sim.json` in the current directory).
//! Absolute rates vary with the host; the committed baseline records
//! the machine-independent speedup ratios alongside them.
//!
//! # Parallel-engine mode
//!
//! `bench_sim --workers N [--quick] [out.json]` benchmarks the
//! conservative parallel engine instead and writes `BENCH_par.json`:
//! serial (1-worker) vs N-worker wall clock and events/sec on two
//! 16-cluster scenarios at n ∈ {256, 1024} —
//!
//! * `datagram_soak` — timer-driven symmetric datagram load
//!   ([`dpu_bench::synth::LoadGen`]) over a WAN backbone (15 ms
//!   lookahead): balanced shards, the engine's headline case;
//! * `abcast_switch_soak` — the `sim_scale_soak` scenario (sequencer
//!   ABcast under Poisson load): the sequencer's cluster is the hot
//!   shard, so the *available* parallelism (sum of per-shard events
//!   over the max) caps the speedup well below the worker count.
//!
//! Every pair of runs is asserted to produce identical `SimStats` — the
//! CI short profile (`--workers 4 --quick`) exists for that assertion.
//! Wall-clock speedups are only meaningful with ≥ N physical cores; the
//! JSON records `host_cores` so single-core regenerations are
//! recognizable, alongside the core-count-independent
//! `available_parallelism` load-balance metric.

use dpu_bench::synth::{
    datagram_soak_sim_telemetry, delta, populate, FakeEvent, Profile, PROFILES,
};
use dpu_bench::JsonWriter;
use dpu_core::telemetry::HistSummary;
use dpu_core::time::{Dur, Time};
use dpu_core::ModuleSpec;
use dpu_core::TelemetryConfig;
use dpu_repl::builder::{drive_poisson, group_sim, GroupStackOpts, SwitchLayer};
use dpu_sim::sched::SchedKind;
use dpu_sim::{CpuConfig, NetConfig, SimConfig, SimStats};
use std::time::Instant;

/// Ops/sec through one scheduler at the profile's standing population:
/// each pop pushes a same-class replacement relative to the popped time.
fn sched_throughput(kind: SchedKind, n: u64, p: &Profile, ops: u64) -> f64 {
    let (mut s, mut rng, mut seq) = populate(kind, n, p);
    // Best of three timed blocks: a max-throughput estimator, so a
    // descheduling blip in one block cannot masquerade as a structural
    // slowdown (applied identically to both scheduler kinds).
    let mut best = 0.0f64;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..ops {
            let (at, (class, _)) = s.pop_before(Time(u64::MAX)).expect("stationary population");
            let dt = delta(&mut rng, class, p);
            s.push(Time(at.as_nanos() + dt), seq, (class, FakeEvent([seq; 5])));
            seq += 1;
        }
        best = best.max(ops as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

/// Events/sec of a full Figure-4 simulation run (best of two, same
/// estimator rationale as the microbenchmark); also returns the event
/// count so the caller can assert both schedulers computed the same run.
fn sim_throughput(kind: SchedKind, n: u32, load: f64) -> (f64, u64) {
    let (a, ev) = sim_throughput_once(kind, n, load);
    let (b, ev2) = sim_throughput_once(kind, n, load);
    assert_eq!(ev, ev2, "same config must produce the same run");
    (a.max(b), ev)
}

fn sim_throughput_once(kind: SchedKind, n: u32, load: f64) -> (f64, u64) {
    let (wall, stats, _) = abcast_soak_run(kind, n, load, 1);
    (stats.events as f64 / wall, stats.events)
}

/// `(wall seconds, stats, unified telemetry report)` of one soak run —
/// the report carries the delivery-latency histogram the `BENCH_par`
/// rows surface as percentile columns.
type SoakRun = (f64, SimStats, dpu_core::telemetry::TelemetryReport);

/// One full Figure-4 sequencer-abcast run (the `sim_scale_soak`
/// scenario shape).
fn abcast_soak_run(kind: SchedKind, n: u32, load: f64, workers: usize) -> SoakRun {
    let (wall, stats, sim, _) =
        abcast_soak_sim(dpu_repl::builder::specs::seq(0), kind, n, load, workers);
    (wall, stats, sim.telemetry_report())
}

/// The same soak on the hierarchical abcast variant: per-cluster local
/// sequencers spread the ordering fan-out over all 16 clusters instead
/// of funnelling it through one hot shard. After the timed region, the
/// §5.1 uniform total order is asserted on every stack's delivery log.
fn hier_soak_run(n: u32, load: f64, workers: usize) -> SoakRun {
    // The failover timeout sits far above the soak's delivery latency:
    // this measures the steady-state data path, not spurious rotations.
    let hier = ModuleSpec::with_params(
        dpu_protocols::abcast::hier::KIND,
        &dpu_protocols::abcast::hier::HierAbcastParams {
            resend: Dur::secs(30),
            ..dpu_protocols::abcast::hier::HierAbcastParams::default()
        },
    );
    let (wall, stats, mut sim, h) = abcast_soak_sim(hier, SchedKind::Calendar, n, load, workers);
    dpu_repl::builder::check_run(&mut sim, &h).assert_ok();
    let report = sim.telemetry_report();
    (wall, stats, report)
}

/// Shared soak harness: clustered datacenter topology, open-loop
/// Poisson probe load through the replacement layer over the given
/// abcast variant. Returns the timed wall seconds, the stats, and the
/// still-live sim + handles for post-run property checks.
fn abcast_soak_sim(
    abcast: ModuleSpec,
    kind: SchedKind,
    n: u32,
    load: f64,
    workers: usize,
) -> (f64, SimStats, dpu_sim::Sim, dpu_repl::builder::Handles) {
    let mut cfg =
        SimConfig::clustered(n, 42, (n / 16).max(1), NetConfig::datacenter(), NetConfig::lan());
    cfg.trace = false;
    cfg.cpu = CpuConfig::fast();
    cfg.sched.kind = kind;
    cfg.workers = workers;
    let rp2p = ModuleSpec::with_params(
        "rp2p",
        &dpu_net::rp2p::Rp2pConfig {
            retransmit: Dur::millis(100),
            lower: dpu_net::UDP_SVC.to_string(),
            max_retransmits: 0,
        },
    );
    let opts = GroupStackOpts {
        abcast,
        layer: SwitchLayer::Repl,
        probe_pad: Some(0),
        with_gm: false,
        extra_defaults: vec![(dpu_net::RP2P_SVC.to_string(), rp2p)],
    };
    // Time only the dispatch loop: constructing n full stacks is
    // scheduler/worker-independent and would dilute the ratio.
    let (mut sim, h) = group_sim(cfg, &opts);
    let t0 = Instant::now();
    sim.run_until(Time::ZERO + Dur::millis(200));
    drive_poisson(&mut sim, &h, load, Time::ZERO + Dur::millis(1200));
    sim.run_until(Time::ZERO + Dur::millis(2500));
    (t0.elapsed().as_secs_f64(), sim.stats(), sim, h)
}

/// The timer-driven symmetric datagram soak (see module docs): returns
/// wall seconds and the final stats. The bench profile runs it
/// telemetry-ON so the latency columns in `BENCH_par.json` are real
/// end-to-end delivery percentiles (the `LoadGen` payload carries its
/// send stamp); the telemetry-off variant is the capacity baseline of
/// `BENCH_scale.json`, benched separately.
fn datagram_soak_run(n: u32, workers: usize) -> SoakRun {
    let mut sim = datagram_soak_sim_telemetry(n, 42, workers, TelemetryConfig::on());
    let t0 = Instant::now();
    sim.run_until(Time::ZERO + Dur::millis(400));
    let wall = t0.elapsed().as_secs_f64();
    let stats = sim.stats();
    let report = sim.telemetry_report();
    (wall, stats, report)
}

/// Best-of-two wall clock for one scenario runner at a worker count;
/// asserts both runs computed the same stats (determinism) and returns
/// `(best wall, stats, report)`.
fn best_of_two(run: impl Fn(usize) -> SoakRun, workers: usize) -> SoakRun {
    let (w1, s1, r1) = run(workers);
    let (w2, s2, r2) = run(workers);
    assert_eq!(s1, s2, "same config must produce the same run");
    assert_eq!(
        r1.delivery_latency_ns, r2.delivery_latency_ns,
        "same config must produce the same latency histogram"
    );
    (w1.min(w2), s1, r1)
}

/// Sum-over-max of the per-shard event counts: the load-balance upper
/// bound on any speedup (independent of the host's core count).
fn available_parallelism(stats: &SimStats) -> f64 {
    let max = stats.per_shard.iter().map(|s| s.events).max().unwrap_or(1).max(1);
    let sum: u64 = stats.per_shard.iter().map(|s| s.events).sum();
    sum as f64 / max as f64
}

/// `--workers N` mode: generate the parallel-engine baseline
/// (`BENCH_par.json`), asserting serial/parallel stats equality on
/// every scenario.
fn run_par_mode(workers: usize, quick: bool, out: &str) {
    let sizes: &[u32] = if quick { &[256] } else { &[256, 1024] };
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let oversubscribed = host_cores < workers;
    if oversubscribed {
        eprintln!(
            "warning: {workers} workers on {host_cores} host core(s) — wall-clock speedups in \
             this run measure scheduling overhead, not the engine; trust only the \
             available_parallelism column (deterministic) and rerun on >= {workers} cores for \
             timing"
        );
    }
    struct ParRow {
        kind: &'static str,
        n: u32,
        wall_1: f64,
        wall_n: f64,
        speedup: f64,
        avail: f64,
        stats: SimStats,
        lat: HistSummary,
    }
    let mut rows: Vec<ParRow> = Vec::new();
    let mut headline = 0.0f64;
    let mut headline_n = 0u32;
    for (kind, runner) in [
        ("datagram_soak", &datagram_soak_run as &dyn Fn(u32, usize) -> SoakRun),
        ("abcast_switch_soak", &|n, w| {
            abcast_soak_run(SchedKind::Calendar, n, 60.0 * (f64::from(n) / 16.0).sqrt(), w)
        }),
        ("abcast_hier_soak", &|n, w| hier_soak_run(n, 60.0 * (f64::from(n) / 16.0).sqrt(), w)),
    ] {
        for &n in sizes {
            let (wall_1, stats_1, rep_1) = best_of_two(|w| runner(n, w), 1);
            let (wall_n, stats_n, rep_n) = best_of_two(|w| runner(n, w), workers);
            assert_eq!(stats_1, stats_n, "{kind} n={n}: parallel run diverged from serial");
            // The telemetry histograms merge by bucket addition, so the
            // worker count must not show in the latency distribution
            // either — the par_equiv property at the telemetry layer.
            assert_eq!(
                rep_1.delivery_latency_ns, rep_n.delivery_latency_ns,
                "{kind} n={n}: parallel latency histogram diverged from serial"
            );
            let speedup = wall_1 / wall_n;
            let avail = available_parallelism(&stats_n);
            if kind == "datagram_soak" {
                // Host-independent check (event spreads are deterministic):
                // the balanced soak must expose enough load parallelism
                // for the worker pool, or the engine cannot scale on any
                // machine. The ceiling is the cluster count (16), so the
                // bound caps below it for large pools. Wall clocks are
                // asserted nowhere — they are meaningless on fewer cores
                // than workers.
                let need = (workers as f64).min(12.0);
                assert!(avail >= need, "{kind} n={n}: only {avail:.1}x available parallelism");
                if n == *sizes.last().unwrap() {
                    headline = speedup;
                    headline_n = n;
                }
            }
            if kind == "abcast_hier_soak" && n == 1024 {
                // The hierarchical variant's raison d'être: spreading
                // the ordering fan-out must leave the shards balanced
                // enough for a real worker pool, where the flat
                // sequencer soak sits near 2x. Deterministic event
                // spreads make this host-independent.
                assert!(avail >= 8.0, "{kind} n={n}: only {avail:.1}x available parallelism");
            }
            eprintln!(
                "{kind:<20} n={n:<5} serial {wall_1:>6.2}s parallel({workers}) {wall_n:>6.2}s \
                 ({speedup:.2}x wall, {avail:.1}x available, {} events, latency p50 {} ns over \
                 {} deliveries)",
                stats_n.events, rep_n.delivery_latency_ns.p50, rep_n.delivery_latency_ns.count
            );
            rows.push(ParRow {
                kind,
                n,
                wall_1,
                wall_n,
                speedup,
                avail,
                stats: stats_n,
                lat: rep_n.delivery_latency_ns,
            });
        }
    }
    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_str(
            "bench",
            "conservative parallel simulation engine (see crates/bench/src/bin/bench_sim.rs, \
             --workers mode)",
        )
        .field_u64("workers", workers as u64)
        .field_u64("host_cores", host_cores as u64);
    if oversubscribed {
        w.field_str(
            "warning",
            &format!(
                "host undersized: {workers} workers on {host_cores} core(s); wall-clock columns \
                 are not meaningful on this host"
            ),
        );
    }
    w.field_str(
        "note",
        "wall_speedup needs >= workers physical cores to be meaningful; available_parallelism \
         (per-shard event sum over max) is the host-independent load-balance ceiling; every \
         serial/parallel pair asserted bit-identical, latency histograms included; latency \
         percentiles are virtual-time delivery latency from the unified telemetry layer \
         (datagram_soak stamps send time into each payload, so its columns are real \
         end-to-end delivery latency)",
    )
    .key("rows")
    .begin_arr();
    for r in &rows {
        w.elem()
            .begin_obj()
            .field_str("scenario", r.kind)
            .field_u64("n", u64::from(r.n))
            .field_u64("events", r.stats.events)
            .field_f64("serial_secs", r.wall_1, 3)
            .field_f64("parallel_secs", r.wall_n, 3)
            .field_f64("serial_ev_per_sec", r.stats.events as f64 / r.wall_1, 0)
            .field_f64("parallel_ev_per_sec", r.stats.events as f64 / r.wall_n, 0)
            .field_f64("wall_speedup", r.speedup, 2)
            .field_f64("available_parallelism", r.avail, 2)
            .field_u64("deliveries", r.lat.count)
            .field_f64("latency_p50_us", r.lat.p50 as f64 / 1e3, 1)
            .field_f64("latency_p99_us", r.lat.p99 as f64 / 1e3, 1)
            .field_f64("latency_p999_us", r.lat.p999 as f64 / 1e3, 1)
            .end_obj();
    }
    w.end_arr()
        .key("headline")
        .begin_obj()
        .field_str(
            "metric",
            &format!(
                "wall-clock speedup, {workers}-worker vs serial, {headline_n}-stack datagram \
                 soak on 16 datacenter clusters + WAN backbone"
            ),
        )
        .field_f64("wall_speedup", headline, 2)
        .end_obj()
        .end_obj();
    let json = w.finish();
    std::fs::write(out, &json).expect("write parallel baseline json");
    print!("{json}");
    eprintln!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers = args.iter().position(|a| a == "--workers").map(|i| {
        args.get(i + 1).and_then(|v| v.parse::<usize>().ok()).expect("--workers needs a count")
    });
    let quick = args.iter().any(|a| a == "--quick");
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--") && args.get(i.wrapping_sub(1)).is_none_or(|p| p != "--workers")
        })
        .map(|(_, a)| a)
        .collect();
    if let Some(workers) = workers {
        // The 1-worker run is the baseline of every row (serial_secs),
        // so the comparison needs a genuine pool on the other side.
        assert!(workers >= 2, "--workers needs >= 2; the serial baseline is measured in every row");
        let out = positional.first().map_or("BENCH_par.json", |s| s.as_str());
        run_par_mode(workers, quick, out);
        return;
    }
    let out = positional.first().map_or("BENCH_sim.json", |s| s.as_str()).to_string();
    let sizes = [16u64, 256, 1024];
    let ops = 4_000_000u64;

    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_str("bench", "sim scheduler scaling (see crates/bench/src/bin/bench_sim.rs)")
        .key("sched_microbench")
        .begin_obj()
        .field_str(
            "description",
            "scheduler push/pop ops/sec on stationary per-class populations (1 step + 1 timer + \
             1 wake per node, plus per-profile in-flight packets); single heap vs hierarchical \
             timing wheel (bucket 128 ns)",
        )
        .key("rows")
        .begin_arr();
    let mut ratio_1024_wan = 0.0f64;
    for p in &PROFILES {
        for &n in &sizes {
            let heap = sched_throughput(SchedKind::SingleHeap, n, p, ops);
            let wheel = sched_throughput(SchedKind::Calendar, n, p, ops);
            let ratio = wheel / heap;
            if n == 1024 && p.name == "wan_sustained" {
                ratio_1024_wan = ratio;
            }
            eprintln!(
                "sched {:<17} n={n:<5} heap {heap:>9.0}/s wheel {wheel:>9.0}/s ({ratio:.2}x)",
                p.name
            );
            w.elem()
                .begin_obj()
                .field_str("profile", p.name)
                .field_u64("n", n)
                .field_u64("population", (p.packets_per_node + 3) * n)
                .field_f64("single_heap", heap, 0)
                .field_f64("calendar", wheel, 0)
                .field_f64("speedup", ratio, 2)
                .end_obj();
        }
    }
    w.end_arr()
        .end_obj()
        .key("end_to_end")
        .begin_obj()
        .field_str(
            "description",
            "full Figure-4 sequencer-abcast sim on clustered datacenter topology, open-loop \
             Poisson, dispatched events per wall second; both schedulers verified to compute \
             identical runs",
        )
        .key("rows")
        .begin_arr();
    for &n in sizes.iter() {
        let n = n as u32;
        let load = 60.0 * (f64::from(n) / 16.0).sqrt().max(1.0);
        let (e2e_heap, ev_heap) = sim_throughput(SchedKind::SingleHeap, n, load);
        let (e2e_wheel, ev_wheel) = sim_throughput(SchedKind::Calendar, n, load);
        assert_eq!(ev_heap, ev_wheel, "schedulers must compute identical runs");
        let ratio = e2e_wheel / e2e_heap;
        eprintln!(
            "sim end-to-end      n={n:<5} heap {e2e_heap:>9.0} ev/s wheel {e2e_wheel:>9.0} ev/s \
             ({ratio:.2}x, {ev_wheel} events)"
        );
        w.elem()
            .begin_obj()
            .field_u64("n", u64::from(n))
            .field_u64("events", ev_wheel)
            .field_f64("single_heap_ev_per_sec", e2e_heap, 0)
            .field_f64("calendar_ev_per_sec", e2e_wheel, 0)
            .field_f64("speedup", ratio, 2)
            .end_obj();
    }
    w.end_arr()
        .end_obj()
        .key("headline")
        .begin_obj()
        .field_str(
            "metric",
            "scheduler event throughput at n = 1024, wan_sustained profile, calendar wheel vs \
             single heap",
        )
        .field_f64("speedup", ratio_1024_wan, 2)
        .end_obj()
        .end_obj();
    let json = w.finish();
    std::fs::write(&out, &json).expect("write baseline json");
    print!("{json}");
    eprintln!("wrote {out}");
}
