//! **Ablations** (experiment E4+) — measured justifications for the
//! design choices DESIGN.md calls out:
//!
//! 1. *indirection layer cost* — steady-state latency with vs. without
//!    the replacement layer (the paper's ≈5 % claim, across loads);
//! 2. *consensus coordinator policy* — textbook rotating coordinator vs.
//!    the instance-offset variant that spreads coordinator load;
//! 3. *proposal batching* — the `batch_delay` knob of the consensus-based
//!    ABcast: instances per message and latency across loads.
//!
//! The *correctness* ablations (what breaks when Algorithm 1's re-issue
//! or version guard is omitted) are mechanised as negative tests in
//! `dpu_repl::ablation`.
//!
//! ```text
//! cargo run --release -p dpu-bench --bin ablation [--quick]
//! ```

use dpu_bench::experiments::{parallel_map, run_steady, ExpConfig};
use dpu_bench::stats::{collect_latencies, Summary};
use dpu_bench::Args;
use dpu_core::time::{Dur, Time};
use dpu_core::ModuleSpec;
use dpu_protocols::abcast::ct::{CtAbcastModule, CtAbcastParams, KIND as CT_KIND};
use dpu_repl::builder::{drive_load, group_sim, GroupStackOpts, SwitchLayer};
use dpu_sim::SimConfig;

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let seed: u64 = args.get("seed", 42);

    println!("# Ablation 1: indirection layer cost across loads (n = 3)");
    println!("# load\tno_layer_ms\twith_layer_ms\toverhead_%");
    let loads: Vec<f64> = if quick { vec![50.0, 200.0] } else { vec![50.0, 100.0, 200.0, 400.0] };
    let rows = parallel_map(loads.clone(), |load| {
        let mut cfg = ExpConfig::new(3, load);
        cfg.seed = seed;
        let a = Summary::of(run_steady(&cfg, SwitchLayer::None).iter().map(|m| m.avg));
        let b = Summary::of(run_steady(&cfg, SwitchLayer::Repl).iter().map(|m| m.avg));
        (load, a.mean_ms, b.mean_ms)
    });
    for (load, a, b) in rows {
        println!("{load:.0}\t{a:.4}\t{b:.4}\t{:.1}", (b / a - 1.0) * 100.0);
    }

    println!("#\n# Ablation 2: consensus coordinator policy (n = 5, load 100)");
    println!("# policy\tmean_ms\tp95_ms");
    for (name, spec) in [
        ("rotating", dpu_repl::builder::specs::ct(0)),
        ("instance-offset", dpu_repl::builder::specs::ct_with_consensus(0, "consensus")),
    ] {
        // For the offset policy, override the default consensus provider.
        let mut cfg = SimConfig::lan(5, seed);
        cfg.trace = false;
        let mut opts = GroupStackOpts {
            abcast: spec,
            layer: SwitchLayer::None,
            probe_pad: Some(32),
            with_gm: false,
            extra_defaults: Vec::new(),
        };
        if name == "instance-offset" {
            opts.extra_defaults.push((
                "consensus".to_string(),
                dpu_repl::builder::specs::consensus_offset("consensus", 0),
            ));
        }
        let (mut sim, h) = group_sim(cfg, &opts);
        sim.run_until(Time::ZERO + Dur::millis(500));
        let until = sim.now() + if quick { Dur::secs(2) } else { Dur::secs(5) };
        drive_load(&mut sim, &h, 100.0, until);
        sim.run_until(until + Dur::secs(8));
        let s = Summary::of(collect_latencies(&mut sim, &h).iter().map(|m| m.avg));
        println!("{name}\t{:.4}\t{:.4}", s.mean_ms, s.p95_ms);
    }

    println!("#\n# Ablation 3: proposal batching (n = 3)");
    println!("# batch_delay_ms\tload\tmean_ms\tinstances\tmsgs");
    let delays: Vec<u64> = if quick { vec![0, 2] } else { vec![0, 1, 2, 5] };
    let loads: Vec<f64> = if quick { vec![200.0] } else { vec![100.0, 300.0, 500.0] };
    let mut jobs = Vec::new();
    for &d in &delays {
        for &l in &loads {
            jobs.push((d, l));
        }
    }
    let rows = parallel_map(jobs, |(delay_ms, load)| {
        let spec = ModuleSpec::with_params(
            CT_KIND,
            &CtAbcastParams { batch_delay: Dur::millis(delay_ms), ..CtAbcastParams::default() },
        );
        let mut cfg = SimConfig::lan(3, seed);
        cfg.trace = false;
        let opts = GroupStackOpts {
            abcast: spec,
            layer: SwitchLayer::None,
            probe_pad: Some(32),
            with_gm: false,
            extra_defaults: Vec::new(),
        };
        let (mut sim, h) = group_sim(cfg, &opts);
        sim.run_until(Time::ZERO + Dur::millis(500));
        let until = sim.now() + if quick { Dur::secs(2) } else { Dur::secs(4) };
        drive_load(&mut sim, &h, load, until);
        sim.run_until(until + Dur::secs(10));
        let latencies = collect_latencies(&mut sim, &h);
        let s = Summary::of(latencies.iter().map(|m| m.avg));
        let instances = sim.with_stack(dpu_core::StackId(0), |st| {
            st.with_module::<CtAbcastModule, _>(h.abcast, |m| m.instances_done()).unwrap()
        });
        (delay_ms, load, s, instances)
    });
    for (delay_ms, load, s, instances) in rows {
        println!("{delay_ms}\t{load:.0}\t{:.4}\t{instances}\t{}", s.mean_ms, s.n);
    }
}
