//! Generates `BENCH_wire.json`: the wire-codec performance baseline the
//! CI run records so the perf trajectory of the message path is visible
//! in-tree.
//!
//! Measures the three encode paths plus decode on the two canonical
//! payload shapes of the `wire_codec` bench, then runs one short
//! abcast-roundtrip simulation and records its aggregate
//! [`dpu_core::wire::ScratchStats`] — `steady_allocs_per_msg` near zero
//! is the "zero steady-state allocations on the encode path" claim in
//! machine-checkable form (the hard gate is `tests/wire_steady_state.rs`;
//! this file records the magnitude).
//!
//! Usage: `cargo run --release -p dpu-bench --bin bench_wire [out.json]`
//! (default output path `BENCH_wire.json` in the current directory).
//! Absolute nanoseconds vary with the host; the committed baseline
//! records the machine-independent ratios alongside them.

use bytes::Bytes;
use dpu_bench::stats::collect_latencies;
use dpu_bench::JsonWriter;
use dpu_core::probe::ProbeMsg;
use dpu_core::time::{Dur, Time};
use dpu_core::wire::{from_bytes, to_bytes, ScratchStats, WireScratch};
use dpu_core::StackId;
use dpu_repl::builder::{drive_load, group_sim, specs, GroupStackOpts, SwitchLayer};
use dpu_sim::SimConfig;
use std::time::Instant;

/// Time `f` over enough iterations for a stable mean, in ns/iter.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Warm up, then measure in one block.
    for _ in 0..10_000 {
        f();
    }
    let iters = 2_000_000u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn roundtrip_scratch_stats() -> (usize, ScratchStats) {
    let mut cfg = SimConfig::lan(3, 42);
    cfg.trace = false;
    let opts = GroupStackOpts {
        abcast: specs::seq(0),
        layer: SwitchLayer::None,
        probe_pad: Some(32),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    let (mut sim, h) = group_sim(cfg, &opts);
    sim.run_until(Time::ZERO + Dur::millis(300));
    let until = sim.now() + Dur::secs(2);
    drive_load(&mut sim, &h, 50.0, until);
    sim.run_until(until + Dur::secs(1));
    let delivered = collect_latencies(&mut sim, &h).len();
    (delivered, sim.wire_stats())
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_wire.json".to_string());

    let msg = ProbeMsg {
        origin: StackId(3),
        seq: 123_456,
        sent_at: Time(987_654_321),
        pad: Bytes::from(vec![7u8; 64]),
    };
    let encoded = to_bytes(&msg);
    let batch: Vec<(StackId, u64, Bytes)> =
        (0..32).map(|i| (StackId(i % 7), u64::from(i), Bytes::from(vec![0u8; 48]))).collect();
    let batch_bytes = to_bytes(&batch);

    let encode_probe = time_ns(|| {
        std::hint::black_box(to_bytes(std::hint::black_box(&msg)));
    });
    let mut scratch = WireScratch::new();
    let encode_probe_scratch = time_ns(|| {
        std::hint::black_box(scratch.encode(std::hint::black_box(&msg)));
    });
    let decode_probe = time_ns(|| {
        std::hint::black_box(from_bytes::<ProbeMsg>(std::hint::black_box(&encoded)).unwrap());
    });
    let encode_batch = time_ns(|| {
        std::hint::black_box(to_bytes(std::hint::black_box(&batch)));
    });
    let decode_batch = time_ns(|| {
        std::hint::black_box(
            from_bytes::<Vec<(StackId, u64, Bytes)>>(std::hint::black_box(&batch_bytes)).unwrap(),
        );
    });
    let scratch_stats = scratch.stats();

    let (delivered, sim_stats) = roundtrip_scratch_stats();
    let steady_allocs_per_msg = if sim_stats.emitted == 0 {
        0.0
    } else {
        sim_stats.allocations as f64 / sim_stats.emitted as f64
    };

    // Pre-refactor reference, measured on the same machine at commit
    // 1f2701e (PR 2 head, before the zero-copy message path): lets the
    // committed baseline carry the improvement ratio, not just absolute
    // nanoseconds that vary per host.
    const PRE_ENCODE_PROBE: f64 = 146.0;
    const PRE_DECODE_PROBE: f64 = 105.2;
    const PRE_ENCODE_BATCH: f64 = 1060.1;
    const PRE_DECODE_BATCH: f64 = 1283.2;

    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_str(
            "bench",
            "wire_codec + abcast_roundtrip (see crates/bench/src/bin/bench_wire.rs)",
        )
        .field_str("units", "ns_per_iter unless noted")
        .key("pre_refactor_reference")
        .begin_obj()
        .field_str("commit", "1f2701e")
        .field_f64("encode_probe_msg", PRE_ENCODE_PROBE, 1)
        .field_f64("decode_probe_msg", PRE_DECODE_PROBE, 1)
        .field_f64("encode_consensus_batch_32", PRE_ENCODE_BATCH, 1)
        .field_f64("decode_consensus_batch_32", PRE_DECODE_BATCH, 1)
        .end_obj()
        .key("speedup_vs_pre_refactor")
        .begin_obj()
        .field_f64("encode_probe_msg", PRE_ENCODE_PROBE / encode_probe, 2)
        .field_f64("decode_probe_msg", PRE_DECODE_PROBE / decode_probe, 2)
        .field_f64("encode_consensus_batch_32", PRE_ENCODE_BATCH / encode_batch, 2)
        .field_f64("decode_consensus_batch_32", PRE_DECODE_BATCH / decode_batch, 2)
        .end_obj()
        .field_f64("encode_probe_msg", encode_probe, 1)
        .field_f64("encode_probe_msg_scratch", encode_probe_scratch, 1)
        .field_f64("decode_probe_msg", decode_probe, 1)
        .field_f64("encode_consensus_batch_32", encode_batch, 1)
        .field_f64("decode_consensus_batch_32", decode_batch, 1)
        .key("microbench_scratch")
        .begin_obj()
        .field_u64("emitted", scratch_stats.emitted)
        .field_u64("reclaimed", scratch_stats.reclaimed)
        .field_u64("allocations", scratch_stats.allocations)
        .end_obj()
        .key("abcast_roundtrip")
        .begin_obj()
        .field_str("variant", "sequencer, n=3, 50 msg/s x 2 s, pad 32")
        .field_u64("deliveries", delivered as u64)
        .field_u64("wire_emitted", sim_stats.emitted)
        .field_u64("wire_reclaimed", sim_stats.reclaimed)
        .field_u64("wire_allocations", sim_stats.allocations)
        .field_f64("steady_allocs_per_msg", steady_allocs_per_msg, 5)
        .end_obj()
        .end_obj();
    let json = w.finish();
    std::fs::write(&out, &json).expect("write baseline json");
    print!("{json}");
    eprintln!("wrote {out}");
}
