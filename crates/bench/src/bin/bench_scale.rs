//! Generates `BENCH_scale.json`: the capacity baseline — *measured*
//! heap bytes per stack and events/sec from n = 16384 up to the full
//! 1,048,576-stack row, the ROADMAP's million-stack target made
//! visible in-tree.
//!
//! Unlike the structural `bytes/stack` estimate in `SimReport`, the
//! numbers here come from a counting `GlobalAlloc`
//! (`dpu_bench::mem::CountingAlloc`): every row reports live heap
//! bytes after construction and after the timed run window (the
//! steady-state population, in-flight datagrams included), divided by
//! the stack count. A final drop-check asserts the simulation releases
//! what it allocated — the same counter the churn regression test uses.
//!
//! The scenario is the `BENCH_par.json` datagram soak
//! ([`dpu_bench::synth::datagram_soak_sim`]): n timer-driven `LoadGen`
//! stacks in 16 datacenter clusters over a WAN backbone. Capacity, not
//! parallel speedup, is the subject — rows run serial by default
//! (`--workers` overrides; wall clocks are machine-bound either way).
//!
//! `pre_refactor` records the same probe's output on this scenario
//! *before* the capacity PR (boxed `Node`s, one owned `peers` vector per
//! stack — O(n²) total), measured on the same class of host; committed
//! so the layout win stays quantified after the old code is gone.
//!
//! Usage: `cargo run --release -p dpu-bench --bin bench_scale [--quick]
//! [--workers N] [out.json]` (default out `BENCH_scale.json`; `--quick`
//! shrinks to n = 4096 and 262144 for CI — the quarter-million row is
//! cheap enough to regression-gate on every push, the million row is
//! the `million_smoke` ignored test's job).

use dpu_bench::mem::CountingAlloc;
use dpu_bench::synth::datagram_soak_sim;
use dpu_bench::JsonWriter;
use dpu_core::time::{Dur, Time};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// The pre-PR boxed layout, measured by this same probe at the capacity
/// PR's parent commit (run window 50 ms, serial). At 65536 stacks the
/// per-stack peer vectors alone held n * 4 bytes each, so bytes/stack
/// grew linearly with n — the number the slab/SoA + shared-peer-table
/// refactor exists to flatten.
const PRE_REFACTOR: &str = r#"{
    "note": "same probe, parent commit of the capacity PR (boxed Nodes, owned peers vector per stack): bytes/stack grew linearly with n and 65536 stacks took 17 GB to build",
    "rows": [
      { "n": 4096, "build_secs": 0.04, "bytes_per_stack_built": 19325, "bytes_per_stack_run": 21903 },
      { "n": 16384, "build_secs": 5.58, "bytes_per_stack_built": 68420, "bytes_per_stack_run": 70922 },
      { "n": 65536, "build_secs": 125.19, "bytes_per_stack_built": 265013, "bytes_per_stack_run": 267588 }
    ]
  }"#;

struct Row {
    build_secs: f64,
    bytes_built: u64,
    bytes_run: u64,
    bytes_peak: u64,
    events: u64,
    ev_per_sec: f64,
}

/// One capacity row: build the soak sim, record live bytes, run the
/// window, record live bytes and throughput, then drop-check.
fn run_row(n: u32, workers: usize, window: Dur) -> Row {
    let live0 = ALLOC.live();
    let t0 = Instant::now();
    let mut sim = datagram_soak_sim(n, 42, workers);
    let build_secs = t0.elapsed().as_secs_f64();
    let bytes_built = ALLOC.live() - live0;
    ALLOC.reset_peak();
    let t1 = Instant::now();
    sim.run_until(Time::ZERO + window);
    let wall = t1.elapsed().as_secs_f64();
    let bytes_run = ALLOC.live() - live0;
    let bytes_peak = ALLOC.peak() - live0;
    let stats = sim.stats();
    drop(sim);
    let leaked = ALLOC.live().saturating_sub(live0);
    assert!(leaked < 1 << 20, "n={n}: {leaked} bytes still live after dropping the simulation");
    Row {
        build_secs,
        bytes_built,
        bytes_run,
        bytes_peak,
        events: stats.events,
        ev_per_sec: stats.events as f64 / wall,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .map_or(1, |i| args[i + 1].parse().expect("--workers needs a count"));
    let out = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--") && args.get(i.wrapping_sub(1)).is_none_or(|p| p != "--workers")
        })
        .map_or("BENCH_scale.json", |(_, a)| a.as_str());
    let sizes: &[u32] = if quick { &[4096, 262144] } else { &[16384, 65536, 262144, 1_048_576] };
    let window = Dur::millis(50);
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_str(
            "bench",
            "capacity: measured heap bytes/stack + events/sec, datagram soak (see \
             crates/bench/src/bin/bench_scale.rs)",
        )
        .field_u64("workers", workers as u64)
        .field_u64("host_cores", host_cores as u64)
        .field_u64("window_ms", window.as_nanos() / 1_000_000)
        .field_str(
            "note",
            "bytes are live-heap deltas from a counting GlobalAlloc (built = after construction, \
             run = steady state incl. in-flight datagrams, peak = high-water during the window); \
             ev/sec is machine-bound",
        )
        .key("rows")
        .begin_arr();
    let mut headline = 0u64;
    for &n in sizes {
        let r = run_row(n, workers, window);
        eprintln!(
            "n={n:<6} build {:>5.2}s  {:>7} B/stack built, {:>7} B/stack run (peak {:>7})  \
             {:>9.0} ev/s ({} events)",
            r.build_secs,
            r.bytes_built / u64::from(n),
            r.bytes_run / u64::from(n),
            r.bytes_peak / u64::from(n),
            r.ev_per_sec,
            r.events
        );
        w.elem()
            .begin_obj()
            .field_u64("n", u64::from(n))
            .field_f64("build_secs", r.build_secs, 2)
            .field_u64("bytes_per_stack_built", r.bytes_built / u64::from(n))
            .field_u64("bytes_per_stack_run", r.bytes_run / u64::from(n))
            .field_u64("bytes_per_stack_peak", r.bytes_peak / u64::from(n))
            .field_u64("events", r.events)
            .field_f64("ev_per_sec", r.ev_per_sec, 0)
            .end_obj();
        headline = r.bytes_run / u64::from(n);
    }
    w.end_arr()
        .field_raw("pre_refactor", PRE_REFACTOR)
        .key("headline")
        .begin_obj()
        .field_str(
            "metric",
            &format!(
                "steady-state heap bytes per stack, {}-stack datagram soak",
                sizes.last().unwrap()
            ),
        )
        .field_u64("bytes_per_stack", headline)
        .end_obj()
        .end_obj();
    let json = w.finish();
    std::fs::write(out, &json).expect("write capacity baseline json");
    print!("{json}");
    eprintln!("wrote {out}");
}
