//! **Figure 6** — average atomic broadcast latency as a function of load,
//! for group sizes n = 3 and n = 7, with three series each (paper §6.2):
//!
//! * *during replacement* — messages sent inside a replacement window,
//! * *normal, with replacement layer* — steady state through `r-abcast`,
//! * *normal, without replacement layer* — steady state, no indirection.
//!
//! ```text
//! cargo run --release -p dpu-bench --bin fig6 [--quick] [--seed 42]
//! ```
//!
//! Qualitative expectations from the paper: the replacement layer costs a
//! few percent across the whole load range; the during-replacement curve
//! sits above both; all curves rise sharply near saturation; n = 7
//! saturates earlier than n = 3.

use dpu_bench::experiments::{fig6_point, parallel_map, Fig6Mode};
use dpu_bench::Args;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let ns: Vec<u32> = vec![3, 7];
    let loads_for = |n: u32| -> Vec<f64> {
        if args.has("quick") {
            return vec![50.0, 150.0, 300.0];
        }
        // The n = 7 group saturates earlier (consensus cost grows with
        // n), mirroring the paper's Figure 6 where the curves end at
        // different loads.
        match n {
            3 => vec![50.0, 100.0, 150.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0],
            _ => vec![50.0, 100.0, 150.0, 200.0, 300.0, 400.0, 500.0],
        }
    };

    println!("# Figure 6: ABcast latency vs. load (mean over measured window, ms)");
    println!("# seed = {seed}");
    println!("# n\tload\tnormal_no_layer\tnormal_with_layer\tduring_replacement\toverhead_%");

    let mut jobs = Vec::new();
    for &n in &ns {
        for load in loads_for(n) {
            jobs.push((n, load));
        }
    }
    let results = parallel_map(jobs, |(n, load)| {
        let no_layer = fig6_point(n, load, Fig6Mode::NormalNoLayer, seed);
        let with_layer = fig6_point(n, load, Fig6Mode::NormalWithLayer, seed);
        let during = fig6_point(n, load, Fig6Mode::DuringReplacement, seed);
        (n, load, no_layer, with_layer, during)
    });

    for (n, load, no_layer, with_layer, during) in results {
        let overhead = if no_layer.mean_ms > 0.0 {
            (with_layer.mean_ms / no_layer.mean_ms - 1.0) * 100.0
        } else {
            0.0
        };
        println!(
            "{n}\t{load:.0}\t{:.4}\t{:.4}\t{:.4}\t{overhead:.1}",
            no_layer.mean_ms, with_layer.mean_ms, during.mean_ms
        );
    }
}
