//! **Two-process live switch over loopback UDP** — the paper's Figure-4
//! scenario hosted on real sockets across a process boundary. The
//! parent re-spawns itself twice; each child hosts half of an 8-stack
//! group on an epoll-backed [`dpu_reactor::Reactor`], the halves
//! rendezvous through a temp directory (the stand-in for a name
//! service), and a non-sequencer stack requests `changeABcast(seq(1))`
//! while probes flow with 5% injected send-side loss. Each child
//! asserts the switch applied exactly once, nothing is stuck, loss
//! actually fired, and rp2p actually retransmitted; the parent asserts
//! both processes delivered the *same messages in the same order* by
//! comparing FNV-1a digests of the delivery logs.
//!
//! ```text
//! cargo run --release -p dpu-bench --bin cross_switch_net
//! ```
//!
//! Exits non-zero (and says why) if any property fails. Internal flags
//! `--half <0|1> --rdv <dir>` select child mode.

use dpu_bench::Args;
use dpu_core::probe::Probe;
use dpu_core::StackId;
use dpu_reactor::{NodeAddr, ReactorConfig};
use dpu_repl::abcast_repl::ReplAbcastModule;
use dpu_repl::builder::{
    group_reactor, request_change_reactor, send_probe_reactor, specs, GroupStackOpts, SwitchLayer,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const N: u32 = 8;
const HALF: u32 = N / 2;
/// Probes per phase per child; total messages = 4 * PROBES.
const PROBES: u32 = 5;
const LOSS: f64 = 0.05;

fn main() {
    let args = Args::parse();
    if args.has("half") {
        child(args.get("half", 0u32), PathBuf::from(args.get("rdv", ".".to_string())));
    } else {
        parent();
    }
}

/// Spawn the two halves as real OS processes and compare their digests.
fn parent() {
    let exe = std::env::current_exe().expect("current_exe");
    let rdv = std::env::temp_dir().join(format!("dpu_cross_switch_net_{}", std::process::id()));
    std::fs::create_dir_all(&rdv).expect("create rendezvous dir");

    let spawn = |half: u32| {
        std::process::Command::new(&exe)
            .args(["--half", &half.to_string(), "--rdv"])
            .arg(&rdv)
            .spawn()
            .expect("spawn child")
    };
    let mut c0 = spawn(0);
    let mut c1 = spawn(1);
    let s0 = c0.wait().expect("wait child 0");
    let s1 = c1.wait().expect("wait child 1");
    assert!(s0.success(), "child 0 failed: {s0}");
    assert!(s1.success(), "child 1 failed: {s1}");

    let d0 = std::fs::read_to_string(rdv.join("digest_0")).expect("digest 0");
    let d1 = std::fs::read_to_string(rdv.join("digest_1")).expect("digest 1");
    if d0 != d1 {
        // The postmortem the flight recorder exists for: each child
        // published its final seconds of life before exiting.
        for half in 0..2 {
            if let Ok(dump) = std::fs::read_to_string(rdv.join(format!("flight_{half}"))) {
                eprint!("--- half {half} flight recorders ---\n{dump}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&rdv);
    assert_eq!(d0, d1, "the two OS processes diverged: delivery-log digests differ ({d0} vs {d1})");
    println!(
        "PASS: 2 processes x {HALF} stacks switched seq(0)->seq(1) live over loopback UDP; \
         uniform total order, digest {}",
        d0.trim()
    );
}

/// One half of the group: stacks `half*4 .. half*4+4` on one reactor.
fn child(half: u32, rdv: PathBuf) {
    let opts = GroupStackOpts {
        abcast: specs::seq(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(0),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    let lo = half * HALF;
    let mut cfg = ReactorConfig::new(N, (lo..lo + HALF).map(StackId).collect());
    cfg.loss = LOSS;
    cfg.seed = 100 + u64::from(half);
    let (r, h) = group_reactor(cfg, &opts).expect("spawn reactor");

    // Rendezvous: publish our bound addresses, install the peer's.
    let mine: String =
        r.local_addrs().iter().map(|na| format!("{} {}\n", na.id.0, na.addr)).collect();
    write_atomic(&rdv.join(format!("addrs_{half}")), &mine);
    for line in read_when_present(&rdv.join(format!("addrs_{}", 1 - half))).lines() {
        let (id, addr) = line.split_once(' ').expect("id addr");
        r.set_peer(NodeAddr {
            id: StackId(id.parse().expect("stack id")),
            addr: addr.parse().expect("socket addr"),
        });
    }

    let probe = h.probe.expect("probe");
    let layer = h.layer.expect("repl layer");
    let delivered = |node: u32| {
        r.with_stack(StackId(node), move |s| {
            s.with_module::<Probe, _>(probe, |p| p.delivered().len()).expect("probe")
        })
    };
    let local_delivered = |count: usize| (lo..lo + HALF).all(|node| delivered(node) >= count);

    // Phase 1: both halves broadcast; total = 2 * PROBES messages.
    for _ in 0..PROBES {
        send_probe_reactor(&r, StackId(lo + 1), &h);
    }
    wait_until(
        half,
        "phase-1 deliveries",
        || local_delivered(2 * PROBES as usize),
        || eprint!("{}", r.dump_flight_recorders()),
    );

    // The live switch: half 1 requests it from stack 5 — a
    // non-sequencer stack whose request must cross the process
    // boundary to reach the sequencer hosted by half 0.
    if half == 1 {
        request_change_reactor(&r, StackId(lo + 1), &h, &specs::seq(1));
    }
    for _ in 0..PROBES {
        send_probe_reactor(&r, StackId(lo + 2), &h);
    }
    let total = 4 * PROBES as usize;
    let settled = || {
        (lo..lo + HALF).all(|node| {
            delivered(node) == total
                && r.with_stack(StackId(node), move |s| {
                    s.with_module::<ReplAbcastModule, _>(layer, |m| {
                        m.seq_number() == 1 && m.undelivered_len() == 0
                    })
                    .expect("repl layer")
                })
        })
    };
    let dump = || {
        for node in lo..lo + HALF {
            let (sn, und) = r.with_stack(StackId(node), move |s| {
                s.with_module::<ReplAbcastModule, _>(layer, |m| {
                    (m.seq_number(), m.undelivered_len())
                })
                .expect("repl layer")
            });
            eprintln!(
                "half {half} stack {node}: delivered={} sn={sn} undelivered={und}",
                delivered(node)
            );
        }
    };
    let limit = Instant::now() + Duration::from_secs(120);
    while !settled() {
        if Instant::now() >= limit {
            dump();
            // The flight recorders say *when* each stack last delivered
            // and where its switch lifecycle stalled — the difference
            // between "stuck" and "why".
            eprint!("{}", r.dump_flight_recorders());
            panic!("half {half} timed out waiting for switch applied + all deliveries settled");
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Local uniformity, then publish the digest for the parent.
    let log = |node: u32| {
        r.with_stack(StackId(node), move |s| {
            s.with_module::<Probe, _>(probe, |p| {
                p.delivered().iter().map(|rec| rec.msg).collect::<Vec<_>>()
            })
            .expect("probe")
        })
    };
    let reference = log(lo);
    for node in lo + 1..lo + HALF {
        assert_eq!(log(node), reference, "stack {node} diverged inside half {half}");
    }
    write_atomic(&rdv.join(format!("digest_{half}")), &format!("{:016x}\n", fnv(&reference)));

    // The transport properties the demo exists to show: loss fired on
    // the real socket and rp2p recovered through it.
    let stats = r.stats();
    let transport = r.transport_stats();
    assert!(stats.packets_dropped >= 1, "5% loss dropped nothing: {stats:?}");
    assert!(transport.retransmissions > 0, "recovery implies retransmissions: {transport:?}");
    assert_eq!(stats.malformed_dropped, 0, "peers only send well-formed frames");
    println!(
        "half {half}: {} sent, {} dropped by loss model, {} retransmissions, digest ok",
        stats.packets_sent, stats.packets_dropped, transport.retransmissions
    );

    // Publish the flight recorders so the parent can print a real
    // postmortem if the digests end up differing (by then this process
    // is gone).
    write_atomic(&rdv.join(format!("flight_{half}")), &r.dump_flight_recorders());

    // Exit barrier: the peer may still be waiting on retransmissions
    // from our stacks (that is the point of the loss model) — keep the
    // reactor alive until both halves have settled.
    write_atomic(&rdv.join(format!("done_{half}")), "done\n");
    read_when_present(&rdv.join(format!("done_{}", 1 - half)));
    r.shutdown();
}

fn wait_until(half: u32, what: &str, mut done: impl FnMut() -> bool, on_timeout: impl FnOnce()) {
    let limit = Instant::now() + Duration::from_secs(120);
    while !done() {
        if Instant::now() >= limit {
            on_timeout();
            panic!("half {half} timed out waiting for {what}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Write-then-rename so the peer never observes a partial file.
fn write_atomic(path: &Path, contents: &str) {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents).expect("write rendezvous file");
    std::fs::rename(&tmp, path).expect("publish rendezvous file");
}

fn read_when_present(path: &Path) -> String {
    let limit = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            return s;
        }
        assert!(Instant::now() < limit, "peer never published {}", path.display());
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// FNV-1a over the delivery log — a cheap order-sensitive fingerprint.
fn fnv(log: &[(StackId, u64)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for (origin, seq) in log {
        origin.0.to_le_bytes().into_iter().for_each(&mut eat);
        seq.to_le_bytes().into_iter().for_each(&mut eat);
    }
    h
}
