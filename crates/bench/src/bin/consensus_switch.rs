//! **Consensus replacement** (experiment E5; paper §7 / ref \[16\]) —
//! replacing the *agreement protocol underneath* atomic broadcast, under
//! load, using nothing but Algorithm 1's recursive `create_module`
//! (lines 22–28): the new `abcast.ct` incarnation names a fresh consensus
//! service (`consensus2`, instance-offset coordinator policy), and the
//! recursion instantiates it on every stack at the switch point.
//!
//! ```text
//! cargo run --release -p dpu-bench --bin consensus_switch [--n 7] [--load 120]
//! ```

use dpu_bench::stats::{collect_latencies, Summary};
use dpu_bench::Args;
use dpu_core::time::{Dur, Time};
use dpu_core::{ServiceId, StackId};
use dpu_protocols::consensus::{ConsensusModule, KIND_OFFSET};
use dpu_repl::builder::{
    drive_load, group_sim, request_change, specs, GroupStackOpts, SwitchLayer,
};
use dpu_sim::SimConfig;

fn main() {
    let args = Args::parse();
    let n: u32 = args.get("n", 7);
    let load: f64 = args.get("load", 120.0);
    let seed: u64 = args.get("seed", 42);
    let measure = if args.has("quick") { Dur::secs(3) } else { Dur::secs(6) };

    println!("# Consensus replacement under load (via Algorithm 1 recursion)");
    println!("# n = {n}, load = {load} msg/s, seed = {seed}");

    let mut sim_cfg = SimConfig::lan(n, seed);
    sim_cfg.trace = false;
    let opts = GroupStackOpts {
        abcast: specs::ct(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(32),
        with_gm: false,
        // Default provider for the service the new incarnation requires:
        // an instance-offset consensus under a fresh name.
        extra_defaults: vec![("consensus2".to_string(), specs::consensus_offset("consensus2", 1))],
    };
    let (mut sim, h) = group_sim(sim_cfg, &opts);
    let warmup = Dur::millis(500);
    sim.run_until(Time::ZERO + warmup);
    let until = Time::ZERO + warmup + measure;
    drive_load(&mut sim, &h, load, until);
    let trigger = Time::ZERO + warmup + measure / 2;
    let h2 = h.clone();
    let target = specs::ct_with_consensus(1, "consensus2");
    sim.schedule(trigger, move |sim| request_change(sim, StackId(0), &h2, &target));
    sim.run_until(until + Dur::secs(8));

    // Verify the new consensus service exists, is bound, and did work.
    let mut new_decided = 0;
    for id in sim.stack_ids() {
        let bound = sim.stack(id).bound(&ServiceId::new("consensus2"));
        assert!(bound.is_some(), "{id}: consensus2 must be bound after the switch");
        let module = bound.unwrap();
        let (kind, decided) = sim.with_stack(id, |s| {
            let kind = s.module_kind(module).unwrap().to_string();
            let decided =
                s.with_module::<ConsensusModule, _>(module, |m| m.decided_count()).unwrap();
            (kind, decided)
        });
        assert_eq!(kind, KIND_OFFSET);
        new_decided += decided;
    }

    let latencies = collect_latencies(&mut sim, &h);
    let before = Summary::of(latencies.iter().filter(|m| m.sent_at < trigger).map(|m| m.avg));
    let after = Summary::of(
        latencies.iter().filter(|m| m.sent_at >= trigger + Dur::millis(500)).map(|m| m.avg),
    );
    println!("# phase \tmean_ms\tp95_ms\tmsgs");
    println!("before \t{:.4}\t{:.4}\t{}", before.mean_ms, before.p95_ms, before.n);
    println!("after  \t{:.4}\t{:.4}\t{}", after.mean_ms, after.p95_ms, after.n);
    println!(
        "# new consensus (instance-offset) decided {} instances across {} stacks",
        new_decided, n
    );
    println!(
        "# messages fully delivered: {} (no loss across the agreement-protocol swap)",
        latencies.len()
    );
}
