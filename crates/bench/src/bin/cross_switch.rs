//! **Cross-protocol switches** (experiment E6) — "switching on-the-fly
//! between different atomic broadcast protocols", the paper's motivating
//! scenario for adaptive middleware: each row switches from one ABcast
//! implementation to another under load and reports the latency before,
//! during and after the replacement.
//!
//! ```text
//! cargo run --release -p dpu-bench --bin cross_switch [--n 3] [--load 100]
//! ```
//!
//! The interesting shape: the steady-state latencies differ per protocol
//! (sequencer < consensus-based < ring at low load), and the switch
//! carries the group from one regime to the other with only a brief
//! perturbation.

use dpu_bench::experiments::{during_summary, ExpConfig};
use dpu_bench::stats::Summary;
use dpu_bench::Args;
use dpu_core::time::{Dur, Time};
use dpu_core::ModuleSpec;
use dpu_repl::builder::specs;

fn main() {
    let args = Args::parse();
    let n: u32 = args.get("n", 3);
    let load: f64 = args.get("load", 100.0);
    let seed: u64 = args.get("seed", 42);

    type SpecFn = fn(u64) -> ModuleSpec;
    let variants: [(&str, SpecFn); 3] =
        [("ct", specs::ct), ("seq", specs::seq), ("ring", specs::ring)];

    println!("# Cross-protocol switching matrix (latency in ms)");
    println!("# n = {n}, load = {load} msg/s, seed = {seed}");
    println!("# from\tto\tbefore_ms\tduring_ms\tafter_ms\tswitch_ms\tmsgs");

    for (from_name, from_spec) in variants {
        for (to_name, to_spec) in variants {
            if from_name == to_name && !args.has("include-self") {
                continue;
            }
            let mut cfg = ExpConfig::new(n, load);
            cfg.seed = seed;
            if args.has("quick") {
                cfg.measure = Dur::secs(3);
                cfg.tail = Dur::secs(4);
            }
            // Override the initial protocol, switch mid-run to the target.
            let outcome = {
                let mut c = cfg.clone();
                c.seed = seed;
                run_cross(&c, from_spec(0), to_spec)
            };
            let (start, end) = outcome.windows[0];
            let before = Summary::of_window(&outcome.latencies, Time::ZERO, start);
            let during = during_summary(&outcome);
            let after =
                Summary::of_window(&outcome.latencies, end + Dur::millis(300), cfg.measure_end());
            println!(
                "{from_name}\t{to_name}\t{:.4}\t{:.4}\t{:.4}\t{:.3}\t{}",
                before.mean_ms,
                during.mean_ms,
                after.mean_ms,
                end.since(start).as_millis_f64(),
                outcome.latencies.len()
            );
        }
    }
}

fn run_cross(
    cfg: &ExpConfig,
    initial: ModuleSpec,
    target: fn(u64) -> ModuleSpec,
) -> dpu_bench::experiments::SwitchOutcome {
    use dpu_bench::stats::collect_latencies;
    use dpu_core::StackId;
    use dpu_repl::abcast_repl::ReplAbcastModule;
    use dpu_repl::builder::{drive_load, group_sim, request_change, GroupStackOpts, SwitchLayer};
    use dpu_sim::SimConfig;

    let mut sim_cfg = SimConfig::lan(cfg.n, cfg.seed);
    sim_cfg.trace = false;
    let opts = GroupStackOpts {
        abcast: initial,
        layer: SwitchLayer::Repl,
        probe_pad: Some(cfg.pad),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    let (mut sim, h) = group_sim(sim_cfg, &opts);
    sim.run_until(Time::ZERO + cfg.warmup);
    drive_load(&mut sim, &h, cfg.load, cfg.measure_end());
    let trigger = Time::ZERO + cfg.warmup + cfg.measure / 2;
    let h2 = h.clone();
    let spec = target(1);
    sim.schedule(trigger, move |sim| request_change(sim, StackId(0), &h2, &spec));
    sim.run_until(cfg.measure_end() + cfg.tail);

    let layer = h.layer.expect("repl layer");
    let mut complete = trigger;
    let mut reissued = 0;
    for id in sim.stack_ids() {
        let (t, re) = sim.with_stack(id, |s| {
            s.with_module::<ReplAbcastModule, _>(layer, |m| {
                (m.last_switch_at(), m.reissued_total())
            })
            .expect("repl module")
        });
        if let Some(t) = t {
            complete = complete.max(t);
        }
        reissued += re;
    }
    dpu_bench::experiments::SwitchOutcome {
        latencies: collect_latencies(&mut sim, &h),
        windows: vec![(trigger, complete)],
        reissued,
    }
}
