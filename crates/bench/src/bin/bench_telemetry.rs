//! Generates `BENCH_telemetry.json`: the switch-observability baseline
//! the unified telemetry layer exists for — a 1024-stack bursty soak
//! with a live protocol switch in the middle, reporting what an
//! operator would watch: client-observed delivery-latency percentiles
//! (p50/p99/p999) and the **switch blackout window** (change requested
//! on a stack → its first post-activation delivery) per variant.
//!
//! Two variants, the paper's motivating shapes:
//!
//! * `seq->seq` — same-protocol replacement (Figure 4/5): the new
//!   sequencer incarnation takes over, blackout is pure handoff cost;
//! * `seq->hier` — cross-protocol switch to the hierarchical
//!   (per-cluster sequencer) variant: the switch carries the group
//!   into a different latency regime under the same live load.
//!
//! Load is bursty (inhomogeneous Poisson, the IPPP traffic shape):
//! tail percentiles under burst pressure are exactly what plain
//! counters hide. Everything is virtual-time deterministic — the
//! committed JSON regenerates bit-identically from the same seed.
//!
//! On a total-order or well-formedness violation the harness dumps
//! every stack's flight recorder before panicking — the replayable
//! postmortem instead of an opaque digest mismatch.
//!
//! Usage: `cargo run --release -p dpu-bench --bin bench_telemetry
//! [--n 1024] [--load 200] [--seed 42] [--quick] [out.json]`
//! (default output `BENCH_telemetry.json`; `--quick` shrinks to
//! n = 128 for CI).

use dpu_bench::{Args, JsonWriter};
use dpu_core::telemetry::TelemetryReport;
use dpu_core::time::{Dur, Time};
use dpu_core::{ModuleSpec, StackId};
use dpu_protocols::abcast::hier::{HierAbcastParams, KIND as HIER_KIND};
use dpu_repl::builder::{
    check_run, drive_bursty, group_sim, request_change, specs, GroupStackOpts, SwitchLayer,
};
use dpu_sim::{CpuConfig, NetConfig, SimConfig};

/// One soak with a live switch to `target` at t = 800 ms. Returns the
/// unified telemetry report after asserting total order on every stack.
fn run_variant(name: &str, n: u32, load: f64, seed: u64, target: ModuleSpec) -> TelemetryReport {
    let mut cfg =
        SimConfig::clustered(n, seed, (n / 16).max(1), NetConfig::datacenter(), NetConfig::lan());
    cfg.trace = false;
    cfg.cpu = CpuConfig::fast();
    // Same reasoning as scale_switch: a 1024-way fan-out takes
    // milliseconds of modeled sequencer CPU, so the retransmit timer
    // must sit above that queueing delay.
    let rp2p = ModuleSpec::with_params(
        "rp2p",
        &dpu_net::rp2p::Rp2pConfig {
            retransmit: Dur::millis(100),
            lower: dpu_net::UDP_SVC.to_string(),
            max_retransmits: 0,
        },
    );
    let opts = GroupStackOpts {
        abcast: specs::seq(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(0),
        with_gm: false,
        extra_defaults: vec![(dpu_net::RP2P_SVC.to_string(), rp2p)],
    };
    let (mut sim, h) = group_sim(cfg, &opts);

    sim.run_until(Time::ZERO + Dur::millis(200));
    let load_end = Time::ZERO + Dur::millis(1500);
    drive_bursty(&mut sim, &h, load / 4.0, load, Dur::millis(400), 0.25, load_end);
    let trigger = Time::ZERO + Dur::millis(800);
    sim.schedule(trigger, {
        let h = h.clone();
        move |sim| request_change(sim, StackId(7 % n), &h, &target)
    });
    sim.run_until(load_end + Dur::secs(3));

    let rep = check_run(&mut sim, &h);
    if !rep.checker.check().is_empty() || !rep.wellformed.weak {
        eprint!("{}", sim.dump_flight_recorders());
    }
    rep.assert_ok();

    let report = sim.telemetry_report();
    eprintln!(
        "{name:<10} n={n:<5} {} deliveries, latency p50/p99/p999 {}/{}/{} us, {} switches, \
         blackout p50/p99 {}/{} us",
        report.delivery_latency_ns.count,
        report.delivery_latency_ns.p50 / 1_000,
        report.delivery_latency_ns.p99 / 1_000,
        report.delivery_latency_ns.p999 / 1_000,
        report.switches.completed,
        report.switches.blackout_ns.p50 / 1_000,
        report.switches.blackout_ns.p99 / 1_000,
    );
    report
}

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let n: u32 = if quick { args.get("n", 128) } else { args.get("n", 1024) };
    let load: f64 = args.get("load", 200.0);
    let seed: u64 = args.get("seed", 42);
    let out = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--") && a.parse::<f64>().is_err())
        .unwrap_or_else(|| "BENCH_telemetry.json".to_string());

    // Failover resend far above soak latency: the post-switch regime
    // must measure the hierarchical data path, not spurious rotations.
    let hier = ModuleSpec::with_params(
        HIER_KIND,
        &HierAbcastParams { namespace: 1, resend: Dur::secs(30), ..HierAbcastParams::default() },
    );
    let variants: Vec<(&str, ModuleSpec)> = vec![("seq->seq", specs::seq(1)), ("seq->hier", hier)];

    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_str(
            "bench",
            "switch observability: delivery latency + blackout window percentiles across a live \
             protocol switch (see crates/bench/src/bin/bench_telemetry.rs)",
        )
        .field_str(
            "workload",
            &format!(
                "{n} stacks in 16 datacenter clusters, bursty load base {}/s burst {load}/s \
                 (period 400ms, duty 0.25) until t=1500ms, one live switch requested at t=800ms, \
                 total order asserted on every stack",
                load / 4.0
            ),
        )
        .field_u64("seed", seed)
        .field_str(
            "units",
            "latency us (virtual time, from the telemetry layer's log-linear histograms); \
             blackout = change requested on a stack to its first post-activation delivery; \
             swap_gap = old module flushed to new module activated",
        )
        .key("rows")
        .begin_arr();
    for (name, target) in variants {
        let r = run_variant(name, n, load, seed, target);
        let lat = r.delivery_latency_ns;
        let blk = r.switches.blackout_ns;
        let gap = r.switches.swap_gap_ns;
        w.elem()
            .begin_obj()
            .field_str("variant", name)
            .field_u64("n", u64::from(n))
            .field_u64("stacks_instrumented", u64::from(r.stacks_enabled))
            .field_u64("deliveries", lat.count)
            .field_f64("delivery_p50_us", lat.p50 as f64 / 1e3, 1)
            .field_f64("delivery_p99_us", lat.p99 as f64 / 1e3, 1)
            .field_f64("delivery_p999_us", lat.p999 as f64 / 1e3, 1)
            .field_f64("delivery_max_us", lat.max as f64 / 1e3, 1)
            .field_u64("switches_completed", r.switches.completed)
            .field_f64("blackout_p50_us", blk.p50 as f64 / 1e3, 1)
            .field_f64("blackout_p99_us", blk.p99 as f64 / 1e3, 1)
            .field_f64("blackout_max_us", blk.max as f64 / 1e3, 1)
            .field_f64("swap_gap_p50_us", gap.p50 as f64 / 1e3, 1)
            .field_f64("swap_gap_p99_us", gap.p99 as f64 / 1e3, 1)
            .field_u64("flight_dropped", r.flight_dropped)
            .end_obj();
    }
    w.end_arr().end_obj();
    let json = w.finish();
    std::fs::write(&out, &json).expect("write telemetry baseline json");
    print!("{json}");
    eprintln!("wrote {out}");
}
