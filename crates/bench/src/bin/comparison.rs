//! **Switcher comparison** (experiment E3) — the measured version of the
//! paper's qualitative §4.2/§5.3 comparison: Algorithm 1 vs. a
//! Maestro-style whole-stack switcher vs. a Graceful-Adaptation-style
//! barrier switcher, under identical load with one replacement mid-run.
//!
//! ```text
//! cargo run --release -p dpu-bench --bin comparison [--n 7] [--load 150]
//! ```
//!
//! Expected shape (paper §5.3): Algorithm 1 needs **no** dedicated
//! coordination messages and **never blocks the application**; Maestro
//! blocks it for the whole flush+rebuild+barrier; Graceful Adaptation
//! blocks briefly but pays three barrier rounds of coordination.

use dpu_bench::experiments::{compare_switchers, ExpConfig};
use dpu_bench::Args;
use dpu_core::time::Dur;

fn main() {
    let args = Args::parse();
    let n: u32 = args.get("n", 7);
    let load: f64 = args.get("load", 150.0);
    let seed: u64 = args.get("seed", 42);
    let mut cfg = ExpConfig::new(n, load);
    cfg.seed = seed;
    if args.has("quick") {
        cfg.measure = Dur::secs(3);
        cfg.tail = Dur::secs(4);
    }

    println!("# Switcher comparison: one replacement under load");
    println!("# n = {n}, load = {load} msg/s, seed = {seed}");
    println!(
        "# {:<26}\tswitch_ms\tapp_blocked_ms\tcoord_msgs\tsteady_ms\tpeak_ms\tmsgs",
        "switcher"
    );
    for row in compare_switchers(&cfg) {
        println!(
            "{:<28}\t{:.3}\t{:.3}\t{}\t{:.4}\t{:.4}\t{}",
            row.name,
            row.switch_ms,
            row.blocked_ms,
            row.coord_msgs,
            row.steady_ms,
            row.peak_ms,
            row.messages
        );
    }
}
