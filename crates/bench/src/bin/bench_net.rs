//! Generates `BENCH_net.json`: what the real-socket host costs relative
//! to the in-process sharded runtime, on the same workload — n = 3
//! sequencer-ABcast stacks, paced probe broadcasts, wall-clock
//! delivery latency measured by the probe layer itself.
//!
//! The runtime hands packets between stacks through in-memory shard
//! mailboxes; the reactor pushes every one of them through a loopback
//! UDP socket and back through epoll. The committed baseline records
//! that crossing the kernel costs microseconds, not milliseconds — the
//! paper's protocol-switch latencies (tens of ms) are protocol cost,
//! not host cost.
//!
//! Usage: `cargo run --release -p dpu-bench --bin bench_net [out.json]
//! [--msgs 500] [--quick]` (default output `BENCH_net.json`).

use dpu_bench::{Args, JsonWriter};
use dpu_core::probe::Probe;
use dpu_core::StackId;
use dpu_reactor::ReactorConfig;
use dpu_repl::builder::{
    group_reactor, group_runtime, send_probe_live, send_probe_reactor, specs, GroupStackOpts,
    SwitchLayer,
};
use dpu_runtime::RuntimeConfig;
use std::time::{Duration, Instant};

const N: u32 = 3;
const SENDER: StackId = StackId(1);
const PACE: Duration = Duration::from_millis(1);

struct Measured {
    p50_us: f64,
    p99_us: f64,
    msgs_per_s: f64,
    deliveries: usize,
}

fn opts() -> GroupStackOpts {
    GroupStackOpts {
        abcast: specs::seq(0),
        layer: SwitchLayer::None,
        probe_pad: Some(32),
        with_gm: false,
        extra_defaults: Vec::new(),
    }
}

/// Drive `msgs` paced probes through `send`, wait for full delivery on
/// all `N` stacks via `delivered`, then summarise the latency samples.
fn measure(
    msgs: u32,
    mut send: impl FnMut(),
    delivered: impl Fn(u32) -> usize,
    latencies: impl Fn(u32) -> Vec<f64>,
) -> Measured {
    let t0 = Instant::now();
    for _ in 0..msgs {
        send();
        std::thread::sleep(PACE);
    }
    let limit = Instant::now() + Duration::from_secs(120);
    while !(0..N).all(|node| delivered(node) >= msgs as usize) {
        assert!(Instant::now() < limit, "timed out waiting for deliveries");
        std::thread::sleep(Duration::from_millis(5));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let mut samples: Vec<f64> = (0..N).flat_map(&latencies).collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
    Measured {
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        msgs_per_s: samples.len() as f64 / elapsed,
        deliveries: samples.len(),
    }
}

fn run_runtime(msgs: u32) -> Measured {
    let (rt, h) = group_runtime(RuntimeConfig::new(N).with_shards(1), &opts());
    let probe = h.probe.expect("probe");
    let delivered = |node: u32| {
        rt.with_stack(StackId(node), move |s| {
            s.with_module::<Probe, _>(probe, |p| p.delivered().len()).expect("probe")
        })
    };
    let lats = |node: u32| {
        rt.with_stack(StackId(node), move |s| {
            s.with_module::<Probe, _>(probe, |p| {
                p.delivered().iter().map(|r| r.latency().as_millis_f64() * 1e3).collect::<Vec<_>>()
            })
            .expect("probe")
        })
    };
    let m = measure(msgs, || send_probe_live(&rt, SENDER, &h), delivered, lats);
    rt.shutdown();
    m
}

fn run_reactor(msgs: u32) -> (Measured, dpu_reactor::ReactorStats) {
    let cfg = ReactorConfig::new(N, (0..N).map(StackId).collect());
    let (r, h) = group_reactor(cfg, &opts()).expect("spawn reactor");
    let probe = h.probe.expect("probe");
    let delivered = |node: u32| {
        r.with_stack(StackId(node), move |s| {
            s.with_module::<Probe, _>(probe, |p| p.delivered().len()).expect("probe")
        })
    };
    let lats = |node: u32| {
        r.with_stack(StackId(node), move |s| {
            s.with_module::<Probe, _>(probe, |p| {
                p.delivered()
                    .iter()
                    .map(|rec| rec.latency().as_millis_f64() * 1e3)
                    .collect::<Vec<_>>()
            })
            .expect("probe")
        })
    };
    let m = measure(msgs, || send_probe_reactor(&r, SENDER, &h), delivered, lats);
    let stats = r.stats();
    r.shutdown();
    (m, stats)
}

fn main() {
    let args = Args::parse();
    let out = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    let msgs: u32 = if args.has("quick") { 100 } else { args.get("msgs", 500) };

    let rt = run_runtime(msgs);
    let (rx, stats) = run_reactor(msgs);

    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_str(
            "bench",
            "abcast delivery latency, in-process runtime vs epoll real-socket host (see \
             crates/bench/src/bin/bench_net.rs)",
        )
        .field_str(
            "workload",
            &format!("n=3 sequencer abcast, {msgs} probes from stack 1 paced 1ms, pad 32"),
        )
        .field_str("units", "latency us, throughput deliveries/s")
        .key("runtime")
        .begin_obj()
        .field_str("host", "dpu-runtime, 1 shard, in-memory mailboxes")
        .field_f64("p50_us", rt.p50_us, 1)
        .field_f64("p99_us", rt.p99_us, 1)
        .field_f64("deliveries_per_s", rt.msgs_per_s, 0)
        .field_u64("deliveries", rt.deliveries as u64)
        .end_obj()
        .key("reactor")
        .begin_obj()
        .field_str("host", "dpu-reactor, every packet through loopback UDP + epoll")
        .field_f64("p50_us", rx.p50_us, 1)
        .field_f64("p99_us", rx.p99_us, 1)
        .field_f64("deliveries_per_s", rx.msgs_per_s, 0)
        .field_u64("deliveries", rx.deliveries as u64)
        .field_u64("packets_sent", stats.packets_sent)
        .field_u64("packets_received", stats.packets_received)
        .field_u64("malformed_dropped", stats.malformed_dropped)
        .end_obj()
        .field_f64("reactor_over_runtime_p50", rx.p50_us / rt.p50_us, 2)
        .end_obj();
    let json = w.finish();
    std::fs::write(&out, &json).expect("write baseline json");
    print!("{json}");
    eprintln!("wrote {out}");
}
