//! **Thousand-node live switch** (experiment E7) — the `cross_switch`
//! scenario at ROADMAP scale: ≥1024 full Figure-4 stacks on a clustered
//! datacenter topology, open-loop Poisson (optionally bursty) load, a
//! live sequencer→sequencer replacement in the middle, total order
//! verified on every stack at the end.
//!
//! ```text
//! cargo run --release -p dpu-bench --bin scale_switch \
//!     [--n 1024] [--clusters 16] [--load 200] [--seed 42] [--bursty]
//! ```
//!
//! Prints latency before/during/after the switch plus the unified
//! [`dpu_sim::SimReport`] (per-shard and per-generator counters, wire
//! scratch stats) — one summary per run.

use dpu_bench::stats::{collect_latencies, Summary};
use dpu_bench::Args;
use dpu_core::abcast_check::AbcastChecker;
use dpu_core::probe::Probe;
use dpu_core::time::{Dur, Time};
use dpu_core::StackId;
use dpu_repl::abcast_repl::ReplAbcastModule;
use dpu_repl::builder::{
    drive_bursty, drive_poisson, group_sim, request_change, specs, GroupStackOpts, SwitchLayer,
};
use dpu_sim::{CpuConfig, NetConfig, SimConfig};

fn main() {
    let args = Args::parse();
    let n: u32 = args.get("n", 1024);
    let clusters: u32 = args.get("clusters", 16);
    let load: f64 = args.get("load", 200.0);
    let seed: u64 = args.get("seed", 42);

    let mut cfg = SimConfig::clustered(
        n,
        seed,
        (n / clusters).max(1),
        NetConfig::datacenter(),
        NetConfig::lan(),
    );
    cfg.trace = false;
    cfg.cpu = CpuConfig::fast();
    // A 1024-way fan-out takes single-digit milliseconds of modeled CPU
    // on the sequencer; the default 20 ms retransmit timeout sits right
    // on that queueing delay and self-amplifies. 100 ms is the scale
    // setting (same reasoning as TCP's RTO floor vs. datacenter RTT).
    let retransmit: u64 = args.get("retransmit-ms", 100);
    let rp2p = dpu_core::ModuleSpec::with_params(
        "rp2p",
        &dpu_net::rp2p::Rp2pConfig {
            retransmit: Dur::millis(retransmit),
            lower: dpu_net::UDP_SVC.to_string(),
            max_retransmits: 0,
        },
    );
    let opts = GroupStackOpts {
        abcast: specs::seq(0),
        layer: SwitchLayer::Repl,
        probe_pad: Some(0),
        with_gm: false,
        extra_defaults: vec![(dpu_net::RP2P_SVC.to_string(), rp2p)],
    };
    let (mut sim, h) = group_sim(cfg, &opts);

    sim.run_until(Time::ZERO + Dur::millis(200));
    let load_end = Time::ZERO + Dur::millis(1500);
    if args.has("bursty") {
        drive_bursty(&mut sim, &h, load / 4.0, load, Dur::millis(400), 0.25, load_end);
    } else {
        drive_poisson(&mut sim, &h, load, load_end);
    }
    let trigger = Time::ZERO + Dur::millis(800);
    sim.schedule(trigger, {
        let h = h.clone();
        move |sim| request_change(sim, StackId(7 % n), &h, &specs::seq(1))
    });
    sim.run_until(load_end + Dur::secs(3));

    // Switch completion time: the last stack to apply it.
    let layer = h.layer.expect("repl layer");
    let mut complete = trigger;
    let mut reissued = 0u64;
    let mut switched = 0u32;
    for id in sim.stack_ids() {
        let (t, re, sn) = sim.with_stack(id, |s| {
            s.with_module::<ReplAbcastModule, _>(layer, |m| {
                (m.last_switch_at(), m.reissued_total(), m.seq_number())
            })
            .expect("repl module")
        });
        if let Some(t) = t {
            complete = complete.max(t);
        }
        reissued += re;
        switched += u32::from(sn == 1);
    }

    // Totals + total-order check on every stack.
    let probe = h.probe.expect("probe");
    let mut checker = AbcastChecker::new(sim.stack_ids());
    for id in sim.stack_ids() {
        let (sent, delivered) = sim.with_stack(id, |s| {
            s.with_module::<Probe, _>(probe, |p| (p.sent().to_vec(), p.delivered().to_vec()))
                .expect("probe present")
        });
        for (msg, t) in sent {
            checker.record_broadcast(msg, id, t);
        }
        for rec in delivered {
            checker.record_delivery(rec.msg, id, rec.delivered_at);
        }
    }
    let violations = checker.check();
    let sent = checker.broadcast_count();
    let complete_stacks =
        sim.stack_ids().iter().filter(|&&id| checker.delivery_count(id) == sent).count();

    let latencies = collect_latencies(&mut sim, &h);
    let before = Summary::of_window(&latencies, Time::ZERO, trigger);
    let during = Summary::of_window(&latencies, trigger, complete);
    let after = Summary::of_window(&latencies, complete + Dur::millis(50), load_end);

    println!("# scale_switch: n = {n}, clusters = {clusters}, load = {load} msg/s, seed = {seed}");
    println!(
        "switch: requested t+800ms, completed everywhere at {complete} \
         ({switched}/{n} stacks switched, {reissued} reissues)"
    );
    println!(
        "latency ms (before/during/after): {:.3} / {:.3} / {:.3}",
        before.mean_ms, during.mean_ms, after.mean_ms
    );
    println!(
        "broadcasts: {sent}; stacks with complete delivery: {complete_stacks}/{n}; \
         violations: {}",
        violations.len()
    );
    for v in violations.iter().take(10) {
        println!("  VIOLATION: {v:?}");
    }
    println!("{}", sim.report());
    if !violations.is_empty() || complete_stacks != n as usize {
        std::process::exit(1);
    }
}
