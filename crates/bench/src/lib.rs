//! # dpu-bench — the evaluation harness
//!
//! Regenerates every figure of the paper's §6 evaluation and the measured
//! version of its §4.2/§5.3 comparison, on the deterministic simulator:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig5` | Figure 5 — ABcast latency vs. time across a replacement (n = 7) |
//! | `fig6` | Figure 6 — latency vs. load, n ∈ {3, 7}, three series |
//! | `comparison` | §4.2/§5.3 — Repl vs. Maestro vs. Graceful Adaptation, measured |
//! | `consensus_switch` | §7 / ref \[16\] — replacing the agreement protocol under load |
//! | `cross_switch` | switching between *different* ABcast protocols (the paper's motivation) |
//!
//! Criterion micro-benchmarks live in `benches/`. All runs are pure
//! functions of their seed; `EXPERIMENTS.md` records outputs.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod mem;
pub mod stats;
pub mod synth;

// The one JSON writer every `BENCH_*.json` emitter uses (re-exported
// from the telemetry crate, whose reports share the same writer), so
// the committed baselines stay format-consistent without a serde
// dependency.
pub use dpu_core::telemetry::json;
pub use dpu_core::telemetry::json::JsonWriter;

/// Tiny CLI helper: read `--key value` style options with defaults, plus
/// a `--quick` switch that the binaries use to shrink sweeps.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Args {
        Args { raw: std::env::args().skip(1).collect() }
    }

    /// Value of `--name <v>`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn args_default_when_absent() {
        let a = super::Args { raw: vec!["--n".into(), "5".into(), "--quick".into()] };
        assert_eq!(a.get("n", 7u32), 5);
        assert_eq!(a.get("load", 100.0f64), 100.0);
        assert!(a.has("quick"));
        assert!(!a.has("slow"));
    }
}
