//! Latency measurement in the paper's terms (§6.2): for a message `m`
//! sent at `t`, `t_i(m)` is the time between sending and delivery on
//! stack `i`; the **average latency** of `m` is the mean of `t_i(m)` over
//! all stacks. A run yields one [`MsgLatency`] per fully-delivered
//! message; [`Summary`] aggregates a set of them.

use dpu_core::abcast_check::MsgId;
use dpu_core::probe::Probe;
use dpu_core::time::{Dur, Time};
use dpu_repl::builder::Handles;
use dpu_sim::Sim;
use std::collections::BTreeMap;

/// Per-message average latency (the paper's measurement unit).
#[derive(Clone, Copy, Debug)]
pub struct MsgLatency {
    /// Message identity.
    pub msg: MsgId,
    /// When the origin sent it.
    pub sent_at: Time,
    /// Mean of `t_i(m)` over the stacks that delivered it.
    pub avg: Dur,
    /// How many stacks delivered it.
    pub deliveries: usize,
}

/// Collect per-message average latencies from a finished run. Only
/// messages delivered by *every* non-crashed stack are included (a
/// message still in flight at the end of the run has no defined average
/// latency yet).
pub fn collect_latencies(sim: &mut Sim, h: &Handles) -> Vec<MsgLatency> {
    let probe = h.probe.expect("probe required for latency collection");
    let mut sent: BTreeMap<MsgId, Time> = BTreeMap::new();
    let mut sums: BTreeMap<MsgId, (u64, usize)> = BTreeMap::new();
    let mut live_stacks = 0usize;
    for id in sim.stack_ids() {
        if sim.stack(id).is_crashed() {
            continue;
        }
        live_stacks += 1;
        let (s, d) = sim.with_stack(id, |st| {
            st.with_module::<Probe, _>(probe, |p| (p.sent().to_vec(), p.delivered().to_vec()))
                .expect("probe present")
        });
        for (msg, t) in s {
            sent.insert(msg, t);
        }
        for rec in d {
            let e = sums.entry(rec.msg).or_insert((0, 0));
            e.0 += rec.latency().as_nanos();
            e.1 += 1;
        }
    }
    sent.into_iter()
        .filter_map(|(msg, sent_at)| {
            let &(total, count) = sums.get(&msg)?;
            if count < live_stacks {
                return None; // not yet delivered everywhere
            }
            Some(MsgLatency {
                msg,
                sent_at,
                avg: Dur::nanos(total / count as u64),
                deliveries: count,
            })
        })
        .collect()
}

/// Aggregate statistics over a set of message latencies.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Number of messages.
    pub n: usize,
    /// Mean average-latency, in milliseconds.
    pub mean_ms: f64,
    /// Median, in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, in milliseconds.
    pub p95_ms: f64,
    /// Maximum, in milliseconds.
    pub max_ms: f64,
}

impl Summary {
    /// Summarise a set of latencies (empty input gives zeros).
    pub fn of(latencies: impl IntoIterator<Item = Dur>) -> Summary {
        let mut ms: Vec<f64> = latencies.into_iter().map(|d| d.as_millis_f64()).collect();
        if ms.is_empty() {
            return Summary::default();
        }
        ms.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = ms.len();
        let pick = |q: f64| ms[((n - 1) as f64 * q).round() as usize];
        Summary {
            n,
            mean_ms: ms.iter().sum::<f64>() / n as f64,
            p50_ms: pick(0.5),
            p95_ms: pick(0.95),
            max_ms: ms[n - 1],
        }
    }

    /// Summarise the messages sent within `[from, to)`.
    pub fn of_window(msgs: &[MsgLatency], from: Time, to: Time) -> Summary {
        Summary::of(msgs.iter().filter(|m| m.sent_at >= from && m.sent_at < to).map(|m| m.avg))
    }
}

/// Bin messages by send time for time-series output (Figure 5 style):
/// returns `(bin_center_ms, mean_latency_ms, count)` per non-empty bin.
pub fn time_series(msgs: &[MsgLatency], bin: Dur) -> Vec<(f64, f64, usize)> {
    let mut bins: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
    for m in msgs {
        let idx = m.sent_at.as_nanos() / bin.as_nanos().max(1);
        let e = bins.entry(idx).or_insert((0.0, 0));
        e.0 += m.avg.as_millis_f64();
        e.1 += 1;
    }
    bins.into_iter()
        .map(|(idx, (sum, count))| {
            let center = (idx as f64 + 0.5) * bin.as_millis_f64();
            (center, sum / count as f64, count)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::StackId;

    fn ml(seq: u64, sent_ms: u64, avg_ms: u64) -> MsgLatency {
        MsgLatency {
            msg: (StackId(0), seq),
            sent_at: Time(sent_ms * 1_000_000),
            avg: Dur::millis(avg_ms),
            deliveries: 3,
        }
    }

    #[test]
    fn summary_percentiles() {
        let s = Summary::of((1..=100u64).map(Dur::millis));
        assert_eq!(s.n, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        // Nearest-rank on index round((n-1)·q): q=0.5 → index 50 → 51 ms.
        assert_eq!(s.p50_ms, 51.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.max_ms, 100.0);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::of(std::iter::empty());
        assert_eq!(s.n, 0);
        assert_eq!(s.mean_ms, 0.0);
    }

    #[test]
    fn window_filters_by_send_time() {
        let msgs = vec![ml(0, 10, 5), ml(1, 20, 7), ml(2, 30, 9)];
        let s = Summary::of_window(&msgs, Time(15_000_000), Time(25_000_000));
        assert_eq!(s.n, 1);
        assert_eq!(s.mean_ms, 7.0);
    }

    #[test]
    fn time_series_bins_and_averages() {
        let msgs = vec![ml(0, 1, 4), ml(1, 2, 6), ml(2, 11, 10)];
        let series = time_series(&msgs, Dur::millis(10));
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1, 5.0);
        assert_eq!(series[0].2, 2);
        assert_eq!(series[1].1, 10.0);
    }
}
