//! Experiment drivers shared by the figure binaries and the Criterion
//! benches: steady-state runs, runs with scheduled replacements, and the
//! three-way switcher comparison.

use crate::stats::{collect_latencies, MsgLatency, Summary};
use dpu_core::time::{Dur, Time};
use dpu_core::{ModuleSpec, StackId};
use dpu_repl::abcast_repl::ReplAbcastModule;
use dpu_repl::builder::{
    drive_load, group_sim, request_change, specs, GroupStackOpts, SwitchLayer,
};
use dpu_repl::graceful::GracefulSwitcher;
use dpu_repl::maestro::MaestroSwitcher;
use dpu_sim::SimConfig;

/// Common parameters of one experiment run.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Group size (the paper uses 3 and 7).
    pub n: u32,
    /// RNG seed (runs are pure functions of the config + seed).
    pub seed: u64,
    /// Aggregate load, messages/second across the whole group.
    pub load: f64,
    /// Settle time before measurement starts (FD stabilisation etc.).
    pub warmup: Dur,
    /// Measured (loaded) period.
    pub measure: Dur,
    /// Drain time after the load stops.
    pub tail: Dur,
    /// Application payload padding, bytes (the paper uses small
    /// messages).
    pub pad: usize,
}

impl ExpConfig {
    /// Defaults mirroring the paper's setup at a given group size and
    /// load.
    pub fn new(n: u32, load: f64) -> ExpConfig {
        ExpConfig {
            n,
            seed: 42,
            load,
            warmup: Dur::millis(500),
            measure: Dur::secs(6),
            tail: Dur::secs(8),
            pad: 32,
        }
    }

    /// End of the measured window (absolute virtual time).
    pub fn measure_end(&self) -> Time {
        Time::ZERO + self.warmup + self.measure
    }

    fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::lan(self.n, self.seed);
        cfg.trace = false; // keep long benchmark runs lean
        cfg
    }

    fn opts(&self, layer: SwitchLayer) -> GroupStackOpts {
        GroupStackOpts {
            abcast: specs::ct(0),
            layer,
            probe_pad: Some(self.pad),
            with_gm: false,
            extra_defaults: Vec::new(),
        }
    }
}

/// Run a steady load with no replacement; returns per-message latencies
/// of the measured window.
pub fn run_steady(cfg: &ExpConfig, layer: SwitchLayer) -> Vec<MsgLatency> {
    let (mut sim, h) = group_sim(cfg.sim_config(), &cfg.opts(layer));
    sim.run_until(Time::ZERO + cfg.warmup);
    drive_load(&mut sim, &h, cfg.load, cfg.measure_end());
    sim.run_until(cfg.measure_end() + cfg.tail);
    collect_latencies(&mut sim, &h)
}

/// Result of a run with scheduled replacements.
pub struct SwitchOutcome {
    /// Per-message latencies of the whole run.
    pub latencies: Vec<MsgLatency>,
    /// One `(trigger, globally-complete)` window per replacement — the
    /// paper's "replacement starts when any process triggers it and
    /// finishes when all machines have replaced the old modules".
    pub windows: Vec<(Time, Time)>,
    /// Messages re-issued by the replacement layer (Algorithm 1 lines
    /// 15–16), summed over stacks.
    pub reissued: u64,
}

/// Run a steady load with replacements scheduled at the given offsets
/// (relative to the start of the measured window), each switching to
/// `target(k)` for the k-th replacement (use a fresh namespace per k).
pub fn run_repl_switches(
    cfg: &ExpConfig,
    offsets: &[Dur],
    target: impl Fn(u64) -> ModuleSpec,
) -> SwitchOutcome {
    let opts = cfg.opts(SwitchLayer::Repl);
    let (mut sim, h) = group_sim(cfg.sim_config(), &opts);
    sim.run_until(Time::ZERO + cfg.warmup);
    drive_load(&mut sim, &h, cfg.load, cfg.measure_end());
    let mut triggers = Vec::new();
    for (k, &off) in offsets.iter().enumerate() {
        let at = Time::ZERO + cfg.warmup + off;
        triggers.push(at);
        let spec = target(k as u64 + 1);
        let h2 = h.clone();
        let initiator = StackId((k as u32) % cfg.n);
        sim.schedule(at, move |sim| request_change(sim, initiator, &h2, &spec));
    }
    sim.run_until(cfg.measure_end() + cfg.tail);

    // Reconstruct the windows from the per-stack switch histories.
    let layer = h.layer.expect("repl layer present");
    let mut completions: Vec<Vec<Time>> = Vec::new();
    let mut reissued = 0;
    for id in sim.stack_ids() {
        let (times, re) = sim.with_stack(id, |s| {
            s.with_module::<ReplAbcastModule, _>(layer, |m| {
                (m.switch_times().to_vec(), m.reissued_total())
            })
            .expect("repl module")
        });
        completions.push(times);
        reissued += re;
    }
    let windows = triggers
        .iter()
        .enumerate()
        .filter_map(|(k, &start)| {
            let end = completions.iter().map(|c| c.get(k).copied()).collect::<Option<Vec<_>>>()?;
            Some((start, end.into_iter().max()?))
        })
        .collect();

    SwitchOutcome { latencies: collect_latencies(&mut sim, &h), windows, reissued }
}

/// The latency summary of messages sent inside any replacement window.
pub fn during_summary(outcome: &SwitchOutcome) -> Summary {
    Summary::of(outcome.latencies.iter().filter_map(|m| {
        outcome.windows.iter().any(|&(a, b)| m.sent_at >= a && m.sent_at < b).then_some(m.avg)
    }))
}

/// One row of the switcher-comparison table (experiment E3).
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Switcher name.
    pub name: &'static str,
    /// Trigger → globally-complete, milliseconds.
    pub switch_ms: f64,
    /// Worst per-stack application-blocked time, milliseconds.
    pub blocked_ms: f64,
    /// Dedicated coordination messages (point-to-point), summed over
    /// stacks. Algorithm 1 needs none: the switch rides the broadcast.
    pub coord_msgs: u64,
    /// Mean latency of messages sent *outside* the switch window, ms.
    pub steady_ms: f64,
    /// Peak per-message latency across the whole run, ms.
    pub peak_ms: f64,
    /// Messages whose average latency was measured.
    pub messages: usize,
}

/// Run the three-way comparison (Repl vs. Maestro vs. Graceful
/// Adaptation) under identical load, one switch mid-run each.
pub fn compare_switchers(cfg: &ExpConfig) -> Vec<CompareRow> {
    let mut rows = Vec::new();
    for layer in [SwitchLayer::Repl, SwitchLayer::Maestro, SwitchLayer::Graceful] {
        rows.push(run_one_comparison(cfg, layer));
    }
    rows
}

fn run_one_comparison(cfg: &ExpConfig, layer: SwitchLayer) -> CompareRow {
    let opts = cfg.opts(layer);
    let (mut sim, h) = group_sim(cfg.sim_config(), &opts);
    sim.run_until(Time::ZERO + cfg.warmup);
    drive_load(&mut sim, &h, cfg.load, cfg.measure_end());
    let trigger = Time::ZERO + cfg.warmup + cfg.measure / 2;
    let spec = match layer {
        SwitchLayer::Graceful => specs::seq_in(1, "abcast.alt"),
        _ => specs::ct(1),
    };
    let h2 = h.clone();
    sim.schedule(trigger, move |sim| request_change(sim, StackId(0), &h2, &spec));
    sim.run_until(cfg.measure_end() + cfg.tail);

    let layer_id = h.layer.expect("switch layer present");
    let mut blocked = Dur::ZERO;
    let mut coord = 0u64;
    let mut complete = trigger;
    for id in sim.stack_ids() {
        match layer {
            SwitchLayer::Repl => {
                let done = sim.with_stack(id, |s| {
                    s.with_module::<ReplAbcastModule, _>(layer_id, |m| m.last_switch_at())
                        .expect("repl module")
                });
                if let Some(t) = done {
                    complete = complete.max(t);
                }
            }
            SwitchLayer::Maestro => {
                let (b, c, d) = sim.with_stack(id, |s| {
                    s.with_module::<MaestroSwitcher, _>(layer_id, |m| {
                        (m.total_blocked(), m.coord_msgs(), m.last_switch_duration())
                    })
                    .expect("maestro module")
                });
                blocked = blocked.max(b);
                coord += c;
                if let Some(d) = d {
                    complete = complete.max(trigger + d);
                }
            }
            SwitchLayer::Graceful => {
                let (b, c, d) = sim.with_stack(id, |s| {
                    s.with_module::<GracefulSwitcher, _>(layer_id, |m| {
                        (m.total_blocked(), m.coord_msgs(), m.last_switch_duration())
                    })
                    .expect("graceful module")
                });
                blocked = blocked.max(b);
                coord += c;
                if let Some(d) = d {
                    complete = complete.max(trigger + d);
                }
            }
            SwitchLayer::None => unreachable!("comparison always has a layer"),
        }
    }

    let latencies = collect_latencies(&mut sim, &h);
    let steady = Summary::of(
        latencies.iter().filter(|m| m.sent_at < trigger || m.sent_at >= complete).map(|m| m.avg),
    );
    let peak = latencies.iter().map(|m| m.avg.as_millis_f64()).fold(0.0f64, f64::max);
    CompareRow {
        name: match layer {
            SwitchLayer::Repl => "repl (Algorithm 1)",
            SwitchLayer::Maestro => "maestro (whole-stack)",
            SwitchLayer::Graceful => "graceful (AAC barriers)",
            SwitchLayer::None => unreachable!(),
        },
        switch_ms: complete.since(trigger).as_millis_f64(),
        blocked_ms: blocked.as_millis_f64(),
        coord_msgs: coord,
        steady_ms: steady.mean_ms,
        peak_ms: peak,
        messages: latencies.len(),
    }
}

/// The three Figure-6 configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig6Mode {
    /// "Normal, without replacement layer".
    NormalNoLayer,
    /// "Normal, with replacement layer".
    NormalWithLayer,
    /// "During replacement": the latency of messages sent inside
    /// replacement windows (three replacements per run).
    DuringReplacement,
}

/// Compute one point of Figure 6. Averages two seeded runs (the knee
/// region is noisy — batching makes throughput bimodal near saturation)
/// and scales the drain tail with the load so high-load points still
/// measure fully-delivered messages.
pub fn fig6_point(n: u32, load: f64, mode: Fig6Mode, seed: u64) -> Summary {
    let mut durs: Vec<Dur> = Vec::new();
    for s in [seed, seed ^ 0x5DEECE66D, seed.wrapping_add(7777), seed ^ 0xBF58476D] {
        let mut cfg = ExpConfig::new(n, load);
        cfg.seed = s;
        cfg.tail = Dur::secs(8) + Dur::secs_f64(load / 60.0);
        match mode {
            Fig6Mode::NormalNoLayer => {
                let msgs = run_steady(&cfg, SwitchLayer::None);
                durs.extend(
                    msgs.iter()
                        .filter(|m| {
                            m.sent_at >= Time::ZERO + cfg.warmup && m.sent_at < cfg.measure_end()
                        })
                        .map(|m| m.avg),
                );
            }
            Fig6Mode::NormalWithLayer => {
                let msgs = run_steady(&cfg, SwitchLayer::Repl);
                durs.extend(
                    msgs.iter()
                        .filter(|m| {
                            m.sent_at >= Time::ZERO + cfg.warmup && m.sent_at < cfg.measure_end()
                        })
                        .map(|m| m.avg),
                );
            }
            Fig6Mode::DuringReplacement => {
                let offsets = [cfg.measure / 4, cfg.measure / 2, cfg.measure * 3 / 4];
                let outcome = run_repl_switches(&cfg, &offsets, specs::ct);
                durs.extend(outcome.latencies.iter().filter_map(|m| {
                    outcome
                        .windows
                        .iter()
                        .any(|&(a, b)| m.sent_at >= a && m.sent_at < b)
                        .then_some(m.avg)
                }));
            }
        }
    }
    Summary::of(durs)
}

/// Run independent jobs on OS threads (one per job) and collect results
/// in order — the parameter sweeps are embarrassingly parallel.
pub fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items.into_iter().map(|item| scope.spawn(move || f(item))).collect();
        handles.into_iter().map(|h| h.join().expect("sweep job")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n: u32, load: f64) -> ExpConfig {
        let mut cfg = ExpConfig::new(n, load);
        cfg.measure = Dur::secs(2);
        cfg.tail = Dur::secs(4);
        cfg
    }

    #[test]
    fn steady_run_measures_all_messages() {
        let cfg = tiny(3, 30.0);
        let msgs = run_steady(&cfg, SwitchLayer::Repl);
        // 30 msg/s × 2 s ≈ 60 messages, all fully delivered.
        assert!(msgs.len() >= 55, "only {} messages measured", msgs.len());
        assert!(msgs.iter().all(|m| m.deliveries == 3));
    }

    #[test]
    fn layer_overhead_is_small_but_nonzero() {
        let cfg = tiny(3, 30.0);
        let without = Summary::of(run_steady(&cfg, SwitchLayer::None).iter().map(|m| m.avg));
        let with = Summary::of(run_steady(&cfg, SwitchLayer::Repl).iter().map(|m| m.avg));
        assert!(with.mean_ms > without.mean_ms, "indirection cannot be free");
        assert!(
            with.mean_ms < without.mean_ms * 1.5,
            "layer overhead should be modest: {} vs {}",
            with.mean_ms,
            without.mean_ms
        );
    }

    #[test]
    fn switch_run_produces_window_and_reissues_are_bounded() {
        let cfg = tiny(3, 40.0);
        let outcome = run_repl_switches(&cfg, &[Dur::secs(1)], specs::ct);
        assert_eq!(outcome.windows.len(), 1);
        let (start, end) = outcome.windows[0];
        assert!(end > start, "completion after trigger");
        assert!(
            end.since(start) < Dur::secs(1),
            "switch should be quick, took {}",
            end.since(start)
        );
        let during = during_summary(&outcome);
        let _ = during; // may be empty at low load; just must not panic
    }

    #[test]
    fn comparison_has_expected_shape() {
        let cfg = tiny(3, 40.0);
        let rows = compare_switchers(&cfg);
        assert_eq!(rows.len(), 3);
        let repl = &rows[0];
        let maestro = &rows[1];
        let graceful = &rows[2];
        assert_eq!(repl.coord_msgs, 0, "Algorithm 1 rides the broadcast");
        assert!(maestro.coord_msgs > 0);
        assert!(graceful.coord_msgs > maestro.coord_msgs, "three barriers cost more");
        assert_eq!(repl.blocked_ms, 0.0, "Algorithm 1 never blocks the app");
        assert!(maestro.blocked_ms > 0.0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..16).collect(), |x: i32| x * x);
        assert_eq!(out, (0..16).map(|x| x * x).collect::<Vec<_>>());
    }
}
