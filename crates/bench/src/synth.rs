//! Synthetic event streams for the scheduler benchmarks: the `bench_sim`
//! baseline generator and the `sim_sched` criterion bench must draw from
//! the *same* per-class delta tables, or their numbers stop being
//! comparable — so the tables live here, once.

use dpu_core::time::Time;
use dpu_sim::sched::{SchedConfig, SchedKind, Scheduler};

/// Payload sized like the simulator's `EventKind` (discriminant + ids +
/// a `Bytes`-sized body), so heap sifts move realistic bytes.
#[derive(Clone, Copy)]
pub struct FakeEvent(#[allow(dead_code)] pub [u64; 5]);

/// One standing-population shape (see `bench_sim`'s module docs for the
/// reasoning behind each profile's numbers).
#[derive(Clone, Copy)]
pub struct Profile {
    /// Profile name, as recorded in `BENCH_sim.json`.
    pub name: &'static str,
    /// In-flight packets per node.
    pub packets_per_node: u64,
    /// Packet flight-time range (ns).
    pub packet_lo: u64,
    /// Packet flight-time range (ns).
    pub packet_hi: u64,
}

/// The three standing-population profiles of `BENCH_sim.json`:
/// LAN steady state, datacenter fan-out burst, WAN sustained load.
pub const PROFILES: [Profile; 3] = [
    Profile { name: "lan_steady", packets_per_node: 13, packet_lo: 20_000, packet_hi: 150_000 },
    Profile {
        name: "datacenter_burst",
        packets_per_node: 61,
        packet_lo: 10_000,
        packet_hi: 90_000,
    },
    Profile {
        name: "wan_sustained",
        packets_per_node: 509,
        packet_lo: 15_000_000,
        packet_hi: 50_000_000,
    },
];

/// splitmix64 step: the benches' deterministic RNG.
pub fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Delta for one event class: 0 = step (post-dispatch reschedule at
/// modeled CPU cost), 1 = packet (profile-dependent), 2 = protocol
/// timer, 3 = wake (retransmit/heartbeat deadline).
pub fn delta(rng: &mut u64, class: u8, p: &Profile) -> u64 {
    let r = splitmix(rng);
    match class {
        0 => 500 + r % 1_500,                               // 0.5–2 µs
        1 => p.packet_lo + r % (p.packet_hi - p.packet_lo), // flight time
        2 => 1_000_000 + r % 9_000_000,                     // 1–10 ms
        _ => 20_000_000 + r % 80_000_000,                   // 20–100 ms
    }
}

/// Build a scheduler pre-loaded with the profile's stationary
/// population: one step + one timer + one wake per node, plus
/// `packets_per_node × n` in-flight packets. Returns the scheduler, the
/// RNG state and the next sequence number, ready for the steady-state
/// pop/push loop.
pub fn populate(kind: SchedKind, n: u64, p: &Profile) -> (Scheduler<(u8, FakeEvent)>, u64, u64) {
    let cfg = SchedConfig { kind, ..SchedConfig::default() };
    let mut s = Scheduler::new(&cfg, n as usize);
    let mut rng = 0xABCDEF_u64 ^ n;
    let mut seq = 0u64;
    for class in [0u8, 2, 3] {
        for _ in 0..n {
            s.push(Time(delta(&mut rng, class, p)), seq, (class, FakeEvent([seq; 5])));
            seq += 1;
        }
    }
    for _ in 0..p.packets_per_node * n {
        s.push(Time(delta(&mut rng, 1, p)), seq, (1, FakeEvent([seq; 5])));
        seq += 1;
    }
    (s, rng, seq)
}
