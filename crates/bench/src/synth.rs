//! Synthetic event streams for the scheduler benchmarks: the `bench_sim`
//! baseline generator and the `sim_sched` criterion bench must draw from
//! the *same* per-class delta tables, or their numbers stop being
//! comparable — so the tables live here, once. Also home to
//! [`LoadGen`], the timer-driven datagram soak module of the parallel
//! (`BENCH_par.json`) baseline.

use bytes::Bytes;
use dpu_core::stack::{net_ops, FactoryRegistry, ModuleCtx};
use dpu_core::time::{Dur, Time};
use dpu_core::wire::{self, LenPrefixed};
use dpu_core::{Call, Module, Response, ServiceId, Stack, StackConfig, StackId, TimerId};
use dpu_sim::sched::{SchedConfig, SchedKind, Scheduler};
use dpu_sim::{CpuConfig, NetConfig, Sim, SimConfig};

/// Payload sized like the simulator's `EventKind` (discriminant + ids +
/// a `Bytes`-sized body), so heap sifts move realistic bytes.
#[derive(Clone, Copy)]
pub struct FakeEvent(#[allow(dead_code)] pub [u64; 5]);

/// One standing-population shape (see `bench_sim`'s module docs for the
/// reasoning behind each profile's numbers).
#[derive(Clone, Copy)]
pub struct Profile {
    /// Profile name, as recorded in `BENCH_sim.json`.
    pub name: &'static str,
    /// In-flight packets per node.
    pub packets_per_node: u64,
    /// Packet flight-time range (ns).
    pub packet_lo: u64,
    /// Packet flight-time range (ns).
    pub packet_hi: u64,
}

/// The three standing-population profiles of `BENCH_sim.json`:
/// LAN steady state, datacenter fan-out burst, WAN sustained load.
pub const PROFILES: [Profile; 3] = [
    Profile { name: "lan_steady", packets_per_node: 13, packet_lo: 20_000, packet_hi: 150_000 },
    Profile {
        name: "datacenter_burst",
        packets_per_node: 61,
        packet_lo: 10_000,
        packet_hi: 90_000,
    },
    Profile {
        name: "wan_sustained",
        packets_per_node: 509,
        packet_lo: 15_000_000,
        packet_hi: 50_000_000,
    },
];

/// splitmix64 step: the benches' deterministic RNG.
pub fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Delta for one event class: 0 = step (post-dispatch reschedule at
/// modeled CPU cost), 1 = packet (profile-dependent), 2 = protocol
/// timer, 3 = wake (retransmit/heartbeat deadline).
pub fn delta(rng: &mut u64, class: u8, p: &Profile) -> u64 {
    let r = splitmix(rng);
    match class {
        0 => 500 + r % 1_500,                               // 0.5–2 µs
        1 => p.packet_lo + r % (p.packet_hi - p.packet_lo), // flight time
        2 => 1_000_000 + r % 9_000_000,                     // 1–10 ms
        _ => 20_000_000 + r % 80_000_000,                   // 20–100 ms
    }
}

/// A timer-driven datagram load module for the parallel-engine soak:
/// every `period`, each node fires `burst` datagrams at deterministic
/// pseudo-random peers — mostly within its own cluster, occasionally
/// across the backbone — and counts receipts. Being timer-driven, the
/// load needs no barrier actions at all, so it measures the parallel
/// engine's epoch machinery and nothing else; and being uniform over
/// nodes, the per-cluster work is balanced (the achievable-speedup
/// ceiling is the worker count, not a hot sequencer).
pub struct LoadGen {
    period: Dur,
    burst: u32,
    cluster_size: u32,
    rng: u64,
    received: u64,
}

impl LoadGen {
    /// One node's generator; `seed` should mix the stack seed and id so
    /// streams differ per node.
    pub fn new(period: Dur, burst: u32, cluster_size: u32, seed: u64) -> LoadGen {
        LoadGen { period, burst, cluster_size, rng: seed, received: 0 }
    }

    /// Datagrams this node received.
    pub fn received(&self) -> u64 {
        self.received
    }
}

impl Module for LoadGen {
    fn kind(&self) -> &str {
        "loadgen"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![ServiceId::new(dpu_core::svc::NET)]
    }
    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        // Stagger the first tick per node so the load is phase-spread.
        let stagger = Dur::nanos(splitmix(&mut self.rng) % self.period.as_nanos().max(1));
        ctx.set_timer(stagger, 1);
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op == net_ops::RECV {
            self.received += 1;
            // The payload carries its send time (virtual-clock ns):
            // stamp the end-to-end delivery latency. A no-op branch when
            // telemetry is off — the capacity runs pay only the decode.
            if let Ok((_src, payload)) = resp.decode::<(StackId, Bytes)>() {
                if let Ok((send_ns, _pad)) = wire::from_bytes::<(u64, Bytes)>(&payload) {
                    let now_ns = ctx.now().as_nanos();
                    ctx.telemetry().note_delivery(now_ns, now_ns.saturating_sub(send_ns));
                }
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _: TimerId, _: u64) {
        let n = ctx.peers().len() as u64;
        let me = ctx.stack_id();
        let send_ns = ctx.now().as_nanos();
        for _ in 0..self.burst {
            let r = splitmix(&mut self.rng);
            // 7/8 of the traffic stays on the local fabric, 1/8 crosses
            // the backbone — a cache-friendly datacenter mix.
            let dst = if r % 8 < 7 && self.cluster_size > 1 {
                let cluster = me.0 / self.cluster_size;
                let base = u64::from(cluster) * u64::from(self.cluster_size);
                let span = u64::from(self.cluster_size).min(n - base);
                StackId((base + (r >> 3) % span) as u32)
            } else {
                StackId(((r >> 3) % n) as u32)
            };
            if dst != me {
                // Scratch-pool encode (PR 3): the soak must charge the
                // epoch machinery, not one fresh allocation per datagram.
                // The datagram body is a send-time stamp plus padding,
                // nested via `LenPrefixed` so the whole frame is written
                // in one scratch pass (no per-datagram payload alloc);
                // the receiver stamps delivery latency from it.
                let data =
                    ctx.encode(&(dst, LenPrefixed(&(send_ns, Bytes::from_static(&[0x5A; 21])))));
                ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data);
            }
        }
        ctx.set_timer(self.period, 1);
    }
}

/// The datagram-soak simulation of `BENCH_par.json`: `n` [`LoadGen`]
/// stacks in 16 datacenter clusters joined by a WAN backbone (15 ms of
/// lookahead), `workers` worker threads. Telemetry is off — this is the
/// capacity scenario of `BENCH_scale.json`, whose bytes/stack budget is
/// quoted without instrumentation; [`datagram_soak_sim_telemetry`]
/// measures the documented per-stack cost of turning it on.
pub fn datagram_soak_sim(n: u32, seed: u64, workers: usize) -> Sim {
    datagram_soak_sim_telemetry(n, seed, workers, dpu_core::TelemetryConfig::off())
}

/// [`datagram_soak_sim`] with an explicit [`dpu_core::TelemetryConfig`],
/// for the capacity smoke's telemetry-on budget variant.
pub fn datagram_soak_sim_telemetry(
    n: u32,
    seed: u64,
    workers: usize,
    telemetry: dpu_core::TelemetryConfig,
) -> Sim {
    let cluster_size = (n / 16).max(1);
    let mut cfg =
        SimConfig::clustered(n, seed, cluster_size, NetConfig::datacenter(), NetConfig::wan());
    cfg.trace = false;
    cfg.cpu = CpuConfig::fast();
    cfg.workers = workers;
    cfg.telemetry = telemetry;
    Sim::new(cfg, move |sc: StackConfig| {
        let node_seed = sc.seed ^ (u64::from(sc.id.0) << 20) ^ 0xA076_1D64_78BD_642F;
        let mut s = Stack::new(sc, FactoryRegistry::new());
        s.add_module(Box::new(LoadGen::new(Dur::millis(5), 8, cluster_size, node_seed)));
        s
    })
}

/// Build a scheduler pre-loaded with the profile's stationary
/// population: one step + one timer + one wake per node, plus
/// `packets_per_node × n` in-flight packets. Returns the scheduler, the
/// RNG state and the next sequence number, ready for the steady-state
/// pop/push loop.
pub fn populate(kind: SchedKind, n: u64, p: &Profile) -> (Scheduler<(u8, FakeEvent)>, u64, u64) {
    let cfg = SchedConfig { kind, ..SchedConfig::default() };
    let mut s = Scheduler::new(&cfg, n as usize);
    let mut rng = 0xABCDEF_u64 ^ n;
    let mut seq = 0u64;
    for class in [0u8, 2, 3] {
        for _ in 0..n {
            s.push(Time(delta(&mut rng, class, p)), seq, (class, FakeEvent([seq; 5])));
            seq += 1;
        }
    }
    for _ in 0..p.packets_per_node * n {
        s.push(Time(delta(&mut rng, 1, p)), seq, (1, FakeEvent([seq; 5])));
        seq += 1;
    }
    (s, rng, seq)
}
