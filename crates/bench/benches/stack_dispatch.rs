//! Micro-benchmark: the composition kernel's dispatch loop — one service
//! call plus one response through the binding/fan-out machinery. This is
//! the indirection cost the paper's structural solution pays per
//! interaction.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use dpu_core::stack::{FactoryRegistry, ModuleCtx, Stack, StackConfig};
use dpu_core::time::Time;
use dpu_core::{Call, Module, Response, ServiceId};

struct Echo {
    svc: ServiceId,
}

impl Module for Echo {
    fn kind(&self) -> &str {
        "echo"
    }
    fn provides(&self) -> Vec<ServiceId> {
        vec![self.svc.clone()]
    }
    fn requires(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        ctx.respond(&call.service, call.op, call.data);
    }
    fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
}

struct Sink {
    svc: ServiceId,
    got: u64,
}

impl Module for Sink {
    fn kind(&self) -> &str {
        "sink"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![self.svc.clone()]
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {
        self.got += 1;
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let svc = ServiceId::new("echo");
    let mut stack = Stack::new(
        StackConfig {
            id: dpu_core::StackId(0),
            peers: [dpu_core::StackId(0)].into(),
            seed: 1,
            trace: false,
            cluster_size: None,
            telemetry: dpu_core::TelemetryConfig::off(),
        },
        FactoryRegistry::new(),
    );
    let echo = stack.add_module(Box::new(Echo { svc: svc.clone() }));
    let sink = stack.add_module(Box::new(Sink { svc: svc.clone(), got: 0 }));
    stack.bind(&svc, echo);
    while stack.step(Time(0)).is_some() {}
    let payload = Bytes::from_static(b"0123456789abcdef");

    c.bench_function("stack_dispatch/call_plus_response", |b| {
        b.iter(|| {
            stack.call_as(sink, &svc, 1, payload.clone());
            while stack.step(Time(0)).is_some() {}
        })
    });
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
