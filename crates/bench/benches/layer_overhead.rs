//! Benchmark: the ablation for the paper's "≈5 % overhead of the
//! replacement layer" claim (E4) — identical workload with and without
//! the indirection layer. Wall-clock tracks the extra dispatch events
//! the layer adds; the virtual-latency version of this ablation is in
//! the `fig6` binary's `overhead_%` column.

use criterion::{criterion_group, criterion_main, Criterion};
use dpu_bench::experiments::{run_steady, ExpConfig};
use dpu_core::time::Dur;
use dpu_repl::builder::SwitchLayer;

fn tiny() -> ExpConfig {
    let mut cfg = ExpConfig::new(3, 50.0);
    cfg.measure = Dur::secs(1);
    cfg.tail = Dur::secs(2);
    cfg
}

fn bench_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("layer_overhead");
    group.sample_size(10);
    group.bench_function("without_layer", |b| {
        b.iter(|| run_steady(&tiny(), SwitchLayer::None).len())
    });
    group.bench_function("with_repl_layer", |b| {
        b.iter(|| run_steady(&tiny(), SwitchLayer::Repl).len())
    });
    group.finish();
}

criterion_group!(benches, bench_layer);
criterion_main!(benches);
