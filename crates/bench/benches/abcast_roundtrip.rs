//! Benchmark: simulating the three atomic broadcast variants under a
//! fixed workload (n = 3, 50 msg/s for one virtual second) — compares the
//! event-complexity of the protocols, mirroring the latency ordering the
//! cross-switch experiment reports in virtual time.

use criterion::{criterion_group, criterion_main, Criterion};
use dpu_bench::stats::collect_latencies;
use dpu_core::time::{Dur, Time};
use dpu_repl::builder::{drive_load, group_sim, specs, GroupStackOpts, SwitchLayer};
use dpu_sim::SimConfig;

fn run_variant(spec: dpu_core::ModuleSpec) -> usize {
    let mut sim_cfg = SimConfig::lan(3, 42);
    sim_cfg.trace = false;
    let opts = GroupStackOpts {
        abcast: spec,
        layer: SwitchLayer::None,
        probe_pad: Some(32),
        with_gm: false,
        extra_defaults: Vec::new(),
    };
    let (mut sim, h) = group_sim(sim_cfg, &opts);
    sim.run_until(Time::ZERO + Dur::millis(300));
    let until = sim.now() + Dur::secs(1);
    drive_load(&mut sim, &h, 50.0, until);
    sim.run_until(until + Dur::secs(2));
    collect_latencies(&mut sim, &h).len()
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("abcast_variants");
    group.sample_size(10);
    group.bench_function("ct", |b| b.iter(|| run_variant(specs::ct(0))));
    group.bench_function("sequencer", |b| b.iter(|| run_variant(specs::seq(0))));
    group.bench_function("ring", |b| b.iter(|| run_variant(specs::ring(0))));
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
