//! Scheduler scaling: the single global `BinaryHeap` vs. the
//! hierarchical timing-wheel calendar queue, at the event populations a
//! 256-node simulation holds (see `bench_sim` and `BENCH_sim.json` for
//! the full n = 16/256/1024 × profile matrix and committed baseline).
//! One sample is a full pop+push turnover of the standing population.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpu_bench::synth::{delta, populate, FakeEvent, PROFILES};
use dpu_core::time::Time;
use dpu_sim::sched::SchedKind;

fn bench_sched(c: &mut Criterion) {
    let n = 256u64;
    let profile = &PROFILES[1]; // datacenter_burst
    let population = (profile.packets_per_node + 3) * n;
    let mut group = c.benchmark_group("sim_sched");
    group.throughput(Throughput::Elements(population));
    for (label, kind) in [("single_heap", SchedKind::SingleHeap), ("calendar", SchedKind::Calendar)]
    {
        let (mut s, mut rng, mut seq) = populate(kind, n, profile);
        group.bench_function(BenchmarkId::new(label, format!("n{n}_pop{population}")), |b| {
            b.iter(|| {
                for _ in 0..population {
                    let (at, (class, _)) =
                        s.pop_before(Time(u64::MAX)).expect("stationary population");
                    let dt = delta(&mut rng, class, profile);
                    s.push(Time(at.as_nanos() + dt), seq, (class, FakeEvent([seq; 5])));
                    seq += 1;
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
