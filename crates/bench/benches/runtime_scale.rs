//! Stacks-per-process throughput of the sharded live runtime: 256
//! ping-pong stacks multiplexed on 1 vs 4 shard threads. One sample is
//! a full wave — every stack pings its successor and the wave is done
//! when every stack has seen both the ping addressed to it and the pong
//! it got back — so the metric is end-to-end host scheduling (mailboxes,
//! timer wheels, `StackDriver::poll`), not protocol work.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpu_core::stack::{net_ops, FactoryRegistry, ModuleCtx};
use dpu_core::wire::Encode;
use dpu_core::{Call, Module, Response, ServiceId, Stack, StackConfig, StackId};
use dpu_runtime::{Runtime, RuntimeConfig};
use std::time::{Duration, Instant};

const STACKS: u32 = 256;

/// Replies "pong" to any "ping"; counts every datagram.
struct PingPong {
    got: u64,
}

impl Module for PingPong {
    fn kind(&self) -> &str {
        "pingpong"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![ServiceId::new(dpu_core::svc::NET)]
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != net_ops::RECV {
            return;
        }
        let (src, data): (StackId, Bytes) = resp.decode().unwrap();
        self.got += 1;
        if data.as_ref() == b"ping" {
            let reply = (src, Bytes::from_static(b"pong")).to_bytes();
            ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, reply);
        }
    }
}

/// Net bridge is module 1, the ping-pong module is module 2.
const PP: dpu_core::ModuleId = dpu_core::ModuleId(2);

fn mk(sc: StackConfig) -> Stack {
    let mut s = Stack::new(sc, FactoryRegistry::new());
    s.add_module(Box::new(PingPong { got: 0 }));
    s
}

/// Send one ping from every stack to its successor and wait until every
/// stack's receipt counter reaches `target` (2 receipts per wave: the
/// ping it is addressed and the pong for its own ping).
fn wave(rt: &Runtime, wave_no: u64) {
    for i in 0..STACKS {
        let data = (StackId((i + 1) % STACKS), Bytes::from_static(b"ping")).to_bytes();
        rt.with_stack(StackId(i), move |s| {
            s.call_as(PP, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
    }
    let target = 2 * wave_no;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let done = (0..STACKS).all(|i| {
            rt.with_stack(StackId(i), |s| s.with_module::<PingPong, _>(PP, |p| p.got).unwrap())
                >= target
        });
        if done {
            return;
        }
        assert!(Instant::now() < deadline, "wave {wave_no} incomplete after 30s");
        std::thread::yield_now();
    }
}

fn bench_runtime_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_scale");
    // One wave moves 2 * STACKS packets (pings + pongs).
    group.throughput(Throughput::Elements(u64::from(2 * STACKS)));
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for shards in [1u32, 4] {
        let rt = Runtime::spawn(RuntimeConfig::new(STACKS).with_shards(shards), mk);
        let mut wave_no = 0u64;
        group.bench_with_input(
            BenchmarkId::new("ping_wave_256_stacks", shards),
            &shards,
            |b, _| {
                b.iter(|| {
                    wave_no += 1;
                    wave(&rt, wave_no);
                })
            },
        );
        rt.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_scale);
criterion_main!(benches);
