//! Micro-benchmark: the wire codec (encode/decode of typical protocol
//! payloads). The codec sits on every message path, so its cost bounds
//! the per-event CPU model calibration.
//!
//! Three encode paths are measured:
//!
//! * `encode_*` — `to_bytes`, the one-shot path (exact-capacity buffer
//!   sized by `Encode::encoded_len`);
//! * `encode_*_scratch` — the `WireScratch` pool every stack uses on its
//!   message path (steady-state allocation-free);
//! * `encode_dgram_nested` — a protocol frame inside a `Dgram`, written
//!   forward in one pass via `DgramRef`/`LenPrefixed` (what every
//!   protocol send does), versus the two-pass encoding it replaced.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpu_core::probe::ProbeMsg;
use dpu_core::time::Time;
use dpu_core::wire::{from_bytes, to_bytes, Encode, WireScratch};
use dpu_core::StackId;
use dpu_net::dgram::{Dgram, DgramRef};

fn bench_codec(c: &mut Criterion) {
    let msg = ProbeMsg {
        origin: StackId(3),
        seq: 123_456,
        sent_at: Time(987_654_321),
        pad: Bytes::from(vec![7u8; 64]),
    };
    let encoded = to_bytes(&msg);

    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_probe_msg", |b| {
        b.iter(|| to_bytes(black_box(&msg)));
    });
    group.bench_function("encode_probe_msg_scratch", |b| {
        let mut scratch = WireScratch::new();
        b.iter(|| scratch.encode(black_box(&msg)));
    });
    group.bench_function("decode_probe_msg", |b| {
        b.iter(|| from_bytes::<ProbeMsg>(black_box(&encoded)).unwrap());
    });

    let batch: Vec<(StackId, u64, Bytes)> =
        (0..32).map(|i| (StackId(i % 7), u64::from(i), Bytes::from(vec![0u8; 48]))).collect();
    let batch_bytes = to_bytes(&batch);
    group.throughput(Throughput::Bytes(batch_bytes.len() as u64));
    group.bench_function("encode_consensus_batch_32", |b| {
        b.iter(|| to_bytes(black_box(&batch)));
    });
    group.bench_function("encode_consensus_batch_32_scratch", |b| {
        let mut scratch = WireScratch::new();
        b.iter(|| scratch.encode(black_box(&batch)));
    });
    group.bench_function("decode_consensus_batch_32", |b| {
        b.iter(|| from_bytes::<Vec<(StackId, u64, Bytes)>>(black_box(&batch_bytes)).unwrap());
    });

    // The layered-send shape: a protocol frame inside a Dgram. One-pass
    // (DgramRef, what the modules do now) vs the old two-pass encoding.
    let body = (0u32, 77u64, 5u16, Bytes::from(vec![3u8; 64]));
    let nested = DgramRef { peer: StackId(2), channel: 8, body: &body }.to_bytes();
    group.throughput(Throughput::Bytes(nested.len() as u64));
    group.bench_function("encode_dgram_nested_one_pass", |b| {
        let mut scratch = WireScratch::new();
        b.iter(|| {
            scratch.encode(&DgramRef { peer: StackId(2), channel: 8, body: black_box(&body) })
        });
    });
    group.bench_function("encode_dgram_nested_two_pass", |b| {
        b.iter(|| {
            let frame = to_bytes(black_box(&body));
            to_bytes(&Dgram { peer: StackId(2), channel: 8, data: frame })
        });
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
