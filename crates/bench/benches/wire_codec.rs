//! Micro-benchmark: the wire codec (encode/decode of typical protocol
//! payloads). The codec sits on every message path, so its cost bounds
//! the per-event CPU model calibration.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpu_core::probe::ProbeMsg;
use dpu_core::time::Time;
use dpu_core::wire::{from_bytes, to_bytes};
use dpu_core::StackId;

fn bench_codec(c: &mut Criterion) {
    let msg = ProbeMsg {
        origin: StackId(3),
        seq: 123_456,
        sent_at: Time(987_654_321),
        pad: Bytes::from(vec![7u8; 64]),
    };
    let encoded = to_bytes(&msg);

    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_probe_msg", |b| {
        b.iter(|| to_bytes(black_box(&msg)));
    });
    group.bench_function("decode_probe_msg", |b| {
        b.iter(|| from_bytes::<ProbeMsg>(black_box(&encoded)).unwrap());
    });

    let batch: Vec<(StackId, u64, Bytes)> =
        (0..32).map(|i| (StackId(i % 7), u64::from(i), Bytes::from(vec![0u8; 48]))).collect();
    let batch_bytes = to_bytes(&batch);
    group.throughput(Throughput::Bytes(batch_bytes.len() as u64));
    group.bench_function("encode_consensus_batch_32", |b| {
        b.iter(|| to_bytes(black_box(&batch)));
    });
    group.bench_function("decode_consensus_batch_32", |b| {
        b.iter(|| from_bytes::<Vec<(StackId, u64, Bytes)>>(black_box(&batch_bytes)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
