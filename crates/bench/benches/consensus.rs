//! Benchmark: wall-clock cost of simulating Chandra–Toueg consensus
//! instances at group sizes 3, 5, 7 — the engine underneath every
//! consensus-based atomic broadcast experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpu_bench::experiments::{run_steady, ExpConfig};
use dpu_core::time::Dur;
use dpu_repl::builder::SwitchLayer;

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_abcast");
    group.sample_size(10);
    for n in [3u32, 5, 7] {
        group.bench_with_input(BenchmarkId::new("simulate_1s_50msgs", n), &n, |b, &n| {
            b.iter(|| {
                let mut cfg = ExpConfig::new(n, 50.0);
                cfg.measure = Dur::secs(1);
                cfg.tail = Dur::secs(2);
                let msgs = run_steady(&cfg, SwitchLayer::None);
                assert!(!msgs.is_empty());
                msgs.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);
