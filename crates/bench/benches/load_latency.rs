//! Benchmark: Figure-6 points as wall-clock measurements — simulating the
//! group at increasing load. Event count (and thus wall time) grows with
//! load; the virtual-latency figure itself is produced by the `fig6`
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpu_bench::experiments::{fig6_point, Fig6Mode};

fn bench_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_points");
    group.sample_size(10);
    for load in [50.0f64, 150.0] {
        group.bench_with_input(
            BenchmarkId::new("n3_with_layer", load as u64),
            &load,
            |b, &load| {
                b.iter(|| {
                    let s = fig6_point(3, load, Fig6Mode::NormalWithLayer, 42);
                    assert!(s.n > 0);
                    s.n
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_points);
criterion_main!(benches);
