//! Benchmark: one full dynamic protocol update end-to-end (n = 3, under
//! load), per switcher — Algorithm 1 vs. the Maestro-style and
//! Graceful-Adaptation-style baselines. Wall-clock here tracks total
//! event count, i.e. the coordination work each approach adds.

use criterion::{criterion_group, criterion_main, Criterion};
use dpu_bench::experiments::{compare_switchers, run_repl_switches, ExpConfig};
use dpu_core::time::Dur;
use dpu_repl::builder::specs;

fn tiny() -> ExpConfig {
    let mut cfg = ExpConfig::new(3, 40.0);
    cfg.measure = Dur::secs(2);
    cfg.tail = Dur::secs(3);
    cfg
}

fn bench_switch(c: &mut Criterion) {
    let mut group = c.benchmark_group("switch_cost");
    group.sample_size(10);
    group.bench_function("repl_one_switch", |b| {
        b.iter(|| {
            let outcome = run_repl_switches(&tiny(), &[Dur::secs(1)], specs::ct);
            assert_eq!(outcome.windows.len(), 1);
            outcome.latencies.len()
        })
    });
    group.bench_function("three_way_comparison", |b| {
        b.iter(|| {
            let rows = compare_switchers(&tiny());
            assert_eq!(rows.len(), 3);
            rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_switch);
criterion_main!(benches);
