//! The FD module (paper Figure 4): a heartbeat failure detector.
//!
//! Approximates the ◇S class assumed by the paper (eventually weak
//! accuracy, strong completeness) the standard way:
//!
//! * every `heartbeat` period each process sends a heartbeat datagram to
//!   all peers over raw UDP (channel [`crate::channels::FD`]);
//! * a peer silent for longer than its current timeout is **suspected**;
//! * if a suspected peer is heard from again, it is unsuspected and its
//!   timeout is increased — so wrong suspicions of any given correct peer
//!   happen only finitely often once its timeout exceeds the real
//!   worst-case delay (eventual accuracy);
//! * crashed peers stop heartbeating and stay suspected (completeness).
//!
//! ## Service interface (`fd`)
//!
//! * call [`ops::QUERY`] — request an immediate suspicion snapshot;
//! * response [`ops::SUSPECTS`] — `Vec<StackId>` of currently suspected
//!   peers; emitted on every change and after each `QUERY`.

use crate::channels;
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::time::{Dur, Time};
use dpu_core::wire::{Decode, Encode, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId, TimerId};
use dpu_net::dgram::{self, Dgram};
use std::collections::BTreeMap;

/// Module kind name, for factory registration.
pub const KIND: &str = "fd";

/// Operation codes of the `fd` service.
pub mod ops {
    use dpu_core::Op;
    /// Call: request an immediate [`SUSPECTS`] response.
    pub const QUERY: Op = 1;
    /// Response: the current suspicion list, as `Vec<StackId>`.
    pub const SUSPECTS: Op = 2;
}

const TAG_HEARTBEAT: u64 = 1;
const TAG_CHECK: u64 = 2;

/// Tuning knobs of the failure detector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FdConfig {
    /// Heartbeat send period.
    pub heartbeat: Dur,
    /// Initial suspicion timeout.
    pub timeout: Dur,
    /// Added to a peer's timeout after each wrong suspicion.
    pub backoff: Dur,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig { heartbeat: Dur::millis(20), timeout: Dur::millis(100), backoff: Dur::millis(50) }
    }
}

impl Encode for FdConfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.heartbeat.as_nanos().encode(buf);
        self.timeout.as_nanos().encode(buf);
        self.backoff.as_nanos().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.heartbeat.as_nanos().encoded_len()
            + self.timeout.as_nanos().encoded_len()
            + self.backoff.as_nanos().encoded_len()
    }
}

impl Decode for FdConfig {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(FdConfig {
            heartbeat: Dur::nanos(u64::decode(buf)?),
            timeout: Dur::nanos(u64::decode(buf)?),
            backoff: Dur::nanos(u64::decode(buf)?),
        })
    }
}

struct PeerState {
    last_heard: Time,
    timeout: Dur,
    suspected: bool,
}

/// The failure detector module. See module docs.
pub struct FdModule {
    cfg: FdConfig,
    fd_svc: ServiceId,
    udp_svc: ServiceId,
    peers: BTreeMap<StackId, PeerState>,
    wrong_suspicions: u64,
}

impl FdModule {
    /// A failure detector with the given configuration.
    pub fn new(cfg: FdConfig) -> FdModule {
        FdModule {
            cfg,
            fd_svc: ServiceId::new(crate::FD_SVC),
            udp_svc: ServiceId::new(dpu_net::UDP_SVC),
            peers: BTreeMap::new(),
            wrong_suspicions: 0,
        }
    }

    /// Register this module's factory under [`KIND`]. Empty params mean
    /// defaults; otherwise params decode as [`FdConfig`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let cfg = if spec.params.is_empty() {
                FdConfig::default()
            } else {
                spec.params::<FdConfig>().unwrap_or_default()
            };
            Box::new(FdModule::new(cfg))
        });
    }

    /// Currently suspected peers.
    pub fn suspected(&self) -> Vec<StackId> {
        self.peers.iter().filter(|(_, p)| p.suspected).map(|(&id, _)| id).collect()
    }

    /// How many suspicions were later revoked (accuracy diagnostics).
    pub fn wrong_suspicions(&self) -> u64 {
        self.wrong_suspicions
    }

    fn publish(&self, ctx: &mut ModuleCtx<'_>) {
        let list = self.suspected();
        let data = ctx.encode(&list);
        ctx.respond(&self.fd_svc, ops::SUSPECTS, data);
    }

    fn send_heartbeats(&self, ctx: &mut ModuleCtx<'_>) {
        let me = ctx.stack_id();
        for peer in ctx.peers().to_vec() {
            if peer == me {
                continue;
            }
            let d = Dgram { peer, channel: channels::FD, data: Bytes::new() };
            let payload = ctx.encode(&d);
            ctx.call(&self.udp_svc, dgram::SEND, payload);
        }
    }

    fn check_timeouts(&mut self, ctx: &mut ModuleCtx<'_>) {
        let now = ctx.now();
        let mut changed = false;
        for p in self.peers.values_mut() {
            if !p.suspected && now.since(p.last_heard) > p.timeout {
                p.suspected = true;
                changed = true;
            }
        }
        if changed {
            self.publish(ctx);
        }
    }
}

impl Module for FdModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.fd_svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.udp_svc.clone()]
    }

    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        let me = ctx.stack_id();
        let now = ctx.now();
        for peer in ctx.peers().to_vec() {
            if peer != me {
                self.peers.insert(
                    peer,
                    PeerState { last_heard: now, timeout: self.cfg.timeout, suspected: false },
                );
            }
        }
        self.send_heartbeats(ctx);
        ctx.set_timer(self.cfg.heartbeat, TAG_HEARTBEAT);
        ctx.set_timer(self.cfg.timeout, TAG_CHECK);
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op == ops::QUERY {
            self.publish(ctx);
        }
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != dgram::RECV || resp.service != self.udp_svc {
            return;
        }
        let Ok(d) = resp.decode::<Dgram>() else { return };
        if d.channel != channels::FD {
            return;
        }
        let now = ctx.now();
        if let Some(p) = self.peers.get_mut(&d.peer) {
            p.last_heard = now;
            if p.suspected {
                // Wrong suspicion: revoke and back the timeout off so the
                // same peer is (eventually) never wrongly suspected again.
                p.suspected = false;
                p.timeout += self.cfg.backoff;
                self.wrong_suspicions += 1;
                self.publish(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _timer: TimerId, tag: u64) {
        match tag {
            TAG_HEARTBEAT => {
                self.send_heartbeats(ctx);
                ctx.set_timer(self.cfg.heartbeat, TAG_HEARTBEAT);
            }
            TAG_CHECK => {
                self.check_timeouts(ctx);
                // Check at heartbeat granularity for prompt detection.
                ctx.set_timer(self.cfg.heartbeat, TAG_CHECK);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::stack::{FactoryRegistry, Stack, StackConfig};
    use dpu_core::wire;
    use dpu_core::ModuleId;
    use dpu_net::udp::UdpModule;
    use dpu_sim::{Sim, SimConfig};

    /// Records the latest SUSPECTS list.
    struct FdSink {
        latest: Vec<StackId>,
        updates: usize,
    }

    impl Module for FdSink {
        fn kind(&self) -> &str {
            "fdsink"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(crate::FD_SVC)]
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op == ops::SUSPECTS {
                self.latest = resp.decode().unwrap();
                self.updates += 1;
            }
        }
    }

    /// Layout: m1 net bridge, m2 udp, m3 fd, m4 sink.
    const FD: ModuleId = ModuleId(3);
    const SINK: ModuleId = ModuleId(4);

    fn mk_stack(sc: StackConfig) -> Stack {
        let mut s = Stack::new(sc, FactoryRegistry::new());
        let udp = s.add_module(Box::new(UdpModule::new()));
        let fd = s.add_module(Box::new(FdModule::new(FdConfig::default())));
        s.add_module(Box::new(FdSink { latest: vec![], updates: 0 }));
        s.bind(&ServiceId::new(dpu_net::UDP_SVC), udp);
        s.bind(&ServiceId::new(crate::FD_SVC), fd);
        s
    }

    fn suspected_at(sim: &mut Sim, node: u32) -> Vec<StackId> {
        sim.with_stack(StackId(node), |s| {
            s.with_module::<FdModule, _>(FD, |m| m.suspected()).unwrap()
        })
    }

    #[test]
    fn fd_config_wire_contract() {
        dpu_core::wire::testing::assert_wire_contract(&FdConfig::default());
    }

    #[test]
    fn no_suspicions_on_healthy_network() {
        let mut sim = Sim::new(SimConfig::lan(3, 42), mk_stack);
        sim.run_until(Time::ZERO + Dur::secs(2));
        for i in 0..3 {
            assert!(suspected_at(&mut sim, i).is_empty(), "node {i} suspects someone");
        }
    }

    #[test]
    fn crashed_peer_becomes_suspected_everywhere() {
        let mut sim = Sim::new(SimConfig::lan(3, 7), mk_stack);
        sim.run_until(Time::ZERO + Dur::millis(500));
        sim.crash_at(sim.now(), StackId(2));
        sim.run_until(Time::ZERO + Dur::secs(2));
        for i in 0..2 {
            assert_eq!(suspected_at(&mut sim, i), vec![StackId(2)], "node {i}");
        }
    }

    #[test]
    fn suspicion_published_to_service_users() {
        let mut sim = Sim::new(SimConfig::lan(2, 7), mk_stack);
        sim.crash_at(Time::ZERO + Dur::millis(300), StackId(1));
        sim.run_until(Time::ZERO + Dur::secs(2));
        let latest = sim.with_stack(StackId(0), |s| {
            s.with_module::<FdSink, _>(SINK, |k| k.latest.clone()).unwrap()
        });
        assert_eq!(latest, vec![StackId(1)]);
    }

    #[test]
    fn temporary_partition_causes_wrong_suspicion_then_recovery() {
        let mut sim = Sim::new(SimConfig::lan(2, 9), mk_stack);
        sim.run_until(Time::ZERO + Dur::millis(200));
        sim.partition(&[StackId(0)], &[StackId(1)]);
        sim.run_until(Time::ZERO + Dur::millis(600));
        assert_eq!(suspected_at(&mut sim, 0), vec![StackId(1)]);
        sim.heal_partitions();
        sim.run_until(Time::ZERO + Dur::secs(3));
        assert!(suspected_at(&mut sim, 0).is_empty(), "suspicion must be revoked after heal");
        let wrong = sim.with_stack(StackId(0), |s| {
            s.with_module::<FdModule, _>(FD, |m| m.wrong_suspicions()).unwrap()
        });
        assert!(wrong >= 1);
    }

    #[test]
    fn timeout_backs_off_after_wrong_suspicion() {
        let mut sim = Sim::new(SimConfig::lan(2, 9), mk_stack);
        // Two partition episodes; after each heal the timeout grows.
        for _ in 0..2 {
            sim.partition(&[StackId(0)], &[StackId(1)]);
            let t = sim.now() + Dur::millis(600);
            sim.run_until(t);
            sim.heal_partitions();
            let t = sim.now() + Dur::millis(600);
            sim.run_until(t);
        }
        let wrong = sim.with_stack(StackId(0), |s| {
            s.with_module::<FdModule, _>(FD, |m| m.wrong_suspicions()).unwrap()
        });
        assert!(wrong >= 2);
        // Peer timeout grew beyond the initial 100ms.
        let timeout = sim.with_stack(StackId(0), |s| {
            s.with_module::<FdModule, _>(FD, |m| m.peers.get(&StackId(1)).unwrap().timeout).unwrap()
        });
        assert!(timeout > FdConfig::default().timeout);
    }

    #[test]
    fn query_triggers_immediate_response() {
        let mut sim = Sim::new(SimConfig::lan(2, 3), mk_stack);
        sim.run_until(Time::ZERO + Dur::millis(50));
        let before = sim
            .with_stack(StackId(0), |s| s.with_module::<FdSink, _>(SINK, |k| k.updates).unwrap());
        sim.with_stack(StackId(0), |s| {
            s.call_as(SINK, &ServiceId::new(crate::FD_SVC), ops::QUERY, Bytes::new())
        });
        sim.run_until(sim.now() + Dur::millis(10));
        let after = sim
            .with_stack(StackId(0), |s| s.with_module::<FdSink, _>(SINK, |k| k.updates).unwrap());
        assert_eq!(after, before + 1);
    }

    #[test]
    fn config_roundtrip_and_factory() {
        let cfg = FdConfig {
            heartbeat: Dur::millis(5),
            timeout: Dur::millis(30),
            backoff: Dur::millis(10),
        };
        let b = wire::to_bytes(&cfg);
        assert_eq!(wire::from_bytes::<FdConfig>(&b).unwrap(), cfg);
        let mut reg = FactoryRegistry::new();
        FdModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::with_params(KIND, &cfg)).unwrap();
        assert_eq!(m.kind(), KIND);
    }
}
