//! Reliable broadcast (RB): best-effort-plus-relay dissemination on top
//! of reliable point-to-point channels.
//!
//! Guarantees (for crash faults, with reliable channels):
//!
//! * **validity** — a correct sender's message is delivered by all
//!   correct processes;
//! * **agreement** — if *any* correct process delivers `m`, all correct
//!   processes deliver `m` (achieved by relaying on first delivery, so a
//!   sender crashing mid-broadcast cannot leave the group split);
//! * **integrity** — `m` is delivered at most once, and only if broadcast.
//!
//! No ordering is promised — that is atomic broadcast's job. The
//! consensus-based ABcast disseminates its payloads with exactly this
//! pattern (inlined there for batching reasons); this standalone module
//! provides the service to any other protocol that needs
//! dissemination without ordering, and is the simplest complete example
//! of a broadcast `Module`.
//!
//! ## Service interface (`rb`)
//!
//! * call [`ops::BCAST`] — broadcast the payload bytes;
//! * response [`ops::DELIVER`] — `(origin, payload)` delivered.

use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::wire::{Decode, Encode, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};
use dpu_net::dgram::{self, Dgram, DgramRef};
use std::collections::BTreeSet;

/// Module kind name, for factory registration.
pub const KIND: &str = "rb";

/// RP2P channel used by reliable broadcast.
pub const RB_CHANNEL: u16 = 10;

/// Operation codes of the `rb` service.
pub mod ops {
    use dpu_core::Op;
    /// Call: reliably broadcast the payload.
    pub const BCAST: Op = 1;
    /// Response: `(origin, payload)` delivered (unordered).
    pub const DELIVER: Op = 2;
}

struct RbMsg {
    origin: StackId,
    seq: u64,
    data: Bytes,
}

impl Encode for RbMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.origin.encode(buf);
        self.seq.encode(buf);
        self.data.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.origin.encoded_len() + self.seq.encoded_len() + self.data.encoded_len()
    }
}

impl Decode for RbMsg {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(RbMsg {
            origin: StackId::decode(buf)?,
            seq: u64::decode(buf)?,
            data: Bytes::decode(buf)?,
        })
    }
}

/// The reliable broadcast module. See module docs.
pub struct RbModule {
    svc: ServiceId,
    rp2p_svc: ServiceId,
    next_seq: u64,
    delivered: BTreeSet<(StackId, u64)>,
    relays: u64,
}

impl RbModule {
    /// A reliable broadcast module providing [`crate::RB_SVC`].
    pub fn new() -> RbModule {
        RbModule {
            svc: ServiceId::new(crate::RB_SVC),
            rp2p_svc: ServiceId::new(dpu_net::RP2P_SVC),
            next_seq: 0,
            delivered: BTreeSet::new(),
            relays: 0,
        }
    }

    /// Register this module's factory under [`KIND`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |_spec: &ModuleSpec| Box::new(RbModule::new()));
    }

    /// Messages this stack has relayed (agreement machinery at work).
    pub fn relays(&self) -> u64 {
        self.relays
    }

    /// Messages delivered.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    fn send_to_all(&self, ctx: &mut ModuleCtx<'_>, msg: &RbMsg, skip: &[StackId]) {
        let me = ctx.stack_id();
        for peer in ctx.peers().to_vec() {
            if peer == me || skip.contains(&peer) {
                continue;
            }
            let d = DgramRef { peer, channel: RB_CHANNEL, body: msg };
            let payload = ctx.encode(&d);
            ctx.call(&self.rp2p_svc, dgram::SEND, payload);
        }
    }

    fn deliver(&mut self, ctx: &mut ModuleCtx<'_>, msg: &RbMsg) -> bool {
        if !self.delivered.insert((msg.origin, msg.seq)) {
            return false;
        }
        let up = ctx.encode(&(msg.origin, &msg.data));
        ctx.respond(&self.svc, ops::DELIVER, up);
        true
    }
}

impl Default for RbModule {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for RbModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.rp2p_svc.clone()]
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op != ops::BCAST {
            return;
        }
        let msg = RbMsg { origin: ctx.stack_id(), seq: self.next_seq, data: call.data };
        self.next_seq += 1;
        // Deliver locally first (validity), then disseminate.
        self.deliver(ctx, &msg);
        self.send_to_all(ctx, &msg, &[]);
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.service != self.rp2p_svc || resp.op != dgram::RECV {
            return;
        }
        let Ok(d) = resp.decode::<Dgram>() else { return };
        if d.channel != RB_CHANNEL {
            return;
        }
        let Ok(msg) = dpu_core::wire::from_bytes::<RbMsg>(&d.data) else { return };
        // Relay on FIRST delivery — this is what upgrades best-effort to
        // (regular) reliable broadcast: even if the origin crashed after
        // reaching only us, everyone still gets it.
        if self.deliver(ctx, &msg) {
            self.relays += 1;
            self.send_to_all(ctx, &msg, &[d.peer, msg.origin]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::stack::{FactoryRegistry, Stack, StackConfig};
    use dpu_core::time::{Dur, Time};
    use dpu_core::ModuleId;
    use dpu_net::rp2p::{Rp2pConfig, Rp2pModule};
    use dpu_net::udp::UdpModule;
    use dpu_sim::{Sim, SimConfig};

    struct App {
        got: Vec<(StackId, Bytes)>,
    }

    impl Module for App {
        fn kind(&self) -> &str {
            "rb-app"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(crate::RB_SVC)]
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op == ops::DELIVER {
                self.got.push(resp.decode().unwrap());
            }
        }
    }

    /// Layout: m1 net, m2 udp, m3 rp2p, m4 rb, m5 app.
    const RB: ModuleId = ModuleId(4);
    const APP: ModuleId = ModuleId(5);

    fn mk_stack(sc: StackConfig) -> Stack {
        let mut s = Stack::new(sc, FactoryRegistry::new());
        let udp = s.add_module(Box::new(UdpModule::new()));
        let rp2p = s.add_module(Box::new(Rp2pModule::new(Rp2pConfig::default())));
        let rb = s.add_module(Box::new(RbModule::new()));
        s.add_module(Box::new(App { got: vec![] }));
        s.bind(&ServiceId::new(dpu_net::UDP_SVC), udp);
        s.bind(&ServiceId::new(dpu_net::RP2P_SVC), rp2p);
        s.bind(&ServiceId::new(crate::RB_SVC), rb);
        s
    }

    fn bcast(sim: &mut Sim, node: u32, payload: &[u8]) {
        let data = Bytes::copy_from_slice(payload);
        sim.with_stack(StackId(node), |s| {
            s.call_as(APP, &ServiceId::new(crate::RB_SVC), ops::BCAST, data)
        });
    }

    fn got(sim: &mut Sim, node: u32) -> Vec<(StackId, Bytes)> {
        sim.with_stack(StackId(node), |s| s.with_module::<App, _>(APP, |a| a.got.clone()).unwrap())
    }

    #[test]
    fn rb_msg_wire_contract() {
        dpu_core::wire::testing::assert_wire_contract(&RbMsg {
            origin: StackId(2),
            seq: 5,
            data: Bytes::from_static(b"payload"),
        });
    }

    #[test]
    fn broadcast_reaches_everyone_including_sender() {
        let mut sim = Sim::new(SimConfig::lan(4, 1), mk_stack);
        bcast(&mut sim, 2, b"hello");
        sim.run_until(Time::ZERO + Dur::millis(100));
        for node in 0..4 {
            let g = got(&mut sim, node);
            assert_eq!(g, vec![(StackId(2), Bytes::from_static(b"hello"))], "node {node}");
        }
    }

    #[test]
    fn no_duplicates_despite_relays() {
        let mut sim = Sim::new(SimConfig::lan(5, 3), mk_stack);
        for i in 0..5u32 {
            bcast(&mut sim, i, &[i as u8]);
        }
        sim.run_until(Time::ZERO + Dur::millis(500));
        for node in 0..5 {
            let g = got(&mut sim, node);
            assert_eq!(g.len(), 5, "node {node} got {}", g.len());
            let unique: BTreeSet<_> = g.iter().collect();
            assert_eq!(unique.len(), 5, "node {node} has duplicates");
        }
        // Relays did happen (each non-origin stack relays each message).
        let relays = sim
            .with_stack(StackId(0), |s| s.with_module::<RbModule, _>(RB, |m| m.relays()).unwrap());
        assert!(relays > 0);
    }

    #[test]
    fn agreement_when_sender_crashes_mid_broadcast() {
        // Partition the sender from everyone except one witness, let the
        // witness receive, crash the sender, heal: the witness's relay
        // must complete dissemination.
        let mut sim = Sim::new(SimConfig::lan(4, 7), mk_stack);
        // Sender 0 can only reach stack 1.
        sim.partition(&[StackId(0)], &[StackId(2), StackId(3)]);
        bcast(&mut sim, 0, b"last-words");
        sim.run_until(Time::ZERO + Dur::millis(100));
        assert_eq!(got(&mut sim, 1).len(), 1, "witness received");
        // (Stacks 2 and 3 may already have it — via the witness's relay,
        // which is exactly the agreement machinery under test.)
        sim.crash_at(sim.now(), StackId(0));
        sim.heal_partitions();
        sim.run_until(Time::ZERO + Dur::secs(5));
        for node in 1..4 {
            assert_eq!(
                got(&mut sim, node),
                vec![(StackId(0), Bytes::from_static(b"last-words"))],
                "node {node}: relay must have completed dissemination"
            );
        }
    }

    #[test]
    fn survives_message_loss_via_rp2p() {
        let mut cfg = SimConfig::lan(3, 11);
        cfg.net.loss = 0.3;
        let mut sim = Sim::new(cfg, mk_stack);
        for j in 0..10u8 {
            bcast(&mut sim, 0, &[j]);
        }
        sim.run_until(Time::ZERO + Dur::secs(10));
        for node in 0..3 {
            assert_eq!(got(&mut sim, node).len(), 10, "node {node}");
        }
    }

    #[test]
    fn factory_registration() {
        let mut reg = FactoryRegistry::new();
        RbModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::new(KIND)).unwrap();
        assert_eq!(m.kind(), KIND);
        assert_eq!(m.provides(), vec![ServiceId::new(crate::RB_SVC)]);
    }
}
