//! The CT module (paper Figure 4): distributed consensus using the
//! **Chandra–Toueg ◇S algorithm** with a rotating coordinator
//! (JACM 43(2), 1996), as used by the paper's atomic broadcast.
//!
//! # Algorithm sketch (per instance)
//!
//! Rounds are asynchronous; round `r` has a coordinator determined by the
//! [`CoordPolicy`].
//!
//! 1. every process sends its current *estimate* (with the round in which
//!    it was last adopted, its `ts`) to the coordinator of `r`;
//! 2. the coordinator collects a majority of estimates, picks the one with
//!    the largest `ts`, and proposes it to all;
//! 3. a process receiving the proposal adopts it (`ts ← r`) and *acks*;
//!    a process that instead comes to suspect the coordinator (via the
//!    `fd` service) *nacks* and moves to round `r + 1`;
//! 4. on a majority of acks the coordinator decides and reliably
//!    broadcasts the decision (every receiver relays it once).
//!
//! Safety (no two processes decide differently) holds under any failure
//! detector behaviour; liveness needs ◇S and a majority of correct
//! processes — exactly the assumptions of the paper.
//!
//! # Service interface (`consensus`, instance-keyed)
//!
//! Instances are identified by `(namespace, k)`: the namespace isolates
//! independent users (e.g. two incarnations of atomic broadcast around a
//! dynamic protocol update) and `k` is the user's instance counter.
//!
//! * call [`ops::PROPOSE`] — `(ns, k, value)`;
//! * response [`ops::DECIDE`] — `(ns, k, value)`;
//! * response [`ops::NEED_PROPOSAL`] — `(ns, k)`: the instance is running
//!   remotely but has no local proposal yet; users should propose.
//!
//! # Variants
//!
//! [`CoordPolicy::Rotating`] is the textbook CT schedule (kind
//! `consensus.ct`). [`CoordPolicy::InstanceOffset`] rotates the *starting*
//! coordinator with the instance number (kind `consensus.offset`),
//! spreading coordinator load across instances — the second agreement
//! protocol used by the consensus-replacement experiment (paper §7 /
//! ref \[16\]).

use crate::channels;
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::wire::{Decode, Encode, WireError, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};
use dpu_net::dgram::{self, Dgram, DgramRef};
use std::collections::{BTreeMap, BTreeSet};

/// Module kind name of the rotating-coordinator variant.
pub const KIND_CT: &str = "consensus.ct";
/// Module kind name of the instance-offset variant.
pub const KIND_OFFSET: &str = "consensus.offset";

/// Operation codes of the `consensus` service.
pub mod ops {
    use dpu_core::Op;
    /// Call: propose `(ns, k, value)` for instance `(ns, k)`.
    pub const PROPOSE: Op = 1;
    /// Response: instance `(ns, k)` decided `value`.
    pub const DECIDE: Op = 2;
    /// Response: instance `(ns, k)` needs a local proposal.
    pub const NEED_PROPOSAL: Op = 3;
}

/// Coordinator schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordPolicy {
    /// Coordinator of round `r` is `peers[r mod n]` (textbook CT).
    Rotating,
    /// Coordinator of round `r` of instance `k` is `peers[(k + r) mod n]`,
    /// spreading coordinator load across instances.
    InstanceOffset,
}

/// Factory parameters of the consensus module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusParams {
    /// Service name to provide (default [`crate::CONSENSUS_SVC`]). Lets a
    /// new incarnation live side by side with an old one under a
    /// different name (used by the consensus-replacement experiment).
    pub service: String,
    /// Incarnation tag on all wire messages; two module incarnations with
    /// different tags ignore each other's traffic entirely.
    pub incarnation: u64,
}

impl Default for ConsensusParams {
    fn default() -> Self {
        ConsensusParams { service: crate::CONSENSUS_SVC.to_string(), incarnation: 0 }
    }
}

impl Encode for ConsensusParams {
    fn encode(&self, buf: &mut BytesMut) {
        self.service.encode(buf);
        self.incarnation.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.service.encoded_len() + self.incarnation.encoded_len()
    }
}

impl Decode for ConsensusParams {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(ConsensusParams { service: String::decode(buf)?, incarnation: u64::decode(buf)? })
    }
}

enum Body {
    Estimate { est: Bytes, ts: u64 },
    Proposal { v: Bytes },
    Ack,
    Nack,
    Decide { v: Bytes },
}

struct WireMsg {
    inc: u64,
    ns: u64,
    k: u64,
    round: u64,
    body: Body,
}

impl Encode for WireMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.inc.encode(buf);
        self.ns.encode(buf);
        self.k.encode(buf);
        self.round.encode(buf);
        match &self.body {
            Body::Estimate { est, ts } => {
                0u32.encode(buf);
                est.encode(buf);
                ts.encode(buf);
            }
            Body::Proposal { v } => {
                1u32.encode(buf);
                v.encode(buf);
            }
            Body::Ack => 2u32.encode(buf),
            Body::Nack => 3u32.encode(buf),
            Body::Decide { v } => {
                4u32.encode(buf);
                v.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        let head = self.inc.encoded_len()
            + self.ns.encoded_len()
            + self.k.encoded_len()
            + self.round.encoded_len();
        head + match &self.body {
            Body::Estimate { est, ts } => 0u32.encoded_len() + est.encoded_len() + ts.encoded_len(),
            Body::Proposal { v } => 1u32.encoded_len() + v.encoded_len(),
            Body::Ack => 2u32.encoded_len(),
            Body::Nack => 3u32.encoded_len(),
            Body::Decide { v } => 4u32.encoded_len() + v.encoded_len(),
        }
    }
}

impl Decode for WireMsg {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let inc = u64::decode(buf)?;
        let ns = u64::decode(buf)?;
        let k = u64::decode(buf)?;
        let round = u64::decode(buf)?;
        let body = match u32::decode(buf)? {
            0 => Body::Estimate { est: Bytes::decode(buf)?, ts: u64::decode(buf)? },
            1 => Body::Proposal { v: Bytes::decode(buf)? },
            2 => Body::Ack,
            3 => Body::Nack,
            4 => Body::Decide { v: Bytes::decode(buf)? },
            t => return Err(WireError::BadTag(t)),
        };
        Ok(WireMsg { inc, ns, k, round, body })
    }
}

#[derive(Default)]
struct Inst {
    proposal: Option<Bytes>,
    estimate: Option<(Bytes, u64)>,
    round: u64,
    decided: Option<Bytes>,
    /// Rounds for which this process already sent its estimate.
    estimate_sent: BTreeSet<u64>,
    /// Rounds this process already acked or nacked.
    responded: BTreeSet<u64>,
    /// Coordinator side: collected estimates per round.
    estimates: BTreeMap<u64, BTreeMap<StackId, (Bytes, u64)>>,
    /// Coordinator side: proposal this process broadcast per round.
    coord_proposal: BTreeMap<u64, Bytes>,
    /// Coordinator side: ack senders per round.
    acks: BTreeMap<u64, BTreeSet<StackId>>,
    /// Participant side: proposals received per round.
    proposals_recv: BTreeMap<u64, Bytes>,
    /// Whether a NEED_PROPOSAL response was already emitted.
    need_sent: bool,
    /// Whether the decision was already relayed to peers.
    relayed: bool,
}

/// The consensus module. See module docs.
pub struct ConsensusModule {
    params: ConsensusParams,
    policy: CoordPolicy,
    svc: ServiceId,
    rp2p_svc: ServiceId,
    fd_svc: ServiceId,
    suspected: BTreeSet<StackId>,
    insts: BTreeMap<(u64, u64), Inst>,
    decided_count: u64,
    max_round_seen: u64,
}

impl ConsensusModule {
    /// Build with explicit parameters and policy.
    pub fn new(params: ConsensusParams, policy: CoordPolicy) -> ConsensusModule {
        let svc = ServiceId::new(&params.service);
        ConsensusModule {
            params,
            policy,
            svc,
            rp2p_svc: ServiceId::new(dpu_net::RP2P_SVC),
            fd_svc: ServiceId::new(crate::FD_SVC),
            suspected: BTreeSet::new(),
            insts: BTreeMap::new(),
            decided_count: 0,
            max_round_seen: 0,
        }
    }

    /// Register factories for both kinds ([`KIND_CT`], [`KIND_OFFSET`]).
    /// Empty params mean defaults; otherwise params decode as
    /// [`ConsensusParams`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        for (kind, policy) in
            [(KIND_CT, CoordPolicy::Rotating), (KIND_OFFSET, CoordPolicy::InstanceOffset)]
        {
            reg.register(kind, move |spec: &ModuleSpec| {
                let params = if spec.params.is_empty() {
                    ConsensusParams::default()
                } else {
                    spec.params::<ConsensusParams>().unwrap_or_default()
                };
                Box::new(ConsensusModule::new(params, policy))
            });
        }
    }

    /// Number of instances decided locally.
    pub fn decided_count(&self) -> u64 {
        self.decided_count
    }

    /// Highest round reached by any instance (1-based round numbers start
    /// at 0; a value of 0 means every instance decided in its first
    /// round).
    pub fn max_round_seen(&self) -> u64 {
        self.max_round_seen
    }

    fn majority(ctx: &ModuleCtx<'_>) -> usize {
        ctx.peers().len() / 2 + 1
    }

    fn coord(&self, ctx: &ModuleCtx<'_>, k: u64, round: u64) -> StackId {
        let peers = ctx.peers();
        let n = peers.len() as u64;
        let idx = match self.policy {
            CoordPolicy::Rotating => round % n,
            CoordPolicy::InstanceOffset => (k + round) % n,
        };
        peers[idx as usize]
    }

    fn send(&self, ctx: &mut ModuleCtx<'_>, to: StackId, msg: &WireMsg) {
        // One forward pass through the stack scratch: the WireMsg is
        // encoded in place inside the Dgram frame.
        let d = DgramRef { peer: to, channel: channels::CONSENSUS, body: msg };
        let payload = ctx.encode(&d);
        ctx.call(&self.rp2p_svc, dgram::SEND, payload);
    }

    fn broadcast(&self, ctx: &mut ModuleCtx<'_>, msg: &WireMsg) {
        for peer in ctx.peers().to_vec() {
            self.send(ctx, peer, msg);
        }
    }

    fn wire(&self, ns: u64, k: u64, round: u64, body: Body) -> WireMsg {
        WireMsg { inc: self.params.incarnation, ns, k, round, body }
    }

    fn decide(&mut self, ctx: &mut ModuleCtx<'_>, ns: u64, k: u64, v: Bytes) {
        let inst = self.insts.entry((ns, k)).or_default();
        if inst.decided.is_some() {
            return;
        }
        inst.decided = Some(v.clone());
        self.decided_count += 1;
        if !inst.relayed {
            inst.relayed = true;
            let me = ctx.stack_id();
            let msg = self.wire(ns, k, 0, Body::Decide { v: v.clone() });
            for peer in ctx.peers().to_vec() {
                if peer != me {
                    self.send(ctx, peer, &msg);
                }
            }
        }
        let data = ctx.encode(&(ns, k, v));
        ctx.respond(&self.svc, ops::DECIDE, data);
    }

    /// The idempotent progress engine: inspect the instance state and take
    /// every enabled step of the CT algorithm.
    ///
    /// Follows the textbook round structure: after acking (or nacking) the
    /// proposal of its current round a process moves straight to the next
    /// round; the decision arrives asynchronously via the reliable
    /// broadcast of `Decide` and terminates the instance.
    fn advance(&mut self, ctx: &mut ModuleCtx<'_>, ns: u64, k: u64) {
        let me = ctx.stack_id();
        let majority = Self::majority(ctx);
        loop {
            if self.insts.entry((ns, k)).or_default().decided.is_some() {
                return;
            }

            // Coordinator duties apply to *any* round this process
            // coordinates, not just its current one — slower peers may
            // still be working on older rounds.
            // Phase 2: a majority of estimates for a round → proposal.
            let ready: Vec<u64> = {
                let inst = self.insts.get(&(ns, k)).expect("entry exists");
                inst.estimates
                    .iter()
                    .filter(|(r2, ests)| {
                        self.coord(ctx, k, **r2) == me
                            && ests.len() >= majority
                            && !inst.coord_proposal.contains_key(r2)
                    })
                    .map(|(&r2, _)| r2)
                    .collect()
            };
            for r2 in ready {
                let inst = self.insts.get_mut(&(ns, k)).expect("entry exists");
                let ests = inst.estimates.get(&r2).expect("checked");
                // Largest ts wins; ties broken by longer value (prefers
                // non-empty proposals in the abcast use case), then by
                // lower sender id (determinism).
                let (_, (v, _)) = ests
                    .iter()
                    .max_by(|(ida, (va, tsa)), (idb, (vb, tsb))| {
                        tsa.cmp(tsb).then(va.len().cmp(&vb.len())).then(idb.cmp(ida))
                    })
                    .expect("non-empty");
                let v = v.clone();
                inst.coord_proposal.insert(r2, v.clone());
                let msg = self.wire(ns, k, r2, Body::Proposal { v });
                self.broadcast(ctx, &msg);
            }

            // Phase 4: a majority of acks on an own proposal → decide.
            let decided: Option<(u64, Bytes)> = {
                let inst = self.insts.get(&(ns, k)).expect("entry exists");
                inst.acks
                    .iter()
                    .find(|(r2, acks)| {
                        acks.len() >= majority && inst.coord_proposal.contains_key(r2)
                    })
                    .map(|(&r2, _)| (r2, inst.coord_proposal[&r2].clone()))
            };
            if let Some((_, v)) = decided {
                self.decide(ctx, ns, k, v);
                return;
            }

            let r = self.insts.get(&(ns, k)).expect("entry exists").round;
            self.max_round_seen = self.max_round_seen.max(r);
            let coord = self.coord(ctx, k, r);

            // Phase 1: send my estimate for my current round.
            let est_msg: Option<WireMsg> = {
                let inst = self.insts.get_mut(&(ns, k)).expect("entry exists");
                match inst.estimate.clone() {
                    Some((est, ts)) if !inst.estimate_sent.contains(&r) => {
                        inst.estimate_sent.insert(r);
                        Some(self.wire(ns, k, r, Body::Estimate { est, ts }))
                    }
                    _ => None,
                }
            };
            if let Some(msg) = est_msg {
                self.send(ctx, coord, &msg);
            }

            // Phase 3: respond to the proposal of my current round, or
            // give up on a suspected coordinator; either way move to the
            // next round and loop.
            let inst = self.insts.get_mut(&(ns, k)).expect("entry exists");
            if inst.responded.contains(&r) {
                // Already responded but round was not advanced (can only
                // happen transiently); push forward defensively.
                inst.round = r + 1;
                continue;
            }
            if let Some(v) = inst.proposals_recv.get(&r).cloned() {
                inst.responded.insert(r);
                inst.estimate = Some((v, r + 1));
                inst.round = r + 1;
                let msg = self.wire(ns, k, r, Body::Ack);
                self.send(ctx, coord, &msg);
                continue;
            }
            if coord != me && self.suspected.contains(&coord) && inst.estimate.is_some() {
                inst.responded.insert(r);
                inst.round = r + 1;
                let msg = self.wire(ns, k, r, Body::Nack);
                self.send(ctx, coord, &msg);
                continue;
            }
            // Waiting: for a proposal (participant), for estimates
            // (coordinator), or for a local proposal value.
            return;
        }
    }

    fn on_wire(&mut self, ctx: &mut ModuleCtx<'_>, from: StackId, msg: WireMsg) {
        if msg.inc != self.params.incarnation {
            return;
        }
        let (ns, k) = (msg.ns, msg.k);
        {
            let inst = self.insts.entry((ns, k)).or_default();
            match msg.body {
                Body::Estimate { est, ts } => {
                    inst.estimates.entry(msg.round).or_default().insert(from, (est, ts));
                }
                Body::Proposal { v } => {
                    inst.proposals_recv.insert(msg.round, v);
                    // A proposal for a future round lets us jump forward:
                    // rounds we skipped can no longer decide without us.
                    if msg.round > inst.round {
                        inst.round = msg.round;
                    }
                }
                Body::Ack => {
                    inst.acks.entry(msg.round).or_default().insert(from);
                }
                Body::Nack => {
                    // The nacker moved on; nothing to do — the coordinator
                    // keeps waiting for a majority of acks which may still
                    // arrive from others.
                }
                Body::Decide { v } => {
                    self.decide(ctx, ns, k, v);
                    return;
                }
            }
        }
        // Prompt the service user for a proposal if we are a bystander.
        let inst = self.insts.get_mut(&(ns, k)).expect("entry exists");
        if inst.proposal.is_none() && !inst.need_sent {
            inst.need_sent = true;
            let data = ctx.encode(&(ns, k));
            ctx.respond(&self.svc, ops::NEED_PROPOSAL, data);
        }
        self.advance(ctx, ns, k);
    }
}

impl Module for ConsensusModule {
    fn kind(&self) -> &str {
        match self.policy {
            CoordPolicy::Rotating => KIND_CT,
            CoordPolicy::InstanceOffset => KIND_OFFSET,
        }
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.rp2p_svc.clone(), self.fd_svc.clone()]
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op != ops::PROPOSE {
            return;
        }
        let Ok((ns, k, v)) = call.decode::<(u64, u64, Bytes)>() else { return };
        let inst = self.insts.entry((ns, k)).or_default();
        if let Some(d) = inst.decided.clone() {
            // Already decided (e.g. the decision arrived before the local
            // proposal): re-respond for the late proposer.
            let data = ctx.encode(&(ns, k, d));
            ctx.respond(&self.svc, ops::DECIDE, data);
            return;
        }
        if inst.proposal.is_some() {
            return; // at most one proposal per instance per process
        }
        inst.proposal = Some(v.clone());
        if inst.estimate.is_none() {
            inst.estimate = Some((v, 0));
        }
        self.advance(ctx, ns, k);
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.service == self.fd_svc && resp.op == crate::fd::ops::SUSPECTS {
            let Ok(list) = resp.decode::<Vec<StackId>>() else { return };
            let new: BTreeSet<StackId> = list.into_iter().collect();
            if new == self.suspected {
                return;
            }
            self.suspected = new;
            // Suspicions may unblock round changes in any open instance.
            let open: Vec<(u64, u64)> = self
                .insts
                .iter()
                .filter(|(_, i)| i.decided.is_none() && i.estimate.is_some())
                .map(|(&key, _)| key)
                .collect();
            for (ns, k) in open {
                self.advance(ctx, ns, k);
            }
            return;
        }
        if resp.service == self.rp2p_svc && resp.op == dgram::RECV {
            let Ok(d) = resp.decode::<Dgram>() else { return };
            if d.channel != channels::CONSENSUS {
                return;
            }
            let Ok(msg) = dpu_core::wire::from_bytes::<WireMsg>(&d.data) else { return };
            self.on_wire(ctx, d.peer, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{FdConfig, FdModule};
    use dpu_core::stack::{FactoryRegistry, Stack, StackConfig};
    use dpu_core::time::{Dur, Time};
    use dpu_core::wire::{self, Encode};
    use dpu_core::ModuleId;
    use dpu_net::rp2p::{Rp2pConfig, Rp2pModule};
    use dpu_net::udp::UdpModule;
    use dpu_sim::{Sim, SimConfig};

    /// Records DECIDE responses; proposes on request.
    struct User {
        decisions: BTreeMap<(u64, u64), Bytes>,
        needs: Vec<(u64, u64)>,
        auto_value: Option<Bytes>,
    }

    impl Module for User {
        fn kind(&self) -> &str {
            "consensus-user"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(crate::CONSENSUS_SVC)]
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
            match resp.op {
                ops::DECIDE => {
                    let (ns, k, v): (u64, u64, Bytes) = resp.decode().unwrap();
                    self.decisions.insert((ns, k), v);
                }
                ops::NEED_PROPOSAL => {
                    let (ns, k): (u64, u64) = resp.decode().unwrap();
                    self.needs.push((ns, k));
                    if let Some(v) = self.auto_value.clone() {
                        ctx.call(
                            &ServiceId::new(crate::CONSENSUS_SVC),
                            ops::PROPOSE,
                            (ns, k, v).to_bytes(),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// Layout: m1 net, m2 udp, m3 rp2p, m4 fd, m5 consensus, m6 user.
    const CONS: ModuleId = ModuleId(5);
    const USER: ModuleId = ModuleId(6);

    fn mk_stack_with(policy: CoordPolicy) -> impl FnMut(StackConfig) -> Stack {
        move |sc: StackConfig| {
            let me = sc.id;
            let mut s = Stack::new(sc, FactoryRegistry::new());
            let udp = s.add_module(Box::new(UdpModule::new()));
            let rp2p = s.add_module(Box::new(Rp2pModule::new(Rp2pConfig::default())));
            let fd = s.add_module(Box::new(FdModule::new(FdConfig::default())));
            let cons =
                s.add_module(Box::new(ConsensusModule::new(ConsensusParams::default(), policy)));
            s.add_module(Box::new(User {
                decisions: BTreeMap::new(),
                needs: vec![],
                auto_value: Some(Bytes::from(format!("auto-{}", me.0))),
            }));
            s.bind(&ServiceId::new(dpu_net::UDP_SVC), udp);
            s.bind(&ServiceId::new(dpu_net::RP2P_SVC), rp2p);
            s.bind(&ServiceId::new(crate::FD_SVC), fd);
            s.bind(&ServiceId::new(crate::CONSENSUS_SVC), cons);
            s
        }
    }

    fn propose(sim: &mut Sim, node: u32, ns: u64, k: u64, v: &str) {
        let payload = (ns, k, Bytes::from(v.to_string())).to_bytes();
        sim.with_stack(StackId(node), |s| {
            s.call_as(USER, &ServiceId::new(crate::CONSENSUS_SVC), ops::PROPOSE, payload)
        });
    }

    fn decision(sim: &mut Sim, node: u32, ns: u64, k: u64) -> Option<Bytes> {
        sim.with_stack(StackId(node), |s| {
            s.with_module::<User, _>(USER, |u| u.decisions.get(&(ns, k)).cloned()).unwrap()
        })
    }

    #[test]
    fn three_nodes_agree_on_one_value() {
        let mut sim = Sim::new(SimConfig::lan(3, 42), mk_stack_with(CoordPolicy::Rotating));
        for i in 0..3 {
            propose(&mut sim, i, 0, 0, &format!("value-{i}"));
        }
        sim.run_until(Time::ZERO + Dur::secs(2));
        let d0 = decision(&mut sim, 0, 0, 0).expect("node 0 decided");
        for i in 1..3 {
            assert_eq!(decision(&mut sim, i, 0, 0).as_ref(), Some(&d0), "node {i}");
        }
        // The decided value is one of the proposals (consensus validity).
        let s = String::from_utf8(d0.to_vec()).unwrap();
        assert!(s.starts_with("value-"), "decided {s}");
    }

    #[test]
    fn many_instances_decide_independently() {
        let mut sim = Sim::new(SimConfig::lan(3, 1), mk_stack_with(CoordPolicy::Rotating));
        for k in 0..10u64 {
            for i in 0..3 {
                propose(&mut sim, i, 7, k, &format!("v{i}-{k}"));
            }
        }
        sim.run_until(Time::ZERO + Dur::secs(5));
        for k in 0..10u64 {
            let d0 = decision(&mut sim, 0, 7, k).unwrap_or_else(|| panic!("k={k} undecided"));
            for i in 1..3 {
                assert_eq!(decision(&mut sim, i, 7, k).as_ref(), Some(&d0));
            }
        }
    }

    #[test]
    fn decides_despite_coordinator_crash() {
        // Round-0 coordinator is stack 0 (Rotating); crash it mid-run.
        let mut sim = Sim::new(SimConfig::lan(5, 9), mk_stack_with(CoordPolicy::Rotating));
        sim.run_until(Time::ZERO + Dur::millis(100));
        sim.crash_at(sim.now(), StackId(0));
        sim.run_until(Time::ZERO + Dur::millis(300));
        for i in 1..5 {
            propose(&mut sim, i, 0, 0, &format!("value-{i}"));
        }
        sim.run_until(Time::ZERO + Dur::secs(5));
        let d1 = decision(&mut sim, 1, 0, 0).expect("must decide without the coordinator");
        for i in 2..5 {
            assert_eq!(decision(&mut sim, i, 0, 0).as_ref(), Some(&d1));
        }
    }

    #[test]
    fn safety_holds_under_message_loss() {
        let mut cfg = SimConfig::lan(3, 21);
        cfg.net.loss = 0.15;
        let mut sim = Sim::new(cfg, mk_stack_with(CoordPolicy::Rotating));
        for k in 0..5u64 {
            for i in 0..3 {
                propose(&mut sim, i, 0, k, &format!("v{i}-{k}"));
            }
        }
        sim.run_until(Time::ZERO + Dur::secs(10));
        for k in 0..5u64 {
            let d0 = decision(&mut sim, 0, 0, k).unwrap_or_else(|| panic!("k={k} undecided"));
            for i in 1..3 {
                assert_eq!(decision(&mut sim, i, 0, k).as_ref(), Some(&d0));
            }
        }
    }

    #[test]
    fn bystander_gets_need_proposal_and_still_decides() {
        let mut sim = Sim::new(SimConfig::lan(3, 4), mk_stack_with(CoordPolicy::Rotating));
        // Only nodes 0 and 1 propose explicitly; node 2's user
        // auto-proposes when prompted by NEED_PROPOSAL.
        propose(&mut sim, 0, 0, 0, "a");
        propose(&mut sim, 1, 0, 0, "b");
        sim.run_until(Time::ZERO + Dur::secs(2));
        let needs = sim.with_stack(StackId(2), |s| {
            s.with_module::<User, _>(USER, |u| u.needs.clone()).unwrap()
        });
        assert!(needs.contains(&(0, 0)), "bystander must be prompted");
        let d = decision(&mut sim, 2, 0, 0).expect("bystander decides too");
        assert!(!d.is_empty());
    }

    #[test]
    fn instance_offset_policy_agrees_too() {
        let mut sim = Sim::new(SimConfig::lan(4, 2), mk_stack_with(CoordPolicy::InstanceOffset));
        for k in 0..4u64 {
            for i in 0..4 {
                propose(&mut sim, i, 0, k, &format!("v{i}-{k}"));
            }
        }
        sim.run_until(Time::ZERO + Dur::secs(3));
        for k in 0..4u64 {
            let d0 = decision(&mut sim, 0, 0, k).unwrap_or_else(|| panic!("k={k} undecided"));
            for i in 1..4 {
                assert_eq!(decision(&mut sim, i, 0, k).as_ref(), Some(&d0));
            }
        }
    }

    #[test]
    fn different_incarnations_ignore_each_other() {
        // Two consensus modules with different incarnations on the same
        // channel: proposals to one must not be decided by the other.
        // Here we just verify the wire-level filter.
        let m = ConsensusModule::new(
            ConsensusParams { service: "consensus".into(), incarnation: 1 },
            CoordPolicy::Rotating,
        );
        assert_eq!(m.params.incarnation, 1);
        let msg = WireMsg {
            inc: 2,
            ns: 0,
            k: 0,
            round: 0,
            body: Body::Proposal { v: Bytes::from_static(b"x") },
        };
        let b = msg.to_bytes();
        let back: WireMsg = wire::from_bytes(&b).unwrap();
        assert_eq!(back.inc, 2);
        // (Full cross-incarnation isolation is exercised by the
        // replacement tests in dpu-repl.)
    }

    #[test]
    fn late_proposal_after_decision_gets_decide_response() {
        let mut sim = Sim::new(SimConfig::lan(3, 4), mk_stack_with(CoordPolicy::Rotating));
        propose(&mut sim, 0, 0, 0, "a");
        propose(&mut sim, 1, 0, 0, "b");
        sim.run_until(Time::ZERO + Dur::secs(2));
        // All nodes decided via auto-propose; now propose again on node 0
        // with a different users' call — must re-respond, not re-run.
        let before = decision(&mut sim, 0, 0, 0).expect("decided");
        propose(&mut sim, 0, 0, 0, "late");
        sim.run_until(sim.now() + Dur::millis(100));
        assert_eq!(decision(&mut sim, 0, 0, 0), Some(before));
    }

    #[test]
    fn decides_with_bare_majority_alive() {
        // 5 processes, 2 crash before proposing: the remaining exact
        // majority (3) must still decide.
        let mut sim = Sim::new(SimConfig::lan(5, 31), mk_stack_with(CoordPolicy::Rotating));
        sim.crash_at(Time::ZERO + Dur::millis(50), StackId(3));
        sim.crash_at(Time::ZERO + Dur::millis(50), StackId(4));
        sim.run_until(Time::ZERO + Dur::millis(400));
        for i in 0..3 {
            propose(&mut sim, i, 0, 0, &format!("v{i}"));
        }
        sim.run_until(Time::ZERO + Dur::secs(8));
        let d0 = decision(&mut sim, 0, 0, 0).expect("bare majority must decide");
        for i in 1..3 {
            assert_eq!(decision(&mut sim, i, 0, 0).as_ref(), Some(&d0));
        }
    }

    #[test]
    fn wrong_suspicion_never_violates_agreement() {
        // Partition the round-0 coordinator away mid-instance so others
        // wrongly suspect it and move rounds; then heal. Everyone —
        // including the wrongly suspected coordinator — must decide the
        // same value.
        let mut sim = Sim::new(SimConfig::lan(3, 61), mk_stack_with(CoordPolicy::Rotating));
        sim.run_until(Time::ZERO + Dur::millis(200));
        for i in 0..3 {
            propose(&mut sim, i, 0, 0, &format!("v{i}"));
        }
        // Cut stack 0 (round-0 coordinator) off immediately.
        sim.partition(&[StackId(0)], &[StackId(1), StackId(2)]);
        sim.run_until(sim.now() + Dur::secs(1));
        sim.heal_partitions();
        sim.run_until(sim.now() + Dur::secs(10));
        let d0 = decision(&mut sim, 0, 0, 0).expect("healed coordinator decides");
        for i in 1..3 {
            assert_eq!(
                decision(&mut sim, i, 0, 0).as_ref(),
                Some(&d0),
                "agreement must hold through wrong suspicion"
            );
        }
        // The run must actually have used multiple rounds (the suspicion
        // path fired) on at least one node — otherwise this test is not
        // testing anything.
        let mut any_round_progress = false;
        for i in 0..3 {
            let r = sim.with_stack(StackId(i), |s| {
                s.with_module::<ConsensusModule, _>(CONS, |m| m.max_round_seen()).unwrap()
            });
            if r > 0 {
                any_round_progress = true;
            }
        }
        assert!(any_round_progress, "the partition should have forced round changes");
    }

    #[test]
    fn minority_partition_cannot_decide_alone() {
        let mut sim = Sim::new(SimConfig::lan(5, 71), mk_stack_with(CoordPolicy::Rotating));
        sim.run_until(Time::ZERO + Dur::millis(200));
        // Isolate stacks 0 and 1 (a minority) and let only them propose.
        sim.partition(&[StackId(0), StackId(1)], &[StackId(2), StackId(3), StackId(4)]);
        propose(&mut sim, 0, 0, 0, "minority-a");
        propose(&mut sim, 1, 0, 0, "minority-b");
        sim.run_until(sim.now() + Dur::secs(3));
        for i in 0..2 {
            assert_eq!(decision(&mut sim, i, 0, 0), None, "a minority must never decide (safety)");
        }
        // Heal, and let the majority side propose too (CT terminates
        // once all correct processes have proposed); the instance must
        // then decide — and on a value someone actually proposed.
        sim.heal_partitions();
        for i in 2..5 {
            propose(&mut sim, i, 0, 0, &format!("majority-{i}"));
        }
        sim.run_until(sim.now() + Dur::secs(10));
        let d = decision(&mut sim, 0, 0, 0).expect("decides after heal");
        for i in 1..5 {
            assert_eq!(decision(&mut sim, i, 0, 0).as_ref(), Some(&d), "node {i}");
        }
        assert!(
            d.starts_with(b"minority") || d.starts_with(b"majority") || d.starts_with(b"auto"),
            "decided value must be a proposal: {d:?}"
        );
    }

    #[test]
    fn wire_msg_contract_for_every_body() {
        use dpu_core::wire::testing::assert_wire_contract;
        let bodies = [
            Body::Estimate { est: Bytes::from_static(b"est"), ts: 4 },
            Body::Proposal { v: Bytes::from_static(b"prop") },
            Body::Ack,
            Body::Nack,
            Body::Decide { v: Bytes::new() },
        ];
        for body in bodies {
            assert_wire_contract(&WireMsg { inc: 7, ns: 1, k: 2, round: 3, body });
        }
        assert_wire_contract(&ConsensusParams { service: "c2".into(), incarnation: 9 });
    }

    #[test]
    fn params_roundtrip_and_factory() {
        let p = ConsensusParams { service: "consensus2".into(), incarnation: 9 };
        let b = wire::to_bytes(&p);
        assert_eq!(wire::from_bytes::<ConsensusParams>(&b).unwrap(), p);
        let mut reg = FactoryRegistry::new();
        ConsensusModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::with_params(KIND_OFFSET, &p)).unwrap();
        assert_eq!(m.kind(), KIND_OFFSET);
        assert_eq!(m.provides(), vec![ServiceId::new("consensus2")]);
    }

    #[test]
    fn wire_msg_rejects_bad_tag() {
        let raw = wire::to_bytes(&(0u64, 0u64, 0u64, 0u64, 9u32));
        assert!(wire::from_bytes::<WireMsg>(&raw).is_err());
    }
}
