//! The GM module (paper Figure 4): a **group membership** service that
//! "maintains consistent membership among all group members; the module
//! requires the atomic broadcast service".
//!
//! Views are totally ordered by construction: every membership change
//! request is atomically broadcast, and each stack applies delivered
//! changes in delivery order — so all stacks install the same sequence of
//! views (view `i` has the same composition everywhere).
//!
//! In the adaptive middleware, GM is one of the protocols that *depend on*
//! the updateable atomic broadcast: it is constructed to call the
//! indirection interface `r-abcast`, and the paper's claim that dependent
//! protocols "provide service correctly and with negligible delay while
//! the global update takes place" is checked by the integration tests
//! that run view changes across a protocol switch.
//!
//! ## Service interface (`gm`)
//!
//! * call [`ops::REQUEST`] — a [`GmOp`] (join/leave);
//! * response [`ops::VIEW`] — the newly installed [`View`].

use crate::abcast::ops as ab_ops;
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::wire::{Decode, Encode, WireError, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};

/// Module kind name, for factory registration.
pub const KIND: &str = "gm";

/// Magic tag distinguishing GM payloads from other users of the shared
/// atomic broadcast service.
const GM_MAGIC: u32 = 0x474D_5631; // "GMV1"

/// Operation codes of the `gm` service.
pub mod ops {
    use dpu_core::Op;
    /// Call: request a membership change ([`super::GmOp`]).
    pub const REQUEST: Op = 1;
    /// Response: a new [`super::View`] was installed.
    pub const VIEW: Op = 2;
}

/// A membership change request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GmOp {
    /// Add a stack to the group.
    Join(StackId),
    /// Remove a stack from the group (voluntary leave or exclusion).
    Leave(StackId),
}

impl Encode for GmOp {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            GmOp::Join(s) => {
                0u32.encode(buf);
                s.encode(buf);
            }
            GmOp::Leave(s) => {
                1u32.encode(buf);
                s.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            GmOp::Join(s) => 0u32.encoded_len() + s.encoded_len(),
            GmOp::Leave(s) => 1u32.encoded_len() + s.encoded_len(),
        }
    }
}

impl Decode for GmOp {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        match u32::decode(buf)? {
            0 => Ok(GmOp::Join(StackId::decode(buf)?)),
            1 => Ok(GmOp::Leave(StackId::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// A membership view: a numbered composition of the group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View {
    /// Monotonic view number (0 = initial view).
    pub id: u64,
    /// Current members, sorted by stack id.
    pub members: Vec<StackId>,
}

impl Encode for View {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.members.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.id.encoded_len() + self.members.encoded_len()
    }
}

impl Decode for View {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(View { id: u64::decode(buf)?, members: Vec::<StackId>::decode(buf)? })
    }
}

/// Factory parameters of the group membership module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GmParams {
    /// Service name to provide (default [`crate::GM_SVC`]).
    pub service: String,
    /// Atomic broadcast service to require — normally the indirection
    /// interface `r-abcast` so GM keeps working across protocol updates.
    pub abcast: String,
    /// Automatically propose the exclusion of members the failure
    /// detector suspects (each exclusion is still totally ordered through
    /// atomic broadcast, so views stay consistent; a wrongly suspected
    /// member is simply excluded and may re-join).
    pub auto_exclude: bool,
}

impl Default for GmParams {
    fn default() -> Self {
        GmParams {
            service: crate::GM_SVC.to_string(),
            abcast: crate::ABCAST_SVC.to_string(),
            auto_exclude: false,
        }
    }
}

impl Encode for GmParams {
    fn encode(&self, buf: &mut BytesMut) {
        self.service.encode(buf);
        self.abcast.encode(buf);
        self.auto_exclude.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.service.encoded_len() + self.abcast.encoded_len() + self.auto_exclude.encoded_len()
    }
}

impl Decode for GmParams {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(GmParams {
            service: String::decode(buf)?,
            abcast: String::decode(buf)?,
            auto_exclude: bool::decode(buf)?,
        })
    }
}

/// The group membership module. See module docs.
pub struct GmModule {
    svc: ServiceId,
    abcast_svc: ServiceId,
    fd_svc: ServiceId,
    auto_exclude: bool,
    /// Exclusions already proposed by this stack (avoid re-broadcasting
    /// on every failure detector update).
    proposed_exclusions: std::collections::BTreeSet<StackId>,
    view: View,
}

impl GmModule {
    /// Build with explicit parameters.
    pub fn new(params: GmParams) -> GmModule {
        let svc = ServiceId::new(&params.service);
        let abcast_svc = ServiceId::new(&params.abcast);
        GmModule {
            svc,
            abcast_svc,
            fd_svc: ServiceId::new(crate::FD_SVC),
            auto_exclude: params.auto_exclude,
            proposed_exclusions: std::collections::BTreeSet::new(),
            view: View { id: 0, members: Vec::new() },
        }
    }

    /// Register this module's factory under [`KIND`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let params = if spec.params.is_empty() {
                GmParams::default()
            } else {
                spec.params::<GmParams>().unwrap_or_default()
            };
            Box::new(GmModule::new(params))
        });
    }

    /// The currently installed view.
    pub fn view(&self) -> &View {
        &self.view
    }

    fn apply(&mut self, ctx: &mut ModuleCtx<'_>, op: GmOp) {
        let changed = match op {
            GmOp::Join(s) => {
                if self.view.members.contains(&s) {
                    false
                } else {
                    self.view.members.push(s);
                    self.view.members.sort();
                    true
                }
            }
            GmOp::Leave(s) => {
                let before = self.view.members.len();
                self.view.members.retain(|&m| m != s);
                self.view.members.len() != before
            }
        };
        if changed {
            self.view.id += 1;
            let data = ctx.encode(&self.view);
            ctx.respond(&self.svc, ops::VIEW, data);
        }
    }
}

impl Module for GmModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        if self.auto_exclude {
            vec![self.abcast_svc.clone(), self.fd_svc.clone()]
        } else {
            vec![self.abcast_svc.clone()]
        }
    }

    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        self.view = View { id: 0, members: ctx.peers().to_vec() };
        let data = ctx.encode(&self.view);
        ctx.respond(&self.svc, ops::VIEW, data);
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op != ops::REQUEST {
            return;
        }
        let Ok(op) = call.decode::<GmOp>() else { return };
        // Order the change through atomic broadcast; it is applied when it
        // comes back Adelivered (identically ordered on all stacks).
        let payload = ctx.encode(&(GM_MAGIC, op));
        ctx.call(&self.abcast_svc, ab_ops::ABCAST, payload);
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if self.auto_exclude && resp.service == self.fd_svc && resp.op == crate::fd::ops::SUSPECTS {
            let Ok(suspected) = resp.decode::<Vec<StackId>>() else { return };
            for s in suspected {
                if self.view.members.contains(&s) && self.proposed_exclusions.insert(s) {
                    let payload = ctx.encode(&(GM_MAGIC, GmOp::Leave(s)));
                    ctx.call(&self.abcast_svc, ab_ops::ABCAST, payload);
                }
            }
            return;
        }
        if resp.service != self.abcast_svc || resp.op != ab_ops::ADELIVER {
            return;
        }
        // Shared-service discipline: ignore payloads that are not ours.
        let Ok((magic, op)) = resp.decode::<(u32, GmOp)>() else { return };
        if magic != GM_MAGIC {
            return;
        }
        if let GmOp::Join(s) = op {
            // A re-joining member may be excluded again later.
            self.proposed_exclusions.remove(&s);
        }
        self.apply(ctx, op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abcast::ct::{CtAbcastModule, CtAbcastParams};
    use crate::abcast::testkit::mk_stack;
    use dpu_core::stack::{Stack, StackConfig};
    use dpu_core::time::{Dur, Time};
    use dpu_core::wire;
    use dpu_core::ModuleId;
    use dpu_sim::{Sim, SimConfig};

    /// Test stack layout: testkit's m1..m7, then GM is m8.
    const GM: ModuleId = ModuleId(8);

    fn mk_gm_stack(sc: StackConfig) -> Stack {
        let mut s = mk_stack(sc, || Box::new(CtAbcastModule::new(CtAbcastParams::default())));
        let gm = s.add_module(Box::new(GmModule::new(GmParams::default())));
        s.bind(&ServiceId::new(crate::GM_SVC), gm);
        s
    }

    fn view(sim: &mut Sim, node: u32) -> View {
        sim.with_stack(StackId(node), |s| {
            s.with_module::<GmModule, _>(GM, |m| m.view().clone()).unwrap()
        })
    }

    fn request(sim: &mut Sim, node: u32, op: GmOp) {
        sim.with_stack(StackId(node), |s| {
            s.call_as(GM, &ServiceId::new(crate::GM_SVC), ops::REQUEST, wire::to_bytes(&op))
        });
    }

    #[test]
    fn gm_types_wire_contract() {
        use dpu_core::wire::testing::assert_wire_contract;
        assert_wire_contract(&GmOp::Join(StackId(4)));
        assert_wire_contract(&GmOp::Leave(StackId(0)));
        assert_wire_contract(&View { id: 3, members: vec![StackId(0), StackId(2)] });
        assert_wire_contract(&GmParams::default());
    }

    #[test]
    fn initial_view_contains_all_peers() {
        let mut sim = Sim::new(SimConfig::lan(3, 42), mk_gm_stack);
        sim.run_until(Time::ZERO + Dur::millis(100));
        for node in 0..3 {
            let v = view(&mut sim, node);
            assert_eq!(v.id, 0);
            assert_eq!(v.members, vec![StackId(0), StackId(1), StackId(2)]);
        }
    }

    #[test]
    fn leave_installs_the_same_view_everywhere() {
        let mut sim = Sim::new(SimConfig::lan(3, 7), mk_gm_stack);
        sim.run_until(Time::ZERO + Dur::millis(100));
        request(&mut sim, 0, GmOp::Leave(StackId(2)));
        sim.run_until(Time::ZERO + Dur::secs(3));
        for node in 0..3 {
            let v = view(&mut sim, node);
            assert_eq!(v.id, 1, "node {node}");
            assert_eq!(v.members, vec![StackId(0), StackId(1)], "node {node}");
        }
    }

    #[test]
    fn concurrent_changes_converge_to_identical_views() {
        let mut sim = Sim::new(SimConfig::lan(3, 9), mk_gm_stack);
        sim.run_until(Time::ZERO + Dur::millis(100));
        request(&mut sim, 0, GmOp::Leave(StackId(2)));
        request(&mut sim, 1, GmOp::Join(StackId(9)));
        sim.run_until(Time::ZERO + Dur::secs(5));
        let v0 = view(&mut sim, 0);
        assert_eq!(v0.id, 2);
        assert_eq!(v0.members, vec![StackId(0), StackId(1), StackId(9)]);
        for node in 1..3 {
            assert_eq!(view(&mut sim, node), v0, "node {node}");
        }
    }

    #[test]
    fn duplicate_join_is_a_no_op() {
        let mut sim = Sim::new(SimConfig::lan(2, 5), mk_gm_stack);
        sim.run_until(Time::ZERO + Dur::millis(100));
        request(&mut sim, 0, GmOp::Join(StackId(1)));
        sim.run_until(Time::ZERO + Dur::secs(3));
        let v = view(&mut sim, 0);
        assert_eq!(v.id, 0, "joining an existing member must not bump the view");
    }

    #[test]
    fn auto_exclude_removes_crashed_member_from_all_views() {
        let mk = |sc: StackConfig| -> Stack {
            let mut s = mk_stack(sc, || Box::new(CtAbcastModule::new(CtAbcastParams::default())));
            let gm = s.add_module(Box::new(GmModule::new(GmParams {
                auto_exclude: true,
                ..GmParams::default()
            })));
            s.bind(&ServiceId::new(crate::GM_SVC), gm);
            s
        };
        let mut sim = Sim::new(SimConfig::lan(3, 55), mk);
        sim.run_until(Time::ZERO + Dur::millis(300));
        sim.crash_at(sim.now(), StackId(2));
        sim.run_until(Time::ZERO + Dur::secs(8));
        for node in 0..2 {
            let v = view(&mut sim, node);
            assert_eq!(
                v.members,
                vec![StackId(0), StackId(1)],
                "node {node}: crashed member must be excluded"
            );
            assert_eq!(v.id, 1, "node {node}: exactly one view change");
        }
    }

    #[test]
    fn wire_types_roundtrip() {
        for op in [GmOp::Join(StackId(3)), GmOp::Leave(StackId(0))] {
            let b = wire::to_bytes(&op);
            assert_eq!(wire::from_bytes::<GmOp>(&b).unwrap(), op);
        }
        let v = View { id: 7, members: vec![StackId(0), StackId(2)] };
        let b = wire::to_bytes(&v);
        assert_eq!(wire::from_bytes::<View>(&b).unwrap(), v);
        let p = GmParams { service: "gm".into(), abcast: "r-abcast".into(), auto_exclude: true };
        let b = wire::to_bytes(&p);
        assert_eq!(wire::from_bytes::<GmParams>(&b).unwrap(), p);
    }

    #[test]
    fn factory_registration() {
        let mut reg = dpu_core::FactoryRegistry::new();
        GmModule::register(&mut reg);
        let p = GmParams { service: "gm".into(), abcast: "r-abcast".into(), auto_exclude: false };
        let m = reg.build(&ModuleSpec::with_params(KIND, &p)).unwrap();
        assert_eq!(m.kind(), KIND);
        assert_eq!(m.requires(), vec![ServiceId::new("r-abcast")]);
    }
}
