//! Conformance-test scaffolding for the atomic broadcast variants.
//!
//! This module is the reusable half of the total-order conformance
//! harness: a [`Variant`] enumeration over every interchangeable
//! atomic broadcast implementation, a standard stack builder
//! ([`conformance_stack`]) and pure assertions over delivery logs that
//! encode the §5.1 specification. The simulation-driving matrix lives
//! in the workspace-level `tests/abcast_conformance.rs`; adding a fifth
//! variant to the matrix is one new [`Variant`] arm.
//!
//! Everything here depends only on `dpu-core` and `dpu-net` (not on the
//! simulator), so any host — the simulator, the threaded runtime, a
//! future deployment harness — can drive the same stacks and feed the
//! same assertions.

use crate::abcast::ct::{CtAbcastModule, CtAbcastParams};
use crate::abcast::hier::{HierAbcastModule, HierAbcastParams};
use crate::abcast::ops;
use crate::abcast::ring::{RingAbcastModule, RingAbcastParams};
use crate::abcast::sequencer::{SeqAbcastModule, SeqAbcastParams};
use crate::consensus::{ConsensusModule, ConsensusParams, CoordPolicy};
use crate::fd::{FdConfig, FdModule};
use bytes::Bytes;
use dpu_core::stack::{FactoryRegistry, ModuleCtx, Stack, StackConfig};
use dpu_core::{Call, Module, ModuleId, Response, ServiceId};
use dpu_net::rp2p::{Rp2pConfig, Rp2pModule};
use dpu_net::udp::UdpModule;
use std::collections::BTreeSet;

/// One interchangeable atomic broadcast implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Consensus-based (Chandra–Toueg transformation).
    Ct,
    /// Fixed sequencer.
    Seq,
    /// Privilege-based token ring.
    Ring,
    /// Hierarchical per-cluster sequencers under a merge leader.
    Hier,
}

/// Every variant, in registration order — iterate this to cover the
/// whole family.
pub const ALL_VARIANTS: [Variant; 4] = [Variant::Ct, Variant::Seq, Variant::Ring, Variant::Hier];

impl Variant {
    /// Short name for test labels.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Ct => "ct",
            Variant::Seq => "seq",
            Variant::Ring => "ring",
            Variant::Hier => "hier",
        }
    }

    /// Build the variant's module with incarnation `ns` and its
    /// defaults otherwise.
    pub fn module(&self, ns: u64) -> Box<dyn Module> {
        match self {
            Variant::Ct => Box::new(CtAbcastModule::new(CtAbcastParams {
                namespace: ns,
                ..CtAbcastParams::default()
            })),
            Variant::Seq => Box::new(SeqAbcastModule::new(SeqAbcastParams {
                namespace: ns,
                ..SeqAbcastParams::default()
            })),
            Variant::Ring => Box::new(RingAbcastModule::new(RingAbcastParams {
                namespace: ns,
                ..RingAbcastParams::default()
            })),
            Variant::Hier => Box::new(HierAbcastModule::new(HierAbcastParams {
                namespace: ns,
                ..HierAbcastParams::default()
            })),
        }
    }
}

/// Records every ADELIVER payload, in order. The conformance assertions
/// run over these logs.
pub struct RecordingApp {
    /// The delivery log, in Adelivery order.
    pub delivered: Vec<Bytes>,
}

impl Module for RecordingApp {
    fn kind(&self) -> &str {
        "conformance-app"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![ServiceId::new(crate::ABCAST_SVC)]
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op == ops::ADELIVER {
            self.delivered.push(resp.data);
        }
    }
}

/// Module id of the [`RecordingApp`] in a [`conformance_stack`].
pub const APP: ModuleId = ModuleId(7);

/// Build the standard conformance stack: net bridge → udp → rp2p → fd →
/// consensus → `variant` abcast → [`RecordingApp`]. Identical layout
/// for every variant, so runs differ only in the protocol under test.
pub fn conformance_stack(sc: StackConfig, variant: Variant, ns: u64) -> Stack {
    let mut s = Stack::new(sc, FactoryRegistry::new());
    let udp = s.add_module(Box::new(UdpModule::new()));
    let rp2p = s.add_module(Box::new(Rp2pModule::new(Rp2pConfig::default())));
    let fd = s.add_module(Box::new(FdModule::new(FdConfig::default())));
    let cons = s.add_module(Box::new(ConsensusModule::new(
        ConsensusParams::default(),
        CoordPolicy::Rotating,
    )));
    let ab = s.add_module(variant.module(ns));
    s.add_module(Box::new(RecordingApp { delivered: vec![] }));
    s.bind(&ServiceId::new(dpu_net::UDP_SVC), udp);
    s.bind(&ServiceId::new(dpu_net::RP2P_SVC), rp2p);
    s.bind(&ServiceId::new(crate::FD_SVC), fd);
    s.bind(&ServiceId::new(crate::CONSENSUS_SVC), cons);
    s.bind(&ServiceId::new(crate::ABCAST_SVC), ab);
    s
}

/// ABcast one payload from a [`conformance_stack`], as the app module.
pub fn send(stack: &mut Stack, payload: Bytes) {
    stack.call_as(APP, &ServiceId::new(crate::ABCAST_SVC), ops::ABCAST, payload);
}

/// The delivery log of a [`conformance_stack`].
pub fn log(stack: &mut Stack) -> Vec<Bytes> {
    stack.with_module::<RecordingApp, _>(APP, |a| a.delivered.clone()).expect("conformance app")
}

/// **Uniform integrity**, first half: no payload is Adelivered twice in
/// one log. (Payloads are assumed unique per broadcast — the matrix
/// encodes origin and sequence into each one.)
pub fn assert_no_duplicates(who: &str, log: &[Bytes]) {
    let unique: BTreeSet<&Bytes> = log.iter().collect();
    assert_eq!(unique.len(), log.len(), "{who}: duplicate deliveries");
}

/// **Uniform integrity**, second half: everything Adelivered was
/// previously ABcast (no creation, no corruption).
pub fn assert_no_creation(who: &str, log: &[Bytes], sent: &BTreeSet<Bytes>) {
    for m in log {
        assert!(sent.contains(m), "{who}: delivered a never-broadcast payload {m:?}");
    }
}

/// **Uniform total order** (and agreement on the common prefix): every
/// pair of logs must agree where both have entries — the shorter log is
/// a prefix of the longer. Holds even for nodes that crashed or
/// restarted mid-run, whose logs simply stop short (or are empty).
pub fn assert_prefix_agreement(logs: &[(String, Vec<Bytes>)]) {
    for (wa, a) in logs {
        for (wb, b) in logs {
            let common = a.len().min(b.len());
            assert_eq!(
                &a[..common],
                &b[..common],
                "total order violated between {wa} (len {}) and {wb} (len {})",
                a.len(),
                b.len()
            );
        }
    }
}

/// Full conformance for a crash-free run: prefix agreement plus
/// **validity/agreement** — every log contains exactly the broadcast
/// set, i.e. everything sent was delivered everywhere.
pub fn assert_complete(logs: &[(String, Vec<Bytes>)], sent: &BTreeSet<Bytes>) {
    assert_prefix_agreement(logs);
    for (who, log) in logs {
        assert_no_duplicates(who, log);
        assert_no_creation(who, log, sent);
        assert_eq!(
            log.len(),
            sent.len(),
            "{who}: delivered {} of {} broadcast payloads",
            log.len(),
            sent.len()
        );
    }
}

/// Total-order check for a log that may have started mid-stream (a
/// churn-restarted incarnation joins at the current position, not at
/// the beginning): the log must be an order-preserving subsequence of
/// the reference log.
pub fn assert_subsequence(who: &str, log: &[Bytes], reference: &[Bytes]) {
    let mut it = reference.iter();
    for m in log {
        assert!(it.any(|r| r == m), "{who}: delivery {m:?} contradicts the reference total order");
    }
}

/// Safety-only conformance for runs with crashes or churn: agreement on
/// common prefixes, no duplication, no creation. Completeness is not
/// asserted — non-fault-tolerant variants may legitimately stall, and
/// restarted incarnations may deliver nothing.
pub fn assert_safe(logs: &[(String, Vec<Bytes>)], sent: &BTreeSet<Bytes>) {
    assert_prefix_agreement(logs);
    for (who, log) in logs {
        assert_no_duplicates(who, log);
        assert_no_creation(who, log, sent);
    }
}
