//! Ω (eventual leader election) on top of the failure detector: every
//! correct process eventually trusts the *same* correct process — the
//! weakest abstraction for consensus liveness, and the natural signal
//! for "switch to the cheap sequencer protocol and make the leader the
//! sequencer" adaptations.
//!
//! Implementation: leader = the lowest-id peer not currently suspected
//! by the local `fd` service (self is never suspected). With ◇S's
//! eventual accuracy, all correct processes converge on the lowest-id
//! correct process.
//!
//! ## Service interface (`leader`)
//!
//! * call [`ops::QUERY`] — request an immediate [`ops::LEADER`] response;
//! * response [`ops::LEADER`] — the currently trusted leader (`StackId`),
//!   emitted on every change and after each `QUERY`.

use dpu_core::stack::ModuleCtx;
use dpu_core::wire::Encode;
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};
use std::collections::BTreeSet;

/// Module kind name, for factory registration.
pub const KIND: &str = "omega";

/// Operation codes of the `leader` service.
pub mod ops {
    use dpu_core::Op;
    /// Call: request an immediate [`LEADER`] response.
    pub const QUERY: Op = 1;
    /// Response: the currently trusted leader, as a `StackId`.
    pub const LEADER: Op = 2;
}

/// The Ω module. See module docs.
pub struct OmegaModule {
    svc: ServiceId,
    fd_svc: ServiceId,
    suspected: BTreeSet<StackId>,
    leader: Option<StackId>,
    changes: u64,
}

impl OmegaModule {
    /// An Ω module providing [`crate::LEADER_SVC`].
    pub fn new() -> OmegaModule {
        OmegaModule {
            svc: ServiceId::new(crate::LEADER_SVC),
            fd_svc: ServiceId::new(crate::FD_SVC),
            suspected: BTreeSet::new(),
            leader: None,
            changes: 0,
        }
    }

    /// Register this module's factory under [`KIND`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |_spec: &ModuleSpec| Box::new(OmegaModule::new()));
    }

    /// The currently trusted leader.
    pub fn leader(&self) -> Option<StackId> {
        self.leader
    }

    /// How many times the local leader has changed (should stabilise).
    pub fn changes(&self) -> u64 {
        self.changes
    }

    fn elect(&mut self, ctx: &mut ModuleCtx<'_>) {
        let new = ctx
            .peers()
            .iter()
            .copied()
            .find(|p| *p == ctx.stack_id() || !self.suspected.contains(p));
        if new != self.leader {
            self.leader = new;
            self.changes += 1;
            if let Some(l) = new {
                ctx.respond(&self.svc, ops::LEADER, l.to_bytes());
            }
        }
    }
}

impl Default for OmegaModule {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for OmegaModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.fd_svc.clone()]
    }

    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        self.elect(ctx);
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op == ops::QUERY {
            if let Some(l) = self.leader {
                ctx.respond(&self.svc, ops::LEADER, l.to_bytes());
            }
        }
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.service != self.fd_svc || resp.op != crate::fd::ops::SUSPECTS {
            return;
        }
        let Ok(list) = resp.decode::<Vec<StackId>>() else { return };
        self.suspected = list.into_iter().collect();
        self.elect(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{FdConfig, FdModule};
    use dpu_core::stack::{FactoryRegistry, Stack, StackConfig};
    use dpu_core::time::{Dur, Time};
    use dpu_core::ModuleId;
    use dpu_net::udp::UdpModule;
    use dpu_sim::{Sim, SimConfig};

    /// Layout: m1 net, m2 udp, m3 fd, m4 omega.
    const OMEGA: ModuleId = ModuleId(4);

    fn mk_stack(sc: StackConfig) -> Stack {
        let mut s = Stack::new(sc, FactoryRegistry::new());
        let udp = s.add_module(Box::new(UdpModule::new()));
        let fd = s.add_module(Box::new(FdModule::new(FdConfig::default())));
        let omega = s.add_module(Box::new(OmegaModule::new()));
        s.bind(&ServiceId::new(dpu_net::UDP_SVC), udp);
        s.bind(&ServiceId::new(crate::FD_SVC), fd);
        s.bind(&ServiceId::new(crate::LEADER_SVC), omega);
        s
    }

    fn leader_at(sim: &mut Sim, node: u32) -> Option<StackId> {
        sim.with_stack(StackId(node), |s| {
            s.with_module::<OmegaModule, _>(OMEGA, |m| m.leader()).unwrap()
        })
    }

    #[test]
    fn healthy_group_agrees_on_lowest_id() {
        let mut sim = Sim::new(SimConfig::lan(4, 5), mk_stack);
        sim.run_until(Time::ZERO + Dur::secs(1));
        for node in 0..4 {
            assert_eq!(leader_at(&mut sim, node), Some(StackId(0)), "node {node}");
        }
    }

    #[test]
    fn leadership_moves_past_a_crashed_leader() {
        let mut sim = Sim::new(SimConfig::lan(4, 9), mk_stack);
        sim.run_until(Time::ZERO + Dur::millis(500));
        sim.crash_at(sim.now(), StackId(0));
        sim.run_until(Time::ZERO + Dur::secs(3));
        for node in 1..4 {
            assert_eq!(leader_at(&mut sim, node), Some(StackId(1)), "node {node}");
        }
        // And past a second crash.
        sim.crash_at(sim.now(), StackId(1));
        sim.run_until(Time::ZERO + Dur::secs(6));
        for node in 2..4 {
            assert_eq!(leader_at(&mut sim, node), Some(StackId(2)), "node {node}");
        }
    }

    #[test]
    fn wrong_suspicion_recovers_to_lowest_id() {
        let mut sim = Sim::new(SimConfig::lan(3, 13), mk_stack);
        sim.run_until(Time::ZERO + Dur::millis(300));
        sim.partition(&[StackId(0)], &[StackId(1), StackId(2)]);
        sim.run_until(sim.now() + Dur::secs(1));
        assert_eq!(leader_at(&mut sim, 1), Some(StackId(1)), "demoted while 0 unreachable");
        sim.heal_partitions();
        sim.run_until(sim.now() + Dur::secs(3));
        for node in 0..3 {
            assert_eq!(leader_at(&mut sim, node), Some(StackId(0)), "node {node} restored");
        }
        let changes = sim.with_stack(StackId(1), |s| {
            s.with_module::<OmegaModule, _>(OMEGA, |m| m.changes()).unwrap()
        });
        assert!(changes >= 3, "elect → demote → restore = at least 3 changes");
    }

    #[test]
    fn factory_registration() {
        let mut reg = FactoryRegistry::new();
        OmegaModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::new(KIND)).unwrap();
        assert_eq!(m.kind(), KIND);
    }
}
