//! Fixed-sequencer atomic broadcast.
//!
//! The lowest-id stack acts as the sequencer: every broadcast is sent to
//! it over RP2P; the sequencer stamps a global sequence number and
//! re-broadcasts; everyone delivers in sequence-number order.
//!
//! Properties: total order, integrity and validity hold while the
//! sequencer is up; the protocol is **not** crash-tolerant (the sequencer
//! is a single point of failure) and delivery is not uniform. It is the
//! classic cheap protocol a group switches *to* in a stable environment —
//! one of the paper's motivating scenarios for dynamic protocol update —
//! and its low latency at low load is clearly visible in the benchmarks.

use super::ops;
use crate::channels;
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::wire::{Decode, Encode, WireError, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};
use dpu_net::dgram::{self, Dgram, DgramRef};
use std::collections::BTreeMap;

/// Module kind name, for factory registration.
pub const KIND: &str = "abcast.seq";

/// Factory parameters of the sequencer atomic broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqAbcastParams {
    /// Incarnation namespace tagging all wire traffic.
    pub namespace: u64,
    /// Service name to provide (default [`crate::ABCAST_SVC`]).
    pub service: String,
}

impl Default for SeqAbcastParams {
    fn default() -> Self {
        SeqAbcastParams { namespace: 0, service: crate::ABCAST_SVC.to_string() }
    }
}

impl Encode for SeqAbcastParams {
    fn encode(&self, buf: &mut BytesMut) {
        self.namespace.encode(buf);
        self.service.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.namespace.encoded_len() + self.service.encoded_len()
    }
}

impl Decode for SeqAbcastParams {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(SeqAbcastParams { namespace: u64::decode(buf)?, service: String::decode(buf)? })
    }
}

enum Frame {
    /// tag 0: a broadcast request sent to the sequencer.
    Req { data: Bytes },
    /// tag 1: an ordered message from the sequencer.
    Order { seq: u64, data: Bytes },
}

/// A namespace-tagged frame, encoded in one forward pass.
struct NsFrame<'a> {
    ns: u64,
    frame: &'a Frame,
}

impl Encode for NsFrame<'_> {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        match self.frame {
            Frame::Req { data } => {
                0u32.encode(buf);
                data.encode(buf);
            }
            Frame::Order { seq, data } => {
                1u32.encode(buf);
                seq.encode(buf);
                data.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        self.ns.encoded_len()
            + match self.frame {
                Frame::Req { data } => 0u32.encoded_len() + data.encoded_len(),
                Frame::Order { seq, data } => {
                    1u32.encoded_len() + seq.encoded_len() + data.encoded_len()
                }
            }
    }
}

#[cfg(test)]
fn encode_frame(ns: u64, frame: &Frame) -> Bytes {
    NsFrame { ns, frame }.to_bytes()
}

fn decode_frame(buf: &Bytes) -> WireResult<(u64, Frame)> {
    let mut b = buf.clone();
    let ns = u64::decode(&mut b)?;
    let frame = match u32::decode(&mut b)? {
        0 => Frame::Req { data: Bytes::decode(&mut b)? },
        1 => Frame::Order { seq: u64::decode(&mut b)?, data: Bytes::decode(&mut b)? },
        t => return Err(WireError::BadTag(t)),
    };
    Ok((ns, frame))
}

/// The fixed-sequencer atomic broadcast module. See module docs.
pub struct SeqAbcastModule {
    params: SeqAbcastParams,
    svc: ServiceId,
    rp2p_svc: ServiceId,
    /// Sequencer state: next sequence number to assign.
    next_assign: u64,
    /// Receiver state: next sequence number to deliver, and the
    /// out-of-order buffer.
    next_deliver: u64,
    buffer: BTreeMap<u64, Bytes>,
    deliveries: u64,
}

impl SeqAbcastModule {
    /// Build with explicit parameters.
    pub fn new(params: SeqAbcastParams) -> SeqAbcastModule {
        let svc = ServiceId::new(&params.service);
        SeqAbcastModule {
            params,
            svc,
            rp2p_svc: ServiceId::new(dpu_net::RP2P_SVC),
            next_assign: 0,
            next_deliver: 0,
            buffer: BTreeMap::new(),
            deliveries: 0,
        }
    }

    /// Register this module's factory under [`KIND`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let params = if spec.params.is_empty() {
                SeqAbcastParams::default()
            } else {
                spec.params::<SeqAbcastParams>().unwrap_or_default()
            };
            Box::new(SeqAbcastModule::new(params))
        });
    }

    /// Messages Adelivered by this module.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    fn sequencer(ctx: &ModuleCtx<'_>) -> StackId {
        *ctx.peers().iter().min().expect("non-empty group")
    }

    fn send(&self, ctx: &mut ModuleCtx<'_>, to: StackId, frame: &Frame) {
        // Namespace + frame encoded in place inside the Dgram, one
        // scratch pass, no intermediate buffer.
        let body = NsFrame { ns: self.params.namespace, frame };
        let d = DgramRef { peer: to, channel: channels::ABCAST_SEQ, body: &body };
        let payload = ctx.encode(&d);
        ctx.call(&self.rp2p_svc, dgram::SEND, payload);
    }

    fn drain(&mut self, ctx: &mut ModuleCtx<'_>) {
        while let Some(data) = self.buffer.remove(&self.next_deliver) {
            self.next_deliver += 1;
            self.deliveries += 1;
            ctx.respond(&self.svc, ops::ADELIVER, data);
        }
    }
}

impl Module for SeqAbcastModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.rp2p_svc.clone()]
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op != ops::ABCAST {
            return;
        }
        let seqr = Self::sequencer(ctx);
        self.send(ctx, seqr, &Frame::Req { data: call.data });
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.service != self.rp2p_svc || resp.op != dgram::RECV {
            return;
        }
        let Ok(d) = resp.decode::<Dgram>() else { return };
        if d.channel != channels::ABCAST_SEQ {
            return;
        }
        let Ok((ns, frame)) = decode_frame(&d.data) else { return };
        if ns != self.params.namespace {
            return;
        }
        match frame {
            Frame::Req { data } => {
                // Only the sequencer handles requests; anyone else
                // receiving one (e.g. after a membership change) ignores
                // it.
                if ctx.stack_id() != Self::sequencer(ctx) {
                    return;
                }
                let seq = self.next_assign;
                self.next_assign += 1;
                for peer in ctx.peers().to_vec() {
                    self.send(ctx, peer, &Frame::Order { seq, data: data.clone() });
                }
            }
            Frame::Order { seq, data } => {
                if seq >= self.next_deliver {
                    self.buffer.insert(seq, data);
                    self.drain(ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abcast::testkit::{abcast, assert_total_order, delivered, mk_stack};
    use dpu_core::time::{Dur, Time};
    use dpu_core::wire;
    use dpu_sim::{Sim, SimConfig};

    fn seq_sim(n: u32, seed: u64) -> Sim {
        Sim::new(SimConfig::lan(n, seed), |sc| {
            mk_stack(sc, || Box::new(SeqAbcastModule::new(SeqAbcastParams::default())))
        })
    }

    #[test]
    fn frame_and_params_wire_contract() {
        use dpu_core::wire::testing::assert_wire_contract;
        let req = Frame::Req { data: Bytes::from_static(b"m") };
        let ord = Frame::Order { seq: 8, data: Bytes::from_static(b"oo") };
        // NsFrame has no Decode (the receive path decodes field-wise),
        // so check the length/byte contract directly.
        for frame in [&req, &ord] {
            use dpu_core::wire::Encode;
            let nf = NsFrame { ns: 6, frame };
            assert_eq!(nf.encoded_len(), nf.to_bytes().len());
            let bytes = nf.to_bytes();
            let (ns, _back) = decode_frame(&bytes).expect("roundtrip");
            assert_eq!(ns, 6);
            for cut in 0..bytes.len() {
                assert!(decode_frame(&bytes.slice(..cut)).is_err());
            }
        }
        assert_wire_contract(&SeqAbcastParams::default());
    }

    #[test]
    fn single_message_delivered_everywhere() {
        let mut sim = seq_sim(3, 42);
        sim.run_until(Time::ZERO + Dur::millis(50));
        abcast(&mut sim, 1, b"hello");
        sim.run_until(Time::ZERO + Dur::secs(1));
        assert_total_order(&mut sim, &[0, 1, 2], 1);
    }

    #[test]
    fn concurrent_senders_totally_ordered() {
        let mut sim = seq_sim(5, 7);
        sim.run_until(Time::ZERO + Dur::millis(50));
        for i in 0..5u32 {
            for j in 0..10u8 {
                abcast(&mut sim, i, &[i as u8, j]);
            }
        }
        sim.run_until(Time::ZERO + Dur::secs(5));
        assert_total_order(&mut sim, &[0, 1, 2, 3, 4], 50);
    }

    #[test]
    fn sequencer_messages_from_itself_are_ordered_too() {
        let mut sim = seq_sim(3, 9);
        sim.run_until(Time::ZERO + Dur::millis(50));
        abcast(&mut sim, 0, b"from-sequencer");
        abcast(&mut sim, 2, b"from-follower");
        sim.run_until(Time::ZERO + Dur::secs(1));
        assert_total_order(&mut sim, &[0, 1, 2], 2);
    }

    #[test]
    fn loss_is_recovered_by_rp2p_underneath() {
        let mut cfg = SimConfig::lan(3, 11);
        cfg.net.loss = 0.2;
        let mut sim = Sim::new(cfg, |sc| {
            mk_stack(sc, || Box::new(SeqAbcastModule::new(SeqAbcastParams::default())))
        });
        sim.run_until(Time::ZERO + Dur::millis(50));
        for j in 0..10u8 {
            abcast(&mut sim, 1, &[j]);
        }
        sim.run_until(Time::ZERO + Dur::secs(10));
        assert_total_order(&mut sim, &[0, 1, 2], 10);
    }

    #[test]
    fn fifo_from_single_sender() {
        let mut sim = seq_sim(3, 3);
        sim.run_until(Time::ZERO + Dur::millis(50));
        for j in 0..20u8 {
            abcast(&mut sim, 1, &[j]);
        }
        sim.run_until(Time::ZERO + Dur::secs(2));
        // RP2P is FIFO and the sequencer stamps in arrival order, so a
        // single sender's messages keep their send order.
        let d = delivered(&mut sim, 2);
        let order: Vec<u8> = d.iter().map(|b| b[0]).collect();
        assert_eq!(order, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn namespace_filtering_drops_foreign_frames() {
        let p1 = SeqAbcastParams { namespace: 1, service: "abcast".into() };
        let frame_bytes = encode_frame(2, &Frame::Order { seq: 0, data: Bytes::from_static(b"x") });
        let (ns, _) = decode_frame(&frame_bytes).unwrap();
        assert_eq!(ns, 2);
        assert_ne!(ns, p1.namespace);
    }

    #[test]
    fn params_roundtrip_and_factory() {
        let p = SeqAbcastParams { namespace: 5, service: "svc-x".into() };
        let b = wire::to_bytes(&p);
        assert_eq!(wire::from_bytes::<SeqAbcastParams>(&b).unwrap(), p);
        let mut reg = dpu_core::FactoryRegistry::new();
        SeqAbcastModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::with_params(KIND, &p)).unwrap();
        assert_eq!(m.kind(), KIND);
        assert_eq!(m.provides(), vec![ServiceId::new("svc-x")]);
    }
}
