//! Hierarchical atomic broadcast: per-cluster local sequencers under a
//! fixed leader-cluster merge.
//!
//! The flat sequencer protocol funnels every broadcast through one
//! stack: at n = 1024 the sequencer's n-way fan-out makes its cluster
//! the hot shard of the parallel simulation engine and caps available
//! parallelism near 2× (see `BENCH_par.json`). This variant
//! decentralizes the fan-out along the topology:
//!
//! * **Local sequencer** — the lowest-id member of each topology
//!   cluster orders its cluster's broadcasts into a *cluster stream*:
//!   it stamps consecutive local sequence numbers `k` and forwards
//!   `Fwd{cluster, k, key, data}` to the merge leader.
//! * **Leader merge** — the globally lowest id (the first cluster's
//!   sequencer) deterministically interleaves the cluster streams into
//!   one total order: within a stream, entries commit in local-sequence
//!   order (`k`-contiguous per forwarder); across streams, in arrival
//!   order at the leader. Each commit is assigned the next global
//!   sequence number `g` and sent to exactly one *relay* per cluster.
//! * **Relay fan-out** — each cluster's relay (initially its local
//!   sequencer) re-broadcasts `Rly{g, key, data}` inside its own
//!   cluster; members deliver in contiguous `g` order.
//!
//! Per broadcast the leader therefore touches `C` relays (cluster
//! count), not `n` members, and the `n`-message payload fan-out is
//! spread over all clusters — which is exactly what lets the per-shard
//! event counts balance in the parallel engine.
//!
//! Cluster membership is derived from the host: stack `i` belongs to
//! cluster `i / cluster_size`, with `cluster_size` taken from the
//! factory params when nonzero, else from
//! [`dpu_core::stack::StackConfig::cluster_size`] (the simulator plumbs
//! its `sim::topology` value there), else the whole group is one
//! cluster. Under the flat runtime host the protocol thus degenerates
//! to a single cluster — one sequencer that is its own leader and
//! relay, behaviorally the fixed-sequencer protocol with one extra
//! local hop.
//!
//! ## Fault tolerance
//!
//! A *local* sequencer crash is recovered: members whose pending
//! broadcasts stall past the `resend` timeout rotate to the next
//! cluster member in id order and re-send. Any member acts as sequencer
//! when addressed (safe: the leader deduplicates by message key and
//! treats each forwarder as its own stream); an acting non-primary
//! sequencer first *claims* the cluster's relay role, which makes the
//! leader replay its commit log so the cluster rejoins the total order
//! without a gap. The merge leader itself remains a single point of
//! failure, like the flat sequencer — the paper's motivation for
//! switching *to* such cheap protocols only in stable conditions (and
//! away from them when the environment degrades). An inter-cluster
//! partition only delays: forwards, claims and commits sit in RP2P's
//! retransmit queues and the streams resume on heal.

use super::{ops, MsgKey};
use crate::channels;
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::time::Dur;
use dpu_core::wire::{Decode, Encode, WireError, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId, TimerId};
use dpu_net::dgram::{self, Dgram, DgramRef};
use std::collections::{BTreeMap, BTreeSet};

/// Module kind name, for factory registration.
pub const KIND: &str = "abcast.hier";

/// Factory parameters of the hierarchical atomic broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierAbcastParams {
    /// Incarnation namespace tagging all wire traffic.
    pub namespace: u64,
    /// Service name to provide (default [`crate::ABCAST_SVC`]).
    pub service: String,
    /// Nodes per cluster; `0` derives the value from the stack's host
    /// configuration, falling back to one group-wide cluster.
    pub cluster_size: u32,
    /// Stall timeout: a member whose pending broadcasts make no
    /// progress for this long rotates to the next local-sequencer
    /// candidate and re-sends. Must sit well above the steady-state
    /// delivery latency or rotation churns (safely, but wastefully).
    pub resend: Dur,
}

impl Default for HierAbcastParams {
    fn default() -> Self {
        HierAbcastParams {
            namespace: 0,
            service: crate::ABCAST_SVC.to_string(),
            cluster_size: 0,
            resend: Dur::millis(1500),
        }
    }
}

impl Encode for HierAbcastParams {
    fn encode(&self, buf: &mut BytesMut) {
        self.namespace.encode(buf);
        self.service.encode(buf);
        self.cluster_size.encode(buf);
        self.resend.as_nanos().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.namespace.encoded_len()
            + self.service.encoded_len()
            + self.cluster_size.encoded_len()
            + self.resend.as_nanos().encoded_len()
    }
}

impl Decode for HierAbcastParams {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(HierAbcastParams {
            namespace: u64::decode(buf)?,
            service: String::decode(buf)?,
            cluster_size: u32::decode(buf)?,
            resend: Dur::nanos(u64::decode(buf)?),
        })
    }
}

enum Frame {
    /// tag 0: member → its cluster's (believed) local sequencer.
    Req { key: MsgKey, data: Bytes },
    /// tag 1: acting local sequencer → merge leader; `k` is consecutive
    /// per forwarder `from`, making each forwarder one FIFO stream.
    Fwd { cluster: u32, k: u64, from: StackId, key: MsgKey, data: Bytes },
    /// tag 2: leader → one relay per cluster; `g` is the global
    /// sequence number.
    Commit { g: u64, key: MsgKey, data: Bytes },
    /// tag 3: relay → its cluster's members.
    Rly { g: u64, key: MsgKey, data: Bytes },
    /// tag 4: acting non-primary sequencer → leader: take over the
    /// cluster's relay role and replay the commit log.
    Claim { cluster: u32, from: StackId },
}

/// A namespace-tagged frame, encoded in one forward pass.
struct NsFrame<'a> {
    ns: u64,
    frame: &'a Frame,
}

impl Encode for NsFrame<'_> {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        match self.frame {
            Frame::Req { key, data } => {
                0u32.encode(buf);
                key.encode(buf);
                data.encode(buf);
            }
            Frame::Fwd { cluster, k, from, key, data } => {
                1u32.encode(buf);
                cluster.encode(buf);
                k.encode(buf);
                from.encode(buf);
                key.encode(buf);
                data.encode(buf);
            }
            Frame::Commit { g, key, data } => {
                2u32.encode(buf);
                g.encode(buf);
                key.encode(buf);
                data.encode(buf);
            }
            Frame::Rly { g, key, data } => {
                3u32.encode(buf);
                g.encode(buf);
                key.encode(buf);
                data.encode(buf);
            }
            Frame::Claim { cluster, from } => {
                4u32.encode(buf);
                cluster.encode(buf);
                from.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        self.ns.encoded_len()
            + match self.frame {
                Frame::Req { key, data } => {
                    0u32.encoded_len() + key.encoded_len() + data.encoded_len()
                }
                Frame::Fwd { cluster, k, from, key, data } => {
                    1u32.encoded_len()
                        + cluster.encoded_len()
                        + k.encoded_len()
                        + from.encoded_len()
                        + key.encoded_len()
                        + data.encoded_len()
                }
                Frame::Commit { g, key, data } | Frame::Rly { g, key, data } => {
                    2u32.encoded_len() + g.encoded_len() + key.encoded_len() + data.encoded_len()
                }
                Frame::Claim { cluster, from } => {
                    4u32.encoded_len() + cluster.encoded_len() + from.encoded_len()
                }
            }
    }
}

#[cfg(test)]
fn encode_frame(ns: u64, frame: &Frame) -> Bytes {
    NsFrame { ns, frame }.to_bytes()
}

fn decode_frame(buf: &Bytes) -> WireResult<(u64, Frame)> {
    let mut b = buf.clone();
    let ns = u64::decode(&mut b)?;
    let frame = match u32::decode(&mut b)? {
        0 => Frame::Req { key: MsgKey::decode(&mut b)?, data: Bytes::decode(&mut b)? },
        1 => Frame::Fwd {
            cluster: u32::decode(&mut b)?,
            k: u64::decode(&mut b)?,
            from: StackId::decode(&mut b)?,
            key: MsgKey::decode(&mut b)?,
            data: Bytes::decode(&mut b)?,
        },
        2 => Frame::Commit {
            g: u64::decode(&mut b)?,
            key: MsgKey::decode(&mut b)?,
            data: Bytes::decode(&mut b)?,
        },
        3 => Frame::Rly {
            g: u64::decode(&mut b)?,
            key: MsgKey::decode(&mut b)?,
            data: Bytes::decode(&mut b)?,
        },
        4 => Frame::Claim { cluster: u32::decode(&mut b)?, from: StackId::decode(&mut b)? },
        t => return Err(WireError::BadTag(t)),
    };
    Ok((ns, frame))
}

/// One forwarder's cluster stream at the leader: entries commit in
/// local-sequence order, buffered until `k`-contiguous.
#[derive(Default)]
struct Stream {
    next_k: u64,
    buf: BTreeMap<u64, (MsgKey, Bytes)>,
}

/// The hierarchical atomic broadcast module. See module docs.
pub struct HierAbcastModule {
    params: HierAbcastParams,
    svc: ServiceId,
    rp2p_svc: ServiceId,
    // -- member state --
    /// Per-origin sequence for this stack's own broadcasts. Lazily
    /// seeded from the virtual clock so a churn-restarted incarnation
    /// never reuses the keys of its predecessor.
    next_oseq: Option<u64>,
    /// Own broadcasts not yet delivered back, for stall detection and
    /// failover re-sends.
    pending: BTreeMap<MsgKey, Bytes>,
    /// Rotation index into the cluster's candidate list.
    seq_idx: usize,
    /// Whether any own pending broadcast was delivered since the last
    /// stall-timer tick.
    progress: bool,
    timer_armed: bool,
    /// Next global sequence number to deliver, and the out-of-order
    /// buffer.
    next_deliver: u64,
    buffer: BTreeMap<u64, (MsgKey, Bytes)>,
    deliveries: u64,
    // -- acting-sequencer state --
    /// Next local sequence number of this forwarder's stream.
    next_k: u64,
    /// Keys already forwarded (dedup of member re-sends).
    fwd_seen: BTreeSet<MsgKey>,
    /// Whether this non-primary node has claimed the relay role.
    claimed: bool,
    // -- leader state --
    next_g: u64,
    committed: BTreeSet<MsgKey>,
    /// The commit log, indexed by `g` — replayed to claiming relays.
    log: Vec<(MsgKey, Bytes)>,
    /// Current relay per cluster, where it differs from the primary.
    relays: BTreeMap<u32, StackId>,
    /// One stream per forwarder.
    streams: BTreeMap<StackId, Stream>,
}

impl HierAbcastModule {
    /// Build with explicit parameters.
    pub fn new(params: HierAbcastParams) -> HierAbcastModule {
        let svc = ServiceId::new(&params.service);
        HierAbcastModule {
            params,
            svc,
            rp2p_svc: ServiceId::new(dpu_net::RP2P_SVC),
            next_oseq: None,
            pending: BTreeMap::new(),
            seq_idx: 0,
            progress: false,
            timer_armed: false,
            next_deliver: 0,
            buffer: BTreeMap::new(),
            deliveries: 0,
            next_k: 0,
            fwd_seen: BTreeSet::new(),
            claimed: false,
            next_g: 0,
            committed: BTreeSet::new(),
            log: Vec::new(),
            relays: BTreeMap::new(),
            streams: BTreeMap::new(),
        }
    }

    /// Register this module's factory under [`KIND`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let params = if spec.params.is_empty() {
                HierAbcastParams::default()
            } else {
                spec.params::<HierAbcastParams>().unwrap_or_default()
            };
            Box::new(HierAbcastModule::new(params))
        });
    }

    /// Messages Adelivered by this module.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Commits assigned so far (meaningful on the merge leader only).
    pub fn commits(&self) -> u64 {
        self.next_g
    }

    /// Nodes per cluster on this stack: explicit params beat the host
    /// configuration; a flat host is one group-wide cluster.
    fn cluster_nodes(&self, ctx: &ModuleCtx<'_>) -> u32 {
        if self.params.cluster_size > 0 {
            self.params.cluster_size
        } else {
            ctx.cluster_size().unwrap_or(u32::MAX).max(1)
        }
    }

    fn cluster_of(&self, ctx: &ModuleCtx<'_>, id: StackId) -> u32 {
        id.0 / self.cluster_nodes(ctx)
    }

    /// Members of `cluster`, in id order (the candidate list).
    fn members(&self, ctx: &ModuleCtx<'_>, cluster: u32) -> Vec<StackId> {
        ctx.peers().iter().copied().filter(|&p| self.cluster_of(ctx, p) == cluster).collect()
    }

    /// The merge leader: the globally lowest id.
    fn leader(ctx: &ModuleCtx<'_>) -> StackId {
        *ctx.peers().iter().min().expect("non-empty group")
    }

    /// The local sequencer this member currently believes in: the
    /// candidate list rotated by the stall counter.
    fn believed_sequencer(&self, ctx: &ModuleCtx<'_>) -> StackId {
        let my_cluster = self.cluster_of(ctx, ctx.stack_id());
        let c = self.members(ctx, my_cluster);
        c[self.seq_idx % c.len()]
    }

    /// The relay currently responsible for fanning commits into
    /// `cluster` (primary until a claim replaces it).
    fn relay_of(&self, ctx: &ModuleCtx<'_>, cluster: u32) -> StackId {
        match self.relays.get(&cluster) {
            Some(&r) => r,
            None => *self.members(ctx, cluster).first().expect("populated cluster"),
        }
    }

    fn send(&self, ctx: &mut ModuleCtx<'_>, to: StackId, frame: &Frame) {
        let body = NsFrame { ns: self.params.namespace, frame };
        let d = DgramRef { peer: to, channel: channels::ABCAST_HIER, body: &body };
        let payload = ctx.encode(&d);
        ctx.call(&self.rp2p_svc, dgram::SEND, payload);
    }

    /// Act as this cluster's sequencer for one request (any member may
    /// be addressed after failover rotation; the leader's per-forwarder
    /// streams and key dedup make concurrent actors safe).
    fn handle_req(&mut self, ctx: &mut ModuleCtx<'_>, key: MsgKey, data: Bytes) {
        let my_cluster = self.cluster_of(ctx, ctx.stack_id());
        if self.cluster_of(ctx, key.0) != my_cluster || !self.fwd_seen.insert(key) {
            return;
        }
        let leader = Self::leader(ctx);
        let primary = *self.members(ctx, my_cluster).first().expect("populated cluster");
        if ctx.stack_id() != primary && !self.claimed {
            // First time acting in the primary's stead: take over the
            // relay role before the forward, so the leader replays the
            // log (RP2P is FIFO per link — the claim arrives first).
            self.claimed = true;
            self.send(ctx, leader, &Frame::Claim { cluster: my_cluster, from: ctx.stack_id() });
        }
        let k = self.next_k;
        self.next_k += 1;
        self.send(
            ctx,
            leader,
            &Frame::Fwd { cluster: my_cluster, k, from: ctx.stack_id(), key, data },
        );
    }

    /// Leader: commit one stream entry and fan it out to the relays.
    fn commit(&mut self, ctx: &mut ModuleCtx<'_>, key: MsgKey, data: Bytes) {
        if !self.committed.insert(key) {
            return;
        }
        let g = self.next_g;
        self.next_g += 1;
        self.log.push((key, data.clone()));
        let clusters: BTreeSet<u32> =
            ctx.peers().to_vec().iter().map(|&p| self.cluster_of(ctx, p)).collect();
        for c in clusters {
            let relay = self.relay_of(ctx, c);
            self.send(ctx, relay, &Frame::Commit { g, key, data: data.clone() });
        }
    }

    /// Member: file a committed entry at its global position and
    /// deliver the contiguous prefix.
    fn buffer_insert(&mut self, ctx: &mut ModuleCtx<'_>, g: u64, key: MsgKey, data: Bytes) {
        if g < self.next_deliver {
            return;
        }
        self.buffer.insert(g, (key, data));
        while let Some((key, data)) = self.buffer.remove(&self.next_deliver) {
            self.next_deliver += 1;
            self.deliveries += 1;
            if self.pending.remove(&key).is_some() {
                self.progress = true;
            }
            ctx.respond(&self.svc, ops::ADELIVER, data);
        }
    }

    fn arm_timer(&mut self, ctx: &mut ModuleCtx<'_>) {
        if !self.timer_armed {
            self.timer_armed = true;
            ctx.set_timer(self.params.resend, 1);
        }
    }
}

impl Module for HierAbcastModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.rp2p_svc.clone()]
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op != ops::ABCAST {
            return;
        }
        // Seed the per-origin sequence from the clock on first use: a
        // churn-restarted incarnation starts at a later virtual time,
        // so its keys never collide with its predecessor's at the
        // leader's dedup set (deterministic — no wall clock involved).
        let oseq = *self
            .next_oseq
            .get_or_insert_with(|| ctx.now().as_nanos().wrapping_mul(0x9E3779B97F4A7C15));
        self.next_oseq = Some(oseq + 1);
        let key = (ctx.stack_id(), oseq);
        self.pending.insert(key, call.data.clone());
        let seqr = self.believed_sequencer(ctx);
        self.send(ctx, seqr, &Frame::Req { key, data: call.data });
        self.arm_timer(ctx);
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.service != self.rp2p_svc || resp.op != dgram::RECV {
            return;
        }
        let Ok(d) = resp.decode::<Dgram>() else { return };
        if d.channel != channels::ABCAST_HIER {
            return;
        }
        let Ok((ns, frame)) = decode_frame(&d.data) else { return };
        if ns != self.params.namespace {
            return;
        }
        match frame {
            Frame::Req { key, data } => self.handle_req(ctx, key, data),
            Frame::Fwd { k, from, key, data, .. } => {
                if ctx.stack_id() != Self::leader(ctx) {
                    return;
                }
                let s = self.streams.entry(from).or_default();
                if k < s.next_k {
                    return; // duplicate
                }
                s.buf.insert(k, (key, data));
                while let Some(entry) = {
                    let s = self.streams.get_mut(&from).expect("stream just touched");
                    s.buf.remove(&s.next_k).inspect(|_| s.next_k += 1)
                } {
                    self.commit(ctx, entry.0, entry.1);
                }
            }
            Frame::Commit { g, key, data } => {
                // Fan out inside the cluster, then file locally.
                let my_cluster = self.cluster_of(ctx, ctx.stack_id());
                for peer in self.members(ctx, my_cluster) {
                    if peer != ctx.stack_id() {
                        self.send(ctx, peer, &Frame::Rly { g, key, data: data.clone() });
                    }
                }
                self.buffer_insert(ctx, g, key, data);
            }
            Frame::Rly { g, key, data } => self.buffer_insert(ctx, g, key, data),
            Frame::Claim { cluster, from } => {
                if ctx.stack_id() != Self::leader(ctx) {
                    return;
                }
                self.relays.insert(cluster, from);
                // Replay the whole log to the claiming relay: a crashed
                // primary may have left any subset of its cluster at any
                // delivery depth, and re-relayed positions below a
                // member's `next_deliver` are dropped idempotently.
                for (g, (key, data)) in self.log.clone().into_iter().enumerate() {
                    self.send(ctx, from, &Frame::Commit { g: g as u64, key, data });
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _id: TimerId, _tag: u64) {
        self.timer_armed = false;
        if self.pending.is_empty() {
            return;
        }
        if self.progress {
            // Deliveries of our own messages are flowing — the believed
            // sequencer is alive, just loaded. Keep waiting.
            self.progress = false;
        } else {
            // Stalled: rotate to the next candidate and re-send
            // everything outstanding (the leader deduplicates).
            self.seq_idx += 1;
            for (key, data) in self.pending.clone() {
                let seqr = self.believed_sequencer(ctx);
                self.send(ctx, seqr, &Frame::Req { key, data });
            }
        }
        self.arm_timer(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abcast::testkit::{abcast, assert_total_order, delivered, mk_stack};
    use dpu_core::time::Time;
    use dpu_core::wire;
    use dpu_sim::{NetConfig, Sim, SimConfig};

    fn hier_default() -> Box<dyn Module> {
        Box::new(HierAbcastModule::new(HierAbcastParams::default()))
    }

    fn flat_sim(n: u32, seed: u64) -> Sim {
        Sim::new(SimConfig::lan(n, seed), |sc| mk_stack(sc, hier_default))
    }

    /// 3-node clusters on a datacenter fabric over a LAN backbone; the
    /// cluster size reaches the module through the stack config.
    fn clustered_sim(n: u32, seed: u64) -> Sim {
        let cfg = SimConfig::clustered(n, seed, 3, NetConfig::datacenter(), NetConfig::lan());
        Sim::new(cfg, |sc| mk_stack(sc, hier_default))
    }

    #[test]
    fn frame_and_params_wire_contract() {
        use dpu_core::wire::testing::assert_wire_contract;
        let key = (StackId(3), 77u64);
        let frames = [
            Frame::Req { key, data: Bytes::from_static(b"m") },
            Frame::Fwd { cluster: 2, k: 9, from: StackId(6), key, data: Bytes::from_static(b"f") },
            Frame::Commit { g: 4, key, data: Bytes::from_static(b"c") },
            Frame::Rly { g: 5, key, data: Bytes::from_static(b"r") },
            Frame::Claim { cluster: 1, from: StackId(4) },
        ];
        for frame in &frames {
            let nf = NsFrame { ns: 6, frame };
            assert_eq!(nf.encoded_len(), nf.to_bytes().len());
            let bytes = nf.to_bytes();
            let (ns, _back) = decode_frame(&bytes).expect("roundtrip");
            assert_eq!(ns, 6);
            for cut in 0..bytes.len() {
                assert!(decode_frame(&bytes.slice(..cut)).is_err());
            }
        }
        assert_wire_contract(&HierAbcastParams::default());
    }

    #[test]
    fn single_message_delivered_everywhere_on_flat_host() {
        // Flat topology: the single-cluster degeneration.
        let mut sim = flat_sim(3, 42);
        sim.run_until(Time::ZERO + Dur::millis(50));
        abcast(&mut sim, 1, b"hello");
        sim.run_until(Time::ZERO + Dur::secs(1));
        assert_total_order(&mut sim, &[0, 1, 2], 1);
    }

    #[test]
    fn singleton_group_delivers_to_itself() {
        let mut sim = flat_sim(1, 8);
        sim.run_until(Time::ZERO + Dur::millis(50));
        abcast(&mut sim, 0, b"solo");
        sim.run_until(Time::ZERO + Dur::secs(1));
        assert_total_order(&mut sim, &[0], 1);
    }

    #[test]
    fn concurrent_senders_totally_ordered_across_clusters() {
        // 9 nodes in 3 clusters; senders in every cluster.
        let mut sim = clustered_sim(9, 7);
        sim.run_until(Time::ZERO + Dur::millis(50));
        for i in 0..9u32 {
            for j in 0..6u8 {
                abcast(&mut sim, i, &[i as u8, j]);
            }
        }
        sim.run_until(Time::ZERO + Dur::secs(5));
        assert_total_order(&mut sim, &[0, 1, 2, 3, 4, 5, 6, 7, 8], 54);
    }

    #[test]
    fn fifo_per_sender_is_preserved_by_the_stream_merge() {
        // RP2P is FIFO, the local sequencer forwards in arrival order
        // and the leader commits each stream k-contiguously, so one
        // sender's messages keep their send order.
        let mut sim = clustered_sim(6, 3);
        sim.run_until(Time::ZERO + Dur::millis(50));
        for j in 0..20u8 {
            abcast(&mut sim, 4, &[j]);
        }
        sim.run_until(Time::ZERO + Dur::secs(3));
        let d = delivered(&mut sim, 1);
        let order: Vec<u8> = d.iter().map(|b| b[0]).collect();
        assert_eq!(order, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn explicit_cluster_size_param_overrides_flat_host() {
        // Two synthetic clusters of 2 on a flat LAN: the params value
        // beats the (absent) host topology.
        let params = HierAbcastParams { cluster_size: 2, ..HierAbcastParams::default() };
        let mut sim = Sim::new(SimConfig::lan(4, 5), move |sc| {
            let params = params.clone();
            mk_stack(sc, move || Box::new(HierAbcastModule::new(params)))
        });
        sim.run_until(Time::ZERO + Dur::millis(50));
        for i in 0..4u32 {
            abcast(&mut sim, i, &[i as u8]);
        }
        sim.run_until(Time::ZERO + Dur::secs(2));
        assert_total_order(&mut sim, &[0, 1, 2, 3], 4);
    }

    #[test]
    fn loss_is_recovered_by_rp2p_underneath() {
        let mut cfg = SimConfig::clustered(6, 11, 3, NetConfig::lossy(0.2), NetConfig::lossy(0.2));
        cfg.net.loss = 0.2;
        let mut sim = Sim::new(cfg, |sc| mk_stack(sc, hier_default));
        sim.run_until(Time::ZERO + Dur::millis(50));
        for j in 0..10u8 {
            abcast(&mut sim, 5, &[j]);
        }
        sim.run_until(Time::ZERO + Dur::secs(10));
        assert_total_order(&mut sim, &[0, 1, 2, 3, 4, 5], 10);
    }

    #[test]
    fn local_sequencer_crash_fails_over_without_a_gap() {
        // Crash cluster 1's primary (node 3) mid-stream: members rotate
        // to node 4, which claims the relay role; the log replay closes
        // the gap and the survivors converge on one total order.
        let params = HierAbcastParams { resend: Dur::millis(250), ..HierAbcastParams::default() };
        let cfg = SimConfig::clustered(9, 21, 3, NetConfig::datacenter(), NetConfig::lan());
        let mut sim = Sim::new(cfg, move |sc| {
            let params = params.clone();
            mk_stack(sc, move || Box::new(HierAbcastModule::new(params)))
        });
        sim.run_until(Time::ZERO + Dur::millis(50));
        for i in 0..9u32 {
            abcast(&mut sim, i, &[0, i as u8]);
        }
        sim.run_until(Time::ZERO + Dur::millis(400));
        sim.crash_at(sim.now(), StackId(3));
        sim.run_until(Time::ZERO + Dur::millis(500));
        // Post-crash traffic from every surviving stack, including the
        // orphaned cluster members 4 and 5.
        for i in [0u32, 1, 2, 4, 5, 6, 7, 8] {
            abcast(&mut sim, i, &[1, i as u8]);
        }
        sim.run_until(Time::ZERO + Dur::secs(12));
        let survivors = [0u32, 1, 2, 4, 5, 6, 7, 8];
        assert_total_order(&mut sim, &survivors, 17);
    }

    #[test]
    fn namespace_filtering_drops_foreign_frames() {
        let p1 = HierAbcastParams { namespace: 1, ..HierAbcastParams::default() };
        let frame_bytes = encode_frame(
            2,
            &Frame::Commit { g: 0, key: (StackId(0), 0), data: Bytes::from_static(b"x") },
        );
        let (ns, _) = decode_frame(&frame_bytes).unwrap();
        assert_eq!(ns, 2);
        assert_ne!(ns, p1.namespace);
    }

    #[test]
    fn params_roundtrip_and_factory() {
        let p = HierAbcastParams {
            namespace: 5,
            service: "svc-x".into(),
            cluster_size: 64,
            resend: Dur::millis(700),
        };
        let b = wire::to_bytes(&p);
        assert_eq!(wire::from_bytes::<HierAbcastParams>(&b).unwrap(), p);
        let mut reg = dpu_core::FactoryRegistry::new();
        HierAbcastModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::with_params(KIND, &p)).unwrap();
        assert_eq!(m.kind(), KIND);
        assert_eq!(m.provides(), vec![ServiceId::new("svc-x")]);
    }
}
