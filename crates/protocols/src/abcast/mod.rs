//! Atomic broadcast: four interchangeable implementations of the §5.1
//! specification (Hadzilacos–Toueg):
//!
//! * **validity** — a correct process that ABcasts `m` eventually
//!   Adelivers `m`;
//! * **uniform agreement** — if a process Adelivers `m`, all correct
//!   processes eventually Adeliver `m`;
//! * **uniform integrity** — `m` is Adelivered at most once, and only if
//!   previously ABcast;
//! * **uniform total order** — all processes Adeliver in compatible order.
//!
//! Variants:
//!
//! | module | algorithm | fault tolerance |
//! |---|---|---|
//! | [`ct::CtAbcastModule`] | reduction to consensus (Chandra–Toueg transformation): gossip messages, agree on batches | crash-tolerant, uniform (inherits consensus) |
//! | [`sequencer::SeqAbcastModule`] | fixed sequencer assigns a global sequence | non-fault-tolerant (sequencer is a single point of failure); cheapest latency |
//! | [`ring::RingAbcastModule`] | privilege-based: a circulating token carries the sequence counter | non-fault-tolerant; throughput-friendly, latency grows with ring position |
//! | [`hier::HierAbcastModule`] | hierarchical: one local sequencer per topology cluster, streams merged by a leader cluster | local-sequencer failover; leader remains a single point of failure; scales fan-out across clusters |
//!
//! All variants provide the same two-operation service ([`ops`]), so the
//! replacement module of `dpu-repl` can switch between them on the fly —
//! exactly the paper's "switching between different atomic broadcast
//! protocols" scenario. The non-fault-tolerant variants are realistic
//! switch *targets* (the paper's motivation includes switching to a
//! cheaper protocol when the environment is stable).
//!
//! ## Payloads and namespaces
//!
//! Application payloads are opaque `Bytes`. Each module incarnation tags
//! its wire traffic and consensus instances with a `namespace` from its
//! [`dpu_core::ModuleSpec`]; see the crate docs.

pub mod ct;
pub mod hier;
pub mod ring;
pub mod sequencer;

use dpu_core::StackId;

/// Operation codes of the `abcast` service (all variants).
pub mod ops {
    use dpu_core::Op;
    /// Call: atomically broadcast the payload bytes.
    pub const ABCAST: Op = 1;
    /// Response: a payload is Adelivered (in total order).
    pub const ADELIVER: Op = 2;
}

/// Internal identity of a broadcast message: `(origin, per-origin seq)`.
/// Used by the consensus-based variant to deduplicate across batches.
pub type MsgKey = (StackId, u64);

#[cfg(test)]
pub(crate) mod testkit {
    //! Shared scaffolding for the abcast variant tests: builds a full
    //! stack (net bridge → udp → rp2p → fd → consensus → abcast) with a
    //! recording application module on top, and property-checks runs.

    use super::ops;
    use crate::consensus::{ConsensusModule, ConsensusParams, CoordPolicy};
    use crate::fd::{FdConfig, FdModule};
    use bytes::Bytes;
    use dpu_core::stack::{FactoryRegistry, ModuleCtx, Stack, StackConfig};
    use dpu_core::time::Time;
    use dpu_core::{Call, Module, ModuleId, Response, ServiceId, StackId};
    use dpu_net::rp2p::{Rp2pConfig, Rp2pModule};
    use dpu_net::udp::UdpModule;
    use dpu_sim::Sim;

    /// Records ADELIVER payloads in order.
    pub struct App {
        pub delivered: Vec<Bytes>,
    }

    impl Module for App {
        fn kind(&self) -> &str {
            "test-app"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(crate::ABCAST_SVC)]
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op == ops::ADELIVER {
                self.delivered.push(resp.data);
            }
        }
    }

    /// Module ids in the standard test stack layout.
    /// m1 net, m2 udp, m3 rp2p, m4 fd, m5 consensus, m6 abcast, m7 app.
    pub const ABCAST: ModuleId = ModuleId(6);
    pub const APP: ModuleId = ModuleId(7);

    /// Build the standard stack with `mk_abcast` supplying the variant.
    pub fn mk_stack(sc: StackConfig, mk_abcast: impl FnOnce() -> Box<dyn Module>) -> Stack {
        let mut s = Stack::new(sc, FactoryRegistry::new());
        let udp = s.add_module(Box::new(UdpModule::new()));
        let rp2p = s.add_module(Box::new(Rp2pModule::new(Rp2pConfig::default())));
        let fd = s.add_module(Box::new(FdModule::new(FdConfig::default())));
        let cons = s.add_module(Box::new(ConsensusModule::new(
            ConsensusParams::default(),
            CoordPolicy::Rotating,
        )));
        let ab = s.add_module(mk_abcast());
        s.add_module(Box::new(App { delivered: vec![] }));
        s.bind(&ServiceId::new(dpu_net::UDP_SVC), udp);
        s.bind(&ServiceId::new(dpu_net::RP2P_SVC), rp2p);
        s.bind(&ServiceId::new(crate::FD_SVC), fd);
        s.bind(&ServiceId::new(crate::CONSENSUS_SVC), cons);
        s.bind(&ServiceId::new(crate::ABCAST_SVC), ab);
        s
    }

    /// ABcast a payload from `node`.
    pub fn abcast(sim: &mut Sim, node: u32, payload: &[u8]) {
        let data = Bytes::copy_from_slice(payload);
        sim.with_stack(StackId(node), |s| {
            s.call_as(APP, &ServiceId::new(crate::ABCAST_SVC), ops::ABCAST, data)
        });
    }

    /// The delivery sequence at `node`.
    pub fn delivered(sim: &mut Sim, node: u32) -> Vec<Bytes> {
        sim.with_stack(StackId(node), |s| {
            s.with_module::<App, _>(APP, |a| a.delivered.clone()).unwrap()
        })
    }

    /// Assert the four atomic broadcast properties over the app logs of
    /// all non-crashed nodes: identical order, no dups, complete set.
    pub fn assert_total_order(sim: &mut Sim, nodes: &[u32], expected: usize) {
        let first = delivered(sim, nodes[0]);
        assert_eq!(
            first.len(),
            expected,
            "node {} delivered {} of {expected} at t={:?}",
            nodes[0],
            first.len(),
            Time(sim.now().as_nanos()),
        );
        let unique: std::collections::BTreeSet<&Bytes> = first.iter().collect();
        assert_eq!(unique.len(), first.len(), "duplicate deliveries on node {}", nodes[0]);
        for &n in &nodes[1..] {
            let d = delivered(sim, n);
            assert_eq!(d, first, "node {n} disagrees with node {}", nodes[0]);
        }
    }
}
