//! Privilege-based (token-ring) atomic broadcast.
//!
//! A token carrying the global sequence counter circulates over the ring
//! of stacks (in id order). Only the token holder may order messages: it
//! stamps its pending broadcasts with consecutive sequence numbers,
//! re-broadcasts them, and passes the token on. Everyone delivers in
//! sequence order.
//!
//! Properties: total order and integrity always; validity while all ring
//! members are up (the token is lost if its holder crashes — the protocol
//! is not crash-tolerant, like the sequencer variant it is a cheap
//! fair-throughput protocol a group may switch to dynamically). Latency
//! is dominated by the token rotation time, which makes it an interesting
//! contrast to the other two variants in the benchmarks.

use super::ops;
use crate::channels;
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::time::Dur;
use dpu_core::wire::{Decode, Encode, WireError, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId, TimerId};
use dpu_net::dgram::{self, Dgram, DgramRef};
use std::collections::{BTreeMap, VecDeque};

/// Module kind name, for factory registration.
pub const KIND: &str = "abcast.ring";

const TAG_TOKEN: u64 = 1;

/// Factory parameters of the token-ring atomic broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingAbcastParams {
    /// Incarnation namespace tagging all wire traffic.
    pub namespace: u64,
    /// Service name to provide (default [`crate::ABCAST_SVC`]).
    pub service: String,
    /// How long the holder keeps the token before passing it on (bounds
    /// the rotation period and thus worst-case ordering latency).
    pub hold: Dur,
}

impl Default for RingAbcastParams {
    fn default() -> Self {
        RingAbcastParams {
            namespace: 0,
            service: crate::ABCAST_SVC.to_string(),
            hold: Dur::millis(2),
        }
    }
}

impl Encode for RingAbcastParams {
    fn encode(&self, buf: &mut BytesMut) {
        self.namespace.encode(buf);
        self.service.encode(buf);
        self.hold.as_nanos().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.namespace.encoded_len()
            + self.service.encoded_len()
            + self.hold.as_nanos().encoded_len()
    }
}

impl Decode for RingAbcastParams {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(RingAbcastParams {
            namespace: u64::decode(buf)?,
            service: String::decode(buf)?,
            hold: Dur::nanos(u64::decode(buf)?),
        })
    }
}

enum Frame {
    /// tag 0: the token, carrying the next sequence number to assign.
    Token { next_seq: u64 },
    /// tag 1: an ordered message.
    Order { seq: u64, data: Bytes },
}

/// A namespace-tagged frame, encoded in one forward pass.
struct NsFrame<'a> {
    ns: u64,
    frame: &'a Frame,
}

impl Encode for NsFrame<'_> {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        match self.frame {
            Frame::Token { next_seq } => {
                0u32.encode(buf);
                next_seq.encode(buf);
            }
            Frame::Order { seq, data } => {
                1u32.encode(buf);
                seq.encode(buf);
                data.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        self.ns.encoded_len()
            + match self.frame {
                Frame::Token { next_seq } => 0u32.encoded_len() + next_seq.encoded_len(),
                Frame::Order { seq, data } => {
                    1u32.encoded_len() + seq.encoded_len() + data.encoded_len()
                }
            }
    }
}

fn decode_frame(buf: &Bytes) -> WireResult<(u64, Frame)> {
    let mut b = buf.clone();
    let ns = u64::decode(&mut b)?;
    let frame = match u32::decode(&mut b)? {
        0 => Frame::Token { next_seq: u64::decode(&mut b)? },
        1 => Frame::Order { seq: u64::decode(&mut b)?, data: Bytes::decode(&mut b)? },
        t => return Err(WireError::BadTag(t)),
    };
    Ok((ns, frame))
}

/// The token-ring atomic broadcast module. See module docs.
pub struct RingAbcastModule {
    params: RingAbcastParams,
    svc: ServiceId,
    rp2p_svc: ServiceId,
    pending: VecDeque<Bytes>,
    /// `Some(next_seq)` while this stack holds the token.
    token: Option<u64>,
    next_deliver: u64,
    buffer: BTreeMap<u64, Bytes>,
    deliveries: u64,
    rotations: u64,
}

impl RingAbcastModule {
    /// Build with explicit parameters.
    pub fn new(params: RingAbcastParams) -> RingAbcastModule {
        let svc = ServiceId::new(&params.service);
        RingAbcastModule {
            params,
            svc,
            rp2p_svc: ServiceId::new(dpu_net::RP2P_SVC),
            pending: VecDeque::new(),
            token: None,
            next_deliver: 0,
            buffer: BTreeMap::new(),
            deliveries: 0,
            rotations: 0,
        }
    }

    /// Register this module's factory under [`KIND`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let params = if spec.params.is_empty() {
                RingAbcastParams::default()
            } else {
                spec.params::<RingAbcastParams>().unwrap_or_default()
            };
            Box::new(RingAbcastModule::new(params))
        });
    }

    /// Messages Adelivered by this module.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Times this stack has held and passed the token.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    fn send(&self, ctx: &mut ModuleCtx<'_>, to: StackId, frame: &Frame) {
        // Namespace + frame encoded in place inside the Dgram, one
        // scratch pass, no intermediate buffer.
        let body = NsFrame { ns: self.params.namespace, frame };
        let d = DgramRef { peer: to, channel: channels::ABCAST_RING, body: &body };
        let payload = ctx.encode(&d);
        ctx.call(&self.rp2p_svc, dgram::SEND, payload);
    }

    fn successor(ctx: &ModuleCtx<'_>) -> StackId {
        let peers = ctx.peers();
        let me = ctx.stack_id();
        let pos = peers.iter().position(|&p| p == me).expect("member of the ring");
        peers[(pos + 1) % peers.len()]
    }

    /// Order all pending messages and hand the token to the successor.
    fn flush_and_pass(&mut self, ctx: &mut ModuleCtx<'_>) {
        let Some(mut seq) = self.token.take() else { return };
        self.rotations += 1;
        while let Some(data) = self.pending.pop_front() {
            for peer in ctx.peers().to_vec() {
                self.send(ctx, peer, &Frame::Order { seq, data: data.clone() });
            }
            seq += 1;
        }
        let succ = Self::successor(ctx);
        if succ == ctx.stack_id() {
            // Singleton ring: keep the token, re-arm the hold timer.
            self.token = Some(seq);
            ctx.set_timer(self.params.hold, TAG_TOKEN);
        } else {
            self.send(ctx, succ, &Frame::Token { next_seq: seq });
        }
    }

    fn drain(&mut self, ctx: &mut ModuleCtx<'_>) {
        while let Some(data) = self.buffer.remove(&self.next_deliver) {
            self.next_deliver += 1;
            self.deliveries += 1;
            ctx.respond(&self.svc, ops::ADELIVER, data);
        }
    }
}

impl Module for RingAbcastModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.rp2p_svc.clone()]
    }

    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        // The lowest-id stack injects the initial token.
        if Some(&ctx.stack_id()) == ctx.peers().iter().min() {
            self.token = Some(0);
            ctx.set_timer(self.params.hold, TAG_TOKEN);
        }
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op != ops::ABCAST {
            return;
        }
        self.pending.push_back(call.data);
        let _ = ctx;
        // Ordering happens when the token arrives (or on the hold timer if
        // we currently hold it) — keeping the flush on the timer path
        // batches messages naturally.
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.service != self.rp2p_svc || resp.op != dgram::RECV {
            return;
        }
        let Ok(d) = resp.decode::<Dgram>() else { return };
        if d.channel != channels::ABCAST_RING {
            return;
        }
        let Ok((ns, frame)) = decode_frame(&d.data) else { return };
        if ns != self.params.namespace {
            return;
        }
        match frame {
            Frame::Token { next_seq } => {
                self.token = Some(next_seq);
                ctx.set_timer(self.params.hold, TAG_TOKEN);
            }
            Frame::Order { seq, data } => {
                if seq >= self.next_deliver {
                    self.buffer.insert(seq, data);
                    self.drain(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _timer: TimerId, tag: u64) {
        if tag == TAG_TOKEN && self.token.is_some() {
            self.flush_and_pass(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abcast::testkit::{abcast, assert_total_order, mk_stack, ABCAST};
    use dpu_core::time::Time;
    use dpu_core::wire;
    use dpu_sim::{Sim, SimConfig};

    fn ring_sim(n: u32, seed: u64) -> Sim {
        Sim::new(SimConfig::lan(n, seed), |sc| {
            mk_stack(sc, || Box::new(RingAbcastModule::new(RingAbcastParams::default())))
        })
    }

    #[test]
    fn frame_and_params_wire_contract() {
        use dpu_core::wire::testing::assert_wire_contract;
        use dpu_core::wire::Encode;
        let tok = Frame::Token { next_seq: 11 };
        let ord = Frame::Order { seq: 8, data: Bytes::from_static(b"oo") };
        for frame in [&tok, &ord] {
            let nf = NsFrame { ns: 6, frame };
            assert_eq!(nf.encoded_len(), nf.to_bytes().len());
            let bytes = nf.to_bytes();
            let (ns, _back) = decode_frame(&bytes).expect("roundtrip");
            assert_eq!(ns, 6);
            for cut in 0..bytes.len() {
                assert!(decode_frame(&bytes.slice(..cut)).is_err());
            }
        }
        assert_wire_contract(&RingAbcastParams::default());
    }

    #[test]
    fn single_message_delivered_everywhere() {
        let mut sim = ring_sim(3, 42);
        sim.run_until(Time::ZERO + Dur::millis(50));
        abcast(&mut sim, 1, b"hello");
        sim.run_until(Time::ZERO + Dur::secs(1));
        assert_total_order(&mut sim, &[0, 1, 2], 1);
    }

    #[test]
    fn concurrent_senders_totally_ordered() {
        let mut sim = ring_sim(4, 7);
        sim.run_until(Time::ZERO + Dur::millis(50));
        for i in 0..4u32 {
            for j in 0..5u8 {
                abcast(&mut sim, i, &[i as u8, j]);
            }
        }
        sim.run_until(Time::ZERO + Dur::secs(3));
        assert_total_order(&mut sim, &[0, 1, 2, 3], 20);
    }

    #[test]
    fn token_rotates_even_when_idle() {
        let mut sim = ring_sim(3, 9);
        sim.run_until(Time::ZERO + Dur::secs(1));
        for node in 0..3u32 {
            let rot = sim.with_stack(dpu_core::StackId(node), |s| {
                s.with_module::<RingAbcastModule, _>(ABCAST, |m| m.rotations()).unwrap()
            });
            assert!(rot > 10, "node {node} rotated only {rot} times");
        }
    }

    #[test]
    fn works_on_a_singleton_ring() {
        let mut sim = ring_sim(1, 5);
        sim.run_until(Time::ZERO + Dur::millis(20));
        abcast(&mut sim, 0, b"solo");
        sim.run_until(Time::ZERO + Dur::secs(1));
        assert_total_order(&mut sim, &[0], 1);
    }

    #[test]
    fn loss_is_recovered_by_rp2p_underneath() {
        let mut cfg = SimConfig::lan(3, 11);
        cfg.net.loss = 0.2;
        let mut sim = Sim::new(cfg, |sc| {
            mk_stack(sc, || Box::new(RingAbcastModule::new(RingAbcastParams::default())))
        });
        sim.run_until(Time::ZERO + Dur::millis(50));
        for j in 0..10u8 {
            abcast(&mut sim, 2, &[j]);
        }
        sim.run_until(Time::ZERO + Dur::secs(10));
        assert_total_order(&mut sim, &[0, 1, 2], 10);
    }

    #[test]
    fn params_roundtrip_and_factory() {
        let p = RingAbcastParams { namespace: 4, service: "ring".into(), hold: Dur::millis(7) };
        let b = wire::to_bytes(&p);
        assert_eq!(wire::from_bytes::<RingAbcastParams>(&b).unwrap(), p);
        let mut reg = dpu_core::FactoryRegistry::new();
        RingAbcastModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::with_params(KIND, &p)).unwrap();
        assert_eq!(m.kind(), KIND);
        assert_eq!(m.provides(), vec![ServiceId::new("ring")]);
    }

    #[test]
    fn frame_decode_rejects_bad_tag() {
        let raw = wire::to_bytes(&(0u64, 9u32));
        assert!(decode_frame(&raw).is_err());
    }
}
