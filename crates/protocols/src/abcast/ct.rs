//! Consensus-based atomic broadcast: the Chandra–Toueg transformation
//! (the paper's *ABcast* module in Figure 4, which "requires the
//! consensus service").
//!
//! A broadcast message is first *gossiped* to all stacks (reliable
//! point-to-point to every peer). Each stack accumulates undelivered
//! messages in an `unordered` set and runs a sequence of consensus
//! instances; instance `k` agrees on a *batch* (the proposer's current
//! `unordered` set, values included). Batches are delivered in instance
//! order; the `delivered` set filters messages that appear in several
//! batches. Uniformity and crash tolerance are inherited from consensus.
//!
//! Unlike the common construction, this module is **not** built on top of
//! view synchrony — the paper points this out for its own ABcast module,
//! and that its replacement algorithm works for either flavour.

use super::{ops, MsgKey};
use crate::channels;
use crate::consensus::ops as cons_ops;
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::wire::{Decode, Encode, LenPrefixed, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};
use dpu_net::dgram::{self, Dgram, DgramRef};
use std::collections::{BTreeMap, BTreeSet};

/// Module kind name, for factory registration.
pub const KIND: &str = "abcast.ct";

/// Factory parameters of the consensus-based atomic broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CtAbcastParams {
    /// Incarnation namespace: tags gossip traffic and consensus instances.
    pub namespace: u64,
    /// Service name to provide (default [`crate::ABCAST_SVC`]).
    pub service: String,
    /// Consensus service to require (default [`crate::CONSENSUS_SVC`]).
    /// Pointing a new incarnation at a different consensus service is how
    /// the consensus-replacement experiment swaps the agreement protocol
    /// underneath atomic broadcast (paper §7 / ref \[16\]).
    pub consensus: String,
    /// Batching delay: after the first message of a batch arrives, wait
    /// this long before proposing, so more messages share one consensus
    /// instance. Zero (the default) proposes immediately — lowest latency
    /// at low load, more instances (and an earlier saturation knee) at
    /// high load. The `ablation` benchmark sweeps this knob.
    pub batch_delay: dpu_core::time::Dur,
}

impl Default for CtAbcastParams {
    fn default() -> Self {
        CtAbcastParams {
            namespace: 0,
            service: crate::ABCAST_SVC.to_string(),
            consensus: crate::CONSENSUS_SVC.to_string(),
            batch_delay: dpu_core::time::Dur::ZERO,
        }
    }
}

impl Encode for CtAbcastParams {
    fn encode(&self, buf: &mut BytesMut) {
        self.namespace.encode(buf);
        self.service.encode(buf);
        self.consensus.encode(buf);
        self.batch_delay.as_nanos().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.namespace.encoded_len()
            + self.service.encoded_len()
            + self.consensus.encoded_len()
            + self.batch_delay.as_nanos().encoded_len()
    }
}

impl Decode for CtAbcastParams {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(CtAbcastParams {
            namespace: u64::decode(buf)?,
            service: String::decode(buf)?,
            consensus: String::decode(buf)?,
            batch_delay: dpu_core::time::Dur::nanos(u64::decode(buf)?),
        })
    }
}

/// Gossip frame: `(namespace, origin, seq, payload)`.
struct Gossip {
    ns: u64,
    key: MsgKey,
    data: Bytes,
}

impl Encode for Gossip {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        self.key.0.encode(buf);
        self.key.1.encode(buf);
        self.data.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.ns.encoded_len()
            + self.key.0.encoded_len()
            + self.key.1.encoded_len()
            + self.data.encoded_len()
    }
}

impl Decode for Gossip {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(Gossip {
            ns: u64::decode(buf)?,
            key: (StackId::decode(buf)?, u64::decode(buf)?),
            data: Bytes::decode(buf)?,
        })
    }
}

type Batch = Vec<(StackId, u64, Bytes)>;

/// The consensus-based atomic broadcast module. See module docs.
pub struct CtAbcastModule {
    params: CtAbcastParams,
    svc: ServiceId,
    cons_svc: ServiceId,
    rp2p_svc: ServiceId,
    next_seq: u64,
    unordered: BTreeMap<MsgKey, Bytes>,
    delivered: BTreeSet<MsgKey>,
    next_instance: u64,
    proposed: BTreeSet<u64>,
    decisions: BTreeMap<u64, Batch>,
    deliveries: u64,
    batch_timer_armed: bool,
}

const TAG_BATCH: u64 = 1;

impl CtAbcastModule {
    /// Build with explicit parameters.
    pub fn new(params: CtAbcastParams) -> CtAbcastModule {
        let svc = ServiceId::new(&params.service);
        let cons_svc = ServiceId::new(&params.consensus);
        CtAbcastModule {
            params,
            svc,
            cons_svc,
            rp2p_svc: ServiceId::new(dpu_net::RP2P_SVC),
            next_seq: 0,
            unordered: BTreeMap::new(),
            delivered: BTreeSet::new(),
            next_instance: 0,
            proposed: BTreeSet::new(),
            decisions: BTreeMap::new(),
            deliveries: 0,
            batch_timer_armed: false,
        }
    }

    /// Register this module's factory under [`KIND`]. Empty params mean
    /// defaults; otherwise params decode as [`CtAbcastParams`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let params = if spec.params.is_empty() {
                CtAbcastParams::default()
            } else {
                spec.params::<CtAbcastParams>().unwrap_or_default()
            };
            Box::new(CtAbcastModule::new(params))
        });
    }

    /// Messages Adelivered by this module.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Consensus instances completed by this module.
    pub fn instances_done(&self) -> u64 {
        self.next_instance
    }

    /// Messages accepted but not yet ordered.
    pub fn unordered_len(&self) -> usize {
        self.unordered.len()
    }

    fn gossip(&self, ctx: &mut ModuleCtx<'_>, key: MsgKey, data: &Bytes) {
        let me = ctx.stack_id();
        let gossip = Gossip { ns: self.params.namespace, key, data: data.clone() };
        for peer in ctx.peers().to_vec() {
            if peer == me {
                continue;
            }
            // Gossip encoded in place inside the Dgram, one scratch pass
            // per peer (each peer's datagram is an independent buffer).
            let d = DgramRef { peer, channel: channels::ABCAST_CT, body: &gossip };
            let payload = ctx.encode(&d);
            ctx.call(&self.rp2p_svc, dgram::SEND, payload);
        }
    }

    fn try_propose(&mut self, ctx: &mut ModuleCtx<'_>, force: bool) {
        let k = self.next_instance;
        if self.proposed.contains(&k) {
            return;
        }
        if self.unordered.is_empty() && !force {
            return;
        }
        // Batching: hold the proposal briefly so concurrent messages
        // share one consensus instance. Forced proposals (the group is
        // already running the instance) never wait.
        if !force && self.params.batch_delay > dpu_core::time::Dur::ZERO {
            if !self.batch_timer_armed {
                self.batch_timer_armed = true;
                ctx.set_timer(self.params.batch_delay, TAG_BATCH);
            }
            return;
        }
        self.propose_now(ctx, k);
    }

    fn propose_now(&mut self, ctx: &mut ModuleCtx<'_>, k: u64) {
        self.proposed.insert(k);
        let batch: Batch = self
            .unordered
            .iter()
            .map(|(&(origin, seq), data)| (origin, seq, data.clone()))
            .collect();
        // The batch is framed in place inside the PROPOSE payload.
        let payload = ctx.encode(&(self.params.namespace, k, LenPrefixed(&batch)));
        ctx.call(&self.cons_svc, cons_ops::PROPOSE, payload);
    }

    fn drain_decisions(&mut self, ctx: &mut ModuleCtx<'_>) {
        while let Some(batch) = self.decisions.remove(&self.next_instance) {
            for (origin, seq, data) in batch {
                let key = (origin, seq);
                if self.delivered.insert(key) {
                    self.unordered.remove(&key);
                    self.deliveries += 1;
                    ctx.respond(&self.svc, ops::ADELIVER, data);
                }
            }
            self.next_instance += 1;
        }
        // Keep ordering the backlog.
        self.try_propose(ctx, false);
    }
}

impl Module for CtAbcastModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.cons_svc.clone(), self.rp2p_svc.clone()]
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op != ops::ABCAST {
            return;
        }
        let key = (ctx.stack_id(), self.next_seq);
        self.next_seq += 1;
        if self.delivered.contains(&key) {
            return; // cannot happen (fresh key), defensive
        }
        self.unordered.insert(key, call.data.clone());
        self.gossip(ctx, key, &call.data);
        self.try_propose(ctx, false);
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _timer: dpu_core::TimerId, tag: u64) {
        if tag == TAG_BATCH {
            self.batch_timer_armed = false;
            let k = self.next_instance;
            if !self.proposed.contains(&k) && !self.unordered.is_empty() {
                self.propose_now(ctx, k);
            }
        }
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.service == self.rp2p_svc && resp.op == dgram::RECV {
            let Ok(d) = resp.decode::<Dgram>() else { return };
            if d.channel != channels::ABCAST_CT {
                return;
            }
            let Ok(g) = dpu_core::wire::from_bytes::<Gossip>(&d.data) else { return };
            if g.ns != self.params.namespace {
                return;
            }
            if !self.delivered.contains(&g.key) {
                self.unordered.insert(g.key, g.data);
                self.try_propose(ctx, false);
            }
            return;
        }
        if resp.service == self.cons_svc {
            match resp.op {
                cons_ops::DECIDE => {
                    let Ok((ns, k, value)) = resp.decode::<(u64, u64, Bytes)>() else {
                        return;
                    };
                    if ns != self.params.namespace || k < self.next_instance {
                        return;
                    }
                    let Ok(batch) = dpu_core::wire::from_bytes::<Batch>(&value) else {
                        return;
                    };
                    self.decisions.insert(k, batch);
                    self.drain_decisions(ctx);
                }
                cons_ops::NEED_PROPOSAL => {
                    let Ok((ns, k)) = resp.decode::<(u64, u64)>() else { return };
                    if ns != self.params.namespace {
                        return;
                    }
                    // The group is running instance k; participate with
                    // whatever we have (possibly an empty batch) so the
                    // instance can reach a majority.
                    if k == self.next_instance {
                        self.try_propose(ctx, true);
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abcast::testkit::{abcast, assert_total_order, delivered, mk_stack, ABCAST};
    use dpu_core::time::{Dur, Time};
    use dpu_core::wire;
    use dpu_core::StackId;
    use dpu_sim::{Sim, SimConfig};

    fn ct_sim(n: u32, seed: u64) -> Sim {
        Sim::new(SimConfig::lan(n, seed), |sc| {
            mk_stack(sc, || Box::new(CtAbcastModule::new(CtAbcastParams::default())))
        })
    }

    #[test]
    fn gossip_and_params_wire_contract() {
        use dpu_core::wire::testing::assert_wire_contract;
        assert_wire_contract(&Gossip {
            ns: 3,
            key: (StackId(1), 99),
            data: Bytes::from_static(b"payload"),
        });
        assert_wire_contract(&CtAbcastParams::default());
    }

    #[test]
    fn single_message_delivered_everywhere() {
        let mut sim = ct_sim(3, 42);
        sim.run_until(Time::ZERO + Dur::millis(100));
        abcast(&mut sim, 0, b"hello");
        sim.run_until(Time::ZERO + Dur::secs(3));
        assert_total_order(&mut sim, &[0, 1, 2], 1);
    }

    #[test]
    fn concurrent_senders_totally_ordered() {
        let mut sim = ct_sim(3, 7);
        sim.run_until(Time::ZERO + Dur::millis(100));
        for i in 0..3u32 {
            for j in 0..5u8 {
                abcast(&mut sim, i, &[i as u8, j]);
            }
        }
        sim.run_until(Time::ZERO + Dur::secs(10));
        assert_total_order(&mut sim, &[0, 1, 2], 15);
    }

    #[test]
    fn seven_stacks_like_the_paper() {
        let mut sim = ct_sim(7, 13);
        sim.run_until(Time::ZERO + Dur::millis(100));
        for i in 0..7u32 {
            abcast(&mut sim, i, &[i as u8]);
        }
        sim.run_until(Time::ZERO + Dur::secs(10));
        assert_total_order(&mut sim, &[0, 1, 2, 3, 4, 5, 6], 7);
    }

    #[test]
    fn survives_message_loss() {
        let mut cfg = SimConfig::lan(3, 11);
        cfg.net.loss = 0.15;
        let mut sim = Sim::new(cfg, |sc| {
            mk_stack(sc, || Box::new(CtAbcastModule::new(CtAbcastParams::default())))
        });
        sim.run_until(Time::ZERO + Dur::millis(100));
        for j in 0..5u8 {
            abcast(&mut sim, 0, &[j]);
        }
        sim.run_until(Time::ZERO + Dur::secs(20));
        assert_total_order(&mut sim, &[0, 1, 2], 5);
    }

    #[test]
    fn survives_crash_of_non_coordinator() {
        let mut sim = ct_sim(5, 3);
        sim.run_until(Time::ZERO + Dur::millis(100));
        for j in 0..3u8 {
            abcast(&mut sim, 0, &[j]);
        }
        sim.schedule_in(Dur::millis(50), |sim| {
            sim.crash_at(sim.now(), StackId(4));
        });
        sim.run_until(Time::ZERO + Dur::secs(10));
        assert_total_order(&mut sim, &[0, 1, 2, 3], 3);
    }

    #[test]
    fn survives_crash_of_round0_coordinator() {
        // Rotating policy: round-0 coordinator is stack 0. Crash it after
        // it has sent some messages; the rest must still agree.
        let mut sim = ct_sim(5, 3);
        sim.run_until(Time::ZERO + Dur::millis(100));
        for j in 0..3u8 {
            abcast(&mut sim, 1, &[j]);
        }
        sim.schedule_in(Dur::millis(20), |sim| {
            sim.crash_at(sim.now(), StackId(0));
        });
        sim.run_until(Time::ZERO + Dur::secs(15));
        assert_total_order(&mut sim, &[1, 2, 3, 4], 3);
    }

    #[test]
    fn different_namespaces_do_not_interfere() {
        // Two abcast modules (ns 1 and ns 2) side by side in each stack on
        // different service names; streams stay independent.
        use crate::abcast::testkit::App;
        use dpu_core::stack::Stack;
        use dpu_core::{ModuleId, ServiceId};
        let mk = |sc: dpu_core::StackConfig| -> Stack {
            let mut s = mk_stack(sc, || {
                Box::new(CtAbcastModule::new(CtAbcastParams {
                    namespace: 1,
                    ..CtAbcastParams::default()
                }))
            });
            let ab2 = s.add_module(Box::new(CtAbcastModule::new(CtAbcastParams {
                namespace: 2,
                service: "abcast2".into(),
                consensus: crate::CONSENSUS_SVC.into(),
                ..CtAbcastParams::default()
            })));
            s.add_module(Box::new(App { delivered: vec![] })); // m9? no: requires "abcast"
            s.bind(&ServiceId::new("abcast2"), ab2);
            s
        };
        let mut sim = Sim::new(SimConfig::lan(3, 5), mk);
        sim.run_until(Time::ZERO + Dur::millis(100));
        abcast(&mut sim, 0, b"ns1-message");
        // Send on the second service directly.
        sim.with_stack(StackId(1), |s| {
            s.call_as(
                ModuleId(7),
                &ServiceId::new("abcast2"),
                ops::ABCAST,
                bytes::Bytes::from_static(b"ns2-message"),
            )
        });
        sim.run_until(Time::ZERO + Dur::secs(5));
        // The primary app (bound to "abcast") sees only the ns1 message.
        for node in 0..3 {
            let d = delivered(&mut sim, node);
            assert_eq!(d, vec![bytes::Bytes::from_static(b"ns1-message")]);
        }
    }

    #[test]
    fn module_counters_track_progress() {
        let mut sim = ct_sim(3, 19);
        sim.run_until(Time::ZERO + Dur::millis(100));
        for j in 0..4u8 {
            abcast(&mut sim, 0, &[j]);
        }
        sim.run_until(Time::ZERO + Dur::secs(5));
        let (deliv, inst, pend) = sim.with_stack(StackId(0), |s| {
            s.with_module::<CtAbcastModule, _>(ABCAST, |m| {
                (m.deliveries(), m.instances_done(), m.unordered_len())
            })
            .unwrap()
        });
        assert_eq!(deliv, 4);
        assert!(inst >= 1);
        assert_eq!(pend, 0);
    }

    #[test]
    fn batch_delay_reduces_consensus_instances() {
        let run = |delay: dpu_core::time::Dur| {
            let mut sim = Sim::new(SimConfig::lan(3, 77), move |sc| {
                mk_stack(sc, || {
                    Box::new(CtAbcastModule::new(CtAbcastParams {
                        batch_delay: delay,
                        ..CtAbcastParams::default()
                    }))
                })
            });
            sim.run_until(Time::ZERO + Dur::millis(100));
            // A burst of closely spaced messages.
            for j in 0..10u8 {
                abcast(&mut sim, 0, &[j]);
            }
            sim.run_until(Time::ZERO + Dur::secs(5));
            assert_total_order(&mut sim, &[0, 1, 2], 10);
            sim.with_stack(StackId(0), |s| {
                s.with_module::<CtAbcastModule, _>(ABCAST, |m| m.instances_done()).unwrap()
            })
        };
        let eager = run(Dur::ZERO);
        let batched = run(Dur::millis(5));
        assert!(batched < eager, "batching must use fewer instances: {batched} vs {eager}");
        assert_eq!(batched, 1, "a 5ms window should capture the whole burst");
    }

    #[test]
    fn params_roundtrip_and_factory() {
        let p = CtAbcastParams {
            namespace: 3,
            service: "abc".into(),
            consensus: "c2".into(),
            batch_delay: dpu_core::time::Dur::millis(2),
        };
        let b = wire::to_bytes(&p);
        assert_eq!(wire::from_bytes::<CtAbcastParams>(&b).unwrap(), p);
        let mut reg = dpu_core::FactoryRegistry::new();
        CtAbcastModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::with_params(KIND, &p)).unwrap();
        assert_eq!(m.kind(), KIND);
        assert_eq!(m.provides(), vec![dpu_core::ServiceId::new("abc")]);
        assert!(m.requires().contains(&dpu_core::ServiceId::new("c2")));
    }
}
