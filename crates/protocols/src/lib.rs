//! # dpu-protocols — the group communication protocol suite
//!
//! All protocol modules of the paper's adaptive middleware stack
//! (Figure 4), implemented as [`dpu_core::Module`]s:
//!
//! * [`fd::FdModule`] — a heartbeat failure detector approximating ◇S
//!   (eventually weak accuracy via adaptive timeouts);
//! * [`consensus::ConsensusModule`] — Chandra–Toueg ◇S consensus with a
//!   rotating coordinator, plus a fixed-preferred-coordinator policy
//!   variant (the second *agreement protocol* used by the consensus
//!   replacement experiment);
//! * [`abcast`] — four interchangeable atomic broadcast protocols
//!   satisfying the §5.1 specification: consensus-based
//!   ([`abcast::ct`]), fixed-sequencer ([`abcast::sequencer`]),
//!   privilege/token-ring ([`abcast::ring`]) and hierarchical
//!   per-cluster sequencers under a merge leader ([`abcast::hier`]);
//! * [`gm::GmModule`] — group membership (totally ordered views over
//!   atomic broadcast), optionally auto-excluding suspected members;
//! * [`rb::RbModule`] — unordered reliable broadcast (relay-on-first-
//!   delivery dissemination);
//! * [`omega::OmegaModule`] — Ω eventual leader election over the
//!   failure detector.
//!
//! ## Service graph
//!
//! ```text
//!   gm ──▶ abcast ──▶ consensus ──▶ fd
//!                │          │
//!                ▼          ▼
//!              rp2p ──▶   udp ──▶ net
//! ```
//!
//! Modules are wired by service *name*; the replacement layer of
//! `dpu-repl` interposes by renaming the callers' dependency (e.g. `gm`
//! is constructed to call `r-abcast` instead of `abcast`).
//!
//! ## Protocol incarnations
//!
//! Every atomic broadcast module carries a `namespace` (from its
//! [`dpu_core::ModuleSpec`] params): a fresh value per incarnation that
//! tags all of its wire messages and its consensus instances. Two
//! incarnations of the *same kind* (e.g. during the paper's
//! "replace CT-ABcast by CT-ABcast" experiment, §6.2) therefore never
//! confuse each other's traffic, while the modules themselves remain
//! completely unaware of the replacement machinery — the modularity
//! property the paper's structural solution is after.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abcast;
pub mod consensus;
pub mod fd;
pub mod gm;
pub mod omega;
pub mod rb;
pub mod testing;

/// Service name of the failure detector.
pub const FD_SVC: &str = "fd";
/// Service name of distributed consensus.
pub const CONSENSUS_SVC: &str = "consensus";
/// Service name of atomic broadcast.
pub const ABCAST_SVC: &str = "abcast";
/// Service name of group membership.
pub const GM_SVC: &str = "gm";
/// Service name of (unordered) reliable broadcast.
pub const RB_SVC: &str = "rb";
/// Service name of Ω eventual leader election.
pub const LEADER_SVC: &str = "leader";

/// RP2P/UDP channel allocation across the workspace (RP2P's own frames
/// use channel 0; see `dpu_net::rp2p::RP2P_UDP_CHANNEL`).
pub mod channels {
    /// Failure detector heartbeats (raw UDP).
    pub const FD: u16 = 1;
    /// Consensus messages (RP2P).
    pub const CONSENSUS: u16 = 3;
    /// Consensus-based atomic broadcast gossip (RP2P).
    pub const ABCAST_CT: u16 = 4;
    /// Sequencer atomic broadcast (RP2P).
    pub const ABCAST_SEQ: u16 = 5;
    /// Token-ring atomic broadcast (RP2P).
    pub const ABCAST_RING: u16 = 6;
    /// Maestro-style stack switch coordination (RP2P).
    pub const MAESTRO: u16 = 7;
    /// Graceful-Adaptation-style switch coordination (RP2P).
    pub const GRACEFUL: u16 = 8;
    /// Hierarchical atomic broadcast (RP2P).
    pub const ABCAST_HIER: u16 = 9;
}
