//! Property tests for RP2P: under *any* combination of loss,
//! duplication, jitter and message pattern, delivery is exactly-once and
//! FIFO per ordered pair of stacks.

use bytes::Bytes;
use dpu_core::stack::{FactoryRegistry, ModuleCtx, Stack, StackConfig};
use dpu_core::time::{Dur, Time};
use dpu_core::{Call, Module, ModuleId, Response, ServiceId, StackId};
use dpu_net::dgram::{self, Dgram};
use dpu_net::rp2p::{Rp2pConfig, Rp2pModule};
use dpu_net::udp::UdpModule;
use dpu_sim::{Sim, SimConfig};
use proptest::prelude::*;

struct Sink {
    got: Vec<(StackId, Bytes)>,
}

impl Module for Sink {
    fn kind(&self) -> &str {
        "sink"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![ServiceId::new(dpu_net::RP2P_SVC)]
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op == dgram::RECV {
            let d: Dgram = resp.decode().unwrap();
            self.got.push((d.peer, d.data));
        }
    }
}

const SINK: ModuleId = ModuleId(4);

fn mk_stack(sc: StackConfig) -> Stack {
    let mut s = Stack::new(sc, FactoryRegistry::new());
    let udp = s.add_module(Box::new(UdpModule::new()));
    let rp2p = s.add_module(Box::new(Rp2pModule::new(Rp2pConfig::default())));
    s.add_module(Box::new(Sink { got: vec![] }));
    s.bind(&ServiceId::new(dpu_net::UDP_SVC), udp);
    s.bind(&ServiceId::new(dpu_net::RP2P_SVC), rp2p);
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn exactly_once_fifo_under_any_fault_mix(
        seed in 0u64..10_000,
        loss in 0.0f64..0.45,
        duplicate in 0.0f64..0.45,
        // (sender, receiver, count) message plan over 3 stacks
        plan in proptest::collection::vec((0u32..3, 0u32..3, 1usize..8), 1..6),
    ) {
        let mut cfg = SimConfig::lan(3, seed);
        cfg.net.loss = loss;
        cfg.net.duplicate = duplicate;
        let mut sim = Sim::new(cfg, mk_stack);
        // Send the plan; tag each message with (sender, receiver, index).
        let mut expected: Vec<Vec<(StackId, Vec<u8>)>> = vec![vec![], vec![], vec![]];
        for (i, &(from, to, count)) in plan.iter().enumerate() {
            for j in 0..count {
                let tag = vec![from as u8, to as u8, i as u8, j as u8];
                expected[to as usize].push((StackId(from), tag.clone()));
                let d = Dgram {
                    peer: StackId(to),
                    channel: 9,
                    data: Bytes::from(tag),
                };
                sim.with_stack(StackId(from), |s| {
                    s.call_as(
                        SINK,
                        &ServiceId::new(dpu_net::RP2P_SVC),
                        dgram::SEND,
                        dpu_core::wire::to_bytes(&d),
                    )
                });
            }
        }
        // Generous drain: retransmission needs time at high loss.
        sim.run_until(Time::ZERO + Dur::secs(60));
        for node in 0..3u32 {
            let got = sim.with_stack(StackId(node), |s| {
                s.with_module::<Sink, _>(SINK, |k| k.got.clone()).unwrap()
            });
            // Exactly-once: same multiset size.
            prop_assert_eq!(
                got.len(),
                expected[node as usize].len(),
                "node {} delivery count", node
            );
            // FIFO per sender: filter by sender and compare sequences.
            for sender in 0..3u32 {
                let got_from: Vec<&Vec<u8>> = got
                    .iter()
                    .filter(|(s, _)| *s == StackId(sender))
                    .map(|(_, d)| d)
                    .map(|b| {
                        // Convert to Vec for comparison.
                        Box::leak(Box::new(b.to_vec())) as &Vec<u8>
                    })
                    .collect();
                let want_from: Vec<&Vec<u8>> = expected[node as usize]
                    .iter()
                    .filter(|(s, _)| *s == StackId(sender))
                    .map(|(_, d)| d)
                    .collect();
                prop_assert_eq!(got_from, want_from, "node {} from {}", node, sender);
            }
        }
    }
}
