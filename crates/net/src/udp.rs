//! The UDP module (paper Figure 4, bottom of the stack): an interface to
//! the unreliable network with channel multiplexing.
//!
//! Provides service [`crate::UDP_SVC`], requires the built-in `net`
//! service. Send semantics match the underlying network: datagrams may be
//! lost, duplicated or reordered; whatever arrives is handed up unchanged.

use crate::dgram::{self, Dgram};
use bytes::Bytes;
use dpu_core::stack::{net_ops, ModuleCtx};
use dpu_core::wire::LenPrefixed;
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};

/// Module kind name, for factory registration.
pub const KIND: &str = "udp";

/// The UDP module: translates between the `udp` service interface
/// ([`Dgram`] frames) and raw `net` datagrams, counting malformed inbound
/// frames it drops.
pub struct UdpModule {
    udp_svc: ServiceId,
    net_svc: ServiceId,
    malformed_dropped: u64,
}

impl UdpModule {
    /// A UDP module providing the default [`crate::UDP_SVC`] service.
    pub fn new() -> UdpModule {
        UdpModule {
            udp_svc: ServiceId::new(crate::UDP_SVC),
            net_svc: ServiceId::new(dpu_core::svc::NET),
            malformed_dropped: 0,
        }
    }

    /// Register this module's factory under [`KIND`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |_spec: &ModuleSpec| Box::new(UdpModule::new()));
    }

    /// Inbound datagrams dropped because their `(channel, data)` frame —
    /// the part that actually crossed the wire — failed to decode. A
    /// non-zero count points at a peer speaking a different wire format;
    /// the drop is counted here rather than panicking the stack.
    pub fn malformed_dropped(&self) -> u64 {
        self.malformed_dropped
    }
}

impl Default for UdpModule {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for UdpModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.udp_svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.net_svc.clone()]
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op != dgram::SEND {
            return;
        }
        let Ok(d) = call.decode::<Dgram>() else { return };
        // Frame: (channel, data); the destination travels in the net
        // call. One forward pass through the stack scratch — no
        // intermediate buffer for the nested frame.
        let payload = ctx.encode(&(d.peer, LenPrefixed(&(d.channel, d.data))));
        ctx.call(&self.net_svc, net_ops::SEND, payload);
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != net_ops::RECV {
            return;
        }
        // The outer (src, frame) envelope is built by the local stack's
        // `packet_in`, never by a peer — a decode failure here would be a
        // local codec bug, not wire damage, so it is dropped without
        // touching the malformed counter.
        let Ok((src, frame)) = resp.decode::<(StackId, Bytes)>() else {
            debug_assert!(false, "locally-built net envelope failed to decode");
            return;
        };
        // The inner frame IS untrusted wire input: malformed frames are
        // dropped and counted, never unwrapped.
        let Ok((channel, data)) = dpu_core::wire::from_bytes::<(u16, Bytes)>(&frame) else {
            self.malformed_dropped += 1;
            return;
        };
        let up = ctx.encode(&Dgram { peer: src, channel, data });
        ctx.respond(&self.udp_svc, dgram::RECV, up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::stack::{FactoryRegistry, HostAction, Stack, StackConfig};
    use dpu_core::time::Time;
    use dpu_core::wire;

    /// Records `udp` RECV responses.
    struct UdpSink {
        got: Vec<Dgram>,
    }

    impl Module for UdpSink {
        fn kind(&self) -> &str {
            "udpsink"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(crate::UDP_SVC)]
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op == dgram::RECV {
                self.got.push(resp.decode().unwrap());
            }
        }
    }

    fn run_until_idle(stack: &mut Stack) {
        let mut t = stack.now();
        while stack.step(t).is_some() {
            t = Time(t.0 + 1);
        }
    }

    #[test]
    fn send_produces_net_host_action_with_frame() {
        let mut stack = Stack::new(StackConfig::nth(0, 2, 1), FactoryRegistry::new());
        let udp = stack.add_module(Box::new(UdpModule::new()));
        stack.bind(&ServiceId::new(crate::UDP_SVC), udp);
        let user = stack.add_module(Box::new(UdpSink { got: vec![] }));
        let d = Dgram { peer: StackId(1), channel: 7, data: Bytes::from_static(b"hello") };
        stack.call_as(user, &ServiceId::new(crate::UDP_SVC), dgram::SEND, wire::to_bytes(&d));
        run_until_idle(&mut stack);
        let actions = stack.drain_actions();
        assert_eq!(actions.len(), 1);
        let HostAction::NetSend { dst, payload } = &actions[0] else {
            panic!("expected NetSend");
        };
        assert_eq!(*dst, StackId(1));
        let (ch, data): (u16, Bytes) = wire::from_bytes(payload).unwrap();
        assert_eq!(ch, 7);
        assert_eq!(data, Bytes::from_static(b"hello"));
    }

    #[test]
    fn packet_in_surfaces_as_udp_recv() {
        let mut stack = Stack::new(StackConfig::nth(0, 2, 1), FactoryRegistry::new());
        let udp = stack.add_module(Box::new(UdpModule::new()));
        stack.bind(&ServiceId::new(crate::UDP_SVC), udp);
        let user = stack.add_module(Box::new(UdpSink { got: vec![] }));
        let frame = wire::to_bytes(&(9u16, Bytes::from_static(b"payload")));
        stack.packet_in(Time(5), StackId(1), frame);
        run_until_idle(&mut stack);
        let got = stack.with_module::<UdpSink, _>(user, |u| u.got.clone()).unwrap();
        assert_eq!(
            got,
            vec![Dgram { peer: StackId(1), channel: 9, data: Bytes::from_static(b"payload") }]
        );
    }

    #[test]
    fn malformed_frames_are_dropped() {
        let mut stack = Stack::new(StackConfig::nth(0, 2, 1), FactoryRegistry::new());
        let udp = stack.add_module(Box::new(UdpModule::new()));
        stack.bind(&ServiceId::new(crate::UDP_SVC), udp);
        let user = stack.add_module(Box::new(UdpSink { got: vec![] }));
        stack.packet_in(Time(5), StackId(1), Bytes::from_static(&[0xff, 0xff, 0xff]));
        run_until_idle(&mut stack);
        let got = stack.with_module::<UdpSink, _>(user, |u| u.got.clone()).unwrap();
        assert!(got.is_empty());
        let dropped = stack.with_module::<UdpModule, _>(udp, |m| m.malformed_dropped()).unwrap();
        assert_eq!(dropped, 1, "the malformed frame must be counted, not unwrapped");
    }

    #[test]
    fn factory_registration_builds_module() {
        let mut reg = FactoryRegistry::new();
        UdpModule::register(&mut reg);
        assert!(reg.contains(KIND));
        let m = reg.build(&ModuleSpec::new(KIND)).unwrap();
        assert_eq!(m.kind(), KIND);
        assert_eq!(m.provides(), vec![ServiceId::new(crate::UDP_SVC)]);
    }
}
