//! # dpu-net — network substrate modules
//!
//! The two bottom modules of the paper's group communication stack
//! (Figure 4):
//!
//! * [`udp::UdpModule`] — an interface to the unreliable datagram network
//!   (the paper's *UDP* module). Adds channel multiplexing so several
//!   protocols can share the wire.
//! * [`rp2p::Rp2pModule`] — *reliable point-to-point* communication: FIFO,
//!   duplicate-free, loss-recovering delivery between any pair of stacks,
//!   built on UDP with sequence numbers, cumulative acks and
//!   retransmission.
//! * [`frag::FragModule`] — MTU fragmentation/reassembly for oversized
//!   payloads, slotting between RP2P and UDP
//!   (`rp2p → frag → udp`) when protocol messages outgrow a datagram.
//!
//! All are ordinary [`dpu_core::Module`]s; they are wired into stacks via
//! service names [`UDP_SVC`] and [`RP2P_SVC`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frag;
pub mod rp2p;
pub mod udp;

/// Service name of the unreliable datagram service.
pub const UDP_SVC: &str = "udp";
/// Service name of the reliable point-to-point service.
pub const RP2P_SVC: &str = "rp2p";
/// Service name of the MTU fragmentation service (same datagram
/// interface as UDP, for oversized payloads).
pub const FRAG_SVC: &str = "frag";
/// UDP channel reserved for fragmentation frames.
pub const FRAG_UDP_CHANNEL: u16 = 2;

/// Shared operation codes and payload shapes for datagram-style services
/// (`udp` and `rp2p` use the same interface shape).
pub mod dgram {
    use bytes::{Bytes, BytesMut};
    use dpu_core::wire::{Decode, Encode, WireResult};
    use dpu_core::{Op, StackId};

    /// Downward call: send `(dst, channel, data)`.
    pub const SEND: Op = 1;
    /// Upward response: received `(src, channel, data)`.
    pub const RECV: Op = 2;

    /// Payload of [`SEND`] and [`RECV`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Dgram {
        /// The remote stack (destination on send, source on receive).
        pub peer: StackId,
        /// Multiplexing channel; receivers filter on it.
        pub channel: u16,
        /// Opaque payload.
        pub data: Bytes,
    }

    impl Encode for Dgram {
        fn encode(&self, buf: &mut BytesMut) {
            self.peer.encode(buf);
            self.channel.encode(buf);
            self.data.encode(buf);
        }
    }

    impl Decode for Dgram {
        fn decode(buf: &mut Bytes) -> WireResult<Self> {
            Ok(Dgram {
                peer: StackId::decode(buf)?,
                channel: u16::decode(buf)?,
                data: Bytes::decode(buf)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::dgram::Dgram;
    use bytes::Bytes;
    use dpu_core::wire;
    use dpu_core::StackId;

    #[test]
    fn dgram_roundtrip() {
        let d = Dgram { peer: StackId(4), channel: 9, data: Bytes::from_static(b"abc") };
        let b = wire::to_bytes(&d);
        let back: Dgram = wire::from_bytes(&b).unwrap();
        assert_eq!(back, d);
    }
}
