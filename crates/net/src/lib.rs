//! # dpu-net — network substrate modules
//!
//! The two bottom modules of the paper's group communication stack
//! (Figure 4):
//!
//! * [`udp::UdpModule`] — an interface to the unreliable datagram network
//!   (the paper's *UDP* module). Adds channel multiplexing so several
//!   protocols can share the wire.
//! * [`rp2p::Rp2pModule`] — *reliable point-to-point* communication: FIFO,
//!   duplicate-free, loss-recovering delivery between any pair of stacks,
//!   built on UDP with sequence numbers, cumulative acks and
//!   retransmission.
//! * [`frag::FragModule`] — MTU fragmentation/reassembly for oversized
//!   payloads, slotting between RP2P and UDP
//!   (`rp2p → frag → udp`) when protocol messages outgrow a datagram.
//!
//! All are ordinary [`dpu_core::Module`]s; they are wired into stacks via
//! service names [`UDP_SVC`] and [`RP2P_SVC`].
//!
//! [`sockframe`] is not a module but the datagram envelope used by the
//! real-socket host (`dpu-reactor`) to carry `(src, dst, payload)`
//! across an actual wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frag;
pub mod rp2p;
pub mod sockframe;
pub mod udp;

/// Service name of the unreliable datagram service.
pub const UDP_SVC: &str = "udp";
/// Service name of the reliable point-to-point service.
pub const RP2P_SVC: &str = "rp2p";
/// Service name of the MTU fragmentation service (same datagram
/// interface as UDP, for oversized payloads).
pub const FRAG_SVC: &str = "frag";
/// UDP channel reserved for fragmentation frames.
pub const FRAG_UDP_CHANNEL: u16 = 2;

/// Shared operation codes and payload shapes for datagram-style services
/// (`udp` and `rp2p` use the same interface shape).
pub mod dgram {
    use bytes::{Bytes, BytesMut};
    use dpu_core::wire::{Decode, Encode, WireResult};
    use dpu_core::{Op, StackId};

    /// Downward call: send `(dst, channel, data)`.
    pub const SEND: Op = 1;
    /// Upward response: received `(src, channel, data)`.
    pub const RECV: Op = 2;

    /// Payload of [`SEND`] and [`RECV`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Dgram {
        /// The remote stack (destination on send, source on receive).
        pub peer: StackId,
        /// Multiplexing channel; receivers filter on it.
        pub channel: u16,
        /// Opaque payload.
        pub data: Bytes,
    }

    impl Encode for Dgram {
        fn encode(&self, buf: &mut BytesMut) {
            self.peer.encode(buf);
            self.channel.encode(buf);
            self.data.encode(buf);
        }
        fn encoded_len(&self) -> usize {
            self.peer.encoded_len() + self.channel.encoded_len() + self.data.encoded_len()
        }
    }

    impl Decode for Dgram {
        fn decode(buf: &mut Bytes) -> WireResult<Self> {
            Ok(Dgram {
                peer: StackId::decode(buf)?,
                channel: u16::decode(buf)?,
                data: Bytes::decode(buf)?,
            })
        }
    }

    /// Borrowing view of a [`Dgram`] whose payload is a not-yet-encoded
    /// message: encodes byte-identically to
    /// `Dgram { peer, channel, data: body.to_bytes() }` but writes the
    /// nested frame *forward* into one buffer (the body's length prefix
    /// comes from [`Encode::encoded_len`]), so no intermediate buffer is
    /// built per layer. Every protocol module sends through this.
    pub struct DgramRef<'a, B: Encode + ?Sized> {
        /// Destination stack.
        pub peer: StackId,
        /// Multiplexing channel.
        pub channel: u16,
        /// The payload message, encoded in place.
        pub body: &'a B,
    }

    impl<B: Encode + ?Sized> Encode for DgramRef<'_, B> {
        fn encode(&self, buf: &mut BytesMut) {
            self.peer.encode(buf);
            self.channel.encode(buf);
            dpu_core::wire::LenPrefixed(self.body).encode(buf);
        }
        fn encoded_len(&self) -> usize {
            self.peer.encoded_len()
                + self.channel.encoded_len()
                + dpu_core::wire::LenPrefixed(self.body).encoded_len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::dgram::Dgram;
    use bytes::Bytes;
    use dpu_core::wire;
    use dpu_core::StackId;

    #[test]
    fn dgram_roundtrip() {
        let d = Dgram { peer: StackId(4), channel: 9, data: Bytes::from_static(b"abc") };
        let b = wire::to_bytes(&d);
        let back: Dgram = wire::from_bytes(&b).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn dgram_wire_contract() {
        for data in [Bytes::new(), Bytes::from_static(b"abc"), Bytes::from(vec![0u8; 300])] {
            let d = Dgram { peer: StackId(4), channel: 9, data };
            wire::testing::assert_wire_contract(&d);
        }
    }

    /// `DgramRef` must be byte-identical to the two-pass encoding it
    /// replaces: a `Dgram` whose payload is the body's own encoding.
    #[test]
    fn dgram_ref_matches_nested_to_bytes() {
        use super::dgram::DgramRef;
        use dpu_core::wire::Encode;
        let body = (7u16, Bytes::from_static(b"payload"), 42u64);
        let one_pass = DgramRef { peer: StackId(3), channel: 5, body: &body }.to_bytes();
        let two_pass =
            Dgram { peer: StackId(3), channel: 5, data: wire::to_bytes(&body) }.to_bytes();
        assert_eq!(one_pass, two_pass);
        wire::testing::assert_wire_contract(&Dgram {
            peer: StackId(3),
            channel: 5,
            data: wire::to_bytes(&body),
        });
    }
}
