//! The RP2P module (paper Figure 4): **reliable point-to-point**
//! communication between distributed processes.
//!
//! Guarantees on top of UDP, per ordered pair of stacks:
//!
//! * **reliability** — every sent message is eventually delivered if the
//!   destination is correct and the network loses only finitely often
//!   (positive-feedback retransmission with cumulative acks);
//! * **FIFO order** — messages are delivered in send order;
//! * **no duplication** — each message is delivered exactly once, even if
//!   the network duplicates datagrams.
//!
//! Sends to the local stack are looped back directly (no wire traffic).
//!
//! When a retransmission fills a sequence gap, the resequencing buffer
//! releases the recovered frames **one per dispatch cascade** (the rest
//! ride a zero-delay timer) rather than all at once. The stack's
//! delivery queue is breadth-first, so a batch release would let frame
//! k+1 reach modules before frame k's reactions — including
//! `create_module` during a dynamic protocol update — have run; a
//! switching group would then discard new-protocol traffic that arrived
//! ahead of its own switch and stall. See [`Rp2pModule`]'s `pending_up`.
//!
//! Provides service [`crate::RP2P_SVC`], requires [`crate::UDP_SVC`]. All
//! wire traffic uses UDP channel [`RP2P_UDP_CHANNEL`]; the user-facing
//! `channel` of each [`Dgram`] travels inside the RP2P frame.

use crate::dgram::{self, Dgram, DgramRef};
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::time::Dur;
use dpu_core::wire::{Decode, Encode, WireError, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId, TimerId};
use std::collections::BTreeMap;

/// Module kind name, for factory registration.
pub const KIND: &str = "rp2p";

/// UDP channel reserved for RP2P's own frames.
pub const RP2P_UDP_CHANNEL: u16 = 0;

const TAG_RETRANSMIT: u64 = 1;
const TAG_RELEASE: u64 = 2;

/// Tuning knobs for RP2P.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rp2pConfig {
    /// Period of the retransmission scan.
    pub retransmit: Dur,
    /// The datagram service underneath (default [`crate::UDP_SVC`]; point
    /// it at [`crate::FRAG_SVC`] when frames can exceed the MTU).
    pub lower: String,
    /// Give up on a frame after this many retransmissions (`0` =
    /// unbounded, the default). Without a cap a permanently-dead peer
    /// grows the unacked map without bound; with one, exhausted frames
    /// are dropped and counted (see [`Rp2pModule::exhausted`]) —
    /// reliability is traded for bounded memory, exactly like a TCP
    /// connection timing out.
    pub max_retransmits: u64,
}

impl Default for Rp2pConfig {
    fn default() -> Self {
        Rp2pConfig {
            retransmit: Dur::millis(20),
            lower: crate::UDP_SVC.to_string(),
            max_retransmits: 0,
        }
    }
}

impl Encode for Rp2pConfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.retransmit.as_nanos().encode(buf);
        self.lower.encode(buf);
        self.max_retransmits.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.retransmit.as_nanos().encoded_len()
            + self.lower.encoded_len()
            + self.max_retransmits.encoded_len()
    }
}

impl Decode for Rp2pConfig {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(Rp2pConfig {
            retransmit: Dur::nanos(u64::decode(buf)?),
            lower: String::decode(buf)?,
            max_retransmits: u64::decode(buf)?,
        })
    }
}

enum Frame {
    /// tag 0: a data frame.
    Data { seq: u64, channel: u16, data: Bytes },
    /// tag 1: cumulative ack — all `seq < cum` received in order.
    Ack { cum: u64 },
}

impl Encode for Frame {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Frame::Data { seq, channel, data } => {
                0u32.encode(buf);
                seq.encode(buf);
                channel.encode(buf);
                data.encode(buf);
            }
            Frame::Ack { cum } => {
                1u32.encode(buf);
                cum.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            Frame::Data { seq, channel, data } => {
                0u32.encoded_len() + seq.encoded_len() + channel.encoded_len() + data.encoded_len()
            }
            Frame::Ack { cum } => 1u32.encoded_len() + cum.encoded_len(),
        }
    }
}

impl Decode for Frame {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        match u32::decode(buf)? {
            0 => Ok(Frame::Data {
                seq: u64::decode(buf)?,
                channel: u16::decode(buf)?,
                data: Bytes::decode(buf)?,
            }),
            1 => Ok(Frame::Ack { cum: u64::decode(buf)? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// A sent-but-unacknowledged data frame, with its retransmit count.
struct Unacked {
    channel: u16,
    data: Bytes,
    attempts: u64,
}

#[derive(Default)]
struct PeerOut {
    next_seq: u64,
    unacked: BTreeMap<u64, Unacked>,
}

#[derive(Default)]
struct PeerIn {
    next_expected: u64,
    buffer: BTreeMap<u64, (u16, Bytes)>,
}

/// The reliable point-to-point module. See module docs.
pub struct Rp2pModule {
    cfg: Rp2pConfig,
    rp2p_svc: ServiceId,
    udp_svc: ServiceId,
    out: BTreeMap<StackId, PeerOut>,
    inn: BTreeMap<StackId, PeerIn>,
    /// Resequenced frames awaiting upward delivery. At most one frame is
    /// released per dispatch cascade (the rest ride a zero-delay timer):
    /// the stack's delivery queue is breadth-first, so handing a whole
    /// recovered batch up at once would let frame k+1 reach modules
    /// *before* the chain of module-creation reactions triggered by
    /// frame k has run — a dynamic-update group would discard
    /// new-protocol traffic arriving ahead of its own switch and stall
    /// forever. One-per-cascade restores the order Algorithm 1 assumes.
    pending_up: std::collections::VecDeque<(StackId, u16, Bytes)>,
    /// Whether a `TAG_RELEASE` timer is armed.
    releasing: bool,
    retransmissions: u64,
    exhausted: u64,
}

impl Rp2pModule {
    /// A module with the given configuration.
    pub fn new(cfg: Rp2pConfig) -> Rp2pModule {
        let udp_svc = ServiceId::new(&cfg.lower);
        Rp2pModule {
            cfg,
            rp2p_svc: ServiceId::new(crate::RP2P_SVC),
            udp_svc,
            out: BTreeMap::new(),
            inn: BTreeMap::new(),
            pending_up: std::collections::VecDeque::new(),
            releasing: false,
            retransmissions: 0,
            exhausted: 0,
        }
    }

    /// Register this module's factory under [`KIND`]. Empty params mean
    /// defaults; otherwise params decode as [`Rp2pConfig`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let cfg = if spec.params.is_empty() {
                Rp2pConfig::default()
            } else {
                spec.params::<Rp2pConfig>().unwrap_or_default()
            };
            Box::new(Rp2pModule::new(cfg))
        });
    }

    /// Total data-frame retransmissions performed (observability).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Frames dropped after exhausting
    /// [`Rp2pConfig::max_retransmits`] — each one is a message whose
    /// reliable delivery was abandoned because the peer looked
    /// permanently dead.
    pub fn exhausted(&self) -> u64 {
        self.exhausted
    }

    /// Number of frames currently awaiting ack across all peers.
    pub fn unacked(&self) -> usize {
        self.out.values().map(|p| p.unacked.len()).sum()
    }

    fn udp_send(&self, ctx: &mut ModuleCtx<'_>, dst: StackId, frame: &Frame) {
        // Frame encoded in place inside the Dgram, one scratch pass.
        let d = DgramRef { peer: dst, channel: RP2P_UDP_CHANNEL, body: frame };
        let payload = ctx.encode(&d);
        ctx.call(&self.udp_svc, dgram::SEND, payload);
    }

    fn deliver(&self, ctx: &mut ModuleCtx<'_>, src: StackId, channel: u16, data: Bytes) {
        let d = Dgram { peer: src, channel, data };
        let up = ctx.encode(&d);
        ctx.respond(&self.rp2p_svc, dgram::RECV, up);
    }

    /// Release one frame from [`Rp2pModule::pending_up`]; defer the rest
    /// to a zero-delay timer so each frame's full dispatch cascade runs
    /// before the next frame is seen by any module. In the common case
    /// (one in-order frame, nothing buffered) this is an immediate
    /// delivery with no timer — byte-identical to handing the frame up
    /// directly.
    fn release(&mut self, ctx: &mut ModuleCtx<'_>) {
        if self.releasing {
            return; // a release timer is already armed
        }
        if let Some((src, ch, d)) = self.pending_up.pop_front() {
            self.deliver(ctx, src, ch, d);
        }
        if !self.pending_up.is_empty() {
            self.releasing = true;
            ctx.set_timer(Dur::ZERO, TAG_RELEASE);
        }
    }

    fn handle_frame(&mut self, ctx: &mut ModuleCtx<'_>, src: StackId, frame: Frame) {
        match frame {
            Frame::Data { seq, channel, data } => {
                let pin = self.inn.entry(src).or_default();
                if seq >= pin.next_expected {
                    let out_of_order = seq > pin.next_expected;
                    pin.buffer.insert(seq, (channel, data));
                    if out_of_order {
                        // Resequencing pressure: how deep the hole-filling
                        // buffer runs when frames arrive out of order.
                        let depth = pin.buffer.len() as u64;
                        ctx.telemetry().record_reseq_depth(depth);
                    }
                    // Drain in-order prefix.
                    let mut ready = Vec::new();
                    while let Some(entry) = {
                        let pin = self.inn.get_mut(&src).expect("entry exists");
                        if pin.buffer.contains_key(&pin.next_expected) {
                            let e = pin.buffer.remove(&pin.next_expected).unwrap();
                            pin.next_expected += 1;
                            Some(e)
                        } else {
                            None
                        }
                    } {
                        ready.push(entry);
                    }
                    for (ch, d) in ready {
                        self.pending_up.push_back((src, ch, d));
                    }
                    self.release(ctx);
                }
                // Always (re-)ack: covers duplicates and lost acks.
                let cum = self.inn.get(&src).map_or(0, |p| p.next_expected);
                self.udp_send(ctx, src, &Frame::Ack { cum });
            }
            Frame::Ack { cum } => {
                if let Some(pout) = self.out.get_mut(&src) {
                    pout.unacked.retain(|&seq, _| seq >= cum);
                }
            }
        }
    }
}

impl Module for Rp2pModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.rp2p_svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.udp_svc.clone()]
    }

    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        ctx.set_timer(self.cfg.retransmit, TAG_RETRANSMIT);
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op != dgram::SEND {
            return;
        }
        let Ok(d) = call.decode::<Dgram>() else { return };
        if d.peer == ctx.stack_id() {
            // Local loopback: trivially reliable and ordered.
            self.deliver(ctx, d.peer, d.channel, d.data);
            return;
        }
        let pout = self.out.entry(d.peer).or_default();
        let seq = pout.next_seq;
        pout.next_seq += 1;
        pout.unacked.insert(seq, Unacked { channel: d.channel, data: d.data.clone(), attempts: 0 });
        self.udp_send(ctx, d.peer, &Frame::Data { seq, channel: d.channel, data: d.data });
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != dgram::RECV || resp.service != self.udp_svc {
            return;
        }
        let Ok(d) = resp.decode::<Dgram>() else { return };
        if d.channel != RP2P_UDP_CHANNEL {
            return;
        }
        let Ok(frame) = dpu_core::wire::from_bytes::<Frame>(&d.data) else { return };
        self.handle_frame(ctx, d.peer, frame);
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _timer: TimerId, tag: u64) {
        if tag == TAG_RELEASE {
            self.releasing = false;
            self.release(ctx);
            return;
        }
        if tag != TAG_RETRANSMIT {
            return;
        }
        // Collect first to avoid borrowing self across udp_send. Frames
        // that hit the retransmit cap are dropped from the unacked map
        // here (counted, not resent), so a dead peer's backlog is
        // bounded by cap × send rate instead of growing forever.
        let cap = self.cfg.max_retransmits;
        let mut pending: Vec<(StackId, u64, u16, Bytes)> = Vec::new();
        for (&peer, pout) in &mut self.out {
            let mut dropped = 0u64;
            pout.unacked.retain(|&seq, fr| {
                if cap > 0 && fr.attempts >= cap {
                    dropped += 1;
                    return false;
                }
                fr.attempts += 1;
                pending.push((peer, seq, fr.channel, fr.data.clone()));
                true
            });
            if dropped > 0 {
                let now_ns = ctx.now().as_nanos();
                ctx.telemetry().note_retransmit_exhausted(now_ns, u64::from(peer.0));
            }
            self.exhausted += dropped;
        }
        for (peer, seq, channel, data) in pending {
            self.retransmissions += 1;
            self.udp_send(ctx, peer, &Frame::Data { seq, channel, data });
        }
        ctx.set_timer(self.cfg.retransmit, TAG_RETRANSMIT);
    }

    fn transport_stats(&self) -> Option<dpu_core::TransportStats> {
        Some(dpu_core::TransportStats {
            retransmissions: self.retransmissions,
            exhausted: self.exhausted,
            unacked: self.unacked() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp::UdpModule;
    use dpu_core::stack::{FactoryRegistry, Stack, StackConfig};
    use dpu_core::time::Time;
    use dpu_core::wire;
    use dpu_core::ModuleId;
    use dpu_sim::{Sim, SimConfig};

    /// Records `rp2p` RECV responses.
    struct Rp2pSink {
        got: Vec<Dgram>,
    }

    impl Module for Rp2pSink {
        fn kind(&self) -> &str {
            "rp2psink"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(crate::RP2P_SVC)]
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op == dgram::RECV {
                self.got.push(resp.decode().unwrap());
            }
        }
    }

    /// Stack layout used here: m1 net bridge, m2 udp, m3 rp2p, m4 sink.
    const RP2P: ModuleId = ModuleId(3);
    const SINK: ModuleId = ModuleId(4);

    fn mk_stack(sc: StackConfig) -> Stack {
        let mut s = Stack::new(sc, FactoryRegistry::new());
        let udp = s.add_module(Box::new(UdpModule::new()));
        let rp2p = s.add_module(Box::new(Rp2pModule::new(Rp2pConfig::default())));
        s.add_module(Box::new(Rp2pSink { got: vec![] }));
        s.bind(&ServiceId::new(crate::UDP_SVC), udp);
        s.bind(&ServiceId::new(crate::RP2P_SVC), rp2p);
        s
    }

    fn send(sim: &mut Sim, from: u32, to: u32, tagbyte: u8) {
        let d = Dgram { peer: StackId(to), channel: 5, data: Bytes::from(vec![tagbyte]) };
        sim.with_stack(StackId(from), |s| {
            s.call_as(SINK, &ServiceId::new(crate::RP2P_SVC), dgram::SEND, wire::to_bytes(&d))
        });
    }

    fn sink_data(sim: &mut Sim, node: u32) -> Vec<u8> {
        sim.with_stack(StackId(node), |s| {
            s.with_module::<Rp2pSink, _>(SINK, |k| {
                k.got.iter().map(|d| d.data[0]).collect::<Vec<u8>>()
            })
            .unwrap()
        })
    }

    #[test]
    fn delivers_in_fifo_order_on_clean_network() {
        let mut sim = Sim::new(SimConfig::lan(2, 42), mk_stack);
        for i in 0..10u8 {
            send(&mut sim, 0, 1, i);
        }
        sim.run_until(Time::ZERO + Dur::millis(100));
        assert_eq!(sink_data(&mut sim, 1), (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn recovers_from_heavy_loss() {
        let mut cfg = SimConfig::lan(2, 7);
        cfg.net.loss = 0.4;
        let mut sim = Sim::new(cfg, mk_stack);
        for i in 0..30u8 {
            send(&mut sim, 0, 1, i);
        }
        sim.run_until(Time::ZERO + Dur::secs(5));
        assert_eq!(sink_data(&mut sim, 1), (0..30).collect::<Vec<u8>>());
        // Loss must have caused actual retransmissions.
        let retrans = sim.with_stack(StackId(0), |s| {
            s.with_module::<Rp2pModule, _>(RP2P, |m| m.retransmissions()).unwrap()
        });
        assert!(retrans > 0);
    }

    #[test]
    fn suppresses_network_duplicates() {
        let mut cfg = SimConfig::lan(2, 7);
        cfg.net.duplicate = 1.0;
        let mut sim = Sim::new(cfg, mk_stack);
        for i in 0..10u8 {
            send(&mut sim, 0, 1, i);
        }
        sim.run_until(Time::ZERO + Dur::secs(1));
        assert_eq!(sink_data(&mut sim, 1), (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn local_loopback_delivers_without_wire_traffic() {
        let mut sim = Sim::new(SimConfig::lan(1, 3), mk_stack);
        send(&mut sim, 0, 0, 9);
        sim.run_until(Time::ZERO + Dur::millis(10));
        assert_eq!(sink_data(&mut sim, 0), vec![9]);
        assert_eq!(sim.stats().packets_sent, 0);
    }

    #[test]
    fn bidirectional_streams_are_independent() {
        let mut sim = Sim::new(SimConfig::lan(2, 11), mk_stack);
        for i in 0..5u8 {
            send(&mut sim, 0, 1, i);
            send(&mut sim, 1, 0, 100 + i);
        }
        sim.run_until(Time::ZERO + Dur::millis(200));
        assert_eq!(sink_data(&mut sim, 1), (0..5).collect::<Vec<u8>>());
        assert_eq!(sink_data(&mut sim, 0), (100..105).collect::<Vec<u8>>());
    }

    #[test]
    fn unacked_drains_once_acks_flow() {
        let mut sim = Sim::new(SimConfig::lan(2, 5), mk_stack);
        for i in 0..4u8 {
            send(&mut sim, 0, 1, i);
        }
        sim.run_until(Time::ZERO + Dur::secs(1));
        let unacked = sim.with_stack(StackId(0), |s| {
            s.with_module::<Rp2pModule, _>(RP2P, |m| m.unacked()).unwrap()
        });
        assert_eq!(unacked, 0);
    }

    fn mk_capped(cap: u64) -> impl FnMut(StackConfig) -> Stack {
        move |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            let udp = s.add_module(Box::new(UdpModule::new()));
            let rp2p = s.add_module(Box::new(Rp2pModule::new(Rp2pConfig {
                max_retransmits: cap,
                ..Rp2pConfig::default()
            })));
            s.add_module(Box::new(Rp2pSink { got: vec![] }));
            s.bind(&ServiceId::new(crate::UDP_SVC), udp);
            s.bind(&ServiceId::new(crate::RP2P_SVC), rp2p);
            s
        }
    }

    #[test]
    fn retransmit_cap_bounds_dead_peer_backlog() {
        let mut cfg = SimConfig::lan(2, 13);
        cfg.net.loss = 1.0; // the wire is dead: nothing (incl. acks) arrives
        let mut sim = Sim::new(cfg, mk_capped(5));
        for i in 0..8u8 {
            send(&mut sim, 0, 1, i);
        }
        sim.run_until(Time::ZERO + Dur::secs(2));
        let (unacked, exhausted, retrans, ts) = sim.with_stack(StackId(0), |s| {
            let (u, e, r) = s
                .with_module::<Rp2pModule, _>(RP2P, |m| {
                    (m.unacked(), m.exhausted(), m.retransmissions())
                })
                .unwrap();
            (u, e, r, s.transport_stats())
        });
        assert_eq!(unacked, 0, "capped frames must leave the unacked map");
        assert_eq!(exhausted, 8, "every frame to the dead peer is given up");
        assert_eq!(retrans, 8 * 5, "each frame retried exactly cap times");
        // The Module::transport_stats hook reports the same numbers.
        assert_eq!(ts, dpu_core::TransportStats { retransmissions: 40, exhausted: 8, unacked: 0 });
    }

    #[test]
    fn default_config_retries_forever() {
        let mut cfg = SimConfig::lan(2, 13);
        cfg.net.loss = 1.0;
        let mut sim = Sim::new(cfg, mk_capped(0));
        for i in 0..4u8 {
            send(&mut sim, 0, 1, i);
        }
        sim.run_until(Time::ZERO + Dur::secs(2));
        let (unacked, exhausted) = sim.with_stack(StackId(0), |s| {
            s.with_module::<Rp2pModule, _>(RP2P, |m| (m.unacked(), m.exhausted())).unwrap()
        });
        assert_eq!(unacked, 4, "uncapped frames are never abandoned");
        assert_eq!(exhausted, 0);
    }

    #[test]
    fn config_roundtrip_and_factory() {
        let cfg = Rp2pConfig {
            retransmit: Dur::millis(55),
            lower: "udp".to_string(),
            max_retransmits: 7,
        };
        let b = wire::to_bytes(&cfg);
        assert_eq!(wire::from_bytes::<Rp2pConfig>(&b).unwrap(), cfg);
        let mut reg = FactoryRegistry::new();
        Rp2pModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::with_params(KIND, &cfg)).unwrap();
        assert_eq!(m.kind(), KIND);
    }

    #[test]
    fn frame_and_config_wire_contract() {
        use dpu_core::wire::testing::assert_wire_contract;
        assert_wire_contract(&Frame::Data { seq: 9, channel: 3, data: Bytes::from_static(b"xy") });
        assert_wire_contract(&Frame::Data { seq: u64::MAX, channel: 0, data: Bytes::new() });
        assert_wire_contract(&Frame::Ack { cum: 123_456 });
        assert_wire_contract(&Rp2pConfig {
            retransmit: Dur::millis(55),
            lower: "udp".into(),
            max_retransmits: 3,
        });
    }

    #[test]
    fn frame_decode_rejects_bad_tag() {
        let b = wire::to_bytes(&7u32);
        assert!(wire::from_bytes::<Frame>(&b).is_err());
    }
}
