//! The RP2P module (paper Figure 4): **reliable point-to-point**
//! communication between distributed processes.
//!
//! Guarantees on top of UDP, per ordered pair of stacks:
//!
//! * **reliability** — every sent message is eventually delivered if the
//!   destination is correct and the network loses only finitely often
//!   (positive-feedback retransmission with cumulative acks);
//! * **FIFO order** — messages are delivered in send order;
//! * **no duplication** — each message is delivered exactly once, even if
//!   the network duplicates datagrams.
//!
//! Sends to the local stack are looped back directly (no wire traffic).
//!
//! Provides service [`crate::RP2P_SVC`], requires [`crate::UDP_SVC`]. All
//! wire traffic uses UDP channel [`RP2P_UDP_CHANNEL`]; the user-facing
//! `channel` of each [`Dgram`] travels inside the RP2P frame.

use crate::dgram::{self, Dgram, DgramRef};
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::time::Dur;
use dpu_core::wire::{Decode, Encode, WireError, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId, TimerId};
use std::collections::BTreeMap;

/// Module kind name, for factory registration.
pub const KIND: &str = "rp2p";

/// UDP channel reserved for RP2P's own frames.
pub const RP2P_UDP_CHANNEL: u16 = 0;

const TAG_RETRANSMIT: u64 = 1;

/// Tuning knobs for RP2P.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rp2pConfig {
    /// Period of the retransmission scan.
    pub retransmit: Dur,
    /// The datagram service underneath (default [`crate::UDP_SVC`]; point
    /// it at [`crate::FRAG_SVC`] when frames can exceed the MTU).
    pub lower: String,
}

impl Default for Rp2pConfig {
    fn default() -> Self {
        Rp2pConfig { retransmit: Dur::millis(20), lower: crate::UDP_SVC.to_string() }
    }
}

impl Encode for Rp2pConfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.retransmit.as_nanos().encode(buf);
        self.lower.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.retransmit.as_nanos().encoded_len() + self.lower.encoded_len()
    }
}

impl Decode for Rp2pConfig {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(Rp2pConfig { retransmit: Dur::nanos(u64::decode(buf)?), lower: String::decode(buf)? })
    }
}

enum Frame {
    /// tag 0: a data frame.
    Data { seq: u64, channel: u16, data: Bytes },
    /// tag 1: cumulative ack — all `seq < cum` received in order.
    Ack { cum: u64 },
}

impl Encode for Frame {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Frame::Data { seq, channel, data } => {
                0u32.encode(buf);
                seq.encode(buf);
                channel.encode(buf);
                data.encode(buf);
            }
            Frame::Ack { cum } => {
                1u32.encode(buf);
                cum.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            Frame::Data { seq, channel, data } => {
                0u32.encoded_len() + seq.encoded_len() + channel.encoded_len() + data.encoded_len()
            }
            Frame::Ack { cum } => 1u32.encoded_len() + cum.encoded_len(),
        }
    }
}

impl Decode for Frame {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        match u32::decode(buf)? {
            0 => Ok(Frame::Data {
                seq: u64::decode(buf)?,
                channel: u16::decode(buf)?,
                data: Bytes::decode(buf)?,
            }),
            1 => Ok(Frame::Ack { cum: u64::decode(buf)? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[derive(Default)]
struct PeerOut {
    next_seq: u64,
    unacked: BTreeMap<u64, (u16, Bytes)>,
}

#[derive(Default)]
struct PeerIn {
    next_expected: u64,
    buffer: BTreeMap<u64, (u16, Bytes)>,
}

/// The reliable point-to-point module. See module docs.
pub struct Rp2pModule {
    cfg: Rp2pConfig,
    rp2p_svc: ServiceId,
    udp_svc: ServiceId,
    out: BTreeMap<StackId, PeerOut>,
    inn: BTreeMap<StackId, PeerIn>,
    retransmissions: u64,
}

impl Rp2pModule {
    /// A module with the given configuration.
    pub fn new(cfg: Rp2pConfig) -> Rp2pModule {
        let udp_svc = ServiceId::new(&cfg.lower);
        Rp2pModule {
            cfg,
            rp2p_svc: ServiceId::new(crate::RP2P_SVC),
            udp_svc,
            out: BTreeMap::new(),
            inn: BTreeMap::new(),
            retransmissions: 0,
        }
    }

    /// Register this module's factory under [`KIND`]. Empty params mean
    /// defaults; otherwise params decode as [`Rp2pConfig`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let cfg = if spec.params.is_empty() {
                Rp2pConfig::default()
            } else {
                spec.params::<Rp2pConfig>().unwrap_or_default()
            };
            Box::new(Rp2pModule::new(cfg))
        });
    }

    /// Total data-frame retransmissions performed (observability).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Number of frames currently awaiting ack across all peers.
    pub fn unacked(&self) -> usize {
        self.out.values().map(|p| p.unacked.len()).sum()
    }

    fn udp_send(&self, ctx: &mut ModuleCtx<'_>, dst: StackId, frame: &Frame) {
        // Frame encoded in place inside the Dgram, one scratch pass.
        let d = DgramRef { peer: dst, channel: RP2P_UDP_CHANNEL, body: frame };
        let payload = ctx.encode(&d);
        ctx.call(&self.udp_svc, dgram::SEND, payload);
    }

    fn deliver(&self, ctx: &mut ModuleCtx<'_>, src: StackId, channel: u16, data: Bytes) {
        let d = Dgram { peer: src, channel, data };
        let up = ctx.encode(&d);
        ctx.respond(&self.rp2p_svc, dgram::RECV, up);
    }

    fn handle_frame(&mut self, ctx: &mut ModuleCtx<'_>, src: StackId, frame: Frame) {
        match frame {
            Frame::Data { seq, channel, data } => {
                let pin = self.inn.entry(src).or_default();
                if seq >= pin.next_expected {
                    pin.buffer.insert(seq, (channel, data));
                    // Drain in-order prefix.
                    let mut ready = Vec::new();
                    while let Some(entry) = {
                        let pin = self.inn.get_mut(&src).expect("entry exists");
                        if pin.buffer.contains_key(&pin.next_expected) {
                            let e = pin.buffer.remove(&pin.next_expected).unwrap();
                            pin.next_expected += 1;
                            Some(e)
                        } else {
                            None
                        }
                    } {
                        ready.push(entry);
                    }
                    for (ch, d) in ready {
                        self.deliver(ctx, src, ch, d);
                    }
                }
                // Always (re-)ack: covers duplicates and lost acks.
                let cum = self.inn.get(&src).map_or(0, |p| p.next_expected);
                self.udp_send(ctx, src, &Frame::Ack { cum });
            }
            Frame::Ack { cum } => {
                if let Some(pout) = self.out.get_mut(&src) {
                    pout.unacked.retain(|&seq, _| seq >= cum);
                }
            }
        }
    }
}

impl Module for Rp2pModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.rp2p_svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.udp_svc.clone()]
    }

    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        ctx.set_timer(self.cfg.retransmit, TAG_RETRANSMIT);
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op != dgram::SEND {
            return;
        }
        let Ok(d) = call.decode::<Dgram>() else { return };
        if d.peer == ctx.stack_id() {
            // Local loopback: trivially reliable and ordered.
            self.deliver(ctx, d.peer, d.channel, d.data);
            return;
        }
        let pout = self.out.entry(d.peer).or_default();
        let seq = pout.next_seq;
        pout.next_seq += 1;
        pout.unacked.insert(seq, (d.channel, d.data.clone()));
        self.udp_send(ctx, d.peer, &Frame::Data { seq, channel: d.channel, data: d.data });
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != dgram::RECV || resp.service != self.udp_svc {
            return;
        }
        let Ok(d) = resp.decode::<Dgram>() else { return };
        if d.channel != RP2P_UDP_CHANNEL {
            return;
        }
        let Ok(frame) = dpu_core::wire::from_bytes::<Frame>(&d.data) else { return };
        self.handle_frame(ctx, d.peer, frame);
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _timer: TimerId, tag: u64) {
        if tag != TAG_RETRANSMIT {
            return;
        }
        // Collect first to avoid borrowing self across udp_send.
        let pending: Vec<(StackId, u64, u16, Bytes)> = self
            .out
            .iter()
            .flat_map(|(&peer, pout)| {
                pout.unacked.iter().map(move |(&seq, (ch, data))| (peer, seq, *ch, data.clone()))
            })
            .collect();
        for (peer, seq, channel, data) in pending {
            self.retransmissions += 1;
            self.udp_send(ctx, peer, &Frame::Data { seq, channel, data });
        }
        ctx.set_timer(self.cfg.retransmit, TAG_RETRANSMIT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp::UdpModule;
    use dpu_core::stack::{FactoryRegistry, Stack, StackConfig};
    use dpu_core::time::Time;
    use dpu_core::wire;
    use dpu_core::ModuleId;
    use dpu_sim::{Sim, SimConfig};

    /// Records `rp2p` RECV responses.
    struct Rp2pSink {
        got: Vec<Dgram>,
    }

    impl Module for Rp2pSink {
        fn kind(&self) -> &str {
            "rp2psink"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(crate::RP2P_SVC)]
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op == dgram::RECV {
                self.got.push(resp.decode().unwrap());
            }
        }
    }

    /// Stack layout used here: m1 net bridge, m2 udp, m3 rp2p, m4 sink.
    const RP2P: ModuleId = ModuleId(3);
    const SINK: ModuleId = ModuleId(4);

    fn mk_stack(sc: StackConfig) -> Stack {
        let mut s = Stack::new(sc, FactoryRegistry::new());
        let udp = s.add_module(Box::new(UdpModule::new()));
        let rp2p = s.add_module(Box::new(Rp2pModule::new(Rp2pConfig::default())));
        s.add_module(Box::new(Rp2pSink { got: vec![] }));
        s.bind(&ServiceId::new(crate::UDP_SVC), udp);
        s.bind(&ServiceId::new(crate::RP2P_SVC), rp2p);
        s
    }

    fn send(sim: &mut Sim, from: u32, to: u32, tagbyte: u8) {
        let d = Dgram { peer: StackId(to), channel: 5, data: Bytes::from(vec![tagbyte]) };
        sim.with_stack(StackId(from), |s| {
            s.call_as(SINK, &ServiceId::new(crate::RP2P_SVC), dgram::SEND, wire::to_bytes(&d))
        });
    }

    fn sink_data(sim: &mut Sim, node: u32) -> Vec<u8> {
        sim.with_stack(StackId(node), |s| {
            s.with_module::<Rp2pSink, _>(SINK, |k| {
                k.got.iter().map(|d| d.data[0]).collect::<Vec<u8>>()
            })
            .unwrap()
        })
    }

    #[test]
    fn delivers_in_fifo_order_on_clean_network() {
        let mut sim = Sim::new(SimConfig::lan(2, 42), mk_stack);
        for i in 0..10u8 {
            send(&mut sim, 0, 1, i);
        }
        sim.run_until(Time::ZERO + Dur::millis(100));
        assert_eq!(sink_data(&mut sim, 1), (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn recovers_from_heavy_loss() {
        let mut cfg = SimConfig::lan(2, 7);
        cfg.net.loss = 0.4;
        let mut sim = Sim::new(cfg, mk_stack);
        for i in 0..30u8 {
            send(&mut sim, 0, 1, i);
        }
        sim.run_until(Time::ZERO + Dur::secs(5));
        assert_eq!(sink_data(&mut sim, 1), (0..30).collect::<Vec<u8>>());
        // Loss must have caused actual retransmissions.
        let retrans = sim.with_stack(StackId(0), |s| {
            s.with_module::<Rp2pModule, _>(RP2P, |m| m.retransmissions()).unwrap()
        });
        assert!(retrans > 0);
    }

    #[test]
    fn suppresses_network_duplicates() {
        let mut cfg = SimConfig::lan(2, 7);
        cfg.net.duplicate = 1.0;
        let mut sim = Sim::new(cfg, mk_stack);
        for i in 0..10u8 {
            send(&mut sim, 0, 1, i);
        }
        sim.run_until(Time::ZERO + Dur::secs(1));
        assert_eq!(sink_data(&mut sim, 1), (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn local_loopback_delivers_without_wire_traffic() {
        let mut sim = Sim::new(SimConfig::lan(1, 3), mk_stack);
        send(&mut sim, 0, 0, 9);
        sim.run_until(Time::ZERO + Dur::millis(10));
        assert_eq!(sink_data(&mut sim, 0), vec![9]);
        assert_eq!(sim.stats().packets_sent, 0);
    }

    #[test]
    fn bidirectional_streams_are_independent() {
        let mut sim = Sim::new(SimConfig::lan(2, 11), mk_stack);
        for i in 0..5u8 {
            send(&mut sim, 0, 1, i);
            send(&mut sim, 1, 0, 100 + i);
        }
        sim.run_until(Time::ZERO + Dur::millis(200));
        assert_eq!(sink_data(&mut sim, 1), (0..5).collect::<Vec<u8>>());
        assert_eq!(sink_data(&mut sim, 0), (100..105).collect::<Vec<u8>>());
    }

    #[test]
    fn unacked_drains_once_acks_flow() {
        let mut sim = Sim::new(SimConfig::lan(2, 5), mk_stack);
        for i in 0..4u8 {
            send(&mut sim, 0, 1, i);
        }
        sim.run_until(Time::ZERO + Dur::secs(1));
        let unacked = sim.with_stack(StackId(0), |s| {
            s.with_module::<Rp2pModule, _>(RP2P, |m| m.unacked()).unwrap()
        });
        assert_eq!(unacked, 0);
    }

    #[test]
    fn config_roundtrip_and_factory() {
        let cfg = Rp2pConfig { retransmit: Dur::millis(55), lower: "udp".to_string() };
        let b = wire::to_bytes(&cfg);
        assert_eq!(wire::from_bytes::<Rp2pConfig>(&b).unwrap(), cfg);
        let mut reg = FactoryRegistry::new();
        Rp2pModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::with_params(KIND, &cfg)).unwrap();
        assert_eq!(m.kind(), KIND);
    }

    #[test]
    fn frame_and_config_wire_contract() {
        use dpu_core::wire::testing::assert_wire_contract;
        assert_wire_contract(&Frame::Data { seq: 9, channel: 3, data: Bytes::from_static(b"xy") });
        assert_wire_contract(&Frame::Data { seq: u64::MAX, channel: 0, data: Bytes::new() });
        assert_wire_contract(&Frame::Ack { cum: 123_456 });
        assert_wire_contract(&Rp2pConfig { retransmit: Dur::millis(55), lower: "udp".into() });
    }

    #[test]
    fn frame_decode_rejects_bad_tag() {
        let b = wire::to_bytes(&7u32);
        assert!(wire::from_bytes::<Frame>(&b).is_err());
    }
}
