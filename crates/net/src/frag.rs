//! MTU fragmentation/reassembly: a datagram-interface module that splits
//! oversized payloads into MTU-sized fragments and reassembles them at
//! the receiver.
//!
//! Sits between RP2P and UDP when protocol messages can exceed the
//! network MTU — consensus-based atomic broadcast batches, for instance,
//! grow with load. Provides the same [`Dgram`] interface as UDP
//! (service [`crate::FRAG_SVC`]), so RP2P can be pointed at it via
//! [`crate::rp2p::Rp2pConfig::lower`].
//!
//! Fragmentation is *unreliable*, like the UDP underneath: a lost
//! fragment loses the whole message (the reassembly slot is evicted
//! LRU-style). Reliability stays where it belongs — in RP2P above.

use crate::dgram::{self, Dgram, DgramRef};
use bytes::{Bytes, BytesMut};
use dpu_core::stack::ModuleCtx;
use dpu_core::wire::{Decode, Encode, WireResult};
use dpu_core::{Call, Module, ModuleSpec, Response, ServiceId, StackId};
use std::collections::{BTreeMap, VecDeque};

/// Module kind name, for factory registration.
pub const KIND: &str = "frag";

/// Tuning knobs of the fragmentation module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragConfig {
    /// Maximum payload bytes per fragment (Ethernet default minus
    /// headroom for our framing).
    pub mtu: usize,
    /// Maximum concurrent reassembly slots per source; oldest incomplete
    /// messages are evicted first.
    pub reassembly_slots: usize,
}

impl Default for FragConfig {
    fn default() -> Self {
        FragConfig { mtu: 1400, reassembly_slots: 64 }
    }
}

impl Encode for FragConfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.mtu.encode(buf);
        self.reassembly_slots.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.mtu.encoded_len() + self.reassembly_slots.encoded_len()
    }
}

impl Decode for FragConfig {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(FragConfig { mtu: usize::decode(buf)?, reassembly_slots: usize::decode(buf)? })
    }
}

/// One fragment on the wire.
struct Fragment {
    msg_id: u64,
    index: u32,
    count: u32,
    channel: u16,
    data: Bytes,
}

impl Encode for Fragment {
    fn encode(&self, buf: &mut BytesMut) {
        self.msg_id.encode(buf);
        self.index.encode(buf);
        self.count.encode(buf);
        self.channel.encode(buf);
        self.data.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.msg_id.encoded_len()
            + self.index.encoded_len()
            + self.count.encoded_len()
            + self.channel.encoded_len()
            + self.data.encoded_len()
    }
}

impl Decode for Fragment {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(Fragment {
            msg_id: u64::decode(buf)?,
            index: u32::decode(buf)?,
            count: u32::decode(buf)?,
            channel: u16::decode(buf)?,
            data: Bytes::decode(buf)?,
        })
    }
}

struct Slot {
    count: u32,
    channel: u16,
    parts: BTreeMap<u32, Bytes>,
}

/// The fragmentation module. See module docs.
pub struct FragModule {
    cfg: FragConfig,
    frag_svc: ServiceId,
    udp_svc: ServiceId,
    next_msg_id: u64,
    /// Reassembly state per source, with FIFO eviction order.
    slots: BTreeMap<StackId, BTreeMap<u64, Slot>>,
    order: BTreeMap<StackId, VecDeque<u64>>,
    fragments_sent: u64,
    messages_reassembled: u64,
    evicted: u64,
}

impl FragModule {
    /// A module with the given configuration.
    pub fn new(cfg: FragConfig) -> FragModule {
        FragModule {
            cfg,
            frag_svc: ServiceId::new(crate::FRAG_SVC),
            udp_svc: ServiceId::new(crate::UDP_SVC),
            next_msg_id: 0,
            slots: BTreeMap::new(),
            order: BTreeMap::new(),
            fragments_sent: 0,
            messages_reassembled: 0,
            evicted: 0,
        }
    }

    /// Register this module's factory under [`KIND`].
    pub fn register(reg: &mut dpu_core::FactoryRegistry) {
        reg.register(KIND, |spec: &ModuleSpec| {
            let cfg = if spec.params.is_empty() {
                FragConfig::default()
            } else {
                spec.params::<FragConfig>().unwrap_or_default()
            };
            Box::new(FragModule::new(cfg))
        });
    }

    /// Fragments put on the wire by this module.
    pub fn fragments_sent(&self) -> u64 {
        self.fragments_sent
    }

    /// Messages fully reassembled and delivered up.
    pub fn messages_reassembled(&self) -> u64 {
        self.messages_reassembled
    }

    /// Incomplete messages evicted (fragment loss or slot pressure).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    fn send_fragment(&mut self, ctx: &mut ModuleCtx<'_>, dst: StackId, frag: &Fragment) {
        self.fragments_sent += 1;
        // One forward pass: the fragment is encoded in place inside the
        // Dgram frame, through the stack's reusable scratch.
        let d = DgramRef { peer: dst, channel: crate::FRAG_UDP_CHANNEL, body: frag };
        let payload = ctx.encode(&d);
        ctx.call(&self.udp_svc, dgram::SEND, payload);
    }

    fn on_fragment(&mut self, ctx: &mut ModuleCtx<'_>, src: StackId, frag: Fragment) {
        if frag.count == 1 {
            // Fast path: unfragmented message; the payload Bytes is a
            // zero-copy window into the received datagram.
            self.messages_reassembled += 1;
            let d = Dgram { peer: src, channel: frag.channel, data: frag.data };
            let up = ctx.encode(&d);
            ctx.respond(&self.frag_svc, dgram::RECV, up);
            return;
        }
        let slots = self.slots.entry(src).or_default();
        let order = self.order.entry(src).or_default();
        let slot = slots.entry(frag.msg_id).or_insert_with(|| {
            order.push_back(frag.msg_id);
            Slot { count: frag.count, channel: frag.channel, parts: BTreeMap::new() }
        });
        slot.parts.insert(frag.index, frag.data);
        if slot.parts.len() as u32 == slot.count {
            let slot = slots.remove(&frag.msg_id).expect("just present");
            order.retain(|&id| id != frag.msg_id);
            let total: usize = slot.parts.values().map(Bytes::len).sum();
            let mut whole = BytesMut::with_capacity(total);
            for (_, part) in slot.parts {
                whole.extend_from_slice(&part);
            }
            self.messages_reassembled += 1;
            let d = Dgram { peer: src, channel: slot.channel, data: whole.freeze() };
            let up = ctx.encode(&d);
            ctx.respond(&self.frag_svc, dgram::RECV, up);
            return;
        }
        // Evict the oldest incomplete message under slot pressure.
        while slots.len() > self.cfg.reassembly_slots {
            if let Some(old) = order.pop_front() {
                if slots.remove(&old).is_some() {
                    self.evicted += 1;
                }
            } else {
                break;
            }
        }
    }
}

impl Module for FragModule {
    fn kind(&self) -> &str {
        KIND
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![self.frag_svc.clone()]
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.udp_svc.clone()]
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op != dgram::SEND {
            return;
        }
        let Ok(d) = call.decode::<Dgram>() else { return };
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        let mtu = self.cfg.mtu.max(1);
        let count = d.data.len().div_ceil(mtu).max(1) as u32;
        for index in 0..count {
            let lo = index as usize * mtu;
            let hi = (lo + mtu).min(d.data.len());
            let frag =
                Fragment { msg_id, index, count, channel: d.channel, data: d.data.slice(lo..hi) };
            self.send_fragment(ctx, d.peer, &frag);
        }
    }

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.service != self.udp_svc || resp.op != dgram::RECV {
            return;
        }
        let Ok(d) = resp.decode::<Dgram>() else { return };
        if d.channel != crate::FRAG_UDP_CHANNEL {
            return;
        }
        let Ok(frag) = dpu_core::wire::from_bytes::<Fragment>(&d.data) else { return };
        self.on_fragment(ctx, d.peer, frag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rp2p::{Rp2pConfig, Rp2pModule};
    use crate::udp::UdpModule;
    use dpu_core::stack::{FactoryRegistry, Stack, StackConfig};
    use dpu_core::time::{Dur, Time};
    use dpu_core::wire;
    use dpu_core::ModuleId;
    use dpu_sim::{Sim, SimConfig};

    struct Sink {
        got: Vec<Dgram>,
        svc: ServiceId,
    }

    impl Module for Sink {
        fn kind(&self) -> &str {
            "fragsink"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![self.svc.clone()]
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op == dgram::RECV {
                self.got.push(resp.decode().unwrap());
            }
        }
    }

    /// Layout: m1 net, m2 udp, m3 frag, m4 sink.
    const FRAG: ModuleId = ModuleId(3);
    const SINK: ModuleId = ModuleId(4);

    fn mk_stack(sc: StackConfig) -> Stack {
        let mut s = Stack::new(sc, FactoryRegistry::new());
        let udp = s.add_module(Box::new(UdpModule::new()));
        let frag = s.add_module(Box::new(FragModule::new(FragConfig::default())));
        s.add_module(Box::new(Sink { got: vec![], svc: ServiceId::new(crate::FRAG_SVC) }));
        s.bind(&ServiceId::new(crate::UDP_SVC), udp);
        s.bind(&ServiceId::new(crate::FRAG_SVC), frag);
        s
    }

    fn send_big(sim: &mut Sim, from: u32, to: u32, size: usize, fill: u8) {
        let d = Dgram { peer: StackId(to), channel: 5, data: Bytes::from(vec![fill; size]) };
        sim.with_stack(StackId(from), |s| {
            s.call_as(SINK, &ServiceId::new(crate::FRAG_SVC), dgram::SEND, wire::to_bytes(&d))
        });
    }

    #[test]
    fn small_messages_pass_through_one_fragment() {
        let mut sim = Sim::new(SimConfig::lan(2, 1), mk_stack);
        send_big(&mut sim, 0, 1, 100, 7);
        sim.run_until(Time::ZERO + Dur::millis(50));
        let got = sim
            .with_stack(StackId(1), |s| s.with_module::<Sink, _>(SINK, |k| k.got.clone()).unwrap());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].data.len(), 100);
        let frags = sim.with_stack(StackId(0), |s| {
            s.with_module::<FragModule, _>(FRAG, |m| m.fragments_sent()).unwrap()
        });
        assert_eq!(frags, 1);
    }

    #[test]
    fn large_message_is_fragmented_and_reassembled_exactly() {
        let mut sim = Sim::new(SimConfig::lan(2, 3), mk_stack);
        let size = 10_000; // 8 fragments at mtu 1400
        send_big(&mut sim, 0, 1, size, 9);
        sim.run_until(Time::ZERO + Dur::millis(100));
        let got = sim
            .with_stack(StackId(1), |s| s.with_module::<Sink, _>(SINK, |k| k.got.clone()).unwrap());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].channel, 5);
        assert_eq!(got[0].data, Bytes::from(vec![9u8; size]));
        let frags = sim.with_stack(StackId(0), |s| {
            s.with_module::<FragModule, _>(FRAG, |m| m.fragments_sent()).unwrap()
        });
        assert_eq!(frags as usize, size.div_ceil(1400));
    }

    #[test]
    fn interleaved_large_messages_do_not_mix() {
        let mut sim = Sim::new(SimConfig::lan(3, 5), mk_stack);
        send_big(&mut sim, 0, 2, 5_000, 1);
        send_big(&mut sim, 1, 2, 5_000, 2);
        send_big(&mut sim, 0, 2, 3_000, 3);
        sim.run_until(Time::ZERO + Dur::millis(200));
        let got = sim
            .with_stack(StackId(2), |s| s.with_module::<Sink, _>(SINK, |k| k.got.clone()).unwrap());
        assert_eq!(got.len(), 3);
        for d in &got {
            let first = d.data[0];
            assert!(d.data.iter().all(|&b| b == first), "fragments mixed across messages");
        }
    }

    #[test]
    fn lost_fragment_loses_only_that_message() {
        let mut cfg = SimConfig::lan(2, 11);
        cfg.net.loss = 0.5;
        let mut sim = Sim::new(cfg, mk_stack);
        for i in 0..5 {
            send_big(&mut sim, 0, 1, 4_000, i);
        }
        sim.run_until(Time::ZERO + Dur::secs(1));
        let got = sim
            .with_stack(StackId(1), |s| s.with_module::<Sink, _>(SINK, |k| k.got.clone()).unwrap());
        // Unreliable by design: some messages may be lost, but whatever
        // arrives is complete and uncorrupted.
        assert!(got.len() < 5, "50% fragment loss must lose some message");
        for d in &got {
            assert_eq!(d.data.len(), 4_000);
            let first = d.data[0];
            assert!(d.data.iter().all(|&b| b == first));
        }
    }

    #[test]
    fn rp2p_over_frag_recovers_large_messages_despite_loss() {
        // The intended composition: rp2p → frag → udp. RP2P retransmits
        // whole frames; frag splits them; loss of any fragment is healed
        // by the retransmission.
        let mk = |sc: StackConfig| -> Stack {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            let udp = s.add_module(Box::new(UdpModule::new()));
            let frag = s.add_module(Box::new(FragModule::new(FragConfig::default())));
            let rp2p = s.add_module(Box::new(Rp2pModule::new(Rp2pConfig {
                lower: crate::FRAG_SVC.to_string(),
                ..Rp2pConfig::default()
            })));
            s.add_module(Box::new(Sink { got: vec![], svc: ServiceId::new(crate::RP2P_SVC) }));
            s.bind(&ServiceId::new(crate::UDP_SVC), udp);
            s.bind(&ServiceId::new(crate::FRAG_SVC), frag);
            s.bind(&ServiceId::new(crate::RP2P_SVC), rp2p);
            s
        };
        // Layout here: m1 net, m2 udp, m3 frag, m4 rp2p, m5 sink.
        const SINK5: ModuleId = ModuleId(5);
        let mut cfg = SimConfig::lan(2, 13);
        cfg.net.loss = 0.25;
        let mut sim = Sim::new(cfg, mk);
        for i in 0..4u8 {
            let d = Dgram { peer: StackId(1), channel: 5, data: Bytes::from(vec![i; 6_000]) };
            sim.with_stack(StackId(0), |s| {
                s.call_as(SINK5, &ServiceId::new(crate::RP2P_SVC), dgram::SEND, wire::to_bytes(&d))
            });
        }
        sim.run_until(Time::ZERO + Dur::secs(20));
        let got = sim.with_stack(StackId(1), |s| {
            s.with_module::<Sink, _>(SINK5, |k| k.got.clone()).unwrap()
        });
        assert_eq!(got.len(), 4, "reliable layer must recover every message");
        for (i, d) in got.iter().enumerate() {
            assert_eq!(d.data, Bytes::from(vec![i as u8; 6_000]), "FIFO + integrity");
        }
    }

    #[test]
    fn slot_pressure_evicts_oldest_incomplete() {
        let mut cfg_sim = SimConfig::lan(2, 17);
        cfg_sim.net.loss = 0.0;
        let mk = |sc: StackConfig| -> Stack {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            let udp = s.add_module(Box::new(UdpModule::new()));
            let frag = s.add_module(Box::new(FragModule::new(FragConfig {
                mtu: 100,
                reassembly_slots: 2,
            })));
            s.add_module(Box::new(Sink { got: vec![], svc: ServiceId::new(crate::FRAG_SVC) }));
            s.bind(&ServiceId::new(crate::UDP_SVC), udp);
            s.bind(&ServiceId::new(crate::FRAG_SVC), frag);
            s
        };
        let mut sim = Sim::new(cfg_sim, mk);
        // Send fragments manually: three two-fragment messages, each
        // missing its second half, then watch eviction counters.
        for msg_id in 0..3u64 {
            let frag = Fragment {
                msg_id,
                index: 0,
                count: 2,
                channel: 5,
                data: Bytes::from_static(b"half"),
            };
            let d =
                Dgram { peer: StackId(1), channel: crate::FRAG_UDP_CHANNEL, data: frag.to_bytes() };
            sim.with_stack(StackId(0), |s| {
                s.call_as(SINK, &ServiceId::new(crate::UDP_SVC), dgram::SEND, wire::to_bytes(&d))
            });
        }
        sim.run_until(Time::ZERO + Dur::millis(100));
        let (evicted, reassembled) = sim.with_stack(StackId(1), |s| {
            s.with_module::<FragModule, _>(FRAG, |m| (m.evicted(), m.messages_reassembled()))
                .unwrap()
        });
        assert_eq!(reassembled, 0);
        assert!(evicted >= 1, "slot pressure must evict");
    }

    #[test]
    fn fragment_and_config_wire_contract() {
        for data in [Bytes::new(), Bytes::from_static(b"chunk"), Bytes::from(vec![1u8; 1400])] {
            let frag = Fragment { msg_id: 77, index: 2, count: 9, channel: 5, data };
            dpu_core::wire::testing::assert_wire_contract(&frag);
        }
        dpu_core::wire::testing::assert_wire_contract(&FragConfig {
            mtu: 512,
            reassembly_slots: 8,
        });
    }

    #[test]
    fn config_roundtrip_and_factory() {
        let cfg = FragConfig { mtu: 512, reassembly_slots: 8 };
        let b = wire::to_bytes(&cfg);
        assert_eq!(wire::from_bytes::<FragConfig>(&b).unwrap(), cfg);
        let mut reg = FactoryRegistry::new();
        FragModule::register(&mut reg);
        let m = reg.build(&ModuleSpec::with_params(KIND, &cfg)).unwrap();
        assert_eq!(m.kind(), KIND);
    }
}
